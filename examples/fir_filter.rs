//! DSP workload from the paper's motivation ("many signal processing …
//! applications have large numbers of floating-point multiply-add
//! operations at their core", Sec. I): a 16-tap FIR filter evaluated
//! three ways —
//!
//! 1. discrete binary64 multiply/add chain (the baseline datapath),
//! 2. a chain of FCS-FMA units (what the HLS pass builds),
//! 3. the fused dot-product unit (one normalization per output sample).
//!
//! ```sh
//! cargo run --example fir_filter
//! ```

use csfma::core::{ulp_error_vs_exact, CsDotUnit, CsFmaFormat, CsFmaUnit, CsOperand};
use csfma::softfloat::{ExactFloat, FpFormat, Round, SoftFloat};

const TAPS: [f64; 16] = [
    -0.0037, -0.0118, -0.0147, 0.0094, 0.0723, 0.1568, 0.2265, 0.2550, 0.2265, 0.1568, 0.0723,
    0.0094, -0.0147, -0.0118, -0.0037, 0.0011,
];

fn main() {
    let fmt = CsFmaFormat::FCS_29_LZA;
    let fma = CsFmaUnit::new(fmt);
    let dot = CsDotUnit::new(fmt);
    let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);

    // a noisy input signal
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut noise = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let signal: Vec<f64> = (0..64)
        .map(|i| (i as f64 * 0.21).sin() + 0.3 * noise())
        .collect();

    println!("16-tap FIR over 48 output samples (errors vs exact, in 64b ULPs):");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "sample", "discrete f64", "FMA chain", "fused dot"
    );

    let mut worst = [0.0f64; 3];
    for n in 16..signal.len() {
        // exact reference
        let exact = (0..16).fold(ExactFloat::zero(), |acc, k| {
            acc.add(&ExactFloat::from_f64(TAPS[k]).mul(&ExactFloat::from_f64(signal[n - k])))
        });

        // 1. discrete double chain
        let mut plain = 0.0f64;
        for k in 0..16 {
            plain += TAPS[k] * signal[n - k];
        }

        // 2. FCS-FMA chain (accumulator stays in CS transport format)
        let mut acc = CsOperand::zero(fmt, false);
        for k in 0..16 {
            let x = CsOperand::from_ieee(&sf(signal[n - k]), fmt);
            acc = fma.fma(&acc, &sf(TAPS[k]), &x);
        }

        // 3. fused dot product (single normalization)
        let terms: Vec<_> = (0..16)
            .map(|k| (sf(TAPS[k]), CsOperand::from_ieee(&sf(signal[n - k]), fmt)))
            .collect();
        let fused = dot.dot(&terms);

        let errs = [
            ulp_error_vs_exact(&ExactFloat::from_f64(plain), &exact),
            ulp_error_vs_exact(&acc.exact_value(), &exact),
            ulp_error_vs_exact(&fused.exact_value(), &exact),
        ];
        for (w, e) in worst.iter_mut().zip(errs.iter()) {
            *w = w.max(*e);
        }
        if n % 8 == 0 {
            println!(
                "{:>8} {:>14.4} {:>14.6} {:>14.6}",
                n, errs[0], errs[1], errs[2]
            );
        }
        // all three must produce the same double after rounding (the
        // fused paths are strictly more accurate)
        let _ = fused.to_ieee(FpFormat::BINARY64, Round::NearestEven);
    }
    println!(
        "\nworst-case error: discrete {:.3} ulp | FMA chain {:.6} ulp | fused dot {:.6} ulp",
        worst[0], worst[1], worst[2]
    );
    println!("(the CS paths carry unrounded 87-digit mantissas; the discrete chain");
    println!(" rounds 32 times per sample)");
}
