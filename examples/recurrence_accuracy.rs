//! The Sec. IV-B accuracy experiment in miniature (Fig. 14): run the
//! recurrence `x[n] = B1·x[n-1] + B2·x[n-2] + x[n-3]` to `x[50]` on every
//! implementation and compare mantissa errors.
//!
//! ```sh
//! cargo run --example recurrence_accuracy
//! ```

use csfma::core::{
    run_recurrence_exact, run_recurrence_softfloat, ulp_error_vs_exact, ChainEvaluator,
    CsFmaFormat, CsFmaUnit,
};
use csfma::softfloat::{FpFormat, Round, SoftFloat};

fn main() {
    let (b1, b2) = (2.5, -0.625);
    let seeds = [0.3, -0.7, 1.1];
    let steps = 48; // x[50] from three seeds

    let exact = run_recurrence_exact(b1, b2, seeds, steps);
    println!("x[50] exact = {:.17e}", exact.to_f64_lossy());
    println!(
        "\n{:<28} {:>14} {:>16}",
        "implementation", "x[50]", "error [64b ulp]"
    );

    for (name, fmt) in [
        ("binary64 (discrete)", FpFormat::BINARY64),
        ("68-bit wide", FpFormat::B68),
        ("75-bit golden", FpFormat::B75),
    ] {
        let r = run_recurrence_softfloat(fmt, Round::NearestEven, b1, b2, seeds, steps);
        println!(
            "{:<28} {:>14.8} {:>16.6}",
            name,
            r.to_f64(),
            ulp_error_vs_exact(&r.to_exact(), &exact)
        );
    }

    let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);
    for fmt in [
        CsFmaFormat::PCS_55_ZD,
        CsFmaFormat::PCS_58_LZA,
        CsFmaFormat::FCS_29_LZA,
    ] {
        let chain = ChainEvaluator::new(CsFmaUnit::new(fmt));
        let r = chain.run_recurrence(
            &sf(b1),
            &sf(b2),
            [&sf(seeds[0]), &sf(seeds[1]), &sf(seeds[2])],
            steps,
        );
        println!(
            "{:<28} {:>14.8} {:>16.6}",
            fmt.name,
            r.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(),
            ulp_error_vs_exact(&r.exact_value(), &exact)
        );
    }
    println!("\n(the carry-save chains carry 87-116 digit unrounded mantissas between");
    println!(" operators, so they beat even the 68-bit discrete implementation)");
}
