//! The full application: closed-loop model-predictive collision avoidance
//! (the system the paper's solvers come from, Sec. I) — the vehicle
//! re-solves its trajectory QP each period using the interior-point
//! method whose `ldlsolve()` kernel the FMA units accelerate.
//!
//! ```sh
//! cargo run --example mpc_closed_loop
//! ```

use csfma::solvers::{run_closed_loop, solver_suite, MpcConfig};

fn main() {
    let base = &solver_suite()[2]; // T = 12 planning horizon
    let cfg = MpcConfig {
        periods: 20,
        u_max: 3.0,
        v_max: 14.0,
        max_ipm_iters: 60,
        warm_start: true,
    };
    let run = run_closed_loop(base, &cfg);

    println!(
        "closed-loop MPC: horizon T={}, {} control periods, |u| <= {}, v <= {}",
        base.horizon, cfg.periods, cfg.u_max, cfg.v_max
    );
    println!("obstacle at ({}, {})\n", base.obstacle[0], base.obstacle[1]);
    println!(
        "{:>4} {:>8} {:>8} {:>7} {:>7} {:>8} {:>4}",
        "t", "px", "py", "vx", "ax", "ay", "ipm"
    );
    for (i, s) in run.states.iter().enumerate() {
        let (u, it) = if i < run.controls.len() {
            (run.controls[i], run.ipm_iterations[i])
        } else {
            ([0.0, 0.0], 0)
        };
        // crude lane picture: 40-char strip, obstacle marked
        let lane_pos = ((s[0] / 18.0) * 38.0) as usize;
        let mut lane: Vec<char> = vec!['.'; 40];
        let obs = ((base.obstacle[0] / 18.0) * 38.0) as usize;
        if obs < 40 {
            lane[obs] = 'X';
        }
        if lane_pos < 40 {
            lane[lane_pos] = if s[1] > 0.8 { '^' } else { 'o' };
        }
        println!(
            "{:>4} {:>8.2} {:>8.2} {:>7.2} {:>7.2} {:>8.2} {:>4}  {}",
            i,
            s[0],
            s[1],
            s[2],
            u[0],
            u[1],
            it,
            lane.iter().collect::<String>()
        );
    }
    println!(
        "\nclosest approach to the obstacle: {:.2} m; peak lateral offset: {:.2} m",
        run.min_obstacle_distance,
        run.states.iter().map(|s| s[1]).fold(f64::MIN, f64::max)
    );
    println!(
        "total interior-point iterations: {} (each one runs the ldlsolve kernel\nthe P/FCS-FMA units accelerate by 23-43%)",
        run.ipm_iterations.iter().sum::<usize>()
    );
}
