//! End-to-end Sec. IV-D flow: generate a trajectory-planning solver's
//! `ldlsolve()` kernel, run the Fig. 12 FMA fusion pass, and compare
//! schedules and numerics.
//!
//! ```sh
//! cargo run --example hls_solver
//! ```

use csfma::hls::interp::{eval_bit_accurate, eval_f64};
use csfma::hls::{
    asap_schedule, fuse_critical_paths, occupancy_chart, FmaKind, FusionConfig, OpTiming,
};
use csfma::solvers::{generate_ldlsolve, solver_suite, KktSystem, LdlFactors};

fn main() {
    let problem = &solver_suite()[1]; // T = 8
    println!(
        "problem: {} — {} variables, {} dynamics constraints",
        problem.name,
        problem.num_vars(),
        problem.num_eq()
    );

    let kkt = KktSystem::assemble(problem);
    let factors = LdlFactors::factor(&kkt.matrix);
    println!(
        "KKT dim {} with {} strictly-lower L nonzeros after fill-in",
        kkt.matrix.dim(),
        factors.nnz()
    );

    let prog = generate_ldlsolve(&factors);
    let t = OpTiming::default();
    let discrete = asap_schedule(&prog.cdfg, &t).length;
    println!(
        "\nldlsolve(): {} nodes, discrete schedule {} cycles",
        prog.cdfg.len(),
        discrete
    );

    let ins = prog.inputs_for(&factors, &kkt.rhs);
    let reference = prog.extract_solution(&eval_f64(&prog.cdfg, &ins));

    for kind in [FmaKind::Pcs, FmaKind::Fcs] {
        let rep = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(kind));
        let red = 100.0 * (1.0 - rep.final_length as f64 / discrete as f64);
        println!(
            "{kind:?}: {} FMA nodes, schedule {} cycles (-{red:.1}%), {} fusion steps",
            rep.fma_nodes, rep.final_length, rep.passes
        );
        // prove the fused hardware computes the same solve
        let got = prog.extract_solution(&eval_bit_accurate(&rep.fused, &ins));
        let max_err = got
            .iter()
            .zip(&reference)
            .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
            .fold(0.0f64, f64::max);
        println!("        max relative deviation from reference solve: {max_err:.2e}");
    }

    // a glimpse of the fused datapath's occupancy (FCS variant)
    let fcs = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(FmaKind::Fcs));
    let sched = asap_schedule(&fcs.fused, &t);
    println!("\nFCS datapath occupancy (M=mul A=add F=fma c=convert):");
    print!("{}", occupancy_chart(&fcs.fused, &t, &sched, 12));

    // the solution is a real trajectory: print the planned positions
    println!("\nplanned trajectory (positions):");
    for t_step in 0..problem.horizon {
        let base = t_step * 10 + 2; // interleaved ordering: u(2) then x(4)
        println!(
            "  t={:>2}  p=({:+.2}, {:+.2})",
            t_step + 1,
            reference[base],
            reference[base + 1]
        );
    }
}
