//! The compiler frontend end to end: parse a straight-line program
//! (Listing 1 of the paper, literally), schedule it, fuse the critical
//! path, and execute both versions bit-accurately.
//!
//! ```sh
//! cargo run --example compile_text
//! ```

use csfma::hls::interp::{eval_bit_accurate, eval_f64};
use csfma::hls::{
    asap_schedule, fuse_critical_paths, parse_program, FmaKind, FusionConfig, OpTiming,
};
use std::collections::HashMap;

const LISTING_1: &str = "
# Listing 1 of the paper: a dependent multiply-add chain
x1 = a*b + c*d;
x2 = e*f + g*x1;
out x3 = h*i + k*x2;
";

fn main() {
    let g = parse_program(LISTING_1).expect("parse");
    let t = OpTiming::default();
    println!(
        "parsed {} nodes; dataflow schedule {} cycles",
        g.len(),
        asap_schedule(&g, &t).length
    );

    let mut inputs: HashMap<String, f64> = HashMap::new();
    for (i, name) in ["a", "b", "c", "d", "e", "f", "g", "h", "i", "k"]
        .iter()
        .enumerate()
    {
        inputs.insert(name.to_string(), 0.3 + 0.17 * i as f64);
    }
    let reference = eval_f64(&g, &inputs)["x3"];
    println!("reference x3 = {reference:.15}");

    for kind in [FmaKind::Pcs, FmaKind::Fcs] {
        let rep = fuse_critical_paths(&g, &FusionConfig::new(kind));
        let fused_val = eval_bit_accurate(&rep.fused, &inputs)["x3"];
        println!(
            "{kind:?}: {} -> {} cycles ({} FMA nodes), x3 = {fused_val:.15} (Δ = {:.2e})",
            rep.initial_length,
            rep.final_length,
            rep.fma_nodes,
            (fused_val - reference).abs()
        );
    }
}
