//! Print the full synthesis / latency / energy report of all four
//! operator implementations — Tables I & II and Fig. 13 in one place.
//!
//! ```sh
//! cargo run --example synthesis_report
//! ```

use csfma::core::CsFmaFormat;
use csfma::fabric::energy::{
    measure_cs_unit, measure_discrete, DiscreteKind, EnergyCoefficients, ResourceClass,
};
use csfma::fabric::{all_units, Virtex6};

fn main() {
    let v = Virtex6::SPEED_GRADE_1;
    println!("Virtex-6 (-1) synthesis model");
    println!(
        "{:<22} {:>6} {:>7} {:>6} {:>5} {:>9}",
        "Architecture", "fMax", "Cycles", "LUTs", "DSPs", "Lat [ns]"
    );
    for u in all_units() {
        let r = u.synthesize(&v);
        println!(
            "{:<22} {:>6.0} {:>7} {:>6} {:>5} {:>9.2}",
            r.name,
            r.fmax_mhz,
            r.cycles,
            r.luts,
            r.dsps,
            r.latency_ns()
        );
    }

    println!("\nEnergy per multiply-add (switching-activity model, 600-op steady state):");
    let co = EnergyCoefficients::default();
    let rows = [
        (
            "Xilinx (Mul+Add)",
            measure_discrete(DiscreteKind::CoreGen, 600, 42),
        ),
        ("FloPoCo", measure_discrete(DiscreteKind::FloPoCo, 600, 42)),
        ("PCS-FMA", measure_cs_unit(CsFmaFormat::PCS_55_ZD, 600, 42)),
        ("FCS-FMA", measure_cs_unit(CsFmaFormat::FCS_29_LZA, 600, 42)),
    ];
    println!(
        "{:<18} {:>8} {:>10} {:>10} {:>10}",
        "unit", "nJ/op", "dsp tog", "fabric tog", "reg tog"
    );
    for (name, acc) in rows {
        println!(
            "{:<18} {:>8.2} {:>10.0} {:>10.0} {:>10.0}",
            name,
            acc.energy_nj_per_op(&co),
            acc.toggles_per_op(ResourceClass::Dsp),
            acc.toggles_per_op(ResourceClass::Fabric),
            acc.toggles_per_op(ResourceClass::Reg),
        );
    }
}
