//! Quickstart: compute a fused multiply-add chain with the FCS-FMA unit
//! and compare against plain double precision.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use csfma::core::{CsFmaFormat, CsFmaUnit, CsOperand};
use csfma::softfloat::{FpFormat, Round, SoftFloat};

fn main() {
    // Build the paper's FCS-FMA (Fig. 11): full carry-save mantissas,
    // 29-digit blocks, early leading-zero anticipation, 3 cycles @ 200 MHz.
    let unit = CsFmaUnit::new(CsFmaFormat::FCS_29_LZA);
    let fmt = *unit.format();
    println!("unit: {}", fmt.name);
    println!(
        "  mantissa {} digits in {} blocks, window {} digits, {}:1 result mux",
        fmt.mant_bits(),
        fmt.mant_blocks,
        fmt.window_bits(),
        fmt.mux_ways()
    );

    // Evaluate x = ((a + b1*c1) + b2*c2) + b3*c3 without any intermediate
    // normalization or rounding: values stay in the carry-save transport
    // format between the chained units (Sec. III-C).
    let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);
    let a = CsOperand::from_ieee(&sf(0.1), fmt);
    let terms = [
        (3.7, 0.21),
        (-1.9, std::f64::consts::SQRT_2),
        (0.333333333333, -2.5),
    ];

    let mut acc = a;
    for (b, c) in terms {
        let c_op = CsOperand::from_ieee(&sf(c), fmt);
        acc = unit.fma(&acc, &sf(b), &c_op);
    }
    let fused = acc.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64();

    // the same chain with discrete double operators (each step rounds)
    let mut plain = 0.1f64;
    for (b, c) in terms {
        plain += b * c;
    }
    // and the exact value for reference
    let exact = acc.exact_value().to_f64_lossy();

    println!("\nfused chain   = {fused:.17}");
    println!("discrete f64  = {plain:.17}");
    println!("exact         = {exact:.17}");
    println!(
        "fused error   = {:.3e}, discrete error = {:.3e}",
        (fused - exact).abs(),
        (plain - exact).abs()
    );
}
