//! Offline stand-in for `libfuzzer-sys`: same `fuzz_target!` surface,
//! no LLVM runtime. `cargo-fuzz` and its instrumentation toolchain are
//! not available in this environment, so the macro expands to a plain
//! `main` that
//!
//! 1. replays every corpus file passed on the command line (files or
//!    directories, recursively), then
//! 2. drives `FUZZ_ITERS` pseudo-random byte buffers (default 256) from
//!    a deterministic generator seeded by `FUZZ_SEED` (default 0x5eed),
//!    mutating replayed corpus bytes when a corpus was given and using
//!    raw random bytes otherwise.
//!
//! Any panic in the target body aborts the process with a non-zero
//! status, which is what ci.sh checks for. A crashing input can be
//! reproduced by writing the bytes to a file and passing its path.
//! Targets written against this stub run unmodified under the real
//! `cargo fuzz` on a machine that has it.

/// splitmix64 — deterministic, seedable, good enough to mutate bytes.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Collect corpus inputs from a path (one file, or a directory walked
/// recursively in sorted order so runs are reproducible).
pub fn collect_corpus(path: &std::path::Path, out: &mut Vec<Vec<u8>>) {
    if path.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(path)
            .unwrap_or_else(|e| panic!("read corpus dir {}: {e}", path.display()))
            .map(|e| e.expect("dir entry").path())
            .collect();
        entries.sort();
        for entry in entries {
            collect_corpus(&entry, out);
        }
    } else {
        out.push(
            std::fs::read(path).unwrap_or_else(|e| panic!("read corpus {}: {e}", path.display())),
        );
    }
}

/// Derive a new input by mutating a corpus seed: byte flips, truncation,
/// duplication, splices of random bytes.
pub fn mutate(seed: &[u8], rng: &mut Rng) -> Vec<u8> {
    let mut buf = seed.to_vec();
    for _ in 0..(rng.next() % 8 + 1) {
        match rng.next() % 4 {
            0 if !buf.is_empty() => {
                // flip a byte
                let i = (rng.next() as usize) % buf.len();
                buf[i] = rng.next() as u8;
            }
            1 if !buf.is_empty() => {
                // truncate
                let i = (rng.next() as usize) % buf.len();
                buf.truncate(i);
            }
            2 => {
                // insert random bytes
                let i = (rng.next() as usize) % (buf.len() + 1);
                let n = (rng.next() % 8) as usize;
                for k in 0..n {
                    buf.insert(i + k, rng.next() as u8);
                }
            }
            _ => {
                // duplicate a slice to the end
                if !buf.is_empty() {
                    let i = (rng.next() as usize) % buf.len();
                    let j = i + ((rng.next() as usize) % (buf.len() - i));
                    let slice: Vec<u8> = buf[i..j].to_vec();
                    buf.extend_from_slice(&slice);
                }
            }
        }
    }
    buf
}

pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[macro_export]
macro_rules! fuzz_target {
    (|$data:ident: &[u8]| $body:block) => {
        fn fuzz_one($data: &[u8]) $body

        fn main() {
            let mut corpus: Vec<Vec<u8>> = Vec::new();
            for arg in std::env::args().skip(1) {
                $crate::collect_corpus(std::path::Path::new(&arg), &mut corpus);
            }
            for bytes in &corpus {
                fuzz_one(bytes);
            }
            let iters = $crate::env_u64("FUZZ_ITERS", 256);
            let mut rng = $crate::Rng::new($crate::env_u64("FUZZ_SEED", 0x5eed));
            for i in 0..iters {
                let input = if corpus.is_empty() {
                    let len = (rng.next() % 512) as usize;
                    (0..len).map(|_| rng.next() as u8).collect()
                } else {
                    let seed = &corpus[(i as usize) % corpus.len()];
                    $crate::mutate(seed, &mut rng)
                };
                fuzz_one(&input);
            }
            eprintln!(
                "fuzz: {} corpus + {} generated inputs, no panics",
                corpus.len(),
                iters
            );
        }
    };
}
