//! Parser / printer round-trip target.
//!
//! Any byte soup must either fail to parse with a positioned error or
//! yield a graph whose `to_source` print reparses to the **same
//! dataflow**: identical input-name set, identical output list, and
//! bit-identical `eval_f64` results on deterministic stimulus. Found
//! the `inf`-literal and temp-name-shadowing printer bugs (now pinned
//! as regression tests in `crates/hls/src/printer.rs`).

use csfma_hls::interp::eval_f64;
use csfma_hls::{parse_program, to_source};
use libfuzzer_sys::fuzz_target;
use std::collections::{HashMap, HashSet};

fuzz_target!(|data: &[u8]| {
    let src = String::from_utf8_lossy(data);
    let Ok(g) = parse_program(&src) else {
        return; // rejection with a structured error is a fine outcome
    };

    let printed = to_source(&g);
    let g2 = parse_program(&printed).unwrap_or_else(|e| {
        panic!("print not reparseable: {e}\nsource: {src:?}\nprint:\n{printed}")
    });

    // `in` declarations pin input *order* but the printer intentionally
    // emits first-use order, so compare names as a set
    let names = |g: &csfma_hls::Cdfg| -> HashSet<String> {
        g.nodes()
            .iter()
            .filter_map(|n| match &n.op {
                csfma_hls::Op::Input(name) => Some(name.clone()),
                _ => None,
            })
            .collect()
    };
    let outs = |g: &csfma_hls::Cdfg| -> Vec<String> {
        g.nodes()
            .iter()
            .filter_map(|n| match &n.op {
                csfma_hls::Op::Output(name) => Some(name.clone()),
                _ => None,
            })
            .collect()
    };
    assert_eq!(names(&g), names(&g2), "input set drifted:\n{printed}");
    assert_eq!(outs(&g), outs(&g2), "output list drifted:\n{printed}");

    // deterministic stimulus keyed by name, so declaration order is moot
    let vals: HashMap<String, f64> = names(&g)
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let h = n
                .bytes()
                .fold(0x9e37u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
            (n, (h % 1000) as f64 - 500.0 + i as f64 * 0.25)
        })
        .collect();
    let want = eval_f64(&g, &vals);
    let got = eval_f64(&g2, &vals);
    for (name, w) in &want {
        let v = got[name];
        assert!(
            v.to_bits() == w.to_bits() || (v.is_nan() && w.is_nan()),
            "output {name} drifted: {v:?} vs {w:?}\nsource: {src:?}\nprint:\n{printed}"
        );
    }
});
