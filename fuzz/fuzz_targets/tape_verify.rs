//! Tape translation validator target.
//!
//! Any byte soup that parses (optionally with `in x [lo, hi];` range
//! declarations) must compile — optimizer on and off, unfused and fused
//! both carry-save flavors — to a tape the `T*` translation validator
//! accepts with **zero diagnostics**, and the `R*` value-range pass
//! must never panic on the declared bounds. A finding here is either a
//! miscompilation or a validator false positive; both are bugs.

use csfma_hls::{
    compile_with_options, fuse_critical_paths, lint_ranges, parse_program_with_ranges, verify_tape,
    CompileOptions, FmaKind, FusionConfig,
};
use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    let src = String::from_utf8_lossy(data);
    let Ok((g, decls)) = parse_program_with_ranges(&src) else {
        return; // rejection with a structured error is a fine outcome
    };

    // the range pass must terminate without panicking on any bounds,
    // valid or not (R003 is the structured outcome for bad ones)
    let _ = lint_ranges(&g, &decls);

    let graphs = [
        g.clone(),
        fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused,
        fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs)).fused,
    ];
    for g in &graphs {
        for optimize in [false, true] {
            let opts = CompileOptions {
                optimize,
                ..CompileOptions::default()
            };
            let Ok(tape) = compile_with_options(g, opts) else {
                continue; // structured compile errors are a fine outcome
            };
            let diags = verify_tape(&tape, g);
            assert!(
                diags.is_empty(),
                "real pipeline tape failed translation validation \
                 (opt={optimize}): {diags:?}\nsource: {src:?}"
            );
        }
    }
});
