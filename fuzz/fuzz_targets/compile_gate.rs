//! Compile-gate robustness target.
//!
//! Decode the input bytes into an arbitrary — frequently malformed —
//! CDFG built with `push_unchecked` (wrong arities, forward and
//! self-references, out-of-range argument indices, domain clashes), and
//! require `compile` to return `Ok` or a structured `CompileError`
//! without ever panicking. On `Ok`, the tape must also survive a
//! one-row evaluation on both backends: the gate admitting a graph is a
//! promise the engine can run it.

use csfma_hls::{compile, Cdfg, FmaKind, Op, TapeBackend};
use libfuzzer_sys::fuzz_target;

/// Byte-stream cursor: every decode consumes input and defaults to 0 at
/// the end, so any prefix of any input is a valid program description.
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn u8(&mut self) -> u8 {
        let v = self.b.get(self.i).copied().unwrap_or(0);
        self.i += 1;
        v
    }

    fn u64(&mut self) -> u64 {
        let mut v = 0u64;
        for _ in 0..8 {
            v = (v << 8) | self.u8() as u64;
        }
        v
    }
}

fuzz_target!(|data: &[u8]| {
    let mut cur = Cur { b: data, i: 0 };
    let mut g = Cdfg::new();
    let n_nodes = (cur.u8() as usize % 48) + 1;
    for id in 0..n_nodes {
        let pick = cur.u8();
        let kind = if cur.u8().is_multiple_of(2) {
            FmaKind::Pcs
        } else {
            FmaKind::Fcs
        };
        let op = match pick % 11 {
            0 => Op::Input(format!("i{}", cur.u8() % 8)),
            1 => Op::Const(f64::from_bits(cur.u64())),
            2 => Op::Add,
            3 => Op::Sub,
            4 => Op::Mul,
            5 => Op::Div,
            6 => Op::Neg,
            7 => Op::Fma {
                kind,
                negate_b: cur.u8() % 2 == 1,
            },
            8 => Op::IeeeToCs(kind),
            9 => Op::CsToIeee(kind),
            _ => Op::Output(format!("o{}", cur.u8() % 8)),
        };
        // arg count frequently diverges from the op's arity, and indices
        // roam past the current frontier (self, forward, out of range)
        let n_args = cur.u8() as usize % 4;
        let args: Vec<usize> = (0..n_args).map(|_| cur.u8() as usize % (id + 3)).collect();
        g.push_unchecked(op, args);
    }

    match compile(&g) {
        Err(e) => {
            // refusals must render and carry at least one diagnostic
            assert!(!e.diagnostics.is_empty());
            let _ = e.to_string();
        }
        Ok(tape) => {
            let row = vec![1.5f64; tape.num_inputs()];
            let mut out = vec![0.0f64; tape.num_outputs()];
            let mut scratch = tape.scratch();
            tape.eval_row(TapeBackend::BitAccurate, &row, &mut out, &mut scratch);
            tape.eval_row(TapeBackend::F64, &row, &mut out, &mut scratch);
        }
    }
});
