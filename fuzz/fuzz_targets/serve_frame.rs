//! Wire-frame codec target.
//!
//! `csfma-serve`'s read loop feeds attacker-controlled bytes straight
//! into `frame::decode`, so the codec's contract is load-bearing for
//! the whole service boundary (docs/SERVE.md): any byte soup must
//! either decode, ask for more bytes, or fail with a structured
//! `FrameError` — never panic, never over-consume. And decoding is a
//! fixed point of encoding: whatever decodes must re-encode to the
//! exact bytes consumed, bit-for-bit (NaN payloads included), so a
//! proxy can re-frame traffic without perturbing digests.

use csfma_serve::frame::{decode, encode, DEFAULT_MAX_FRAME_LEN};
use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    // no panic on arbitrary bytes, across tight and default frame caps
    // (the cap check must fire from the 4-byte prefix alone)
    for cap in [0usize, 16, 4096, DEFAULT_MAX_FRAME_LEN] {
        let _ = decode(data, cap);
    }

    let Ok(Some((frame, consumed))) = decode(data, DEFAULT_MAX_FRAME_LEN) else {
        return; // partial or structured rejection — both fine outcomes
    };
    assert!(
        consumed <= data.len(),
        "decode consumed {consumed} of {} bytes",
        data.len()
    );

    // the codec has one canonical encoding: re-encoding the decoded
    // frame must reproduce the consumed bytes exactly (f64 row data
    // round-trips through to_le_bytes/from_le_bytes bit-exactly, so
    // this holds even for NaN payloads where Frame's PartialEq would
    // say NaN != NaN)
    let bytes = encode(&frame);
    assert_eq!(
        bytes,
        &data[..consumed],
        "decode/encode is not a fixed point for {frame:?}"
    );

    // and the re-encoded bytes decode again, consuming themselves whole
    let (_, n) = decode(&bytes, DEFAULT_MAX_FRAME_LEN)
        .expect("re-encoded frame decodes")
        .expect("re-encoded frame is complete");
    assert_eq!(n, bytes.len(), "re-decode left trailing bytes");
});
