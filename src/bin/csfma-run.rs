//! `csfma-run` — compile a textual datapath to an instruction tape and
//! execute it over a batch of input vectors.
//!
//! The front half mirrors `csfma-lint` (parse, optionally fuse); the
//! back half is the batch execution engine: `csfma_hls::compile_cached`
//! lowers the graph once, then `Tape::eval_batch` streams pseudo-random
//! input rows through the chosen backend with deterministic chunked
//! parallelism. Because generation is seeded and the engine is
//! thread-invariant, the printed output digest is reproducible down to
//! the bit on any machine with the same backend.
//!
//! ```text
//! usage: csfma-run [options] [FILE]...
//!
//!   FILE           program file; '-' or none reads stdin
//!   --many         treat every positional FILE as an independent request
//!                  and evaluate them all through one `eval_many` call
//!                  (shared stealing deque; per-file digest lines)
//!   --backend B    f64 | bit | oracle | jit   evaluator semantics
//!                  (default: bit); `jit` runs native code on the IEEE
//!                  fast path and bails per-row to the bit-accurate
//!                  interpreter, so its digests match `bit` exactly
//!   --fuse KIND    pcs | fcs        run the Fig. 12 fusion pass first
//!   --batch N      evaluate N random input rows (default: 1)
//!   --threads T    worker threads for the batch (default: 1)
//!   --seed S       stimulus RNG seed (default: 42)
//!   --range LO HI  uniform stimulus range (default: -1000 1000)
//!   --fault-seed N run the robust self-checking executor with a seeded
//!                  demo fault campaign (see DESIGN.md §10)
//!   --no-opt       compile without the post-gate tape optimizer
//!   --verify-tape  run the T* tape translation validator on the compiled
//!                  tape and refuse to execute a tape that fails it
//!   --promote-ranges  promote IEEE instructions whose `in x [lo, hi];`
//!                  bounds prove the soft-float guard can never fire to
//!                  the raw host fast path (bit-identical by construction;
//!                  stimulus always respects declared bounds)
//!   --profile[=json] append a stage/counter breakdown of the run
//!                  (parse → gate → optimize → lower → codegen → eval,
//!                  tape-cache, jit and fault counters); `=json` emits
//!                  the machine-readable PipelineReport document
//!                  instead of text
//!   --dump-jit     print the native code listing the JIT emitted for
//!                  this tape (or why no module could be built); see
//!                  docs/JIT.md for how to read it
//!   --verbose      print the compiled tape before running
//! ```
//!
//! Exit status: 0 on success, 1 when compilation is refused by the
//! static checker, 2 on usage/IO/parse errors, 3 when the robust
//! executor observed faults during execution (detections, panics, or
//! quarantined rows — the `BatchReport` summary goes to stderr).

use std::io::Read as _;
use std::process::ExitCode;

use csfma_core::fault::{FaultPlan, FaultSite, FaultSpec};
use csfma_hls::{
    compile_cached_with_profiled, eval_many, fuse_critical_paths, lint_ranges,
    parse_program_with_ranges, promotion_mask, verify_tape, CompileOptions, EvalManyRequest,
    FmaKind, FusionConfig, Instr, Op, Profiler, RobustOptions, RowOutcome, Tape, TapeBackend,
};
use csfma_verify::{has_errors, render_report, Diagnostic, RangeDecl, Rule, Span};
use rand::{rngs::StdRng, Rng, SeedableRng};

#[derive(Clone, Copy, PartialEq, Eq)]
enum ProfileFormat {
    Text,
    Json,
}

struct Options {
    file: Option<String>,
    extra_files: Vec<String>,
    many: bool,
    backend: TapeBackend,
    fuse: Option<FmaKind>,
    batch: usize,
    threads: usize,
    seed: u64,
    lo: f64,
    hi: f64,
    optimize: bool,
    verbose: bool,
    fault_seed: Option<u64>,
    profile: Option<ProfileFormat>,
    verify: bool,
    promote: bool,
    dump_jit: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: csfma-run [--backend f64|bit|oracle|jit] [--fuse pcs|fcs] [--batch N] \
         [--threads T] [--seed S] [--range LO HI] [--fault-seed N] [--no-opt] \
         [--verify-tape] [--promote-ranges] [--profile[=json]] [--dump-jit] \
         [--verbose] [--many] [FILE]..."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        extra_files: Vec::new(),
        many: false,
        backend: TapeBackend::BitAccurate,
        fuse: None,
        batch: 1,
        threads: 1,
        seed: 42,
        lo: -1000.0,
        hi: 1000.0,
        optimize: true,
        verbose: false,
        fault_seed: None,
        profile: None,
        verify: false,
        promote: false,
        dump_jit: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> f64 {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => n,
                None => usage(),
            }
        };
        match arg.as_str() {
            "--backend" => {
                opts.backend = match args.next().as_deref() {
                    Some("f64") => TapeBackend::F64,
                    Some("bit") => TapeBackend::BitAccurate,
                    Some("oracle") => TapeBackend::Oracle,
                    Some("jit") => TapeBackend::Jit,
                    _ => usage(),
                }
            }
            "--fuse" => {
                opts.fuse = match args.next().as_deref() {
                    Some("pcs") => Some(FmaKind::Pcs),
                    Some("fcs") => Some(FmaKind::Fcs),
                    _ => usage(),
                }
            }
            "--batch" => opts.batch = num(&mut args) as usize,
            "--threads" => opts.threads = (num(&mut args) as usize).max(1),
            "--seed" => opts.seed = num(&mut args) as u64,
            "--range" => {
                opts.lo = num(&mut args);
                opts.hi = num(&mut args);
                if opts.lo >= opts.hi || opts.lo.is_nan() || opts.hi.is_nan() {
                    usage();
                }
            }
            "--fault-seed" => opts.fault_seed = Some(num(&mut args) as u64),
            "--no-opt" => opts.optimize = false,
            "--many" => opts.many = true,
            "--verify-tape" => opts.verify = true,
            "--promote-ranges" => opts.promote = true,
            "--dump-jit" => opts.dump_jit = true,
            "--profile" => opts.profile = Some(ProfileFormat::Text),
            "--profile=json" => opts.profile = Some(ProfileFormat::Json),
            "--verbose" => opts.verbose = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with("--") => usage(),
            _ if opts.file.is_none() => opts.file = Some(arg),
            _ => opts.extra_files.push(arg),
        }
    }
    if opts.batch == 0 || (!opts.many && !opts.extra_files.is_empty()) {
        usage();
    }
    opts
}

/// FNV-1a over the output bit patterns — the reproducibility receipt.
fn digest(values: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn describe(tape: &Tape) {
    println!(
        "compiled: {} instrs over {} source nodes | {} inputs -> {} outputs | \
         regs: {} f64 + {} cs | fingerprint {:#018x}",
        tape.instrs().len(),
        tape.source_nodes(),
        tape.num_inputs(),
        tape.num_outputs(),
        tape.num_f64_regs(),
        tape.num_cs_regs(),
        tape.fingerprint(),
    );
    let o = tape.opt_stats();
    if o.consts_folded + o.cse_merged + o.dead_removed + o.dead_slots_removed > 0 {
        println!(
            "optimized: {} -> {} nodes | folded {} | cse {} | dead {} | dead slots {} | {:.1} us",
            o.nodes_before,
            o.nodes_after,
            o.consts_folded,
            o.cse_merged,
            o.dead_removed,
            o.dead_slots_removed,
            o.optimize_us,
        );
    }
}

fn dump(tape: &Tape) {
    for (i, ins) in tape.instrs().iter().enumerate() {
        let text = match ins {
            Instr::LoadInput { dst, input } => {
                format!("r{dst} = input {:?}", tape.input_names()[*input as usize])
            }
            Instr::LoadConst { dst, idx } => format!("r{dst} = const #{idx}"),
            Instr::Add { dst, a, b } => format!("r{dst} = r{a} + r{b}"),
            Instr::Sub { dst, a, b } => format!("r{dst} = r{a} - r{b}"),
            Instr::Mul { dst, a, b } => format!("r{dst} = r{a} * r{b}"),
            Instr::Div { dst, a, b } => format!("r{dst} = r{a} / r{b}"),
            Instr::Neg { dst, a } => format!("r{dst} = -r{a}"),
            Instr::Fma {
                kind,
                negate_b,
                dst,
                acc,
                b,
                mulc,
            } => {
                let sign = if *negate_b { "-" } else { "" };
                format!("c{dst} = {kind:?}-fma(c{acc}, {sign}r{b}, c{mulc})")
            }
            Instr::IeeeToCs { kind, dst, src } => format!("c{dst} = to_{kind:?}(r{src})"),
            Instr::CsToIeee { dst, src } => format!("r{dst} = to_ieee(c{src})"),
            Instr::Store { output, src } => {
                format!("out {:?} = r{src}", tape.output_names()[*output as usize])
            }
        };
        println!("  [{i:3}] {text}");
    }
}

/// Finish the profiler and, when `--profile` was given, emit the report:
/// the JSON document or the indented text tree on stdout, plus `O*`
/// observability diagnostics (compiled-out layer, unbalanced spans) on
/// stderr. A run without `--profile` finishes a disabled profiler — this
/// is free and prints nothing.
fn emit_profile(prof: Profiler, format: Option<ProfileFormat>) {
    let report = prof.finish();
    let Some(format) = format else { return };
    if !report.recorded {
        eprintln!(
            "csfma-run: {}",
            Diagnostic::warning(
                Rule::ObsDisabled,
                Span::Global,
                "profiling requested but the observability layer is compiled out; \
                 rebuild with the default `obs` feature",
            )
        );
    }
    for w in &report.warnings {
        eprintln!(
            "csfma-run: {}",
            Diagnostic::warning(Rule::ObsSpanImbalance, Span::Global, w.clone())
        );
    }
    match format {
        ProfileFormat::Json => println!("{}", report.to_json()),
        ProfileFormat::Text => print!("{report}"),
    }
}

/// `--many`: parse every positional file, build one request per file
/// (seeded stimulus, seed offset by file index) and push them all through
/// a single [`eval_many`] call. Per-file digest lines make the output a
/// reproducibility receipt per request; any compile failure is reported
/// against its file and turns the exit status to 1 without disturbing
/// the other requests.
fn run_many(opts: &Options) -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    files.extend(opts.file.iter().cloned());
    files.extend(opts.extra_files.iter().cloned());
    if files.is_empty() {
        usage();
    }
    let mut graphs = Vec::with_capacity(files.len());
    for f in &files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("csfma-run: {f}: {e}");
                return ExitCode::from(2);
            }
        };
        let (g, _) = match parse_program_with_ranges(&src) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("csfma-run: {f}: {e}");
                return ExitCode::from(2);
            }
        };
        let g = match opts.fuse {
            Some(kind) => fuse_critical_paths(&g, &FusionConfig::new(kind)).fused,
            None => g,
        };
        graphs.push(g);
    }
    let mut rows_by_req = Vec::with_capacity(graphs.len());
    for (i, (f, g)) in files.iter().zip(&graphs).enumerate() {
        let ni = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Input(_)))
            .count();
        if ni == 0 {
            eprintln!("csfma-run: {f}: constant graphs are not supported with --many");
            return ExitCode::from(2);
        }
        let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(i as u64));
        let rows: Vec<f64> = (0..opts.batch * ni)
            .map(|_| rng.gen_range(opts.lo..opts.hi))
            .collect();
        rows_by_req.push(rows);
    }
    let reqs: Vec<EvalManyRequest> = graphs
        .iter()
        .zip(&rows_by_req)
        .map(|(g, rows)| EvalManyRequest {
            graph: g,
            backend: opts.backend,
            rows,
            options: CompileOptions {
                optimize: opts.optimize,
                codegen: opts.backend == TapeBackend::Jit,
            },
        })
        .collect();
    let t0 = std::time::Instant::now();
    let results = eval_many(&reqs, opts.threads);
    let dt = t0.elapsed();
    let mut failed = false;
    for (f, res) in files.iter().zip(&results) {
        match res {
            Ok(out) => println!(
                "{f}: {} rows x {} output(s) | digest {:#018x}",
                opts.batch,
                out.tape.num_outputs(),
                digest(&out.outputs),
            ),
            Err(e) => {
                eprintln!("csfma-run: {f}: {e}");
                failed = true;
            }
        }
    }
    println!(
        "many: {} request(s) | backend {:?} | {} thread(s) | {:.3} ms total",
        reqs.len(),
        opts.backend,
        opts.threads,
        dt.as_secs_f64() * 1e3,
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    if opts.many {
        return run_many(&opts);
    }
    let mut prof = if opts.profile.is_some() {
        Profiler::new()
    } else {
        Profiler::disabled()
    };

    let src = match &opts.file {
        Some(f) if f != "-" => match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("csfma-run: {f}: {e}");
                return ExitCode::from(2);
            }
        },
        _ => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("csfma-run: cannot read stdin");
                return ExitCode::from(2);
            }
            buf
        }
    };

    let parse_tok = prof.enter("parse");
    let (g, decls) = match parse_program_with_ranges(&src) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("csfma-run: {e}");
            return ExitCode::from(2);
        }
    };
    let g = match opts.fuse {
        Some(kind) => fuse_critical_paths(&g, &FusionConfig::new(kind)).fused,
        None => g,
    };
    prof.exit(parse_tok);

    let tape = match compile_cached_with_profiled(
        &g,
        CompileOptions {
            optimize: opts.optimize,
            codegen: opts.backend == TapeBackend::Jit,
        },
        &mut prof,
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("csfma-run: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.verify {
        let diags = verify_tape(&tape, &g);
        if has_errors(&diags) {
            eprint!(
                "csfma-run: tape translation check failed\n{}",
                render_report(&diags)
            );
            return ExitCode::FAILURE;
        }
        println!(
            "tape verified: {} instruction(s), T* rules clean",
            tape.instrs().len()
        );
    }

    let tape = if opts.promote {
        // the promotion proof's hypothesis is the declared bounds; the
        // stimulus generator below respects them, so bit-identity to
        // the guarded backend is guaranteed by the R* analysis
        let report = lint_ranges(&g, &decls);
        let mask = promotion_mask(&tape, &report);
        let mut promoted = (*tape).clone();
        promoted.set_promoted(mask);
        println!(
            "promoted: {} of {} instruction(s) to the host fast path",
            promoted.promoted_count(),
            promoted.instrs().len()
        );
        std::sync::Arc::new(promoted)
    } else {
        tape
    };
    describe(&tape);
    if opts.verbose {
        dump(&tape);
    }
    if opts.dump_jit {
        match tape.jit_module() {
            Some(m) => {
                println!(
                    "jit module: {} semantics | {} native instr(s) | {} guard(s) | {} code byte(s)",
                    m.semantics(),
                    m.native_instr_count(),
                    m.guard_count(),
                    m.code_len(),
                );
                print!("{}", m.dump());
            }
            None if !csfma_hls::jit_available() => {
                println!(
                    "jit module: none (JIT unavailable on this platform or disabled via CSFMA_JIT)"
                );
            }
            None => match csfma_hls::jit_refusal(&tape) {
                Some(r) => println!("jit module: none ({r})"),
                None => println!("jit module: none (emitter refused this tape)"),
            },
        }
    }
    if tape.num_inputs() == 0 {
        // constant graph: a single row is the whole story
        let mut out = vec![0.0; tape.num_outputs()];
        tape.eval_row(opts.backend, &[], &mut out, &mut tape.scratch());
        for (name, v) in tape.output_names().iter().zip(&out) {
            println!("{name} = {v:?}");
        }
        emit_profile(prof, opts.profile);
        return ExitCode::SUCCESS;
    }

    let ni = tape.num_inputs();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    // declared `in x [lo, hi];` bounds override the global --range for
    // their input: stimulus must inhabit the hypothesis every
    // range-derived fact (and fast-path promotion) was proved under
    let spans: Vec<Option<(f64, f64)>> = tape
        .input_names()
        .iter()
        .map(|n| {
            decls
                .iter()
                .find(|d: &&RangeDecl| &d.name == n && d.lo <= d.hi)
                .map(|d| (d.lo, d.hi))
        })
        .collect();
    let rows: Vec<f64> = (0..opts.batch * ni)
        .map(|i| match spans[i % ni] {
            Some((lo, hi)) => rng.gen_range(lo..=hi),
            None => rng.gen_range(opts.lo..opts.hi),
        })
        .collect();

    // fault counters default to zero so every profile carries them; a
    // robust run below overwrites with the real tallies
    for c in [
        "fault_detections",
        "fault_chunk_panics",
        "fault_chunk_retries",
        "fault_rows_recovered",
        "fault_rows_quarantined",
    ] {
        prof.set_counter(c, 0.0);
    }

    let jit_rows0 = csfma_hls::profile::jit_rows();
    let jit_bail0 = csfma_hls::profile::jit_bailouts();
    let t0 = std::time::Instant::now();
    let (out, faulted) = match opts.fault_seed {
        None => (
            tape.eval_batch_profiled(opts.backend, &rows, opts.threads, &mut prof),
            false,
        ),
        Some(fseed) => {
            let plan = demo_fault_plan(fseed, opts.batch as u64);
            // injected ExecPanic faults are caught and recovered by the
            // robust executor; keep their backtraces off the terminal
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let (out, report) = tape.eval_batch_robust_profiled(
                opts.backend,
                &rows,
                &RobustOptions {
                    threads: opts.threads,
                    chunk_retries: 2,
                    fault: Some(&plan),
                },
                &mut prof,
            );
            std::panic::set_hook(default_hook);
            eprintln!(
                "fault campaign: seed {fseed}, {} fault(s) armed, {} strike(s)",
                plan.specs().len(),
                plan.total_fired(),
            );
            eprintln!("batch report: {report}");
            for (row, diag) in report.quarantined() {
                eprintln!("quarantined row {row}: {diag}");
            }
            let recovered = report
                .outcomes
                .iter()
                .filter(|o| matches!(o, RowOutcome::Recovered { .. }))
                .count();
            if recovered > 0 {
                eprintln!("{recovered} row(s) recovered bit-identically via the fallback ladder");
            }
            let faulted = report.has_faults();
            (out, faulted)
        }
    };
    let dt = t0.elapsed();

    // advisory only — the bailed rows were interpreted bit-exactly, the
    // run just did not get the native speedup it asked for. Silent when
    // the obs layer is compiled out (the counters stay zero).
    if opts.backend == TapeBackend::Jit {
        let jit_rows = csfma_hls::profile::jit_rows() - jit_rows0;
        let jit_bails = csfma_hls::profile::jit_bailouts() - jit_bail0;
        if jit_rows > 0 && jit_bails * 2 > jit_rows {
            eprintln!(
                "csfma-run: {}",
                Diagnostic::warning(
                    Rule::JitBailoutRate,
                    Span::Global,
                    format!(
                        "{jit_bails} of {jit_rows} row(s) bailed from the JIT to the \
                         interpreter (> the 50% advisory threshold); see docs/JIT.md"
                    ),
                )
            );
        }
    }

    // show the first row symbolically, then the digest of everything
    for (name, v) in tape.output_names().iter().zip(&out) {
        println!("row 0: {name} = {v:?}");
    }
    let per_row = dt.as_secs_f64() / opts.batch as f64;
    println!(
        "batch: {} rows | backend {:?} | {} thread(s) | {:.3} ms total, {:.3} us/row | digest {:#018x}",
        opts.batch,
        opts.backend,
        opts.threads,
        dt.as_secs_f64() * 1e3,
        per_row * 1e6,
        digest(&out),
    );
    emit_profile(prof, opts.profile);
    if faulted {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// The `--fault-seed` demo campaign: one single-bit transient fault about
/// every 13th row, cycling through the mantissa-datapath sites plus the
/// exponent path and an executor panic — enough to exercise every rung
/// of the degradation ladder on a modest batch.
fn demo_fault_plan(seed: u64, rows: u64) -> FaultPlan {
    const SITES: [FaultSite; 6] = [
        FaultSite::MulSum,
        FaultSite::MulCarry,
        FaultSite::PcsCarry,
        FaultSite::BlockSelect,
        FaultSite::ExpField,
        FaultSite::ExecPanic,
    ];
    let mut plan = FaultPlan::new(seed);
    let mut row = seed % 13;
    let mut k = seed as usize;
    while row < rows {
        plan = plan.with_fault(FaultSpec::transient(SITES[k % SITES.len()], row));
        k += 1;
        row += 13;
    }
    plan
}
