//! `csfma-serve` — the batch-evaluation server as a command.
//!
//! Binds a TCP listener, prints `listening on <addr>` (so scripts can
//! scrape the ephemeral port), installs SIGTERM/SIGINT graceful drain,
//! and runs the accept loop to completion. On drain it prints the final
//! stats JSON to stdout and exits 0.
//!
//! ```text
//! usage: csfma-serve [options]
//!
//!   --addr A           bind address (default: 127.0.0.1:0)
//!   --workers N        robust-executor threads per request (default: 2)
//!   --max-inflight N   concurrent requests before queueing (default: 4)
//!   --max-queue N      bounded admission queue length (default: 8)
//!   --deadline-ms N    default deadline for SUBMITs that carry 0
//!                      (default: 10000)
//!   --fault-seed N     inject a seeded transient-fault sprinkle into
//!                      every request (testing/load drills)
//!   --self-test        bind, serve one in-process round trip (digest
//!                      checked against a local eval), drain, exit
//! ```
//!
//! Exit status: 0 on clean drain / passing self-test, 1 on a failing
//! self-test, 2 on usage errors.

use std::process::ExitCode;
use std::time::Duration;

use csfma_serve::frame::backend;
use csfma_serve::{Client, Frame, ServeConfig, Server};

struct Options {
    cfg: ServeConfig,
    self_test: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = value(&mut args, "--addr")?,
            "--workers" => {
                cfg.workers = value(&mut args, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-inflight" => {
                cfg.max_inflight = value(&mut args, "--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?
            }
            "--max-queue" => {
                cfg.max_queue = value(&mut args, "--max-queue")?
                    .parse()
                    .map_err(|e| format!("--max-queue: {e}"))?
            }
            "--deadline-ms" => {
                let ms: u64 = value(&mut args, "--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                cfg.default_deadline = Duration::from_millis(ms);
            }
            "--fault-seed" => {
                cfg.fault_seed = Some(
                    value(&mut args, "--fault-seed")?
                        .parse()
                        .map_err(|e| format!("--fault-seed: {e}"))?,
                )
            }
            "--self-test" => self_test = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Options { cfg, self_test })
}

fn self_test(server: Server) -> ExitCode {
    const GRAPH: &str = "x1 = a*b + c;\nout y = x1*x1 + a;";
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("self-test: no local addr: {e}");
            return ExitCode::from(1);
        }
    };
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    let verdict = (|| -> Result<(), String> {
        let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
        let rows = 96usize;
        let data: Vec<f64> = (0..rows * 3)
            .map(|i| (i % 41) as f64 * 0.5 - 10.0)
            .collect();
        let reply = c
            .submit(backend::BIT, 0, rows as u32, GRAPH, &data)
            .map_err(|e| e.to_string())?;
        let Frame::Result {
            digest,
            rows: got_rows,
            quarantined,
            data: out,
        } = reply
        else {
            return Err(format!("expected RESULT, got {reply:?}"));
        };
        if got_rows as usize != rows || quarantined != 0 {
            return Err(format!("rows={got_rows} quarantined={quarantined}"));
        }
        let g = csfma_hls::parse_program(GRAPH).map_err(|e| e.to_string())?;
        let tape = csfma_hls::compile_cached(&g).map_err(|e| e.to_string())?;
        let local = tape.eval_batch(csfma_hls::TapeBackend::BitAccurate, &data, 1);
        if csfma_serve::digest(&local) != digest
            || !out
                .iter()
                .zip(local.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits())
        {
            return Err("served digest diverged from local evaluation".into());
        }
        c.drain().map_err(|e| e.to_string())?;
        Ok(())
    })();
    handle.drain();
    let stats = runner.join().unwrap_or_default();
    match verdict {
        Ok(()) => {
            println!("self-test ok: {}", stats.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("self-test failed: {e}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("csfma-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(opts.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("csfma-serve: bind failed: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.self_test {
        return self_test(server);
    }
    match server.local_addr() {
        Ok(a) => {
            // stdout is block-buffered under a pipe; scripts scrape the
            // port from this line, so push it out now
            use std::io::Write as _;
            println!("listening on {a}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => eprintln!("csfma-serve: local addr unavailable: {e}"),
    }
    #[cfg(unix)]
    csfma_serve::install_signal_drain();
    let stats = server.run();
    println!("{}", stats.to_json());
    ExitCode::SUCCESS
}
