//! `csfma-lint` — static checker CLI for textual datapaths.
//!
//! Parses straight-line datapath programs (the `csfma-hls` expression
//! language), runs the `csfma-verify` passes, and renders a diagnostic
//! report. Exit status 1 when any error-severity finding exists, so the
//! tool slots into CI.
//!
//! ```text
//! usage: csfma-lint [options] [FILE...]
//!
//!   FILE          program file(s) to lint; '-' or none reads stdin
//!   --fuse KIND   run the Fig. 12 fusion pass (pcs|fcs) and lint the result
//!   --mul N       declare N multiplier units (N >= 1) for the hazard check
//!   --add N       declare N adder units
//!   --div N       declare N divider units
//!   --fma N       declare N carry-save FMA units
//!   --formats     also lint the standard carry-save FMA formats
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use csfma_hls::{
    asap_schedule, fuse_critical_paths, list_schedule, parse_program, FmaKind, FusionConfig,
    OpTiming, ResourceLimits,
};
use csfma_verify::{check_standard_formats, has_errors, render_report, Diagnostic};

struct Options {
    files: Vec<String>,
    fuse: Option<FmaKind>,
    limits: ResourceLimits,
    formats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: csfma-lint [--fuse pcs|fcs] [--mul N] [--add N] [--div N] \
         [--fma N] [--formats] [FILE...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        files: Vec::new(),
        fuse: None,
        limits: ResourceLimits::default(),
        formats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let count_for = |slot: &mut Option<usize>, args: &mut dyn Iterator<Item = String>| {
            // 0 units of a demanded resource makes every schedule
            // infeasible — reject it here instead of diverging later
            match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => *slot = Some(n),
                _ => {
                    eprintln!("csfma-lint: resource counts must be >= 1");
                    usage()
                }
            }
        };
        match arg.as_str() {
            "--fuse" => {
                opts.fuse = match args.next().as_deref() {
                    Some("pcs") => Some(FmaKind::Pcs),
                    Some("fcs") => Some(FmaKind::Fcs),
                    _ => usage(),
                }
            }
            "--mul" => count_for(&mut opts.limits.mul, &mut args),
            "--add" => count_for(&mut opts.limits.add, &mut args),
            "--div" => count_for(&mut opts.limits.div, &mut args),
            "--fma" => count_for(&mut opts.limits.fma, &mut args),
            "--formats" => opts.formats = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with("--") => usage(),
            _ => opts.files.push(arg),
        }
    }
    opts
}

/// Lint one source: parse, optionally fuse, run the dataflow and schedule
/// passes. Returns all findings.
fn lint_source(src: &str, opts: &Options) -> Vec<Diagnostic> {
    let t = OpTiming::default();
    let g = match parse_program(src) {
        Ok(g) => g,
        Err(e) => return vec![e.to_diagnostic()],
    };
    let g = match opts.fuse {
        Some(kind) => fuse_critical_paths(&g, &FusionConfig::new(kind)).fused,
        None => g,
    };
    let mut diags = csfma_hls::lint_dataflow(&g, &t);
    let limited = [
        opts.limits.mul,
        opts.limits.add,
        opts.limits.div,
        opts.limits.fma,
    ]
    .iter()
    .any(Option::is_some);
    // under declared resource limits, lint the list schedule those limits
    // produce; otherwise lint the unconstrained dataflow schedule
    let s = if limited {
        list_schedule(&g, &t, &opts.limits)
    } else {
        asap_schedule(&g, &t)
    };
    diags.extend(csfma_hls::lint_schedule(&g, &t, &s, &opts.limits));
    diags
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut failed = false;

    // `--formats` alone checks only the format descriptions; reading
    // stdin too would hang an interactive `csfma-lint --formats`. Pass
    // '-' explicitly to lint a piped program as well.
    let sources: Vec<(String, String)> = if opts.files.is_empty() && opts.formats {
        Vec::new()
    } else if opts.files.is_empty() {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("csfma-lint: cannot read stdin");
            return ExitCode::from(2);
        }
        vec![("<stdin>".to_string(), buf)]
    } else {
        opts.files
            .iter()
            .map(|f| {
                if f == "-" {
                    let mut buf = String::new();
                    let _ = std::io::stdin().read_to_string(&mut buf);
                    ("<stdin>".to_string(), buf)
                } else {
                    match std::fs::read_to_string(f) {
                        Ok(s) => (f.clone(), s),
                        Err(e) => {
                            eprintln!("csfma-lint: {f}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
            })
            .collect()
    };

    for (name, src) in &sources {
        let diags = lint_source(src, &opts);
        if diags.is_empty() {
            println!("{name}: clean");
        } else {
            print!("{name}:\n{}", render_report(&diags));
            failed |= has_errors(&diags);
        }
    }

    if opts.formats {
        let diags = check_standard_formats();
        if diags.is_empty() {
            println!("standard formats: clean");
        } else {
            print!("standard formats:\n{}", render_report(&diags));
            failed |= has_errors(&diags);
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
