//! `csfma-lint` — static checker CLI for textual datapaths.
//!
//! Parses straight-line datapath programs (the `csfma-hls` expression
//! language), runs the `csfma-verify` passes, and renders a diagnostic
//! report.
//!
//! ```text
//! usage: csfma-lint [options] [FILE...]
//!
//!   FILE             program file(s) to lint; '-' or none reads stdin
//!   --fuse KIND      run the Fig. 12 fusion pass (pcs|fcs) and lint the result
//!   --mul N          declare N multiplier units (N >= 1) for the hazard check
//!   --add N          declare N adder units
//!   --div N          declare N divider units
//!   --fma N          declare N carry-save FMA units
//!   --formats        also lint the standard carry-save FMA formats
//!   --tape           compile (optimizer on and off) and run the T* tape
//!                    translation validator on the result
//!   --jit            with --tape: also run the J* native-codegen lint
//!                    (J001 warns when a `--backend jit` run of this tape
//!                    would bail >50% of rows to the interpreter)
//!   --ranges         run the R* value-range analysis over `in x [lo, hi];`
//!                    bounds and print the datapath-specific shift-bound proof
//!   --json           emit one RFC 8259 JSON array of all findings instead of
//!                    the human-readable report
//!   --deny-warnings  exit 1 on any finding, warnings included
//! ```
//!
//! Exit status contract (stable, for CI): **0** — no findings (with
//! `--deny-warnings`: not even warnings); **1** — at least one
//! error-severity finding (with `--deny-warnings`: any finding);
//! **2** — usage, I/O or argument errors.

use std::io::Read as _;
use std::process::ExitCode;

use csfma_hls::{
    asap_schedule, compile_with_options, fuse_critical_paths, interp::format_of, lint_ranges,
    list_schedule, parse_program_with_ranges, verify_tape, CompileOptions, FmaKind, FusionConfig,
    OpTiming, ResourceLimits,
};
use csfma_verify::{
    check_standard_formats, has_errors, render_json, render_report, window_plan, Diagnostic,
};

struct Options {
    files: Vec<String>,
    fuse: Option<FmaKind>,
    limits: ResourceLimits,
    formats: bool,
    tape: bool,
    jit: bool,
    ranges: bool,
    json: bool,
    deny_warnings: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: csfma-lint [--fuse pcs|fcs] [--mul N] [--add N] [--div N] \
         [--fma N] [--formats] [--tape] [--jit] [--ranges] [--json] \
         [--deny-warnings] [FILE...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        files: Vec::new(),
        fuse: None,
        limits: ResourceLimits::default(),
        formats: false,
        tape: false,
        jit: false,
        ranges: false,
        json: false,
        deny_warnings: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let count_for = |slot: &mut Option<usize>, args: &mut dyn Iterator<Item = String>| {
            // 0 units of a demanded resource makes every schedule
            // infeasible — reject it here instead of diverging later
            match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => *slot = Some(n),
                _ => {
                    eprintln!("csfma-lint: resource counts must be >= 1");
                    usage()
                }
            }
        };
        match arg.as_str() {
            "--fuse" => {
                opts.fuse = match args.next().as_deref() {
                    Some("pcs") => Some(FmaKind::Pcs),
                    Some("fcs") => Some(FmaKind::Fcs),
                    _ => usage(),
                }
            }
            "--mul" => count_for(&mut opts.limits.mul, &mut args),
            "--add" => count_for(&mut opts.limits.add, &mut args),
            "--div" => count_for(&mut opts.limits.div, &mut args),
            "--fma" => count_for(&mut opts.limits.fma, &mut args),
            "--formats" => opts.formats = true,
            "--tape" => opts.tape = true,
            "--jit" => opts.jit = true,
            "--ranges" => opts.ranges = true,
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with("--") => usage(),
            _ => opts.files.push(arg),
        }
    }
    opts
}

/// Lint one source: parse, optionally fuse, run the dataflow and
/// schedule passes, then (on request) the tape translation validator
/// and the value-range analysis. Returns all findings plus the
/// human-readable range-proof summary line, if one was computed.
fn lint_source(src: &str, opts: &Options) -> (Vec<Diagnostic>, Option<String>) {
    let t = OpTiming::default();
    let (g, decls) = match parse_program_with_ranges(src) {
        Ok(pair) => pair,
        Err(e) => return (vec![e.to_diagnostic()], None),
    };
    let g = match opts.fuse {
        Some(kind) => fuse_critical_paths(&g, &FusionConfig::new(kind)).fused,
        None => g,
    };
    let mut diags = csfma_hls::lint_dataflow(&g, &t);
    let limited = [
        opts.limits.mul,
        opts.limits.add,
        opts.limits.div,
        opts.limits.fma,
    ]
    .iter()
    .any(Option::is_some);
    // under declared resource limits, lint the list schedule those limits
    // produce; otherwise lint the unconstrained dataflow schedule
    let s = if limited {
        list_schedule(&g, &t, &opts.limits)
    } else {
        asap_schedule(&g, &t)
    };
    diags.extend(csfma_hls::lint_schedule(&g, &t, &s, &opts.limits));

    if opts.tape && !has_errors(&diags) {
        // both optimizer settings: an optimizer bug must not hide
        // behind the default, and vice versa
        for optimize in [false, true] {
            let c = CompileOptions {
                optimize,
                ..CompileOptions::default()
            };
            match compile_with_options(&g, c) {
                Ok(tape) => {
                    diags.extend(verify_tape(&tape, &g));
                    // opt-in: fused tapes legitimately refuse the JIT, so
                    // J001 only fires when the caller asked about it
                    if opts.jit && optimize {
                        diags.extend(csfma_hls::lint_jit(&tape));
                    }
                }
                Err(e) => diags.extend(e.diagnostics),
            }
        }
    }

    let mut summary = None;
    if opts.ranges {
        let report = lint_ranges(&g, &decls);
        summary = Some(match report.datapath_shift_bound() {
            Some(bound) => {
                let worst = [FmaKind::Pcs, FmaKind::Fcs]
                    .map(|k| window_plan(&format_of(k)).max_shift)
                    .into_iter()
                    .max()
                    .unwrap_or(0);
                format!(
                    "range proof: alignment shift <= {bound} \
                     (format worst case {worst}, span {})",
                    report.exponent_span().unwrap_or(0)
                )
            }
            None => "range proof: none (some node is unbounded)".to_string(),
        });
        diags.extend(report.diagnostics);
    }
    (diags, summary)
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut failed = false;

    // `--formats` alone checks only the format descriptions; reading
    // stdin too would hang an interactive `csfma-lint --formats`. Pass
    // '-' explicitly to lint a piped program as well.
    let sources: Vec<(String, String)> = if opts.files.is_empty() && opts.formats {
        Vec::new()
    } else if opts.files.is_empty() {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("csfma-lint: cannot read stdin");
            return ExitCode::from(2);
        }
        vec![("<stdin>".to_string(), buf)]
    } else {
        opts.files
            .iter()
            .map(|f| {
                if f == "-" {
                    let mut buf = String::new();
                    let _ = std::io::stdin().read_to_string(&mut buf);
                    ("<stdin>".to_string(), buf)
                } else {
                    match std::fs::read_to_string(f) {
                        Ok(s) => (f.clone(), s),
                        Err(e) => {
                            eprintln!("csfma-lint: {f}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
            })
            .collect()
    };

    // with --json every finding across all sources lands in one array
    // (machine consumers lint one file per invocation for attribution)
    let mut all: Vec<Diagnostic> = Vec::new();

    for (name, src) in &sources {
        let (diags, summary) = lint_source(src, &opts);
        failed |= has_errors(&diags) || (opts.deny_warnings && !diags.is_empty());
        if opts.json {
            all.extend(diags);
            continue;
        }
        if diags.is_empty() {
            println!("{name}: clean");
        } else {
            print!("{name}:\n{}", render_report(&diags));
        }
        if let Some(summary) = summary {
            println!("{name}: {summary}");
        }
    }

    if opts.formats {
        let diags = check_standard_formats();
        failed |= has_errors(&diags) || (opts.deny_warnings && !diags.is_empty());
        if opts.json {
            all.extend(diags);
        } else if diags.is_empty() {
            println!("standard formats: clean");
        } else {
            print!("standard formats:\n{}", render_report(&diags));
        }
    }

    if opts.json {
        println!("{}", render_json(&all));
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
