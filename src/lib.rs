//! # csfma — carry-save floating-point fused multiply-add exploration
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and `DESIGN.md` for the per-experiment index.
//!
//! This is a from-scratch Rust reproduction of *“Architecture Exploration of
//! High-Performance Floating-Point Fused Multiply-Add Units and their
//! Automatic Use in High-Level Synthesis”* (Liebig, Huthmann, Koch; 2013):
//! bit-accurate behavioral models of the PCS- and FCS-FMA units, a
//! calibrated Virtex-6 timing/area/energy model, a Nymble-like HLS fusion
//! pass, and a CVXGEN-like convex-solver kernel generator.

pub use csfma_bits as bits;
pub use csfma_carrysave as carrysave;
pub use csfma_core as core;
pub use csfma_fabric as fabric;
pub use csfma_hls as hls;
pub use csfma_obs as obs;
pub use csfma_softfloat as softfloat;
pub use csfma_solvers as solvers;
pub use csfma_units as units;
pub use csfma_verify as verify;

/// Everything most users need, in one import.
///
/// ```
/// use csfma::prelude::*;
/// let unit = CsFmaUnit::new(CsFmaFormat::FCS_29_LZA);
/// let a = CsOperand::from_f64(1.0, *unit.format());
/// let c = CsOperand::from_f64(2.0, *unit.format());
/// let r = unit.fma(&a, &SoftFloat::from_f64(FpFormat::BINARY64, 3.0), &c);
/// assert_eq!(r.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(), 7.0);
/// ```
pub mod prelude {
    pub use csfma_core::{
        ChainEvaluator, ClassicFma, CsDotUnit, CsFmaFormat, CsFmaUnit, CsOperand, PipelinedFma,
    };
    pub use csfma_hls::{
        asap_schedule, compile, compile_cached, fuse_critical_paths, parse_program, FmaKind,
        FusionConfig, OpTiming, Tape, TapeBackend,
    };
    pub use csfma_softfloat::{FpClass, FpFormat, Round, SoftFloat};
    pub use csfma_solvers::{generate_ldlsolve, solver_suite, KktSystem, LdlFactors};
}
