//! Workspace-level tests of the `csfma-verify` static checker:
//!
//! * a property test that the outputs of the optimizer and the fusion
//!   pass *always* pass all three checker passes on random CDFGs, and
//! * mutation tests seeding one specific violation per checker pass and
//!   asserting the exact rule fires (the checker is only trustworthy if
//!   it rejects what it is supposed to reject).

use csfma_core::{CsFmaFormat, Normalizer};
use csfma_hls::cdfg::{Cdfg, FmaKind, NodeId, Op};
use csfma_hls::{
    asap_schedule, fuse_critical_paths, lint_dataflow, lint_schedule, list_schedule, optimize,
    FusionConfig, OpTiming, ResourceLimits,
};
use csfma_verify::{check_format, has_errors, render_report, Rule, ScheduleView, Severity};
use proptest::prelude::*;

/// Build a random (but always valid) straight-line datapath from an
/// opcode/operand stream — the same generator family the optimizer's own
/// property test uses, extended with divisions.
fn build_random_cdfg(ops: &[(usize, usize, usize)]) -> Cdfg {
    let mut g = Cdfg::new();
    let mut pool: Vec<NodeId> = (0..4).map(|i| g.input(format!("v{i}"))).collect();
    pool.push(g.constant(1.5));
    pool.push(g.constant(-2.0));
    for &(op, i1, i2) in ops {
        let x = pool[i1 % pool.len()];
        let y = pool[i2 % pool.len()];
        let id = match op {
            0 => g.add(x, y),
            1 => g.sub(x, y),
            2 | 3 => g.mul(x, y),
            4 => g.div(x, y),
            _ => g.push(Op::Neg, vec![x]),
        };
        pool.push(id);
    }
    g.output("y", *pool.last().unwrap());
    g
}

fn assert_lint_clean(g: &Cdfg, t: &OpTiming, what: &str) {
    let diags = lint_dataflow(g, t);
    assert!(
        !has_errors(&diags),
        "{what}: dataflow errors\n{}",
        render_report(&diags)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pipeline outputs always satisfy the checker: the optimizer result,
    /// both fusion results, and the schedules computed for them — on
    /// random graphs, under random resource limits.
    #[test]
    fn prop_pipeline_outputs_pass_all_checker_passes(
        ops in prop::collection::vec((0usize..6, 0usize..32, 0usize..32), 3..24),
        mul_cap in 1usize..4,
        fma_cap in 1usize..4,
    ) {
        let t = OpTiming::default();
        let g = build_random_cdfg(&ops);
        assert_lint_clean(&g, &t, "random source graph");

        let opt = optimize(&g).optimized;
        assert_lint_clean(&opt, &t, "optimizer output");

        for kind in [FmaKind::Pcs, FmaKind::Fcs] {
            let fused = fuse_critical_paths(&opt, &FusionConfig::new(kind)).fused;
            assert_lint_clean(&fused, &t, "fusion output");

            // pass 2: the unconstrained schedule is hazard-free...
            let unbounded = ResourceLimits::default();
            let s = asap_schedule(&fused, &t);
            let diags = lint_schedule(&fused, &t, &s, &unbounded);
            prop_assert!(diags.is_empty(), "asap hazards:\n{}", render_report(&diags));

            // ...and the list schedule respects the limits it was given
            let limits = ResourceLimits {
                mul: Some(mul_cap),
                add: Some(1),
                fma: Some(fma_cap),
                ..Default::default()
            };
            let ls = list_schedule(&fused, &t, &limits);
            let diags = lint_schedule(&fused, &t, &ls, &limits);
            prop_assert!(diags.is_empty(), "list hazards:\n{}", render_report(&diags));
        }

        // pass 3: the formats the fusion pass targets are statically sound
        prop_assert!(csfma_verify::check_standard_formats().is_empty());
    }
}

// ---------------------------------------------------------------------
// Mutation tests: seed one violation per pass, assert the rule fires.
// ---------------------------------------------------------------------

/// Pass 1 mutation: a domain-mismatched edge (an IEEE adder consuming a
/// raw carry-save value) must trip `D003 domain-mismatch`.
#[test]
fn mutation_domain_mismatched_edge_fires_d003() {
    let t = OpTiming::default();
    let mut g = Cdfg::new();
    let a = g.input("a");
    let cs = g.push(Op::IeeeToCs(FmaKind::Pcs), vec![a]);
    let bad = g.push_unchecked(Op::Add, vec![cs, a]);
    g.push_unchecked(Op::Output("y".into()), vec![bad]);

    let diags = lint_dataflow(&g, &t);
    assert!(has_errors(&diags), "{}", render_report(&diags));
    let hit = diags
        .iter()
        .find(|d| d.rule == Rule::DomainMismatch)
        .unwrap_or_else(|| panic!("no D003 in:\n{}", render_report(&diags)));
    assert_eq!(hit.severity, Severity::Error);
    assert_eq!(hit.rule.id(), "D003");
    // the graph's own validator reports the same rule
    let own = g.validate_diagnostics().unwrap_err();
    assert!(own.iter().any(|d| d.rule == Rule::DomainMismatch));
}

/// Pass 2 mutation: a hand-built schedule that fires the adder before the
/// multiplier's 5-cycle latency has elapsed must trip `S001
/// premature-start`, and overloading one multiplier must trip `S003`.
#[test]
fn mutation_early_fired_node_fires_s001() {
    let t = OpTiming::default();
    let mut g = Cdfg::new();
    let a = g.input("a");
    let b = g.input("b");
    let m = g.mul(a, b);
    let m2 = g.mul(b, b);
    let s = g.add(m, m2);
    g.output("y", s);

    let good = asap_schedule(&g, &t);
    assert!(lint_schedule(&g, &t, &good, &ResourceLimits::default()).is_empty());

    // corrupt the schedule: the add starts at cycle 2, mid-multiply
    let mut bad = good.clone();
    bad.start[s] = 2;
    let diags = lint_schedule(&g, &t, &bad, &ResourceLimits::default());
    assert!(has_errors(&diags), "{}", render_report(&diags));
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::PrematureStart && d.rule.id() == "S001"),
        "{}",
        render_report(&diags)
    );

    // both multiplies start at cycle 0: fine with 2 units, S003 with 1
    let limits = ResourceLimits {
        mul: Some(1),
        ..Default::default()
    };
    let diags = lint_schedule(&g, &t, &good, &limits);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::ResourceOverflow && d.rule.id() == "S003"),
        "{}",
        render_report(&diags)
    );

    // a truncated schedule view trips S002
    let view = ScheduleView {
        start: good.start.iter().map(|&c| Some(c)).collect::<Vec<_>>()[..g.len() - 1].to_vec(),
        length: good.length,
    };
    let cg = csfma_hls::to_check_graph(&g, &t);
    let diags = csfma_verify::check_schedule(&cg, &view, &[]);
    assert!(diags.iter().any(|d| d.rule == Rule::Unscheduled));
}

/// Pass 3 mutation: an insufficient-guard-bit configuration must trip
/// `W001 guard-headroom`, and the LZA-on-55-bit-blocks configuration —
/// the exact mistake the paper's 58-bit widening prevents — must trip
/// `W003 significand-coverage`.
#[test]
fn mutation_insufficient_guard_bits_fires_w001_and_w003() {
    // no left headroom: the window ends one digit above the product, so
    // the compressor tree's redundant sign has nowhere to live
    let cramped = CsFmaFormat {
        name: "mutation-no-headroom",
        block_bits: 28,
        mant_blocks: 2,
        left_blocks: 0,
        right_blocks: 1,
        carry_spacing: Some(14),
        normalizer: Normalizer::ZeroDetect,
        b_sig_bits: 27,
    };
    let diags = check_format(&cramped);
    assert!(has_errors(&diags), "{}", render_report(&diags));
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::GuardHeadroom && d.rule.id() == "W001"),
        "{}",
        render_report(&diags)
    );

    // early LZA strapped onto 55-bit blocks: 56 - 3 = 53 guaranteed
    // digits < 53 significand + 2 margin
    let narrow_lza = CsFmaFormat {
        normalizer: Normalizer::EarlyLza,
        ..CsFmaFormat::PCS_55_ZD
    };
    let diags = check_format(&narrow_lza);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::SignificandCoverage && d.rule.id() == "W003"),
        "{}",
        render_report(&diags)
    );

    // the carry-spacing rule (DESIGN.md §7.4): 10 does not divide 55
    let skewed = CsFmaFormat {
        carry_spacing: Some(10),
        ..CsFmaFormat::PCS_55_ZD
    };
    let diags = check_format(&skewed);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::CarrySpacing && d.rule.id() == "W002"),
        "{}",
        render_report(&diags)
    );

    // and the shipped design points remain clean
    assert!(csfma_verify::check_standard_formats().is_empty());
}

/// The batch compiler is gated on the checker: a graph carrying an
/// error-severity dataflow finding must be refused with a structured
/// `CompileError` naming the rule — never silently lowered to a tape.
#[test]
fn compile_gate_refuses_dataflow_errors() {
    use csfma_hls::{compile, compile_cached};

    // D001: one-armed adder planted behind the validator's back
    let mut g = Cdfg::new();
    let a = g.input("a");
    g.push_unchecked(Op::Add, vec![a]);
    let err = compile(&g).expect_err("arity violation must refuse to compile");
    assert!(err
        .diagnostics
        .iter()
        .all(|d| d.severity == Severity::Error));
    assert!(
        err.diagnostics.iter().any(|d| d.rule.id() == "D001"),
        "{err}"
    );
    assert!(compile_cached(&g).is_err(), "cache must not mask the gate");

    // D003: IEEE adder consuming a carry-save producer
    let mut g = Cdfg::new();
    let a = g.input("a");
    let cs = g.push_unchecked(Op::IeeeToCs(FmaKind::Pcs), vec![a]);
    let bad = g.push_unchecked(Op::Add, vec![a, cs]);
    g.push_unchecked(Op::Output("y".into()), vec![bad]);
    let err = compile(&g).expect_err("domain mismatch must refuse to compile");
    assert!(
        err.diagnostics.iter().any(|d| d.rule.id() == "D003"),
        "{err}"
    );
}

/// The `W*` width rules gate compilation when the graph actually uses a
/// fused format: a cramped geometry refuses, the standard one compiles.
#[test]
fn compile_gate_refuses_broken_formats() {
    use csfma_hls::{compile_with_formats, interp::format_of};

    let g = csfma_hls::parse_program("x1 = a*b + c*d;\n out x3 = e*f + g*x1;").unwrap();
    let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;
    assert!(
        fused.count_ops(|o| matches!(o, Op::Fma { .. })) > 0,
        "fusion must have inserted an FMA for the gate to be exercised"
    );

    let cramped = CsFmaFormat {
        name: "gate-mutation-no-headroom",
        block_bits: 28,
        mant_blocks: 2,
        left_blocks: 0,
        right_blocks: 1,
        carry_spacing: Some(14),
        normalizer: Normalizer::ZeroDetect,
        b_sig_bits: 27,
    };
    let err = compile_with_formats(&fused, cramped, format_of(FmaKind::Fcs))
        .expect_err("W-rule errors must refuse to compile");
    assert!(
        err.diagnostics.iter().any(|d| d.rule.id().starts_with('W')),
        "{err}"
    );

    // the same graph with the shipped formats compiles
    compile_with_formats(&fused, format_of(FmaKind::Pcs), format_of(FmaKind::Fcs))
        .expect("standard formats are clean");

    // a discrete graph never touches the formats, so even a broken PCS
    // geometry is irrelevant to it — the gate only fires on use
    compile_with_formats(&g, cramped, format_of(FmaKind::Fcs))
        .expect("unused formats must not gate a discrete graph");
}

/// The `S*` schedule-hazard rules gate `compile_scheduled`: a schedule
/// that overloads the declared resources is a miscompilation risk for
/// the hardware the tape stands in for.
#[test]
fn compile_gate_refuses_hazardous_schedules() {
    use csfma_hls::compile_scheduled;

    let t = OpTiming::default();
    let mut g = Cdfg::new();
    let a = g.input("a");
    let b = g.input("b");
    let m = g.mul(a, b);
    let m2 = g.mul(b, b);
    let s = g.add(m, m2);
    g.output("y", s);

    let asap = asap_schedule(&g, &t);
    let one_mul = ResourceLimits {
        mul: Some(1),
        ..Default::default()
    };
    // both multiplies at cycle 0 with one declared multiplier: S003
    let err = compile_scheduled(&g, &t, &asap, &one_mul)
        .expect_err("resource overflow must refuse to compile");
    assert!(
        err.diagnostics.iter().any(|d| d.rule.id() == "S003"),
        "{err}"
    );

    // the list scheduler respects the limit; the same gate passes
    let listed = list_schedule(&g, &t, &one_mul);
    compile_scheduled(&g, &t, &listed, &one_mul).expect("resource-feasible schedule must compile");
}
