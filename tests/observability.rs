//! The observability layer's determinism contract (DESIGN.md §11):
//! instrumentation must never change what the engine computes.
//!
//! * **Byte identity** — for randomly generated datapaths (discrete and
//!   fused) and adversarial stimulus, compiling and evaluating with a
//!   recording [`Profiler`] must produce bitwise-identical tapes and
//!   output bytes to the unprofiled entry points. The profiled paths are
//!   the *only* implementation (the unprofiled ones delegate with a
//!   disabled profiler), so this test pins the contract that the extra
//!   plumbing — span tokens, counters, histogram records — is invisible
//!   to the datapath.
//! * **Span nesting sanity** — stage spans form a tree: each parent's
//!   wall time must be at least the sum of its direct children (a child
//!   runs strictly inside its parent's enter/exit window), and the
//!   pre-order flattening must keep depths consistent.
//! * **Counter sanity** — the report's row/op counters must agree with
//!   what was actually executed.

use csfma::hls::{
    compile_with_options, compile_with_options_profiled, fuse_critical_paths, Cdfg, CompileOptions,
    FmaKind, FusionConfig, NodeId, Op, PipelineReport, Profiler, TapeBackend,
};
use proptest::prelude::*;

type OpPick = (usize, prop::sample::Index, prop::sample::Index);

/// Random straight-line graph, same shape as `exec_differential.rs`.
fn random_graph(n_inputs: usize, consts: &[f64], ops: &[OpPick]) -> Cdfg {
    let mut g = Cdfg::new();
    let mut nodes: Vec<NodeId> = (0..n_inputs).map(|i| g.input(format!("i{i}"))).collect();
    for &c in consts {
        nodes.push(g.constant(c));
    }
    for (op, ia, ib) in ops {
        let a = nodes[ia.index(nodes.len())];
        let b = nodes[ib.index(nodes.len())];
        let id = match op % 5 {
            0 => g.add(a, b),
            1 => g.sub(a, b),
            2 => g.mul(a, b),
            3 => g.div(a, b),
            _ => g.push(Op::Neg, vec![a]),
        };
        nodes.push(id);
    }
    g.output("last", *nodes.last().unwrap());
    g
}

/// Adversarial stimulus: IEEE specials plus raw bit noise.
fn stimulus() -> impl Strategy<Value = f64> {
    (0usize..8, any::<u64>(), -1.0e6f64..1.0e6).prop_map(|(class, bits, x)| match class {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => f64::from_bits(bits % (1u64 << 52)),
        5 => f64::from_bits(bits),
        6 => f64::MIN_POSITIVE * (1.0 + (bits % 8) as f64),
        _ => x,
    })
}

/// Compile + batch-evaluate `g` twice — once through the profiled entry
/// points with a recording profiler, once through the plain ones — and
/// require byte-identical tapes and outputs on both backends.
fn assert_obs_invisible(g: &Cdfg, vals: &[f64]) -> PipelineReport {
    let mut prof = Profiler::new();
    let profiled = compile_with_options_profiled(g, CompileOptions::default(), &mut prof)
        .expect("generated graphs are valid");
    let plain =
        compile_with_options(g, CompileOptions::default()).expect("generated graphs are valid");

    // The compiled artifacts themselves must be identical.
    prop_assert_eq!(
        format!("{:?}", profiled.instrs()),
        format!("{:?}", plain.instrs())
    );
    prop_assert_eq!(profiled.input_names(), plain.input_names());
    prop_assert_eq!(profiled.output_names(), plain.output_names());

    let ni = profiled.num_inputs().max(1);
    let n_rows = 9usize; // not a multiple of the chunk size on purpose
    let rows: Vec<f64> = (0..n_rows * ni).map(|i| vals[i % vals.len()]).collect();

    for backend in [TapeBackend::BitAccurate, TapeBackend::F64] {
        let a = profiled.eval_batch_profiled(backend, &rows, 2, &mut prof);
        let b = plain.eval_batch(backend, &rows, 2);
        prop_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{:?}: profiled eval diverged at flat output {} ({} vs {})",
                backend,
                i,
                x,
                y
            );
        }
    }
    prof.finish()
}

/// Each span's wall time must cover the sum of its direct children.
/// `stages` is a pre-order flattening with depths, so a span's children
/// are the depth+1 records before the next record at its own depth.
fn assert_nesting_sane(report: &PipelineReport) {
    let stages = &report.stages;
    for (i, s) in stages.iter().enumerate() {
        let mut child_sum = 0.0;
        for c in &stages[i + 1..] {
            if c.depth <= s.depth {
                break;
            }
            if c.depth == s.depth + 1 {
                child_sum += c.wall_us;
            }
        }
        // Timer quantisation can make a child's reading exceed its
        // parent's by a hair; allow a microsecond of slack per child.
        assert!(
            child_sum <= s.wall_us + 1.0 * (s.depth + 1) as f64 + 1e-9,
            "span {:?} ({} us) narrower than its children ({} us): {:?}",
            s.name,
            s.wall_us,
            child_sum,
            stages
        );
        if i + 1 < stages.len() {
            // Pre-order flattening never jumps more than one level down.
            assert!(stages[i + 1].depth <= s.depth + 1, "{stages:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Discrete random graphs: obs on == obs off, byte for byte.
    #[test]
    fn profiling_never_changes_output_bytes(
        n_inputs in 1usize..4,
        consts in prop::collection::vec(stimulus(), 0..3),
        ops in prop::collection::vec(
            (0usize..5, any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            1..24,
        ),
        vals in prop::collection::vec(stimulus(), 1..8),
    ) {
        let g = random_graph(n_inputs, &consts, &ops);
        let report = assert_obs_invisible(&g, &vals);
        prop_assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    /// Fused graphs (carry-save FMA datapaths): same contract.
    #[test]
    fn profiling_never_changes_fused_output_bytes(
        n_inputs in 2usize..4,
        ops in prop::collection::vec(
            (0usize..5, any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            2..16,
        ),
        pcs in any::<bool>(),
        vals in prop::collection::vec(stimulus(), 1..6),
    ) {
        let kind = if pcs { FmaKind::Pcs } else { FmaKind::Fcs };
        let g = random_graph(n_inputs, &[], &ops);
        let fused = fuse_critical_paths(&g, &FusionConfig::new(kind)).fused;
        let report = assert_obs_invisible(&fused, &vals);
        prop_assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }
}

#[test]
fn span_tree_is_nested_and_counters_match() {
    let g = csfma::hls::parse_program("x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;")
        .expect("listing1 parses");
    let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;

    let mut prof = Profiler::new();
    let tape = compile_with_options_profiled(&fused, CompileOptions::default(), &mut prof)
        .expect("fused listing1 compiles");
    let rows = 50usize;
    let stim: Vec<f64> = (0..rows * tape.num_inputs())
        .map(|i| (i % 13) as f64 - 6.0)
        .collect();
    let out = tape.eval_batch_profiled(TapeBackend::BitAccurate, &stim, 1, &mut prof);
    assert_eq!(out.len(), rows * tape.num_outputs());
    let report = prof.finish();

    if !report.recorded {
        // obs feature compiled out: the report is legitimately empty.
        assert!(report.stages.is_empty());
        return;
    }

    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    assert_nesting_sane(&report);
    for stage in ["compile", "gate", "optimize", "lower", "eval"] {
        assert!(report.stage(stage).is_some(), "missing stage {stage:?}");
    }
    // gate/optimize/lower are children of compile; eval is a root span.
    assert_eq!(report.stage("compile").unwrap().depth, 0);
    assert_eq!(report.stage("gate").unwrap().depth, 1);
    assert_eq!(report.stage("eval").unwrap().depth, 0);

    assert_eq!(report.counter("rows"), Some(rows as f64));
    assert_eq!(report.counter("threads"), Some(1.0));

    // Expected op counts fall out of the tape structure: each FMA / hosted
    // arithmetic instruction executes once per row. Sibling tests in this
    // binary bump the same process-global counters concurrently, so the
    // deltas are lower bounds, not exact.
    use csfma::hls::Instr;
    let fma_instrs = tape
        .instrs()
        .iter()
        .filter(|i| matches!(i, Instr::Fma { .. }))
        .count();
    let hosted_instrs = tape
        .instrs()
        .iter()
        .filter(|i| {
            matches!(
                i,
                Instr::Add { .. }
                    | Instr::Sub { .. }
                    | Instr::Mul { .. }
                    | Instr::Div { .. }
                    | Instr::Neg { .. }
            )
        })
        .count();
    assert!(fma_instrs >= 2, "fused listing1 should contain FMA chain");
    assert!(
        report.counter("fma_ops_pcs").unwrap() >= (fma_instrs * rows) as f64,
        "{:?}",
        report.counters
    );
    assert!(
        report.counter("hosted_ops").unwrap() >= (hosted_instrs * rows) as f64,
        "{:?}",
        report.counters
    );
}

#[test]
fn disabled_profiler_records_nothing() {
    let g = csfma::hls::parse_program("out y = a*b + c;").expect("parses");
    let mut prof = Profiler::disabled();
    let tape =
        compile_with_options_profiled(&g, CompileOptions::default(), &mut prof).expect("compiles");
    let _ = tape.eval_batch_profiled(TapeBackend::F64, &[1.0, 2.0, 3.0], 1, &mut prof);
    let report = prof.finish();
    assert!(!report.recorded);
    assert!(report.stages.is_empty());
    assert!(report.counters.is_empty());
}
