//! Bit-level determinism across the whole stack: hardware models must be
//! pure functions of their inputs (a prerequisite for the VCD traces, the
//! energy accounting and any regression comparison).

use csfma::prelude::*;

#[test]
fn fma_units_are_pure_functions() {
    for fmt in [
        CsFmaFormat::PCS_55_ZD,
        CsFmaFormat::PCS_58_LZA,
        CsFmaFormat::FCS_29_LZA,
    ] {
        let unit = CsFmaUnit::new(fmt);
        let a = CsOperand::from_f64(0.123456789, fmt);
        let b = SoftFloat::from_f64(FpFormat::BINARY64, -7.89);
        let c = CsOperand::from_f64(4.2e-7, fmt);
        let r1 = unit.fma(&a, &b, &c);
        let r2 = unit.fma(&a, &b, &c);
        assert_eq!(r1.pack(), r2.pack(), "{}", fmt.name);
        assert_eq!(r1.exp(), r2.exp());
    }
}

#[test]
fn full_flow_is_reproducible() {
    // solver -> codegen -> fusion -> schedule: byte-identical both times
    let run = || {
        let p = &solver_suite()[0];
        let kkt = KktSystem::assemble(p);
        let f = LdlFactors::factor(&kkt.matrix);
        let prog = generate_ldlsolve(&f);
        let rep = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(FmaKind::Fcs));
        let t = OpTiming::default();
        let sched = asap_schedule(&rep.fused, &t);
        (
            rep.final_length,
            rep.fma_nodes,
            sched.start,
            csfma::hls::to_source(&rep.fused),
        )
    };
    let (l1, n1, s1, src1) = run();
    let (l2, n2, s2, src2) = run();
    assert_eq!(l1, l2);
    assert_eq!(n1, n2);
    assert_eq!(s1, s2);
    assert_eq!(src1, src2);
}

#[test]
fn chain_state_is_bit_stable_across_orders_of_construction() {
    // building the same operand via different call paths must produce the
    // same packed transport word
    let fmt = CsFmaFormat::PCS_55_ZD;
    let direct = CsOperand::from_f64(2.5, fmt);
    let via_ieee = CsOperand::from_ieee(&SoftFloat::from_f64(FpFormat::BINARY64, 2.5), fmt);
    assert_eq!(direct.pack(), via_ieee.pack());
}

#[test]
fn eval_batch_is_thread_count_invariant() {
    // the batch engine's contract: byte-identical output for any worker
    // count, and equal to a sequential scalar loop over the same rows —
    // fixed-size chunks make the split independent of scheduling
    use csfma::hls::interp::{eval_bit_accurate, eval_f64};
    use csfma::hls::{compile, TapeBackend};
    use std::collections::HashMap;

    let p = &solver_suite()[0];
    let kkt = KktSystem::assemble(p);
    let f = LdlFactors::factor(&kkt.matrix);
    let prog = generate_ldlsolve(&f);
    let rep = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(FmaKind::Pcs));
    let tape = compile(&rep.fused).expect("fused solver compiles");

    let ni = tape.num_inputs();
    let n_rows = 3 * 64 + 19; // several chunks plus a ragged tail
    let rows: Vec<f64> = (0..n_rows * ni)
        .map(|i| {
            // deterministic, sign-varying, scale-varying stimulus
            let k = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            ((k % 2001) as f64 - 1000.0) * 1.5e-2
        })
        .collect();

    for backend in [TapeBackend::BitAccurate, TapeBackend::F64] {
        let reference = tape.eval_batch(backend, &rows, 1);
        for threads in [2usize, 8] {
            let got = tape.eval_batch(backend, &rows, threads);
            assert_eq!(reference.len(), got.len());
            assert!(
                reference
                    .iter()
                    .zip(got.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{backend:?} output varies at {threads} threads"
            );
        }

        // sequential scalar-oracle loop over the same rows
        let no = tape.num_outputs();
        for r in [0usize, 1, 64, 65, n_rows - 1] {
            let m: HashMap<String, f64> = tape
                .input_names()
                .iter()
                .enumerate()
                .map(|(k, n)| (n.clone(), rows[r * ni + k]))
                .collect();
            let want = match backend {
                TapeBackend::F64 => eval_f64(&rep.fused, &m),
                TapeBackend::BitAccurate | TapeBackend::Oracle | TapeBackend::Jit => {
                    eval_bit_accurate(&rep.fused, &m)
                }
            };
            for (k, name) in tape.output_names().iter().enumerate() {
                assert_eq!(
                    reference[r * no + k].to_bits(),
                    want[name].to_bits(),
                    "{backend:?} row {r} output {name} differs from scalar oracle"
                );
            }
        }
    }
}

#[test]
fn ragged_tail_batches_match_scalar_at_any_thread_count() {
    // the bit backend dispatches full 64-row chunks to the bit-plane
    // kernel and ragged tails to the scalar units; every batch size
    // around the chunk boundary must agree bit-for-bit with the
    // all-scalar oracle backend, at every worker count
    use csfma::hls::{compile, fuse_critical_paths as fuse, parse_program, TapeBackend};

    let listing1 = parse_program("x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;")
        .expect("listing1 parses");
    let horner =
        parse_program("p1 = c8*x + c7;\n p2 = p1*x + c6;\n p3 = p2*x + c5;\n out y = p3*x + c4;")
            .expect("horner parses");
    for (g, kind) in [
        (&listing1, FmaKind::Pcs),
        (&listing1, FmaKind::Fcs),
        (&horner, FmaKind::Pcs),
    ] {
        let fused = fuse(g, &FusionConfig::new(kind)).fused;
        let tape = compile(&fused).expect("fused graph compiles");
        let ni = tape.num_inputs();
        for n_rows in [1usize, 63, 64, 65, 127] {
            let rows: Vec<f64> = (0..n_rows * ni)
                .map(|i| {
                    let k = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    ((k % 4001) as f64 - 2000.0) * 7.25e-3
                })
                .collect();
            let scalar = tape.eval_batch(TapeBackend::Oracle, &rows, 1);
            for threads in [1usize, 4, 8] {
                let plane = tape.eval_batch(TapeBackend::BitAccurate, &rows, threads);
                assert_eq!(scalar.len(), plane.len());
                assert!(
                    scalar
                        .iter()
                        .zip(plane.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{kind:?} batch of {n_rows} at {threads} threads diverged from scalar"
                );
            }
        }
    }
}

#[test]
fn tape_compilation_is_deterministic() {
    // same graph -> same instruction stream, register counts, fingerprint
    use csfma::hls::compile;
    let p = &solver_suite()[0];
    let kkt = KktSystem::assemble(p);
    let f = LdlFactors::factor(&kkt.matrix);
    let build = || {
        let prog = generate_ldlsolve(&f);
        compile(&prog.cdfg).expect("solver compiles")
    };
    let (a, b) = (build(), build());
    assert_eq!(a.instrs(), b.instrs());
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.num_f64_regs(), b.num_f64_regs());
    assert_eq!(a.num_cs_regs(), b.num_cs_regs());
}
