//! Bit-level determinism across the whole stack: hardware models must be
//! pure functions of their inputs (a prerequisite for the VCD traces, the
//! energy accounting and any regression comparison).

use csfma::prelude::*;

#[test]
fn fma_units_are_pure_functions() {
    for fmt in [
        CsFmaFormat::PCS_55_ZD,
        CsFmaFormat::PCS_58_LZA,
        CsFmaFormat::FCS_29_LZA,
    ] {
        let unit = CsFmaUnit::new(fmt);
        let a = CsOperand::from_f64(0.123456789, fmt);
        let b = SoftFloat::from_f64(FpFormat::BINARY64, -7.89);
        let c = CsOperand::from_f64(4.2e-7, fmt);
        let r1 = unit.fma(&a, &b, &c);
        let r2 = unit.fma(&a, &b, &c);
        assert_eq!(r1.pack(), r2.pack(), "{}", fmt.name);
        assert_eq!(r1.exp(), r2.exp());
    }
}

#[test]
fn full_flow_is_reproducible() {
    // solver -> codegen -> fusion -> schedule: byte-identical both times
    let run = || {
        let p = &solver_suite()[0];
        let kkt = KktSystem::assemble(p);
        let f = LdlFactors::factor(&kkt.matrix);
        let prog = generate_ldlsolve(&f);
        let rep = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(FmaKind::Fcs));
        let t = OpTiming::default();
        let sched = asap_schedule(&rep.fused, &t);
        (
            rep.final_length,
            rep.fma_nodes,
            sched.start,
            csfma::hls::to_source(&rep.fused),
        )
    };
    let (l1, n1, s1, src1) = run();
    let (l2, n2, s2, src2) = run();
    assert_eq!(l1, l2);
    assert_eq!(n1, n2);
    assert_eq!(s1, s2);
    assert_eq!(src1, src2);
}

#[test]
fn chain_state_is_bit_stable_across_orders_of_construction() {
    // building the same operand via different call paths must produce the
    // same packed transport word
    let fmt = CsFmaFormat::PCS_55_ZD;
    let direct = CsOperand::from_f64(2.5, fmt);
    let via_ieee = CsOperand::from_ieee(&SoftFloat::from_f64(FpFormat::BINARY64, 2.5), fmt);
    assert_eq!(direct.pack(), via_ieee.pack());
}
