//! Protocol torture suite for `csfma-serve` (DESIGN.md §15).
//!
//! Every scenario here is an attack on the one invariant the server
//! sells: *every submitted frame gets exactly one terminal response,
//! and nothing a client does crashes the accept loop or another
//! client's request*. Malformed bytes, oversized declarations,
//! slowloris dribbles, double-closes, and saturating load all land on
//! an in-process server bound to an ephemeral port; the last test
//! cross-checks served digests against the `csfma-run` binary on the
//! same seeded stimulus.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

use csfma_serve::frame::{self, backend, tag, Frame};
use csfma_serve::{Client, ServeConfig, Server, ServerHandle};
use rand::{rngs::StdRng, Rng, SeedableRng};

const GRAPH: &str = "x1 = a*b + c*d;\nx2 = e*f + g*x1;\nout x3 = h*i + k*x2;";
const NUM_INPUTS: usize = 10; // a b c d e f g h i k

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        max_inflight: 2,
        max_queue: 2,
        queue_wait: Duration::from_millis(100),
        default_deadline: Duration::from_secs(30),
        max_frame_len: 1 << 20,
        idle_timeout: Duration::from_millis(400),
        drain_grace: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

fn spawn(
    cfg: ServeConfig,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<csfma_serve::StatsSnapshot>,
) {
    let server = Server::bind(cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

/// The `csfma-run` stimulus formula (StdRng over the default range).
fn stimulus(seed: u64, rows: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows * NUM_INPUTS)
        .map(|_| rng.gen_range(-1000.0..1000.0))
        .collect()
}

#[test]
fn malformed_and_hostile_frames_never_take_the_server_down() {
    let (addr, handle, runner) = spawn(test_config());

    // garbage bytes → structured SV002, connection closed
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&5u32.to_le_bytes()).unwrap();
        s.write_all(&[0x7F, 1, 2, 3, 4]).unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        let (f, _) = frame::decode(&resp, 1 << 20).unwrap().expect("one reply");
        match f {
            Frame::Error { code: 2, message } => assert!(message.contains("SV002"), "{message}"),
            other => panic!("expected SV002, got {other:?}"),
        }
    }

    // oversized declaration → SV001 before the body is ever sent
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&(64u32 << 20).to_le_bytes()).unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        let (f, _) = frame::decode(&resp, 1 << 20).unwrap().expect("one reply");
        match f {
            Frame::Error { code: 1, message } => assert!(message.contains("SV001"), "{message}"),
            other => panic!("expected SV001, got {other:?}"),
        }
    }

    // truncated frame then abrupt close; and a double-close (shutdown
    // then close again) — the handler thread must just move on
    for _ in 0..2 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[tag::SUBMIT, 0, 0]).unwrap(); // 97 bytes never come
        let _ = s.shutdown(std::net::Shutdown::Both);
        drop(s);
    }

    // slowloris: a partial frame dribbled slower than the idle timeout
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&16u32.to_le_bytes()).unwrap();
        s.write_all(&[tag::PING]).unwrap();
        std::thread::sleep(Duration::from_millis(700)); // > idle_timeout
                                                        // server has closed us by now; a write eventually errors and a
                                                        // read sees EOF
        let mut buf = [0u8; 16];
        let n = s.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server should have closed the stalled connection");
    }

    // a response-typed frame sent to the server → SV002
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&frame::encode(&Frame::Shed { retry_after_ms: 1 }))
            .unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        let (f, _) = frame::decode(&resp, 1 << 20).unwrap().expect("one reply");
        assert!(matches!(f, Frame::Error { code: 2, .. }), "{f:?}");
    }

    // after all that abuse, a well-formed client still gets service
    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.ping(42).unwrap(), 42);
    let rows = 4usize;
    let reply = c
        .submit(backend::BIT, 0, rows as u32, GRAPH, &stimulus(1, rows))
        .unwrap();
    assert!(
        matches!(reply, Frame::Result { quarantined: 0, .. }),
        "{reply:?}"
    );

    handle.drain();
    let stats = runner.join().unwrap();
    assert_eq!(
        stats.panics_contained, 0,
        "a connection panicked: {stats:?}"
    );
    assert_eq!(stats.results, 1);
    // the three protocol refusals (garbage, oversize, response-typed)
    // land in `refusals`, never in the admission ledger — which must
    // balance exactly even after the hostile traffic
    assert!(stats.refusals >= 3, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(
        stats.accepted,
        stats.results + stats.deadline + stats.errors,
        "{stats:?}"
    );
}

#[test]
fn overload_sheds_with_retry_hint_and_deadline_cuts_off_at_chunk_boundary() {
    let cfg = ServeConfig {
        max_inflight: 1,
        max_queue: 0,
        queue_wait: Duration::from_millis(10),
        max_frame_len: 8 << 20,
        ..test_config()
    };
    let (addr, handle, runner) = spawn(cfg);

    // client A occupies the only evaluation slot with a request big
    // enough that the robust executor chews on it for a good fraction
    // of a second
    let rows_a = 64 * 1024usize;
    let data_a = stimulus(2, rows_a);
    let a = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.submit(backend::BIT, 0, rows_a as u32, GRAPH, &data_a)
            .unwrap()
    });

    // wait (via the ungated STATS frame) until A is admitted, so the
    // probe below races a request that is provably in flight
    let mut watcher = Client::connect(addr).unwrap();
    for _ in 0..2000 {
        let snap = csfma_serve::StatsSnapshot::from_json(&watcher.stats().unwrap())
            .expect("stats json parses");
        if snap.accepted >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // client B probes while A holds the slot: max_queue = 0 means the
    // admission gate must shed instead of queueing
    let mut shed_seen = None;
    for _ in 0..50 {
        let mut c = Client::connect(addr).unwrap();
        match c
            .submit(backend::BIT, 0, 1, GRAPH, &stimulus(3, 1))
            .unwrap()
        {
            Frame::Shed { retry_after_ms } => {
                shed_seen = Some(retry_after_ms);
                break;
            }
            Frame::Result { .. } => std::thread::sleep(Duration::from_millis(2)),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    let hint = shed_seen.expect("saturated server must shed");
    assert!(hint > 0, "retry-after hint must be positive");

    assert!(matches!(a.join().unwrap(), Frame::Result { .. }));

    // a 1 ms deadline on a batch that needs several ms of evaluation
    // cannot finish: DEADLINE, and the response carries no partial rows
    let mut c = Client::connect(addr).unwrap();
    let rows = 8192usize;
    match c
        .submit(backend::BIT, 1, rows as u32, GRAPH, &stimulus(4, rows))
        .unwrap()
    {
        Frame::Deadline { .. } => {}
        other => panic!("expected DEADLINE, got {other:?}"),
    }

    handle.drain();
    let stats = runner.join().unwrap();
    assert!(stats.shed >= 1, "{stats:?}");
    assert_eq!(stats.deadline, 1, "{stats:?}");
    assert_eq!(stats.panics_contained, 0);
    // reconciliation: every accepted request ended in exactly one
    // terminal response
    assert_eq!(
        stats.accepted,
        stats.results + stats.deadline + stats.errors
    );
}

#[test]
fn concurrent_clients_get_identical_digests_to_a_local_run() {
    let cfg = ServeConfig {
        max_inflight: 4,
        max_queue: 16,
        queue_wait: Duration::from_secs(5),
        ..test_config()
    };
    let (addr, handle, runner) = spawn(cfg);

    let rows = 48usize;
    let clients: Vec<_> = (0..8u64)
        .map(|seed| {
            std::thread::spawn(move || {
                let data = stimulus(seed, rows);
                let mut c = Client::connect(addr).unwrap();
                let reply = c
                    .submit(backend::BIT, 0, rows as u32, GRAPH, &data)
                    .unwrap();
                match reply {
                    Frame::Result {
                        digest,
                        quarantined: 0,
                        data: out,
                        ..
                    } => (seed, digest, out),
                    other => panic!("client {seed}: {other:?}"),
                }
            })
        })
        .collect();

    let g = csfma_hls::parse_program(GRAPH).unwrap();
    let tape = csfma_hls::compile_cached(&g).unwrap();
    for t in clients {
        let (seed, digest, out) = t.join().unwrap();
        let local = tape.eval_batch(
            csfma_hls::TapeBackend::BitAccurate,
            &stimulus(seed, rows),
            1,
        );
        assert_eq!(digest, csfma_serve::digest(&local), "seed {seed}");
        assert!(
            out.iter()
                .zip(local.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "seed {seed}: served rows diverge from local evaluation"
        );
    }
    handle.drain();
    let stats = runner.join().unwrap();
    assert_eq!(stats.results, 8);
    assert_eq!(stats.panics_contained, 0);
}

/// The served digest equals what the `csfma-run` binary prints for the
/// same graph, seed, and batch — the two entry points share stimulus
/// formula, engine, and digest formula.
#[test]
fn served_digest_matches_the_csfma_run_binary() {
    let rows = 32usize;
    let seed = 7u64;

    let mut child = Command::new(env!("CARGO_BIN_EXE_csfma-run"))
        .args(["--batch", "32", "--seed", "7"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("csfma-run spawns");
    {
        // scope the pipe so the child sees EOF before we wait on it
        let mut stdin = child.stdin.take().unwrap();
        stdin.write_all(GRAPH.as_bytes()).expect("feed graph");
    }
    let out = child.wait_with_output().expect("csfma-run runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let cli_digest = stdout
        .lines()
        .find_map(|l| l.split("digest ").nth(1))
        .expect("digest line")
        .trim()
        .to_string();

    let (addr, handle, runner) = spawn(test_config());
    let mut c = Client::connect(addr).unwrap();
    let reply = c
        .submit(backend::BIT, 0, rows as u32, GRAPH, &stimulus(seed, rows))
        .unwrap();
    handle.drain();
    runner.join().unwrap();
    match reply {
        Frame::Result { digest, .. } => {
            assert_eq!(format!("{digest:#018x}"), cli_digest);
        }
        other => panic!("expected RESULT, got {other:?}"),
    }
}
