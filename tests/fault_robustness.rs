//! End-to-end robustness contract of the graceful-degradation executor
//! (DESIGN.md §10): for *any* fault plan, the robust batch engine must
//! stay deterministic across worker counts, recover flagged rows
//! bit-identically to a clean run, quarantine only what it cannot
//! recover, and never let one row's fault corrupt a neighbor.
//!
//! The per-site detection guarantees (every single-bit flip in every
//! normalizer regime, including the Fig. 10 all-0/all-1 skippable
//! blocks) are pinned at unit level in `csfma-core`'s `self_checking`
//! suite; the fault *campaign* sweep lives in `csfma-bench::fault`.

use csfma::core::fault::{FaultPlan, FaultSite, FaultSpec};
use csfma::hls::{
    compile, fuse_critical_paths, parse_program, FmaKind, FusionConfig, RobustOptions, RowOutcome,
    Tape, TapeBackend,
};
use proptest::prelude::*;

const ROWS: usize = 200;

fn fused_listing1() -> Tape {
    let g = parse_program("x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;")
        .expect("listing1 parses");
    let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;
    compile(&fused).expect("fused listing1 compiles")
}

fn stimulus(tape: &Tape, rows: usize) -> Vec<f64> {
    (0..rows * tape.num_inputs())
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64 * 0.125 - 1000.0)
        .collect()
}

/// Quarantined rows are the only ones allowed to differ from a clean
/// run, and they must be NaN-poisoned; everything else is bit-identical.
/// Rows in `skip` are exempt: a `TapeReg` strike corrupts a stored
/// register plane, which the datapath checks cannot see — that class is
/// the documented ECC coverage boundary (DESIGN.md §10), so such a row
/// may legitimately end `Ok` with corrupted bits.
fn assert_contained(
    tape: &Tape,
    clean: &[f64],
    got: &[f64],
    outcomes: &[RowOutcome],
    skip: &[u64],
) {
    let no = tape.num_outputs();
    for (r, outcome) in outcomes.iter().enumerate() {
        if skip.contains(&(r as u64)) {
            continue;
        }
        for k in 0..no {
            let (c, g) = (clean[r * no + k], got[r * no + k]);
            match outcome {
                RowOutcome::Quarantined { .. } => {
                    assert!(g.is_nan(), "row {r}: quarantined output not poisoned")
                }
                _ => assert_eq!(
                    c.to_bits(),
                    g.to_bits(),
                    "row {r} ({outcome:?}): output differs from clean run"
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any plan of up to 4 single-bit faults: byte-identical outputs and
    /// outcome vectors at 1, 4 and 8 worker threads, and no containment
    /// violations at any of them.
    #[test]
    fn any_fault_plan_is_thread_invariant_and_contained(
        seed in any::<u64>(),
        specs in prop::collection::vec(
            (0usize..FaultSite::ALL.len(), 0u64..ROWS as u64, any::<bool>()),
            0..=4,
        ),
    ) {
        let tape = fused_listing1();
        let rows = stimulus(&tape, ROWS);
        let clean = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);

        let mut plan = FaultPlan::new(seed);
        for &(site, row, sticky) in &specs {
            let site = FaultSite::ALL[site];
            plan = plan.with_fault(if sticky {
                FaultSpec::stuck(site, row)
            } else {
                FaultSpec::transient(site, row)
            });
        }

        let run = |threads: usize| {
            plan.reset();
            tape.eval_batch_robust(
                TapeBackend::BitAccurate,
                &rows,
                &RobustOptions { threads, chunk_retries: 2, fault: Some(&plan) },
            )
        };
        let unchecked_rows: Vec<u64> = specs
            .iter()
            .filter(|&&(site, _, _)| FaultSite::ALL[site] == FaultSite::TapeReg)
            .map(|&(_, row, _)| row)
            .collect();

        let (out1, rep1) = run(1);
        assert_contained(&tape, &clean, &out1, &rep1.outcomes, &unchecked_rows);
        for threads in [4usize, 8] {
            let (out, rep) = run(threads);
            prop_assert!(
                out1.iter().zip(out.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                "outputs diverged at {} threads", threads
            );
            prop_assert_eq!(&rep1.outcomes, &rep.outcomes, "outcomes diverged at {} threads", threads);
            prop_assert_eq!(rep1.detections, rep.detections);
            assert_contained(&tape, &clean, &out, &rep.outcomes, &unchecked_rows);
        }

        // rows no spec targets are never quarantined. (They may still be
        // `Recovered`: a sticky-panic chunk-mate drags the whole chunk
        // down the per-row ladder — but always back to the clean bits,
        // which assert_contained has already verified.)
        let targeted: Vec<u64> = specs.iter().map(|&(_, r, _)| r).collect();
        for (r, o) in rep1.outcomes.iter().enumerate() {
            if !targeted.contains(&(r as u64)) {
                prop_assert!(
                    !matches!(o, RowOutcome::Quarantined { .. }),
                    "untargeted row {} quarantined", r
                );
            }
        }
    }
}

/// Every mantissa-path site, struck transiently on one row: the row is
/// flagged, recovered on the isolated-row rung, and bit-identical.
#[test]
fn every_mantissa_site_recovers_bit_identically() {
    let tape = fused_listing1();
    let rows = stimulus(&tape, ROWS);
    let clean = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);
    for site in FaultSite::MANTISSA {
        let plan = FaultPlan::single(0xFEED, site, 42);
        let (got, report) = tape.eval_batch_robust(
            TapeBackend::BitAccurate,
            &rows,
            &RobustOptions::with_fault(&plan),
        );
        assert_eq!(plan.fired(0), 1, "{site:?}: fault must strike");
        assert!(report.detections >= 1, "{site:?}: strike went undetected");
        assert_eq!(
            report.outcomes[42],
            RowOutcome::Recovered { backend: "row-bit" },
            "{site:?}"
        );
        assert!(
            clean
                .iter()
                .zip(got.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{site:?}: recovery not bit-identical"
        );
    }
}

/// Every plane-kernel site (CSA product word, transpose output,
/// classify mask), struck transiently on one row of a full chunk: the
/// scalar-vs-plane differential oracle flags exactly that row, the
/// ladder recovers it bit-identically, and no neighbor is disturbed.
/// This is the §10.5 plane-residue gap closed at the containment level:
/// the plane kernel runs no residue checks of its own, so the robust
/// executor re-derives every committed bit on the scalar path and uses
/// the plane result only as a cross-check.
#[test]
fn every_plane_site_is_caught_by_the_differential_oracle() {
    let tape = fused_listing1();
    let rows = stimulus(&tape, ROWS);
    let clean = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);
    for site in FaultSite::PLANE {
        // row 42 sits in the first full 64-row chunk, where the plane
        // kernel (and therefore the strike) is live
        let plan = FaultPlan::single(0xFEED, site, 42);
        let (got, report) = tape.eval_batch_robust(
            TapeBackend::BitAccurate,
            &rows,
            &RobustOptions::with_fault(&plan),
        );
        assert_eq!(plan.fired(0), 1, "{site:?}: fault must strike");
        assert!(report.detections >= 1, "{site:?}: strike went undetected");
        assert_eq!(
            report.outcomes[42],
            RowOutcome::Recovered { backend: "row-bit" },
            "{site:?}"
        );
        for (r, o) in report.outcomes.iter().enumerate() {
            if r != 42 {
                assert!(
                    matches!(o, RowOutcome::Ok),
                    "{site:?}: neighbor row {r} disturbed: {o:?}"
                );
            }
        }
        assert!(
            clean
                .iter()
                .zip(got.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{site:?}: recovery not bit-identical"
        );
    }
}

/// Even a *sticky* plane fault cannot force a quarantine: the committed
/// output never flows through the plane kernel in robust mode, so the
/// worst a permanently-broken plane path can do is demote every full
/// chunk's rows to `Recovered` — still bit-identical to a clean run.
#[test]
fn sticky_plane_fault_degrades_to_recovered_never_quarantined() {
    let tape = fused_listing1();
    let rows = stimulus(&tape, ROWS);
    let clean = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);
    let plan = FaultPlan::new(11).with_fault(FaultSpec::stuck(FaultSite::TransposeOut, 7));
    let (got, report) = tape.eval_batch_robust(
        TapeBackend::BitAccurate,
        &rows,
        &RobustOptions::with_fault(&plan),
    );
    assert!(
        report.quarantined().is_empty(),
        "plane fault quarantined a row"
    );
    assert!(report.detections >= 1);
    assert!(
        clean
            .iter()
            .zip(got.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "sticky plane fault leaked into committed output"
    );
}

/// The oracle backend is a real backend: bit-identical to bit-accurate
/// through the public batch entry point.
#[test]
fn oracle_backend_matches_bit_accurate_end_to_end() {
    let tape = fused_listing1();
    let rows = stimulus(&tape, ROWS);
    let bit = tape.eval_batch(TapeBackend::BitAccurate, &rows, 2);
    let oracle = tape.eval_batch(TapeBackend::Oracle, &rows, 2);
    assert!(
        bit.iter()
            .zip(oracle.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "oracle diverged from bit-accurate"
    );
}

/// A sticky executor panic exhausts the ladder for its row and only its
/// row; the quarantine diagnostic is structured (rule F001).
#[test]
fn sticky_panic_is_contained_and_structured() {
    let tape = fused_listing1();
    let rows = stimulus(&tape, ROWS);
    let clean = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);
    let plan = FaultPlan::new(3).with_fault(FaultSpec::stuck(FaultSite::ExecPanic, 100));
    let (got, report) = tape.eval_batch_robust(
        TapeBackend::BitAccurate,
        &rows,
        &RobustOptions::with_fault(&plan),
    );
    let quarantined = report.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, 100);
    assert!(quarantined[0].1.to_string().contains("F001"));
    assert_contained(&tape, &clean, &got, &report.outcomes, &[]);
    assert!(report.has_faults());
}
