//! Integration tests of every experiment's *shape claims*: the orderings
//! and magnitudes the paper reports must emerge from our models (absolute
//! values are model-calibrated; the relations are the reproduction).

use csfma_bench::{fig13, fig14, fig15, table1, table2};

/// The checked-in throughput artifact must carry the scheduler fields
/// the work-stealing executor reports (`chunk_size`, `steal` per entry,
/// the `eval_many` scenario section) — regenerating it with a binary
/// that silently dropped them would fail here before any reader does.
#[test]
fn bench_throughput_artifact_carries_scheduler_fields() {
    let json = std::fs::read_to_string("results/BENCH_throughput.json")
        .expect("results/BENCH_throughput.json is checked in");
    for field in ["\"chunk_size\":", "\"steal\":", "\"eval_many\":"] {
        assert!(
            json.contains(field),
            "BENCH_throughput.json lost the {field} field — regenerate with \
             `cargo run -q --release -p csfma-bench --bin throughput`"
        );
    }
    assert!(
        json.contains("\"speedup_vs_sequential\":"),
        "eval_many section must report speedup_vs_sequential"
    );
}

/// The checked-in serve artifact must carry the protocol-contract
/// fields the acceptance audit reports — latency percentiles, the
/// shed/deadline/quarantine ledger, the kill-mid-flight drill — and
/// must record a passing gate at 16 concurrent clients.
#[test]
fn bench_serve_artifact_carries_contract_fields() {
    let json = std::fs::read_to_string("results/BENCH_serve.json")
        .expect("results/BENCH_serve.json is checked in");
    for field in [
        "\"bench\": \"serve\"",
        "\"fault_seed\":",
        "\"p50_ms\":",
        "\"p99_ms\":",
        "\"rows_per_sec\":",
        "\"shed\":",
        "\"deadline\":",
        "\"quarantined_rows\":",
        "\"digest_mismatches\": 0",
        "\"unanswered\": 0",
        "\"kill_mid_flight\":",
        "\"server_survived\": true",
    ] {
        assert!(
            json.contains(field),
            "BENCH_serve.json lost the {field} field — regenerate with \
             `cargo run -q --release -p csfma-bench --bin serve_bench`"
        );
    }
    assert!(
        json.contains("\"clients\": 16"),
        "the acceptance scenario is 16 concurrent clients"
    );
    assert!(
        json.contains("\"pass\": true"),
        "the checked-in serve artifact must record a passing gate"
    );
    // the drill runs under fire: a clean-room seed would prove nothing
    assert!(!json.contains("\"fault_seed\": 0\n"));
}

#[test]
fn table1_orderings() {
    let rows = table1();
    let by_name: std::collections::HashMap<_, _> = rows.iter().map(|r| (r.name, r)).collect();
    let coregen = by_name["Xilinx CoreGen"];
    let flopoco = by_name["FloPoCo FPPipeline"];
    let pcs = by_name["PCS-FMA"];
    let fcs = by_name["FCS-FMA"];

    // exact matches: cycles and DSPs
    assert_eq!((coregen.cycles, coregen.dsps), (9, 13));
    assert_eq!((flopoco.cycles, flopoco.dsps), (11, 7));
    assert_eq!((pcs.cycles, pcs.dsps), (5, 21));
    assert_eq!((fcs.cycles, fcs.dsps), (3, 12));

    // every unit but FloPoCo clears the 200 MHz constraint
    assert!(flopoco.fmax_mhz < 200.0);
    for r in [coregen, pcs, fcs] {
        assert!(r.fmax_mhz >= 200.0, "{}: {:.0}", r.name, r.fmax_mhz);
    }
    // area ordering: FloPoCo smallest DSP use; our units LUT-heaviest;
    // FCS cheaper than PCS thanks to the pre-adders
    assert!(pcs.luts > coregen.luts && pcs.luts > flopoco.luts);
    assert!(fcs.luts < pcs.luts);
}

#[test]
fn fig13_speedups() {
    let rows = fig13();
    let best_competitor = rows[0].1.min(rows[1].1);
    let pcs = best_competitor / rows[2].1;
    let fcs = best_competitor / rows[3].1;
    // paper: "about 1.7x and 2.5x faster than their closest competitor"
    assert!((1.5..2.0).contains(&pcs), "PCS speedup {pcs:.2}");
    assert!((2.2..2.9).contains(&fcs), "FCS speedup {fcs:.2}");
}

#[test]
fn fig14_accuracy_ordering() {
    let rows = fig14(8, 48, 99);
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.name.starts_with(name))
            .unwrap_or_else(|| panic!("row {name}"))
            .avg_ulp
    };
    let d64 = get("CoreGen 64b");
    let d68 = get("CoreGen 68b");
    let golden = get("CoreGen 75b");
    // wider formats are strictly better, golden is near-exact
    assert!(d68 < d64 && golden < d68);
    // both of the paper's units clearly outperform standard double
    for name in ["PCS-FMA (ZD)", "PCS-FMA (early LZA)", "FCS-FMA"] {
        let e = get(name);
        assert!(e < d64 / 5.0, "{name}: {e} vs 64b {d64}");
    }
}

#[test]
fn table2_energy_ordering() {
    let rows = table2(400, 7);
    let x = rows[0].1;
    let flopoco = rows[1].1;
    let pcs = rows[2].1;
    let fcs = rows[3].1;
    // calibration anchor and shape: "a 4x to 5x increase in energy"
    assert!((0.4..0.7).contains(&x), "CoreGen anchor {x:.2} nJ");
    assert!(flopoco > x && flopoco < pcs);
    assert!(pcs / x > 3.5 && pcs / x < 6.0, "PCS ratio {:.1}", pcs / x);
    assert!(fcs / x > 3.5 && fcs / x < 6.0, "FCS ratio {:.1}", fcs / x);
    assert!(fcs < pcs, "pre-adders make FCS cheaper");
}

#[test]
fn fig15_schedule_reductions() {
    let rows = fig15();
    assert_eq!(rows.len(), 3);
    for r in &rows {
        // paper: 26.0% .. 50.1% reduction; allow the model's band
        assert!(
            (15.0..55.0).contains(&r.reduction_pcs()),
            "{}: PCS {:.1}%",
            r.solver,
            r.reduction_pcs()
        );
        assert!(
            (30.0..60.0).contains(&r.reduction_fcs()),
            "{}: FCS {:.1}%",
            r.solver,
            r.reduction_fcs()
        );
        assert!(r.reduction_fcs() > r.reduction_pcs(), "{}", r.solver);
        assert!(
            r.fma_units.0 <= 39 && r.fma_units.1 <= 39,
            "paper used up to 39 units"
        );
    }
    // complexity ordering
    assert!(rows[0].discrete < rows[1].discrete && rows[1].discrete < rows[2].discrete);
    // "higher performance gains using the FCS approach"
    let max_fcs = rows.iter().map(|r| r.reduction_fcs()).fold(0.0, f64::max);
    assert!(max_fcs > 35.0, "peak FCS reduction {max_fcs:.1}%");
}

#[test]
fn fig15_area_supports_selective_use_conclusion() {
    // the paper's conclusion: "these benefits come at the cost of
    // increased area ... a selective use is recommended" — the fused
    // operator pools must cost several times the discrete ones
    let rows = fig15();
    for r in &rows {
        assert!(
            r.pcs_area.luts > 3 * r.discrete_area.luts,
            "{}: PCS pool {} vs discrete {}",
            r.solver,
            r.pcs_area.luts,
            r.discrete_area.luts
        );
        assert!(
            r.fcs_area.luts < r.pcs_area.luts,
            "{}: pre-adders keep the FCS pool smaller",
            r.solver
        );
        assert!(
            r.fcs_area.dsps <= r.pcs_area.dsps,
            "{}: FCS uses fewer DSPs per unit",
            r.solver
        );
    }
}
