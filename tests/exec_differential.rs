//! Differential testing of the batch execution engine: for randomly
//! generated datapaths and adversarial stimulus (NaN, infinities, signed
//! zeros, subnormals, arbitrary bit patterns), the compiled tape must
//! reproduce the scalar reference interpreters **bit for bit** —
//! `TapeBackend::BitAccurate` against `eval_bit_accurate` and
//! `TapeBackend::F64` against `eval_f64`, on discrete graphs and on
//! graphs rewritten by the Fig. 12 fusion pass.

use csfma::hls::interp::{eval_bit_accurate, eval_f64};
use csfma::hls::{
    compile, compile_with_options, fuse_critical_paths, Cdfg, CompileOptions, FmaKind,
    FusionConfig, NodeId, Op, Tape, TapeBackend,
};
use proptest::prelude::*;
use std::collections::HashMap;

type OpPick = (usize, prop::sample::Index, prop::sample::Index);

/// Build a random straight-line graph: `n_inputs` inputs, then `ops`
/// arithmetic nodes whose arguments are sampled from everything built so
/// far, then outputs on the last node (always) and one sampled node.
fn random_graph(
    n_inputs: usize,
    consts: &[f64],
    ops: &[OpPick],
    extra_out: prop::sample::Index,
) -> Cdfg {
    let mut g = Cdfg::new();
    let mut nodes: Vec<NodeId> = (0..n_inputs).map(|i| g.input(format!("i{i}"))).collect();
    for &c in consts {
        nodes.push(g.constant(c));
    }
    for (op, ia, ib) in ops {
        let a = nodes[ia.index(nodes.len())];
        let b = nodes[ib.index(nodes.len())];
        let id = match op % 5 {
            0 => g.add(a, b),
            1 => g.sub(a, b),
            2 => g.mul(a, b),
            3 => g.div(a, b),
            _ => g.push(Op::Neg, vec![a]),
        };
        nodes.push(id);
    }
    g.output("last", *nodes.last().unwrap());
    g.output("probe", nodes[extra_out.index(nodes.len())]);
    g
}

/// Adversarial stimulus: every IEEE special class plus raw bit noise.
fn stimulus() -> impl Strategy<Value = f64> {
    (0usize..10, any::<u64>(), -1.0e6f64..1.0e6).prop_map(|(class, bits, x)| match class {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::from_bits(bits % (1u64 << 52)), // +subnormal
        6 => -f64::from_bits(bits % (1u64 << 52)), // -subnormal
        7 => f64::from_bits(bits),                // anything at all
        8 => f64::MIN_POSITIVE * (1.0 + (bits % 8) as f64), // underflow border
        _ => x,
    })
}

fn input_map(g: &Cdfg, tape: &Tape, vals: &[f64]) -> (Vec<f64>, HashMap<String, f64>) {
    let _ = g;
    let row: Vec<f64> = tape
        .input_names()
        .iter()
        .enumerate()
        .map(|(k, _)| vals[k % vals.len()])
        .collect();
    let map = tape
        .input_names()
        .iter()
        .cloned()
        .zip(row.iter().copied())
        .collect();
    (row, map)
}

fn assert_tape_matches(g: &Cdfg, vals: &[f64]) {
    let tape = compile(g).expect("generated graphs are valid");
    let (row, map) = input_map(g, &tape, vals);
    let mut scratch = tape.scratch();
    let mut got = vec![0.0; tape.num_outputs()];

    tape.eval_row(TapeBackend::BitAccurate, &row, &mut got, &mut scratch);
    let want = eval_bit_accurate(g, &map);
    for (name, v) in tape.output_names().iter().zip(&got) {
        prop_assert_eq!(
            v.to_bits(),
            want[name].to_bits(),
            "bit backend diverged on {} ({} vs {})",
            name,
            v,
            want[name]
        );
    }

    tape.eval_row(TapeBackend::F64, &row, &mut got, &mut scratch);
    let want = eval_f64(g, &map);
    for (name, v) in tape.output_names().iter().zip(&got) {
        prop_assert_eq!(
            v.to_bits(),
            want[name].to_bits(),
            "f64 backend diverged on {} ({} vs {})",
            name,
            v,
            want[name]
        );
    }
}

/// Compile `g` with and without the post-gate optimizer and require the
/// two tapes to be **byte-identical observables**: same positional input
/// and output layout, and bitwise-equal batch results on both backends.
/// This is the contract that lets `--no-opt` serve as a live oracle for
/// the optimizer.
fn assert_optimizer_equivalent(g: &Cdfg, vals: &[f64]) {
    let opt = compile(g).expect("generated graphs are valid");
    let plain = compile_with_options(
        g,
        CompileOptions {
            optimize: false,
            ..CompileOptions::default()
        },
    )
    .expect("same gate, same graph");
    prop_assert_eq!(opt.input_names(), plain.input_names());
    prop_assert_eq!(opt.output_names(), plain.output_names());
    let ni = opt.num_inputs();
    let n_rows = 7usize;
    let rows: Vec<f64> = (0..n_rows * ni).map(|i| vals[i % vals.len()]).collect();
    for backend in [TapeBackend::BitAccurate, TapeBackend::F64] {
        let a = opt.eval_batch(backend, &rows, 2);
        let b = plain.eval_batch(backend, &rows, 2);
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{:?}: optimized tape diverged at flat output {} ({} vs {})",
                backend,
                i,
                x,
                y
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Discrete graphs: every IEEE operator, adversarial values.
    #[test]
    fn tape_matches_oracles_on_random_graphs(
        n_inputs in 1usize..5,
        consts in prop::collection::vec(stimulus(), 0..3),
        ops in prop::collection::vec((0usize..5, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..40),
        extra_out: prop::sample::Index,
        vals in prop::collection::vec(stimulus(), 1..8),
    ) {
        let g = random_graph(n_inputs, &consts, &ops, extra_out);
        assert_tape_matches(&g, &vals);
    }

    /// The same graphs pushed through the fusion pass: Fma, IeeeToCs and
    /// CsToIeee nodes now appear in the tape. Finite stimulus here — the
    /// carry-save chain's special-value contract is pinned separately by
    /// the unit-level matrix tests.
    #[test]
    fn tape_matches_oracles_on_fused_graphs(
        n_inputs in 1usize..5,
        ops in prop::collection::vec((0usize..5, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 4..30),
        extra_out: prop::sample::Index,
        kind_pick: bool,
        vals in prop::collection::vec(-1.0e4f64..1.0e4, 1..8),
    ) {
        let g = random_graph(n_inputs, &[], &ops, extra_out);
        let kind = if kind_pick { FmaKind::Pcs } else { FmaKind::Fcs };
        let fused = fuse_critical_paths(&g, &FusionConfig::new(kind)).fused;
        assert_tape_matches(&fused, &vals);
    }

    /// Optimizer equivalence on discrete graphs under full adversarial
    /// stimulus: random constants exercise the fold guard (NaN-producing
    /// and non-canonical constants must NOT fold), repeated argument
    /// sampling exercises CSE, and the unsampled tail of the node list
    /// exercises DCE + dead-slot elimination.
    #[test]
    fn optimizer_preserves_bytes_on_random_graphs(
        n_inputs in 1usize..5,
        consts in prop::collection::vec(stimulus(), 0..4),
        ops in prop::collection::vec((0usize..5, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..40),
        extra_out: prop::sample::Index,
        vals in prop::collection::vec(stimulus(), 1..8),
    ) {
        let g = random_graph(n_inputs, &consts, &ops, extra_out);
        assert_optimizer_equivalent(&g, &vals);
    }

    /// Optimizer equivalence on fused graphs: Fma / conversion nodes go
    /// through CSE and reordering too, and the carry-save slot banks must
    /// come out byte-compatible.
    #[test]
    fn optimizer_preserves_bytes_on_fused_graphs(
        n_inputs in 1usize..5,
        ops in prop::collection::vec((0usize..5, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 4..30),
        extra_out: prop::sample::Index,
        kind_pick: bool,
        vals in prop::collection::vec(stimulus(), 1..8),
    ) {
        let g = random_graph(n_inputs, &[], &ops, extra_out);
        let kind = if kind_pick { FmaKind::Pcs } else { FmaKind::Fcs };
        let fused = fuse_critical_paths(&g, &FusionConfig::new(kind)).fused;
        assert_optimizer_equivalent(&fused, &vals);
    }

    /// Fused Listing 1 under full adversarial stimulus: the FMA units'
    /// special-value handling must agree between tape and oracle too.
    #[test]
    fn fused_listing1_matches_on_special_values(
        vals in prop::collection::vec(stimulus(), 10),
        kind_pick: bool,
    ) {
        let g = csfma::hls::parse_program(
            "x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;",
        ).unwrap();
        let kind = if kind_pick { FmaKind::Pcs } else { FmaKind::Fcs };
        let fused = fuse_critical_paths(&g, &FusionConfig::new(kind)).fused;
        assert_tape_matches(&fused, &vals);
    }
}
