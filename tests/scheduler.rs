//! Scheduler-torture suite for the work-stealing deterministic executor
//! (`csfma_core::batch`, DESIGN.md §14).
//!
//! The scheduler's contract is brutal and simple: **steal order must not
//! exist** as far as output bytes are concerned. Every test here attacks
//! that contract from a different angle — thread-count sweeps over the
//! rows × threads grid, fault plans that make chunks panic mid-steal,
//! a pathologically skewed `eval_many` mix, and direct claim/steal races
//! on the [`IndexDeque`] itself — and accepts nothing short of
//! byte-identical results against the 1-thread oracle.

use csfma::hls::{
    compile, eval_many, fuse_critical_paths, parse_program, Cdfg, EvalManyRequest, FmaKind,
    FusionConfig, RobustOptions, RowOutcome, Tape, TapeBackend,
};
use csfma_core::batch::{adaptive_grain, steal_indexed, IndexDeque, CHUNK_ROWS};
use csfma_core::fault::{FaultPlan, FaultSite, FaultSpec};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// The rows × threads grid the ISSUE pins: chunk-edge sizes (63/64/65),
/// a single row, a multi-chunk ragged batch and a large batch.
const ROW_SET: [usize; 6] = [1, 63, 64, 65, 127, 4096];
const THREAD_SET: [usize; 4] = [1, 2, 4, 8];

/// The listing-1 source used throughout the repo's suites.
const LISTING1: &str = "x1 = a*b + c*d;\nx2 = e*f + g*x1;\nout x3 = h*i + k*x2;\n";

fn graph(pick: usize) -> Cdfg {
    let g = parse_program(LISTING1).unwrap();
    match pick % 3 {
        0 => g,
        1 => fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused,
        _ => fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs)).fused,
    }
}

fn tape(pick: usize) -> Tape {
    compile(&graph(pick)).expect("torture graphs compile")
}

/// splitmix64-driven stimulus: mostly finite values in a wide range,
/// with the occasional special (the engines' special-value semantics are
/// pinned by their own suites; here they only have to be *deterministic*).
fn stimulus(n_vals: usize, seed: u64) -> Vec<f64> {
    let mut s = seed;
    (0..n_vals)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            match z % 64 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => -0.0,
                3 => f64::from_bits(z >> 12), // subnormal-ish
                _ => ((z >> 40) as f64) * 0.0625 - 524_288.0,
            }
        })
        .collect()
}

/// FNV-1a over output bit patterns — the digest the CLI prints.
fn digest(xs: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (graph, rows, threads, backend, seed) combination is
    /// byte-identical to the 1-thread oracle.
    #[test]
    fn any_combination_matches_single_thread_oracle(
        graph_pick in 0usize..3,
        rows_idx in 0usize..6,
        threads_idx in 0usize..4,
        bit_backend: bool,
        seed: u64,
    ) {
        let tape = tape(graph_pick);
        let n = ROW_SET[rows_idx];
        let threads = THREAD_SET[threads_idx];
        let backend = if bit_backend { TapeBackend::BitAccurate } else { TapeBackend::F64 };
        let rows = stimulus(n * tape.num_inputs(), seed);
        let oracle = tape.eval_batch(backend, &rows, 1);
        let got = tape.eval_batch(backend, &rows, threads);
        prop_assert!(bits_equal(&oracle, &got),
            "graph {graph_pick} backend {backend:?} rows {n} threads {threads} diverged");
    }

    /// The robust executor under an active fault plan: outputs, per-row
    /// outcomes and detection counts are all thread-invariant even when
    /// chunks panic and retry on stealing workers.
    #[test]
    fn robust_with_fault_plan_is_thread_invariant(
        graph_pick in 1usize..3, // fused graphs: the checked FMA path
        rows_idx in 0usize..5,   // the 4096 ladder would dominate runtime
        seed: u64,
    ) {
        let tape = tape(graph_pick);
        let n = ROW_SET[rows_idx];
        let rows = stimulus(n * tape.num_inputs(), seed);
        let plan = FaultPlan::new(seed)
            .with_fault(FaultSpec::transient(FaultSite::MulCarry, seed % n as u64))
            .with_fault(FaultSpec::stuck(FaultSite::PcsCarry, seed / 3 % n as u64))
            .with_fault(FaultSpec::stuck(FaultSite::ExecPanic, seed / 7 % n as u64));
        let run = |threads: usize| {
            plan.reset();
            tape.eval_batch_robust(
                TapeBackend::BitAccurate,
                &rows,
                &RobustOptions { threads, chunk_retries: 2, fault: Some(&plan) },
            )
        };
        let (out1, rep1) = run(1);
        for &threads in &THREAD_SET[1..] {
            let (out, rep) = run(threads);
            prop_assert!(bits_equal(&out1, &out), "outputs diverged at {threads} threads");
            prop_assert_eq!(&rep1.outcomes, &rep.outcomes);
            prop_assert_eq!(rep1.detections, rep.detections);
        }
    }
}

/// Exhaustive cheap sweep: the full rows × threads grid on the f64
/// backend for all three graphs (the bit-backend grid is sampled by the
/// proptest above — this one is exact and fast).
#[test]
fn f64_grid_is_byte_identical_at_every_thread_count() {
    for pick in 0..3 {
        let tape = tape(pick);
        for &n in &ROW_SET {
            let rows = stimulus(n * tape.num_inputs(), 0xA5A5 + n as u64);
            let oracle = tape.eval_batch(TapeBackend::F64, &rows, 1);
            for &threads in &THREAD_SET {
                let got = tape.eval_batch(TapeBackend::F64, &rows, threads);
                assert!(
                    bits_equal(&oracle, &got),
                    "graph {pick} rows {n} threads {threads}"
                );
            }
        }
    }
}

/// Pathological skew through `eval_many`: one heavy PCS bit-backend
/// request next to a crowd of tiny f64 requests. The call must complete
/// (no starvation, no deadlock) and every request's digest must equal
/// its standalone 1-thread `eval_batch` digest.
#[test]
fn pathological_skew_eval_many_matches_standalone_digests() {
    let heavy_graph = graph(1); // pcs-fused listing1
    let tiny_graph = graph(0); // discrete listing1
    let ni = tape(0).num_inputs(); // fusion preserves the input set
    let heavy_rows = stimulus(2048 * ni, 0xBEEF);
    let tiny_rows: Vec<Vec<f64>> = (0..16)
        .map(|i| stimulus(64 * ni, 0x1000 + i as u64))
        .collect();

    let mut reqs = vec![EvalManyRequest::new(
        &heavy_graph,
        TapeBackend::BitAccurate,
        &heavy_rows,
    )];
    for rows in &tiny_rows {
        reqs.push(EvalManyRequest::new(&tiny_graph, TapeBackend::F64, rows));
    }

    let results = eval_many(&reqs, 8);
    assert_eq!(results.len(), reqs.len());
    let mut digests = Vec::new();
    for (req, res) in reqs.iter().zip(&results) {
        let out = res.as_ref().expect("all torture requests compile");
        let standalone = out.tape.eval_batch(req.backend, req.rows, 1);
        assert!(
            bits_equal(&standalone, &out.outputs),
            "eval_many output diverged from standalone eval_batch"
        );
        digests.push(digest(&out.outputs));
    }
    // and the whole multi-graph call is itself thread-invariant
    let again = eval_many(&reqs, 1);
    for (res, want) in again.iter().zip(&digests) {
        assert_eq!(digest(&res.as_ref().unwrap().outputs), *want);
    }
}

/// Satellite-4 mutation test: rows poisoned by a sticky executor panic
/// must quarantine identically under stealing (8 threads) and under the
/// fixed-chunk in-order oracle (1 thread) — same rows, same poison, same
/// neighbors untouched — and the process-wide quarantine counters must
/// tick on the stealing path too.
#[test]
fn poisoned_chunk_quarantines_same_rows_under_stealing() {
    let tape = tape(1);
    let n = 4 * CHUNK_ROWS + 17;
    let rows = stimulus(n * tape.num_inputs(), 0xD00D);
    // sticky ExecPanic rows spread over distinct chunks, incl. the tail
    let poisoned = [5usize, 130, 200, 4 * CHUNK_ROWS + 3];
    let mut plan = FaultPlan::new(0x5EED);
    for &r in &poisoned {
        plan = plan.with_fault(FaultSpec::stuck(FaultSite::ExecPanic, r as u64));
    }
    let run = |threads: usize| {
        plan.reset();
        let before = csfma::hls::robust_counts();
        let (out, rep) = tape.eval_batch_robust(
            TapeBackend::BitAccurate,
            &rows,
            &RobustOptions {
                threads,
                chunk_retries: 1,
                fault: Some(&plan),
            },
        );
        let after = csfma::hls::robust_counts();
        (out, rep, after.rows_quarantined - before.rows_quarantined)
    };
    let (out_fixed, rep_fixed, q_fixed) = run(1);
    let (out_steal, rep_steal, q_steal) = run(8);

    let rows_of = |rep: &csfma::hls::BatchReport| -> Vec<usize> {
        rep.quarantined().iter().map(|(r, _)| *r).collect()
    };
    let fixed_rows = rows_of(&rep_fixed);
    assert_eq!(
        fixed_rows,
        poisoned.to_vec(),
        "fixed-chunk oracle quarantined the wrong rows"
    );
    assert_eq!(
        fixed_rows,
        rows_of(&rep_steal),
        "stealing quarantined different rows than fixed-chunk"
    );
    assert!(bits_equal(&out_fixed, &out_steal));
    for &r in &poisoned {
        assert!(out_steal[r].is_nan(), "row {r} must be poisoned");
        assert!(matches!(
            rep_steal.outcomes[r],
            RowOutcome::Quarantined { .. }
        ));
    }
    // counters were threaded through whichever worker ran the chunk
    // (lower bound: other tests in this binary may tick them too)
    assert!(
        q_fixed >= poisoned.len() as u64,
        "fixed path counted {q_fixed}"
    );
    assert!(
        q_steal >= poisoned.len() as u64,
        "stealing path counted {q_steal}"
    );
}

/// Barrier-forced interleaving on one deque: an owner popping from the
/// front in lockstep with a thief stealing from the back, every round
/// synchronized, must partition the index space exactly.
#[test]
fn deque_claim_steal_race_is_exactly_once() {
    const N: usize = 240;
    for grain in [1usize, 2, 7] {
        let deque = IndexDeque::new(0, N);
        let start = Barrier::new(2);
        let round = Barrier::new(2);
        let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        // one drained-flag per party, monotone (the deque only shrinks,
        // so a party that once saw None sees None forever); both parties
        // read BOTH flags after the barrier, so they exit the lockstep
        // loop on the same round — neither can strand the other mid-wait
        let drained = [
            std::sync::atomic::AtomicBool::new(false),
            std::sync::atomic::AtomicBool::new(false),
        ];
        let party = |me: usize, claim: &dyn Fn() -> Option<(usize, usize)>| {
            start.wait();
            loop {
                match claim() {
                    Some((s, l)) => {
                        for h in &hits[s..s + l] {
                            h.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => drained[me].store(true, Ordering::SeqCst),
                }
                round.wait();
                if drained[0].load(Ordering::SeqCst) && drained[1].load(Ordering::SeqCst) {
                    break;
                }
                round.wait();
            }
        };
        std::thread::scope(|scope| {
            // owner pops the front in lockstep with the thief stealing
            // the back: every round the two CAS loops race on one word
            scope.spawn(|| party(0, &|| deque.pop_front(grain)));
            scope.spawn(|| party(1, &|| deque.steal_back()));
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "grain {grain}: index {i} claimed {} times",
                h.load(Ordering::Relaxed)
            );
        }
    }
}

/// Unsynchronized hammer: 8 threads racing pop/steal as fast as they
/// can on one shared deque must still claim every index exactly once.
#[test]
fn deque_hammer_partitions_under_free_running_contention() {
    const N: usize = 10_000;
    for trial in 0..8u64 {
        let deque = IndexDeque::new(0, N);
        let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let deque = &deque;
                let hits = &hits;
                scope.spawn(move || loop {
                    // even threads act as owners, odd threads as thieves
                    let got = if t % 2 == 0 {
                        deque.pop_front(3 + (trial as usize % 5))
                    } else {
                        deque.steal_back()
                    };
                    match got {
                        Some((s, l)) => {
                            for h in &hits[s..s + l] {
                                h.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        None => break,
                    }
                });
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "trial {trial}: index {i}");
        }
    }
}

/// `steal_indexed` exactly-once under repeated forced contention, plus
/// sanity of the stats it reports.
#[test]
fn steal_indexed_is_exactly_once_and_stats_are_sane() {
    for round in 0..20usize {
        let n = 64 + round * 37;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let stats = steal_indexed(
            n,
            8,
            || (),
            |_, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "round {round}: item {i}");
        }
        assert_eq!(stats.items, n as u64);
        assert!(stats.workers >= 1 && stats.workers <= 8);
        assert!(stats.grain >= 1);
        assert!(stats.claims >= 1);
    }
}

/// The grain policy is a pure function (cannot perturb output bytes) and
/// respects its documented bounds.
#[test]
fn adaptive_grain_is_pure_and_never_starves_small_batches() {
    for n in 0..300 {
        for w in 1..=16 {
            let g = adaptive_grain(n, w);
            assert_eq!(g, adaptive_grain(n, w), "policy must be deterministic");
            assert!(g >= 1);
            if w > 1 && n > 0 {
                // small batches: enough claimable units for every worker
                // the scheduler will actually field
                let fielded = w.min(n.div_ceil(g));
                assert!(fielded * g <= n.max(g), "n={n} w={w} g={g}");
            }
        }
    }
}
