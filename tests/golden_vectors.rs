//! Golden-vector regression suite: pinned bit patterns for the FMA units
//! and the compiled datapaths.
//!
//! The differential suites (`exec_differential.rs`, the in-crate matrix
//! tests) prove *internal* consistency — tape vs oracle, optimized vs
//! unoptimized. They cannot catch a change that shifts every evaluator
//! the same way. The corpus under `tests/golden/*.json` pins the actual
//! output bits of
//!
//! * the behavioral FMA units (classic, PCS, FCS; single operations and
//!   three-link carry-save chains) on recorded operands, including IEEE
//!   special values,
//! * the batch engine's outputs for every example datapath ×
//!   fusion mode × backend on recorded input rows, and
//! * the bit-plane chunk kernel (DESIGN.md §13): full packed transport
//!   words for 64-lane chained chunks on every carry-save format — a
//!   companion mutation test arms the kernel's corruption hook and
//!   proves this corpus catches a single flipped plane word,
//!
//! so any change to rounding, normalization, transport-format geometry
//! or tape lowering that alters even one result bit fails here with the
//! exact case identified.
//!
//! Regenerate after an *intentional* semantics change with:
//!
//! ```sh
//! cargo test --test golden_vectors -- --ignored regenerate_golden_files
//! ```
//!
//! and review the resulting JSON diff like any other code change. Values
//! are stored as hex `f64` bit patterns — the files survive any
//! formatting of decimal floats.

use csfma::core::{plane_fma_chunk, ClassicFma, CsFmaFormat, CsFmaUnit, CsOperand, PlaneScratch};
use csfma::hls::{compile, fuse_critical_paths, parse_program, FmaKind, FusionConfig, TapeBackend};
use csfma::softfloat::{FpFormat, Round, SoftFloat};
use std::fmt::Write as _;
use std::path::PathBuf;

const F: FpFormat = FpFormat::BINARY64;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn example_source(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/datapaths")
        .join(format!("{name}.csfma"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// Minimal JSON subset parser (objects, arrays, strings without escapes,
// numbers, true/false/null) — the workspace deliberately has no serde.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key {key:?}")),
            other => panic!("expected object with key {key:?}, got {other:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn str_(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    /// Decode a `"0x…"` hex bit-pattern string into the f64 it encodes.
    fn bits(&self) -> f64 {
        let s = self.str_();
        let hex = s
            .strip_prefix("0x")
            .unwrap_or_else(|| panic!("bad bits {s:?}"));
        f64::from_bits(
            u64::from_str_radix(hex, 16).unwrap_or_else(|e| panic!("bad bits {s:?}: {e}")),
        )
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = JsonParser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value();
        p.ws();
        assert!(p.i == p.b.len(), "trailing garbage at byte {}", p.i);
        v
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && (self.b[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        self.ws();
        assert!(
            self.i < self.b.len() && self.b[self.i] == c,
            "expected {:?} at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn value(&mut self) -> Json {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Json::Obj(fields);
                }
                loop {
                    self.ws();
                    let key = self.string();
                    self.eat(b':');
                    fields.push((key, self.value()));
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Json::Obj(fields);
                        }
                        other => panic!("expected ',' or '}}', got {other:?}"),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Json::Arr(items);
                }
                loop {
                    items.push(self.value());
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Json::Arr(items);
                        }
                        other => panic!("expected ',' or ']', got {other:?}"),
                    }
                }
            }
            Some(b'"') => Json::Str(self.string()),
            Some(b't') => {
                self.keyword("true");
                Json::Bool(true)
            }
            Some(b'f') => {
                self.keyword("false");
                Json::Bool(false)
            }
            Some(b'n') => {
                self.keyword("null");
                Json::Null
            }
            _ => {
                let start = self.i;
                while self.i < self.b.len()
                    && matches!(
                        self.b[self.i],
                        b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                    )
                {
                    self.i += 1;
                }
                let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
                Json::Num(
                    text.parse()
                        .unwrap_or_else(|e| panic!("bad number {text:?}: {e}")),
                )
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            assert!(
                self.b[self.i] != b'\\',
                "escapes unsupported (byte {})",
                self.i
            );
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i])
            .unwrap()
            .to_string();
        self.eat(b'"');
        s
    }

    fn keyword(&mut self, kw: &str) {
        assert!(
            self.b[self.i..].starts_with(kw.as_bytes()),
            "byte {}",
            self.i
        );
        self.i += kw.len();
    }
}

fn load(file: &str) -> Json {
    let path = golden_dir().join(file);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden corpus {}: {e}\n\
             regenerate with: cargo test --test golden_vectors -- --ignored regenerate_golden_files",
            path.display()
        )
    });
    JsonParser::parse(&text)
}

fn hex(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

// ---------------------------------------------------------------------
// The functions under pin
// ---------------------------------------------------------------------

const UNIT_KINDS: &[&str] = &["classic", "pcs", "fcs", "pcs-chain3", "fcs-chain3"];

fn cs_format(unit: &str) -> CsFmaFormat {
    if unit.starts_with("pcs") {
        CsFmaFormat::PCS_55_ZD
    } else {
        CsFmaFormat::FCS_29_LZA
    }
}

/// Evaluate one unit-level golden case: `r = a + b*c` through the named
/// unit, rounded back to binary64 at the end (after three chained links
/// for the `*-chain3` variants, which keep the accumulator in the
/// carry-save transport format in between, Sec. III-C).
fn run_unit_case(unit: &str, a: f64, b: f64, c: f64) -> f64 {
    if unit == "classic" {
        let fma = ClassicFma::new(Round::NearestEven);
        return fma
            .fma(
                &SoftFloat::from_f64(F, a),
                &SoftFloat::from_f64(F, b),
                &SoftFloat::from_f64(F, c),
            )
            .to_f64();
    }
    let fmt = cs_format(unit);
    let cs_unit = CsFmaUnit::new(fmt);
    let bv = SoftFloat::from_f64(F, b);
    let mulc = CsOperand::from_f64(c, fmt);
    let mut acc = CsOperand::from_f64(a, fmt);
    let links = if unit.ends_with("chain3") { 3 } else { 1 };
    for _ in 0..links {
        acc = cs_unit.fma(&acc, &bv, &mulc);
    }
    acc.to_ieee(F, Round::NearestEven).to_f64()
}

const DATAPATHS: &[&str] = &["listing1", "horner8", "dot6"];
const FUSIONS: &[&str] = &["none", "pcs", "fcs"];
const GOLDEN_ROWS: usize = 8;

fn build_graph(name: &str, fuse: &str) -> csfma::hls::Cdfg {
    let g = parse_program(&example_source(name)).expect("example programs parse");
    match fuse {
        "none" => g,
        "pcs" => fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused,
        "fcs" => fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs)).fused,
        other => panic!("unknown fusion {other:?}"),
    }
}

fn backend_of(name: &str) -> TapeBackend {
    match name {
        "bit" => TapeBackend::BitAccurate,
        "f64" => TapeBackend::F64,
        other => panic!("unknown backend {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Bit-plane kernel vectors: 64-lane chunks chained through two links,
// full packed transport words pinned per lane (DESIGN.md §13)
// ---------------------------------------------------------------------

const PLANE_FORMATS: &[(&str, CsFmaFormat)] = &[
    ("pcs-55-zd", CsFmaFormat::PCS_55_ZD),
    ("pcs-58-lza", CsFmaFormat::PCS_58_LZA),
    ("fcs-29-lza", CsFmaFormat::FCS_29_LZA),
    ("pcs-27-sp", CsFmaFormat::PCS_27_SP),
    ("fcs-15-sp", CsFmaFormat::FCS_15_SP),
];
const PLANE_CHUNK: usize = 64;
const PLANE_LINKS: usize = 2;

fn plane_format(name: &str) -> CsFmaFormat {
    PLANE_FORMATS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| *f)
        .unwrap_or_else(|| panic!("unknown plane format {name:?}"))
}

fn plane_b_format(fmt: &CsFmaFormat) -> FpFormat {
    if fmt.b_sig_bits == 24 {
        FpFormat::BINARY32
    } else {
        FpFormat::BINARY64
    }
}

/// Hex-encode a packed transport word (arbitrary width), MSB nibble
/// first — the pinned representation of a whole lane result.
fn bits_hex(b: &csfma::bits::Bits) -> String {
    let w = b.width();
    let mut s = String::from("0x");
    for n in (0..w.div_ceil(4)).rev() {
        let mut v = 0u32;
        for i in 0..4 {
            let pos = n * 4 + i;
            if pos < w && b.bit(pos) {
                v |= 1 << i;
            }
        }
        s.push(char::from_digit(v, 16).unwrap());
    }
    s
}

/// Evaluate one plane-kernel golden case: a 64-lane chunk chained
/// through the bit-plane kernel (results feed back as the accumulator),
/// returning the packed transport word of every lane after the final
/// link plus the lane exponents.
fn run_plane_case(fmt: CsFmaFormat, a: &[f64], b: &[f64], c: &[f64]) -> Vec<String> {
    let unit = CsFmaUnit::new(fmt);
    let bfmt = plane_b_format(&fmt);
    // bank layout: slot 0 = acc, slot 1 = mulc, slot 2 = dst
    let mut bank = vec![CsOperand::zero(fmt, false); 3 * PLANE_CHUNK];
    for k in 0..PLANE_CHUNK {
        bank[k] = CsOperand::from_ieee(&SoftFloat::from_f64(bfmt, a[k]), fmt);
        bank[PLANE_CHUNK + k] = CsOperand::from_ieee(&SoftFloat::from_f64(bfmt, c[k]), fmt);
    }
    let bv: Vec<SoftFloat> = b.iter().map(|&v| SoftFloat::from_f64(bfmt, v)).collect();
    let mut scratch = PlaneScratch::default();
    for _ in 0..PLANE_LINKS {
        plane_fma_chunk(
            &unit,
            &mut bank,
            0,
            PLANE_CHUNK,
            2 * PLANE_CHUNK,
            &bv,
            PLANE_CHUNK,
            &mut scratch,
        );
        for k in 0..PLANE_CHUNK {
            bank[k] = bank[2 * PLANE_CHUNK + k].clone();
        }
    }
    (0..PLANE_CHUNK)
        .map(|k| {
            let r = &bank[2 * PLANE_CHUNK + k];
            format!("{}|e{}", bits_hex(&r.pack()), r.exp().unbiased())
        })
        .collect()
}

/// Recompute every plane-kernel case and report mismatches against the
/// pinned corpus (empty = corpus holds). Factored out so the mutation
/// test below can assert the corpus *fails* under a seeded defect.
fn plane_golden_mismatches(doc: &Json) -> Vec<String> {
    let mut mismatches = Vec::new();
    for case in doc.get("cases").arr() {
        let name = case.get("format").str_();
        let fmt = plane_format(name);
        let a: Vec<f64> = case.get("a").arr().iter().map(Json::bits).collect();
        let b: Vec<f64> = case.get("b").arr().iter().map(Json::bits).collect();
        let c: Vec<f64> = case.get("c").arr().iter().map(Json::bits).collect();
        let want: Vec<&str> = case.get("packed").arr().iter().map(Json::str_).collect();
        let got = run_plane_case(fmt, &a, &b, &c);
        assert_eq!(got.len(), want.len(), "{name}: lane count drifted");
        for (k, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            if g != w {
                mismatches.push(format!("{name} lane {k}: got {g}, pinned {w}"));
            }
        }
    }
    mismatches
}

/// Deterministic per-format stimulus for the plane corpus: lane 0 stays
/// a plain normal triple (the corruption hook flips a lane-0 mantissa
/// bit, which must never be masked by the exception path), the rest mix
/// specials, subnormals and wide-exponent normals.
fn plane_stimulus(fmt_name: &str) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut state = 0x91a9_e000_0000_0000u64 ^ fmt_name.len() as u64;
    let mut lane = |fixed: f64| -> Vec<f64> {
        let mut v = vec![fixed];
        v.extend((1..PLANE_CHUNK).map(|_| gen_f64(&mut state)));
        v
    };
    (lane(1.5), lane(-2.25), lane(3.0625))
}

// ---------------------------------------------------------------------
// Deterministic stimulus for regeneration (recorded into the corpus, so
// the checks never depend on this generator staying fixed)
// ---------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn gen_f64(state: &mut u64) -> f64 {
    let r = splitmix(state);
    match r % 12 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::from_bits(splitmix(state) % (1u64 << 52)), // +subnormal
        6 => -f64::from_bits(splitmix(state) % (1u64 << 52)), // -subnormal
        7 => f64::MIN_POSITIVE * ((r >> 32) % 7 + 1) as f64, // underflow border
        _ => {
            // finite normal in a ±2^100 exponent band
            let m = splitmix(state);
            let sign = m & (1u64 << 63);
            let exp = 923 + splitmix(state) % 200;
            let frac = m & ((1u64 << 52) - 1);
            f64::from_bits(sign | (exp << 52) | frac)
        }
    }
}

// ---------------------------------------------------------------------
// The tests
// ---------------------------------------------------------------------

#[test]
fn golden_fma_unit_vectors_hold() {
    let doc = load("fma_units.json");
    let cases = doc.get("cases").arr();
    assert!(
        cases.len() >= 100,
        "suspiciously small corpus: {}",
        cases.len()
    );
    for (i, case) in cases.iter().enumerate() {
        let unit = case.get("unit").str_();
        let (a, b, c) = (
            case.get("a").bits(),
            case.get("b").bits(),
            case.get("c").bits(),
        );
        let want = case.get("r").bits();
        let got = run_unit_case(unit, a, b, c);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "golden case {i} ({unit}): fma(a={a:e}, b={b:e}, c={c:e}) = {got:e}, pinned {want:e}"
        );
    }
}

#[test]
fn golden_datapath_vectors_hold() {
    let doc = load("datapaths.json");
    for case in doc.get("cases").arr() {
        let name = case.get("name").str_();
        let fuse = case.get("fuse").str_();
        let backend = backend_of(case.get("backend").str_());
        let tape = compile(&build_graph(name, fuse)).expect("examples are checker-clean");
        let inputs: Vec<f64> = case.get("inputs").arr().iter().map(Json::bits).collect();
        let want: Vec<f64> = case.get("outputs").arr().iter().map(Json::bits).collect();
        assert_eq!(
            inputs.len(),
            GOLDEN_ROWS * tape.num_inputs(),
            "{name}/{fuse}: row layout drifted"
        );
        let got = tape.eval_batch(backend, &inputs, 1);
        assert_eq!(got.len(), want.len(), "{name}/{fuse}: output arity drifted");
        for (k, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{name} fuse={fuse} backend={backend:?}: flat output {k} = {g:e}, pinned {w:e}"
            );
        }
    }
}

#[test]
fn golden_plane_kernel_vectors_hold() {
    let doc = load("plane_kernel.json");
    let mismatches = plane_golden_mismatches(&doc);
    assert!(
        mismatches.is_empty(),
        "plane-kernel corpus violated:\n{}",
        mismatches.join("\n")
    );
}

/// Mutation coverage of the corpus itself: arm the kernel's one-shot
/// corruption hook (flips a single bit-plane word — lane 0, mantissa
/// sum bit 0 — after the block select) and require the golden suite to
/// notice. If this test fails, the corpus has a blind spot.
#[test]
fn golden_suite_catches_plane_word_corruption() {
    use std::sync::atomic::Ordering;
    let doc = load("plane_kernel.json");
    csfma::core::plane::CORRUPT_NEXT_PLANE_WORD.store(true, Ordering::Relaxed);
    let mismatches = plane_golden_mismatches(&doc);
    // one-shot hook: consumed by the first chunk evaluation
    assert!(
        !csfma::core::plane::CORRUPT_NEXT_PLANE_WORD.load(Ordering::Relaxed),
        "corruption hook was never consumed"
    );
    assert!(
        !mismatches.is_empty(),
        "golden plane corpus failed to catch a flipped bit-plane word"
    );
    assert!(
        mismatches.iter().any(|m| m.contains("lane 0")),
        "corruption flips lane 0, but the mismatch landed elsewhere: {mismatches:?}"
    );
}

/// Rebuild `tests/golden/*.json` from the current implementation. Kept
/// `#[ignore]`d so a routine `cargo test` can never silently re-pin the
/// corpus; run it explicitly after an intentional semantics change.
#[test]
#[ignore = "regenerates the golden corpus from the current implementation"]
fn regenerate_golden_files() {
    std::fs::create_dir_all(golden_dir()).expect("create tests/golden");

    // --- unit vectors ---
    let mut s = String::from("{\n  \"cases\": [\n");
    let mut state = 0x5eed_0fcf_517a_2026u64;
    let mut first = true;
    for &unit in UNIT_KINDS {
        for _ in 0..40 {
            let (a, b, c) = (
                gen_f64(&mut state),
                gen_f64(&mut state),
                gen_f64(&mut state),
            );
            let r = run_unit_case(unit, a, b, c);
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "    {{\"unit\": \"{unit}\", \"a\": \"{}\", \"b\": \"{}\", \"c\": \"{}\", \"r\": \"{}\"}}",
                hex(a), hex(b), hex(c), hex(r)
            );
        }
    }
    s.push_str("\n  ]\n}\n");
    std::fs::write(golden_dir().join("fma_units.json"), s).expect("write fma_units.json");

    // --- datapath vectors ---
    let mut s = String::from("{\n  \"cases\": [\n");
    let mut first = true;
    for &name in DATAPATHS {
        for &fuse in FUSIONS {
            let tape = compile(&build_graph(name, fuse)).expect("examples are checker-clean");
            let ni = tape.num_inputs();
            let mut state = 0xdead_beef_0000_0000u64 ^ (name.len() as u64) << 8 ^ fuse.len() as u64;
            let inputs: Vec<f64> = (0..GOLDEN_ROWS * ni).map(|_| gen_f64(&mut state)).collect();
            for backend in ["bit", "f64"] {
                let got = tape.eval_batch(backend_of(backend), &inputs, 1);
                if !first {
                    s.push_str(",\n");
                }
                first = false;
                let ins: Vec<String> = inputs.iter().map(|&v| format!("\"{}\"", hex(v))).collect();
                let outs: Vec<String> = got.iter().map(|&v| format!("\"{}\"", hex(v))).collect();
                let _ = write!(
                    s,
                    "    {{\"name\": \"{name}\", \"fuse\": \"{fuse}\", \"backend\": \"{backend}\",\n     \"inputs\": [{}],\n     \"outputs\": [{}]}}",
                    ins.join(", "),
                    outs.join(", ")
                );
            }
        }
    }
    s.push_str("\n  ]\n}\n");
    std::fs::write(golden_dir().join("datapaths.json"), s).expect("write datapaths.json");

    // --- bit-plane kernel vectors ---
    let mut s = String::from("{\n  \"cases\": [\n");
    let mut first = true;
    for &(name, fmt) in PLANE_FORMATS {
        let (a, b, c) = plane_stimulus(name);
        let packed = run_plane_case(fmt, &a, &b, &c);
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let enc = |v: &[f64]| -> String {
            v.iter()
                .map(|&x| format!("\"{}\"", hex(x)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let outs: Vec<String> = packed.iter().map(|p| format!("\"{p}\"")).collect();
        let _ = write!(
            s,
            "    {{\"format\": \"{name}\",\n     \"a\": [{}],\n     \"b\": [{}],\n     \"c\": [{}],\n     \"packed\": [{}]}}",
            enc(&a),
            enc(&b),
            enc(&c),
            outs.join(", ")
        );
    }
    s.push_str("\n  ]\n}\n");
    std::fs::write(golden_dir().join("plane_kernel.json"), s).expect("write plane_kernel.json");
}
