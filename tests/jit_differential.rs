//! Differential testing of the native JIT backend (`hls::jit`): for the
//! example datapaths, randomly generated IEEE graphs, and adversarial
//! stimulus (NaN, infinities, signed zeros, subnormals, arbitrary bit
//! patterns), `TapeBackend::Jit` must reproduce the bit-accurate
//! interpreter **bit for bit** at every row count and thread count —
//! whether a row ran native, bailed to the interpreter on a guard, or
//! the whole tape fell back because no module could be built.
//!
//! The suite is valid on every host: where the platform (or
//! `CSFMA_JIT=off`, which `ci.sh` exercises explicitly) forbids native
//! code, the jit backend degrades to the interpreter and the identity
//! becomes trivial. Assertions about the module itself are therefore
//! conditional on [`jit_available`].

use csfma::hls::jit::{compile_module, jit_available, JitSemantics};
use csfma::hls::{
    compile, fuse_critical_paths, lint_ranges, parse_program, parse_program_with_ranges,
    promotion_mask, Cdfg, FmaKind, FusionConfig, NodeId, Op, TapeBackend,
};
use proptest::prelude::*;

type OpPick = (usize, prop::sample::Index, prop::sample::Index);

/// Build a random straight-line IEEE graph (same construction as
/// `tests/exec_differential.rs`): `n_inputs` inputs, arithmetic nodes
/// whose arguments sample everything built so far, outputs on the last
/// node and one sampled node.
fn random_graph(
    n_inputs: usize,
    consts: &[f64],
    ops: &[OpPick],
    extra_out: prop::sample::Index,
) -> Cdfg {
    let mut g = Cdfg::new();
    let mut nodes: Vec<NodeId> = (0..n_inputs).map(|i| g.input(format!("i{i}"))).collect();
    for &c in consts {
        nodes.push(g.constant(c));
    }
    for (pick, a, b) in ops {
        let x = nodes[a.index(nodes.len())];
        let y = nodes[b.index(nodes.len())];
        let n = match pick % 5 {
            0 => g.add(x, y),
            1 => g.sub(x, y),
            2 => g.mul(x, y),
            3 => g.div(x, y),
            _ => g.push(Op::Neg, vec![x]),
        };
        nodes.push(n);
    }
    g.output("last", *nodes.last().unwrap());
    let pick = nodes[extra_out.index(nodes.len())];
    g.output("extra", pick);
    g
}

/// Adversarial stimulus: specials, subnormals, raw bit patterns and
/// ordinary magnitudes in one distribution.
fn stimulus() -> impl Strategy<Value = f64> {
    (0usize..10, any::<u64>(), -1.0e6f64..1.0e6).prop_map(|(class, bits, x)| match class {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::from_bits(bits % (1u64 << 52)), // +subnormal
        6 => 1e-310,                              // mid-window subnormal
        7 => f64::from_bits(bits),                // anything at all
        8 => f64::MIN_POSITIVE * (1.0 + (bits % 8) as f64), // guard-window border
        _ => x,
    })
}

/// The identity every test asserts: `Jit` output equals `BitAccurate`
/// output bit-for-bit at 1 and 4 threads over the same batch.
fn assert_jit_matches_interpreter(g: &Cdfg, vals: &[f64], n_rows: usize) {
    let tape = compile(g).expect("test graphs compile");
    let ni = tape.num_inputs();
    let rows: Vec<f64> = (0..n_rows * ni).map(|i| vals[i % vals.len()]).collect();
    let want = tape.eval_batch(TapeBackend::BitAccurate, &rows, 1);
    for threads in [1usize, 4] {
        let got = tape.eval_batch(TapeBackend::Jit, &rows, threads);
        assert_eq!(want.len(), got.len());
        for (i, (x, y)) in want.iter().zip(got.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "jit({threads}t) diverged from interpreter at flat output {i} ({x:e} vs {y:e})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random IEEE graphs, adversarial values, row counts straddling the
    /// 64-row chunk boundary: native rows, guard bailouts and spilled
    /// register files all under one identity.
    #[test]
    fn jit_matches_interpreter_on_random_ieee_graphs(
        n_inputs in 1usize..5,
        consts in prop::collection::vec(stimulus(), 0..3),
        ops in prop::collection::vec((0usize..5, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..40),
        extra_out: prop::sample::Index,
        vals in prop::collection::vec(stimulus(), 1..12),
        n_rows in 1usize..150,
    ) {
        let g = random_graph(n_inputs, &consts, &ops, extra_out);
        assert_jit_matches_interpreter(&g, &vals, n_rows);
    }

    /// The same graphs through the fusion pass: fused tapes refuse a
    /// native module, so this pins the whole-tape fallback (including
    /// the bit-plane kernel on full chunks) under the jit label.
    #[test]
    fn jit_matches_interpreter_on_fused_graphs(
        n_inputs in 1usize..5,
        ops in prop::collection::vec((0usize..5, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 4..30),
        extra_out: prop::sample::Index,
        kind_pick: bool,
        vals in prop::collection::vec(stimulus(), 1..12),
        n_rows in 60usize..70,
    ) {
        let g = random_graph(n_inputs, &[], &ops, extra_out);
        let kind = if kind_pick { FmaKind::Pcs } else { FmaKind::Fcs };
        let fused = fuse_critical_paths(&g, &FusionConfig::new(kind)).fused;
        assert_jit_matches_interpreter(&fused, &vals, n_rows);
    }
}

/// Every example datapath (the acceptance surface of ISSUE 10), both
/// unfused and PCS-fused, over an adversarial deterministic batch.
#[test]
fn jit_matches_interpreter_on_example_datapaths() {
    let mut checked = 0;
    for entry in std::fs::read_dir("examples/datapaths").expect("examples/datapaths exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "csfma") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let (g, _) = parse_program_with_ranges(&src).expect("example datapaths parse");
        let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;
        for g in [&g, &fused] {
            let vals: Vec<f64> = (0..37)
                .map(|i| {
                    let k = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    match k % 7 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => 1e-310,
                        3 => -0.0,
                        _ => ((k % 4001) as f64 - 2000.0) * 0.73,
                    }
                })
                .collect();
            assert_jit_matches_interpreter(g, &vals, 193);
            checked += 1;
        }
    }
    assert!(checked >= 8, "example corpus shrank to {checked} variants");
}

/// Range-promoted tapes: `in x [lo, hi];` bounds license guard-free
/// native instructions. Within the declared bounds the promoted module
/// must agree with the promoted interpreter (which is itself pinned to
/// the unpromoted one by the R* analysis).
#[test]
fn jit_matches_interpreter_on_promoted_tape() {
    let src = std::fs::read_to_string("examples/datapaths/dot6_bounded.csfma").unwrap();
    let (g, decls) = parse_program_with_ranges(&src).unwrap();
    let tape = compile(&g).unwrap();
    let report = lint_ranges(&g, &decls);
    let mask = promotion_mask(&tape, &report);
    assert!(
        mask.iter().any(|&p| p),
        "bounded example must license promotions"
    );
    let mut promoted = tape.clone();
    promoted.set_promoted(mask);

    let ni = promoted.num_inputs();
    let n_rows = 193;
    // stimulus inside every declared bound, the promotion hypothesis
    let rows: Vec<f64> = (0..n_rows * ni)
        .map(|i| {
            let k = (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let name = promoted.input_names()[i % ni].clone();
            let d = decls.iter().find(|d| d.name == name).unwrap();
            d.lo + (d.hi - d.lo) * ((k % 1_000_001) as f64 / 1_000_000.0)
        })
        .collect();
    let want = promoted.eval_batch(TapeBackend::BitAccurate, &rows, 1);
    let got = promoted.eval_batch(TapeBackend::Jit, &rows, 2);
    for (i, (x, y)) in want.iter().zip(got.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "promoted jit diverged at flat output {i}"
        );
    }
    if jit_available() {
        let m = promoted.jit_module().expect("IEEE tape builds a module");
        let unpromoted = tape.jit_module().expect("IEEE tape builds a module");
        assert!(
            m.guard_count() < unpromoted.guard_count(),
            "promotion must shed result guards ({} vs {})",
            m.guard_count(),
            unpromoted.guard_count()
        );
    }
}

/// Bailout accounting: a batch saturated with NaN rows must run (and
/// match) with every row bailing; an ordinary batch must not bail at
/// all. Counter assertions need the obs feature and a real module.
#[test]
fn nan_rows_bail_and_ordinary_rows_do_not() {
    let g = parse_program("x1 = a*b + c*d;\nx2 = e*f + g*x1;\nout x3 = h*i + k*x2;\n").unwrap();
    let tape = compile(&g).unwrap();
    let ni = tape.num_inputs();
    if !jit_available() || tape.jit_module().is_none() {
        return;
    }
    let nan_rows: Vec<f64> = vec![f64::NAN; 70 * ni];
    let ok_rows: Vec<f64> = (0..70 * ni).map(|i| (i % 97) as f64 * 0.5 - 24.0).collect();

    let r0 = csfma::hls::profile::jit_rows();
    let b0 = csfma::hls::profile::jit_bailouts();
    let want = tape.eval_batch(TapeBackend::BitAccurate, &nan_rows, 1);
    let got = tape.eval_batch(TapeBackend::Jit, &nan_rows, 1);
    assert!(want
        .iter()
        .zip(got.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    if cfg!(feature = "obs") {
        assert_eq!(
            csfma::hls::profile::jit_rows() - r0,
            70,
            "every row goes through the jit dispatcher"
        );
        assert_eq!(
            csfma::hls::profile::jit_bailouts() - b0,
            70,
            "every NaN row must bail on a load guard"
        );
    }

    let r1 = csfma::hls::profile::jit_rows();
    let b1 = csfma::hls::profile::jit_bailouts();
    let want = tape.eval_batch(TapeBackend::BitAccurate, &ok_rows, 1);
    let got = tape.eval_batch(TapeBackend::Jit, &ok_rows, 1);
    assert!(want
        .iter()
        .zip(got.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    if cfg!(feature = "obs") {
        assert_eq!(csfma::hls::profile::jit_rows() - r1, 70);
        assert_eq!(
            csfma::hls::profile::jit_bailouts() - b1,
            0,
            "ordinary rows must run native"
        );
    }
}

/// F64-mode modules (hardware `vfmadd`/`fmadd` against the interpreter's
/// `mul_add`) on fused tapes, finite stimulus only — NaN payloads of the
/// two fma implementations are not pinned cross-platform.
#[test]
fn f64_semantics_module_matches_f64_interpreter() {
    let g = parse_program("x1 = a*b + c*d;\nx2 = e*f + g*x1;\nout x3 = h*i + k*x2;\n").unwrap();
    let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;
    let tape = compile(&fused).unwrap();
    let Some(m) = compile_module(&tape, JitSemantics::F64) else {
        return; // platform without jit or without hardware fma
    };
    let ni = tape.num_inputs();
    let mut s = tape.scratch();
    for seed in 0..50u64 {
        let row: Vec<f64> = (0..ni)
            .map(|k| {
                let r = (seed * 31 + k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((r % 2_000_001) as f64 - 1_000_000.0) * 1.0e-3
            })
            .collect();
        let mut want = vec![0.0; tape.num_outputs()];
        tape.eval_row(TapeBackend::F64, &row, &mut want, &mut s);
        let mut got = vec![0.0; tape.num_outputs()];
        assert!(m.run_row(&row, &mut got), "f64 mode has no guards");
        for (x, y) in want.iter().zip(&got) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
