//! Integration: the CDFG optimizer composes with codegen and fusion
//! without changing results.

use csfma::hls::interp::eval_f64;
use csfma::hls::optimize::optimize;
use csfma::hls::{asap_schedule, fuse_critical_paths, FmaKind, FusionConfig, OpTiming};
use csfma::solvers::ldl::symbolic_ldl;
use csfma::solvers::{generate_ldlfactor, solver_suite, KktSystem};

#[test]
fn optimizer_preserves_generated_factor_kernel() {
    let p = &solver_suite()[0];
    let kkt = KktSystem::assemble(p);
    let pattern = symbolic_ldl(&kkt.matrix);
    let prog = generate_ldlfactor(&pattern);
    let ins = prog.inputs_for(&pattern, &kkt.matrix);

    let before = eval_f64(&prog.cdfg, &ins);
    let opt = optimize(&prog.cdfg);
    assert!(opt.nodes_after <= opt.nodes_before);
    let after = eval_f64(&opt.optimized, &ins);
    for (k, v) in &before {
        let w = after[k];
        assert!(
            (v - w).abs() <= 1e-12 * v.abs().max(1e-12),
            "{k}: {v} vs {w}"
        );
    }
}

#[test]
fn optimize_then_fuse_composes() {
    use csfma::hls::parse_program;
    // a redundant DSP kernel: repeated taps, dead constants, identities
    let src = "
        t0 = x0 * c + 0.0;
        t1 = x1 * c * 1.0;
        t2 = x0 * c;            # duplicate of t0's product
        acc = t0 + t1;
        acc = acc + t2;
        out y = acc * 1.0;
    ";
    let g = parse_program(src).unwrap();
    let t = OpTiming::default();
    let opt = optimize(&g);
    assert!(opt.nodes_after < g.len());
    let rep = fuse_critical_paths(&opt.optimized, &FusionConfig::new(FmaKind::Fcs));
    assert!(rep.final_length <= asap_schedule(&g, &t).length);
    let ins: std::collections::HashMap<String, f64> = [("x0", 1.5), ("x1", -2.5), ("c", 0.8)]
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    let want = eval_f64(&g, &ins)["y"];
    let got = csfma::hls::interp::eval_bit_accurate(&rep.fused, &ins)["y"];
    assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0));
}
