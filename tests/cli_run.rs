//! End-to-end tests of the `csfma-run` binary: exit codes, the
//! structured diagnostics contract, and the `--no-opt` oracle mode.
//!
//! The library-level suites cover the parser and engine directly; these
//! run the installed binary (`CARGO_BIN_EXE_csfma-run`) to pin what a
//! *driver* (the experiment scripts, ci.sh) actually observes — exit 2
//! for usage/parse problems with a positioned message on stderr, exit 1
//! when the D*/S*/W* gate refuses a graph, and bit-identical digests
//! with and without the post-gate optimizer.

use std::process::{Command, Output, Stdio};

fn run(args: &[&str], stdin: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_csfma-run"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn csfma-run");
    use std::io::Write as _;
    child
        .stdin
        .take()
        .unwrap()
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("csfma-run exits")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn digest_of(text: &str) -> &str {
    let line = text
        .lines()
        .find(|l| l.contains("digest"))
        .expect("batch summary line with digest");
    line.split("digest ").nth(1).expect("digest value").trim()
}

#[test]
fn undefined_input_in_strict_program_is_a_structured_parse_error() {
    let out = run(&[], "in a, b;\nout y = a * bee;\n");
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains("undefined input name 'bee'"),
        "diagnostic must name the offending identifier: {err}"
    );
    assert!(
        err.contains("2:"),
        "diagnostic must carry the source position: {err}"
    );
}

#[test]
fn legacy_programs_still_treat_free_names_as_inputs() {
    // no `in` declaration anywhere -> non-strict: `bee` becomes an input
    let out = run(&[], "out y = a * bee;\n");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("2 inputs"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn no_opt_digest_matches_the_optimized_run() {
    // constant subtree + repeated subexpression + dead assignment: every
    // optimizer pass fires, and the digest must not move
    let src = "unused = u * u;\nscale = 2.0 * 2.0 + 1.0;\nout y = a*b + a*b + scale;\n";
    let args_base = ["--batch", "257", "--threads", "2", "--seed", "7"];
    let opt = run(&args_base, src);
    let mut args_noopt = args_base.to_vec();
    args_noopt.push("--no-opt");
    let plain = run(&args_noopt, src);
    assert_eq!(opt.status.code(), Some(0), "stderr: {}", stderr(&opt));
    assert_eq!(plain.status.code(), Some(0), "stderr: {}", stderr(&plain));

    let opt_out = stdout(&opt);
    let plain_out = stdout(&plain);
    assert_eq!(
        digest_of(&opt_out),
        digest_of(&plain_out),
        "optimizer changed observable output bits"
    );
    assert!(
        opt_out.contains("optimized:"),
        "optimized run should report pass counters: {opt_out}"
    );
    assert!(
        !plain_out.contains("optimized:"),
        "--no-opt run must not report optimizer work: {plain_out}"
    );
}

#[test]
fn syntax_error_exits_two_with_position() {
    let out = run(&[], "out y = a + ;\n");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stdout: {} stderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(
        err.starts_with("csfma-run:") && err.contains("1:"),
        "parse failures go to stderr with a position: {err}"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = run(&["--frobnicate"], "out y = a + b;\n");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn oracle_backend_digest_matches_bit_accurate() {
    let src = "x1 = a*b + c*d;\nout y = e*f + g*x1;\n";
    let bit = run(&["--fuse", "pcs", "--batch", "64", "--backend", "bit"], src);
    let oracle = run(
        &["--fuse", "pcs", "--batch", "64", "--backend", "oracle"],
        src,
    );
    assert_eq!(bit.status.code(), Some(0), "stderr: {}", stderr(&bit));
    assert_eq!(oracle.status.code(), Some(0), "stderr: {}", stderr(&oracle));
    assert_eq!(
        digest_of(&stdout(&bit)),
        digest_of(&stdout(&oracle)),
        "oracle backend must be bit-identical to bit-accurate"
    );
}

#[test]
fn fault_seed_reports_campaign_and_exits_three() {
    let src = "x1 = a*b + c*d;\nout y = e*f + g*x1;\n";
    let out = run(
        &["--fuse", "pcs", "--batch", "200", "--fault-seed", "7"],
        src,
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "execution faults must exit 3; stderr: {}",
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(err.contains("fault campaign: seed 7"), "{err}");
    assert!(err.contains("batch report:"), "{err}");
    assert!(err.contains("recovered"), "{err}");

    // recovered outputs are bit-identical: the digest matches a clean run
    let clean = run(&["--fuse", "pcs", "--batch", "200"], src);
    assert_eq!(clean.status.code(), Some(0));
    assert_eq!(
        digest_of(&stdout(&out)),
        digest_of(&stdout(&clean)),
        "fallback ladder must reproduce clean bits"
    );
}
