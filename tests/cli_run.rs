//! End-to-end tests of the `csfma-run` binary: exit codes, the
//! structured diagnostics contract, and the `--no-opt` oracle mode.
//!
//! The library-level suites cover the parser and engine directly; these
//! run the installed binary (`CARGO_BIN_EXE_csfma-run`) to pin what a
//! *driver* (the experiment scripts, ci.sh) actually observes — exit 2
//! for usage/parse problems with a positioned message on stderr, exit 1
//! when the D*/S*/W* gate refuses a graph, and bit-identical digests
//! with and without the post-gate optimizer.

use std::process::{Command, Output, Stdio};

fn run(args: &[&str], stdin: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_csfma-run"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn csfma-run");
    use std::io::Write as _;
    // a usage error exits before reading stdin, so losing the pipe
    // mid-write is a legal outcome, not a test failure; tests that do
    // need their graph delivered assert on the output downstream
    let _ = child.stdin.take().unwrap().write_all(stdin.as_bytes());
    child.wait_with_output().expect("csfma-run exits")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn digest_of(text: &str) -> &str {
    let line = text
        .lines()
        .find(|l| l.contains("digest"))
        .expect("batch summary line with digest");
    line.split("digest ").nth(1).expect("digest value").trim()
}

#[test]
fn undefined_input_in_strict_program_is_a_structured_parse_error() {
    let out = run(&[], "in a, b;\nout y = a * bee;\n");
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains("undefined input name 'bee'"),
        "diagnostic must name the offending identifier: {err}"
    );
    assert!(
        err.contains("2:"),
        "diagnostic must carry the source position: {err}"
    );
}

#[test]
fn legacy_programs_still_treat_free_names_as_inputs() {
    // no `in` declaration anywhere -> non-strict: `bee` becomes an input
    let out = run(&[], "out y = a * bee;\n");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("2 inputs"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn no_opt_digest_matches_the_optimized_run() {
    // constant subtree + repeated subexpression + dead assignment: every
    // optimizer pass fires, and the digest must not move
    let src = "unused = u * u;\nscale = 2.0 * 2.0 + 1.0;\nout y = a*b + a*b + scale;\n";
    let args_base = ["--batch", "257", "--threads", "2", "--seed", "7"];
    let opt = run(&args_base, src);
    let mut args_noopt = args_base.to_vec();
    args_noopt.push("--no-opt");
    let plain = run(&args_noopt, src);
    assert_eq!(opt.status.code(), Some(0), "stderr: {}", stderr(&opt));
    assert_eq!(plain.status.code(), Some(0), "stderr: {}", stderr(&plain));

    let opt_out = stdout(&opt);
    let plain_out = stdout(&plain);
    assert_eq!(
        digest_of(&opt_out),
        digest_of(&plain_out),
        "optimizer changed observable output bits"
    );
    assert!(
        opt_out.contains("optimized:"),
        "optimized run should report pass counters: {opt_out}"
    );
    assert!(
        !plain_out.contains("optimized:"),
        "--no-opt run must not report optimizer work: {plain_out}"
    );
}

#[test]
fn syntax_error_exits_two_with_position() {
    let out = run(&[], "out y = a + ;\n");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stdout: {} stderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(
        err.starts_with("csfma-run:") && err.contains("1:"),
        "parse failures go to stderr with a position: {err}"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = run(&["--frobnicate"], "out y = a + b;\n");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn oracle_backend_digest_matches_bit_accurate() {
    let src = "x1 = a*b + c*d;\nout y = e*f + g*x1;\n";
    let bit = run(&["--fuse", "pcs", "--batch", "64", "--backend", "bit"], src);
    let oracle = run(
        &["--fuse", "pcs", "--batch", "64", "--backend", "oracle"],
        src,
    );
    assert_eq!(bit.status.code(), Some(0), "stderr: {}", stderr(&bit));
    assert_eq!(oracle.status.code(), Some(0), "stderr: {}", stderr(&oracle));
    assert_eq!(
        digest_of(&stdout(&bit)),
        digest_of(&stdout(&oracle)),
        "oracle backend must be bit-identical to bit-accurate"
    );
}

/// Minimal recursive-descent JSON reader — just enough to round-trip the
/// `--profile=json` document (the workspace deliberately has no JSON
/// dependency, so the test parses what the CLI hand-rolls).
mod json {
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> &[Value] {
            match self {
                Value::Arr(v) => v,
                other => panic!("expected array, got {other:?}"),
            }
        }
        pub fn as_str(&self) -> &str {
            match self {
                Value::Str(s) => s,
                other => panic!("expected string, got {other:?}"),
            }
        }
        pub fn as_num(&self) -> f64 {
            match self {
                Value::Num(n) => *n,
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                let mut kv = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(Value::Obj(kv));
                }
                loop {
                    skip_ws(b, i);
                    let k = match value(b, i)? {
                        Value::Str(s) => s,
                        other => return Err(format!("non-string key {other:?}")),
                    };
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    *i += 1;
                    kv.push((k, value(b, i)?));
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(Value::Obj(kv));
                        }
                        other => return Err(format!("expected ',' or '}}', got {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                let mut vs = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(Value::Arr(vs));
                }
                loop {
                    vs.push(value(b, i)?);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(Value::Arr(vs));
                        }
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            Some(b'"') => {
                *i += 1;
                let mut s = String::new();
                while let Some(&c) = b.get(*i) {
                    *i += 1;
                    match c {
                        b'"' => return Ok(Value::Str(s)),
                        b'\\' => {
                            let e = *b.get(*i).ok_or("eof in escape")?;
                            *i += 1;
                            s.push(match e {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'/' => '/',
                                other => return Err(format!("escape \\{}", other as char)),
                            });
                        }
                        c => s.push(c as char),
                    }
                }
                Err("unterminated string".into())
            }
            Some(b't') if b[*i..].starts_with(b"true") => {
                *i += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*i..].starts_with(b"false") => {
                *i += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*i..].starts_with(b"null") => {
                *i += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *i;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                std::str::from_utf8(&b[start..*i])
                    .unwrap()
                    .parse()
                    .map(Value::Num)
                    .map_err(|e| format!("bad number at {start}: {e}"))
            }
            None => Err("unexpected eof".into()),
        }
    }
}

/// The profile JSON document starts at the first stdout line beginning
/// with `{` (normal summary lines never do).
fn profile_json_of(text: &str) -> &str {
    let start = text.find("\n{").expect("profile JSON after summary") + 1;
    &text[start..]
}

#[test]
fn profile_json_round_trips_with_full_stage_breakdown() {
    let src = "x1 = a*b + c*d;\nout y = e*f + g*x1;\n";
    let args = ["--fuse", "pcs", "--batch", "100", "--threads", "2"];
    let mut args_prof = args.to_vec();
    args_prof.push("--profile=json");
    let prof = run(&args_prof, src);
    assert_eq!(prof.status.code(), Some(0), "stderr: {}", stderr(&prof));

    let out = stdout(&prof);
    let doc = json::parse(profile_json_of(&out))
        .unwrap_or_else(|e| panic!("profile JSON must parse: {e}\n{out}"));

    assert_eq!(doc.get("recorded"), Some(&json::Value::Bool(true)));

    // Stage breakdown covers the whole pipeline, with positive timings
    // and gate/optimize/lower nested inside compile.
    let stages = doc.get("stages").expect("stages array").as_arr();
    let stage = |name: &str| {
        stages
            .iter()
            .find(|s| s.get("name").map(json::Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("stage {name:?} missing: {stages:?}"))
    };
    for name in [
        "parse",
        "cache_lookup",
        "compile",
        "gate",
        "optimize",
        "lower",
        "eval",
    ] {
        let s = stage(name);
        assert!(s.get("wall_us").expect("wall_us").as_num() >= 0.0);
    }
    assert_eq!(stage("compile").get("depth").unwrap().as_num(), 0.0);
    assert_eq!(stage("gate").get("depth").unwrap().as_num(), 1.0);
    assert_eq!(stage("lower").get("depth").unwrap().as_num(), 1.0);

    // Cache and fault counters are present; this is a fresh process, so
    // the compile was a miss and the un-faulted run detected nothing.
    let counters = doc.get("counters").expect("counters object");
    let counter = |name: &str| {
        counters
            .get(name)
            .unwrap_or_else(|| panic!("counter {name:?} missing"))
            .as_num()
    };
    assert_eq!(counter("tape_cache_misses"), 1.0);
    assert_eq!(counter("tape_cache_hits"), 0.0);
    assert!(
        counter("tape_cache_shards") >= 1.0,
        "shard count (PR 9) is part of the stable profile schema"
    );
    assert_eq!(counter("rows"), 100.0);
    assert_eq!(counter("threads"), 2.0);
    assert_eq!(counter("fault_detections"), 0.0);
    assert_eq!(counter("fault_rows_quarantined"), 0.0);
    assert!(counter("fma_ops_pcs") > 0.0);
    // Translation-validator counters: the gate's wall time (0 in release
    // builds, where the debug gate is compiled out) and the allocator's
    // slot reuse, both part of the stable profile schema.
    assert!(counter("tape_verify_us") >= 0.0);
    assert!(counter("slots_reclaimed") >= 0.0);

    assert_eq!(doc.get("warnings"), Some(&json::Value::Arr(Vec::new())));

    // Determinism contract, end to end: the profiled run's digest equals
    // the plain run's.
    let plain = run(&args, src);
    assert_eq!(plain.status.code(), Some(0));
    assert_eq!(
        digest_of(&out),
        digest_of(&stdout(&plain)),
        "--profile must not change output bytes"
    );
}

#[test]
fn profile_text_mode_prints_stage_tree() {
    let out = run(&["--profile", "--batch", "32"], "out y = a*b + c;\n");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in ["parse", "compile", "eval", "rows"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn fault_seed_reports_campaign_and_exits_three() {
    let src = "x1 = a*b + c*d;\nout y = e*f + g*x1;\n";
    let out = run(
        &["--fuse", "pcs", "--batch", "200", "--fault-seed", "7"],
        src,
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "execution faults must exit 3; stderr: {}",
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(err.contains("fault campaign: seed 7"), "{err}");
    assert!(err.contains("batch report:"), "{err}");
    assert!(err.contains("recovered"), "{err}");

    // recovered outputs are bit-identical: the digest matches a clean run
    let clean = run(&["--fuse", "pcs", "--batch", "200"], src);
    assert_eq!(clean.status.code(), Some(0));
    assert_eq!(
        digest_of(&stdout(&out)),
        digest_of(&stdout(&clean)),
        "fallback ladder must reproduce clean bits"
    );
}
