//! Cross-crate integration: solver → codegen → fusion → bit-accurate
//! hardware evaluation → solution validation against the dense algebra.

use csfma::hls::interp::eval_bit_accurate;
use csfma::hls::{fuse_critical_paths, FmaKind, FusionConfig};
use csfma::solvers::{generate_ldlsolve, solver_suite, KktSystem, LdlFactors};

/// Residual of `K x = b` under the symmetric sparse matrix.
fn residual(k: &csfma::solvers::SymSparse, x: &[f64], b: &[f64]) -> f64 {
    k.mul_vec(x)
        .iter()
        .zip(b)
        .map(|(ax, bb)| (ax - bb).abs())
        .fold(0.0, f64::max)
}

#[test]
fn fused_hardware_solves_the_kkt_system() {
    for (pi, p) in solver_suite().iter().enumerate().take(2) {
        let kkt = KktSystem::assemble(p);
        let f = LdlFactors::factor(&kkt.matrix);
        let prog = generate_ldlsolve(&f);
        let ins = prog.inputs_for(&f, &kkt.rhs);
        for kind in [FmaKind::Pcs, FmaKind::Fcs] {
            let rep = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(kind));
            let out = eval_bit_accurate(&rep.fused, &ins);
            let x = prog.extract_solution(&out);
            let r = residual(&kkt.matrix, &x, &kkt.rhs);
            assert!(
                r < 1e-5,
                "solver {pi} with {kind:?}: KKT residual {r:.2e} after fused evaluation"
            );
        }
    }
}

#[test]
fn planned_trajectory_avoids_the_obstacle() {
    // the solution of the biggest solver is an actual swerve trajectory
    let p = &solver_suite()[2];
    let kkt = KktSystem::assemble(p);
    let f = LdlFactors::factor(&kkt.matrix);
    let x = f.solve(&kkt.rhs);
    // positions: interleaved blocks of (u[2], x[4], nu[4]) per step
    let pos = |t: usize| (x[t * 10 + 2], x[t * 10 + 3]);
    let mut min_dist = f64::INFINITY;
    let mut max_lateral: f64 = 0.0;
    for t in 0..p.horizon {
        let (px, py) = pos(t);
        let d = ((px - p.obstacle[0]).powi(2) + (py - p.obstacle[1]).powi(2)).sqrt();
        min_dist = min_dist.min(d);
        max_lateral = max_lateral.max(py.abs());
    }
    assert!(
        max_lateral > 0.5,
        "trajectory swerves laterally: {max_lateral:.2}"
    );
    assert!(
        min_dist > 0.8,
        "keeps distance from the obstacle: {min_dist:.2}"
    );
}

#[test]
fn facade_reexports_work() {
    // the public API is reachable through the facade crate
    use csfma::core::{CsFmaFormat, CsFmaUnit, CsOperand};
    use csfma::softfloat::{FpFormat, Round, SoftFloat};
    let unit = CsFmaUnit::new(CsFmaFormat::PCS_55_ZD);
    let one = SoftFloat::one(FpFormat::BINARY64);
    let a = CsOperand::from_ieee(&one, *unit.format());
    let c = CsOperand::from_ieee(&one, *unit.format());
    let r = unit.fma(&a, &one, &c);
    assert_eq!(
        r.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(),
        2.0
    );
}
