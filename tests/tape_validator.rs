//! The tape translation validator (`T*`) and value-range analysis
//! (`R*`) against real pipelines:
//!
//! * every named mutation of `csfma::hls::mutate` is caught with the
//!   rule `docs/DIAGNOSTICS.md` pins it to, on tapes the compiler
//!   actually builds (seeded-defect sensitivity);
//! * every tape the real pipeline produces — all example datapaths,
//!   fused and unfused, optimizer on and off, plus a proptest corpus of
//!   random IEEE graphs — verifies completely clean (specificity);
//! * range-proved fast-path promotion is bit-identical to the guarded
//!   backend on in-range stimulus, and the range analysis proves a
//!   strictly tighter alignment-shift bound than the format worst case.

use csfma::hls::{
    apply_mutation, compile_with_options, fuse_critical_paths, lint_ranges, parse_program,
    parse_program_with_ranges, promotion_mask, verify_tape, Cdfg, CompileOptions, FmaKind,
    FusionConfig, Tape, TapeBackend, ALL_MUTATIONS,
};
use csfma::verify::{has_errors, window_plan};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn compile_opts(g: &Cdfg, optimize: bool) -> Tape {
    compile_with_options(
        g,
        CompileOptions {
            optimize,
            ..CompileOptions::default()
        },
    )
    .expect("fixture graph must compile")
}

/// IEEE-only fixture: ≥2 inputs, 2 outputs, an unfoldable constant, all
/// four binary operators — a site for every non-fused mutation.
fn ieee_fixture() -> (Cdfg, Tape) {
    let g = parse_program("in a, b, c;\ns = a*b;\nout y = s + 1.5;\nout z = a - c/b;").unwrap();
    let tape = compile_opts(&g, false);
    (g, tape)
}

/// Fused fixture: carries `Fma`/`IeeeToCs`/`CsToIeee` instructions for
/// the carry-save mutations.
fn fused_fixture() -> (Cdfg, Tape) {
    let g = parse_program("m = a*b;\nout y = c + m;").unwrap();
    let rep = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs));
    assert!(rep.fma_nodes >= 1, "fixture must actually fuse");
    let tape = compile_opts(&rep.fused, false);
    (rep.fused, tape)
}

#[test]
fn every_mutation_is_caught_with_its_documented_rule() {
    assert!(ALL_MUTATIONS.len() >= 10);
    for &(name, rule) in ALL_MUTATIONS {
        let fused = matches!(name, "mistag-cs" | "swap-fma-operands" | "flip-fma-negate");
        let (g, mut tape) = if fused {
            fused_fixture()
        } else {
            ieee_fixture()
        };
        assert!(verify_tape(&tape, &g).is_empty(), "{name}: dirty fixture");
        assert!(apply_mutation(&mut tape, name), "{name}: found no site");
        let diags = verify_tape(&tape, &g);
        assert!(
            diags.iter().any(|d| d.rule.id() == rule),
            "{name}: expected {rule}, got {:?}",
            diags.iter().map(|d| d.rule.id()).collect::<Vec<_>>()
        );
        assert!(has_errors(&diags), "{name}: diagnostics must be errors");
    }
}

#[test]
#[should_panic(expected = "unknown mutation")]
fn unknown_mutation_names_panic_with_the_valid_list() {
    let (_, mut tape) = ieee_fixture();
    apply_mutation(&mut tape, "no-such-mutation");
}

#[test]
fn every_example_datapath_tape_verifies_clean() {
    for entry in std::fs::read_dir("examples/datapaths").unwrap() {
        let path = entry.unwrap().path();
        let src = std::fs::read_to_string(&path).unwrap();
        let g = parse_program(&src).unwrap();
        for optimize in [false, true] {
            let tape = compile_opts(&g, optimize);
            let diags = verify_tape(&tape, &g);
            assert!(diags.is_empty(), "{path:?} opt={optimize}: {diags:?}");
            for kind in [FmaKind::Pcs, FmaKind::Fcs] {
                let rep = fuse_critical_paths(&g, &FusionConfig::new(kind));
                let tape = compile_opts(&rep.fused, optimize);
                let diags = verify_tape(&tape, &rep.fused);
                assert!(
                    diags.is_empty(),
                    "{path:?} fused {kind:?} opt={optimize}: {diags:?}"
                );
            }
        }
    }
}

#[test]
fn slots_reclaimed_counter_reports_allocator_reuse() {
    // the dot-product reduction reuses slots heavily: products die into
    // the adder tree, so linear scan must reclaim at least one slot
    let src = std::fs::read_to_string("examples/datapaths/dot6.csfma").unwrap();
    let g = parse_program(&src).unwrap();
    let tape = compile_opts(&g, true);
    assert!(
        tape.opt_stats().slots_reclaimed > 0,
        "expected slot reuse, stats: {:?}",
        tape.opt_stats()
    );
    assert!(tape.num_f64_regs() < tape.instrs().len());
}

#[test]
fn range_proof_is_strictly_tighter_than_format_worst_case() {
    let src = std::fs::read_to_string("examples/datapaths/dot6_bounded.csfma").unwrap();
    let (g, decls) = parse_program_with_ranges(&src).unwrap();
    assert!(!decls.is_empty());
    let report = lint_ranges(&g, &decls);
    assert!(
        report.diagnostics.is_empty(),
        "bounded example must lint clean: {:?}",
        report.diagnostics
    );
    let bound = report
        .datapath_shift_bound()
        .expect("every node of the bounded example has a finite range");
    for kind in [FmaKind::Pcs, FmaKind::Fcs] {
        let plan = window_plan(&csfma::hls::interp::format_of(kind));
        assert!(
            bound < plan.max_shift,
            "datapath bound {bound} must beat worst-case max_shift {}",
            plan.max_shift
        );
    }
    // unbounded programs prove nothing — the refinement never lies
    let plain = parse_program("out y = a + b;").unwrap();
    assert_eq!(lint_ranges(&plain, &[]).datapath_shift_bound(), None);
}

#[test]
fn range_promotion_is_bitwise_identical_and_nonempty() {
    let src = std::fs::read_to_string("examples/datapaths/dot6_bounded.csfma").unwrap();
    let (g, decls) = parse_program_with_ranges(&src).unwrap();
    let report = lint_ranges(&g, &decls);
    let baseline = compile_opts(&g, true);
    let mask = promotion_mask(&baseline, &report);
    let mut promoted = baseline.clone();
    promoted.set_promoted(mask);
    assert!(
        promoted.promoted_count() > 0,
        "bounded dot product must promote at least one IEEE node"
    );
    assert_eq!(baseline.promoted_count(), 0);

    // stimulus respecting the declared ranges (the proof's hypothesis)
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_ca5e);
    let spans: Vec<(f64, f64)> = promoted
        .input_names()
        .iter()
        .map(|n| {
            let d = decls.iter().find(|d| &d.name == n).expect("all bounded");
            (d.lo, d.hi)
        })
        .collect();
    let n_rows = 4096;
    let mut rows = Vec::with_capacity(n_rows * spans.len());
    for _ in 0..n_rows {
        for &(lo, hi) in &spans {
            rows.push(rng.gen_range(lo..=hi));
        }
    }
    for threads in [1, 4] {
        let want = baseline.eval_batch(TapeBackend::BitAccurate, &rows, threads);
        let got = promoted.eval_batch(TapeBackend::BitAccurate, &rows, threads);
        assert_eq!(want.len(), got.len());
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "row {i} (threads={threads}): promoted {g:?} != guarded {w:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Specificity: every tape the real compiler produces from a random
    /// IEEE graph — optimizer on and off, fused and unfused — passes
    /// the translation validator with zero diagnostics.
    #[test]
    fn prop_real_pipeline_tapes_verify_clean(
        ops in prop::collection::vec((0usize..5, 0usize..16, 0usize..16), 2..24),
        consts in prop::collection::vec(-4.0f64..4.0, 1..3),
        fuse_kind in 0usize..3,
    ) {
        let mut g = Cdfg::new();
        let mut pool: Vec<csfma::hls::NodeId> =
            (0..3).map(|i| g.input(format!("v{i}"))).collect();
        for &c in &consts {
            pool.push(g.constant(c));
        }
        for &(op, i1, i2) in &ops {
            let x = pool[i1 % pool.len()];
            let y = pool[i2 % pool.len()];
            pool.push(match op {
                0 => g.add(x, y),
                1 => g.sub(x, y),
                2 => g.mul(x, y),
                3 => g.div(x, y),
                _ => g.push(csfma::hls::Op::Neg, vec![x]),
            });
        }
        g.output("y", *pool.last().unwrap());
        let g = match fuse_kind {
            0 => g,
            1 => fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused,
            _ => fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Fcs)).fused,
        };
        for optimize in [false, true] {
            let tape = compile_opts(&g, optimize);
            let diags = verify_tape(&tape, &g);
            prop_assert!(diags.is_empty(), "opt={optimize}: {diags:?}");
        }
    }
}
