//! Filetest runner: every `tests/filetests/*.csfma` is a datapath
//! program plus expectation directives in leading `;` comment lines
//! (stripped before parsing — the language itself uses `#` comments):
//!
//! ```text
//! ; lint: T005            expect rule T005 among the findings (repeatable)
//! ; lint-clean            expect zero findings
//! ; fuse: pcs|fcs         run the fusion pass before checking
//! ; mutate: swap-operands corrupt the compiled tape first (see
//!                         csfma::hls::mutate) — how T* defects are seeded,
//!                         since a clean compiler never produces them
//! ; run: <backend> <in...> == <hex-bits...>
//!                         execute one input row on a backend and pin the
//!                         output bit patterns. Backends: f64, softfloat
//!                         (the scalar graph interpreter), bit, oracle.
//!                         Inputs are decimal floats or nan/inf/-inf/-0.0;
//!                         expectations are one 0x-prefixed binary64 bit
//!                         pattern per program output, in output order.
//!                         Tape backends replicate the row to a full
//!                         64-lane chunk so `bit` exercises the bit-plane
//!                         kernel (DESIGN.md §13) and every lane must
//!                         reproduce the pinned bits.
//! ; run-differential: <backendA> <backendB>
//!                         evaluate a deterministic 193-row adversarial
//!                         batch (3 full chunks + a ragged tail) on both
//!                         backends — A on 1 thread, B on 4 — and require
//!                         bitwise-identical outputs. Meaningful for pairs
//!                         with identical semantics: any two of softfloat,
//!                         bit, oracle (f64 only against itself — its
//!                         fused nodes use the ideal `mul_add`).
//! ; run-jit:              evaluate the 193-row adversarial batch on the
//!                         `jit` backend at 1 and 4 threads and require
//!                         bitwise identity with the 1-thread bit-accurate
//!                         interpreter. The adversarial mix (NaN, ±inf,
//!                         subnormals, bit noise) drives rows down the
//!                         guard-bailout path; on hosts where no native
//!                         module can be built (non-x86-64/aarch64, or
//!                         CSFMA_JIT=off) the jit backend degrades to the
//!                         interpreter and the identity is trivial — the
//!                         directive is valid everywhere.
//! ; run-many: <backend...>
//!                         build one `eval_many` request per backend token
//!                         (f64 | bit | oracle): request i evaluates
//!                         variant graph i — cycling the file's program
//!                         unfused / pcs-fused / fcs-fused — over a
//!                         ragged, per-request adversarial batch, all
//!                         behind one 8-thread stealing deque. Every
//!                         request's outputs must be bitwise identical to
//!                         a standalone 1-thread `eval_batch` of the same
//!                         (variant, backend, rows) triple.
//! ```
//!
//! Each new `T*`/`R*` rule keeps one minimal reproducer here, so a rule
//! regression fails a named file instead of a synthetic unit test, and
//! each fused datapath shape keeps a `run_*` file so a numeric regression
//! in any backend fails on pinned bits.

use csfma::hls::{
    apply_mutation, compile, compile_with_options, eval_many, fuse_critical_paths, interp,
    lint_ranges, parse_program_with_ranges, verify_tape, Cdfg, CompileOptions, EvalManyRequest,
    FmaKind, FusionConfig, OpTiming, Tape, TapeBackend,
};
use csfma::verify::Diagnostic;
use std::collections::HashMap;

struct RunCase {
    backend: String,
    inputs: Vec<f64>,
    expect_bits: Vec<u64>,
}

#[derive(Default)]
struct Directives {
    expect_rules: Vec<String>,
    expect_clean: bool,
    fuse: Option<FmaKind>,
    mutate: Option<String>,
    runs: Vec<RunCase>,
    run_differentials: Vec<(String, String)>,
    run_manys: Vec<Vec<String>>,
    run_jit: bool,
}

fn parse_input_value(tok: &str) -> f64 {
    match tok {
        "nan" => f64::NAN,
        "inf" | "+inf" => f64::INFINITY,
        "-inf" => f64::NEG_INFINITY,
        _ => tok
            .parse()
            .unwrap_or_else(|_| panic!("bad run input {tok:?}")),
    }
}

fn parse_run(rest: &str) -> RunCase {
    let (lhs, rhs) = rest
        .split_once("==")
        .unwrap_or_else(|| panic!("run directive needs `== <hex-bits...>`: {rest:?}"));
    let mut lhs_toks = lhs.split_whitespace();
    let backend = lhs_toks
        .next()
        .expect("run directive needs a backend")
        .to_string();
    let inputs: Vec<f64> = lhs_toks.map(parse_input_value).collect();
    let expect_bits: Vec<u64> = rhs
        .split_whitespace()
        .map(|t| {
            let hex = t.strip_prefix("0x").unwrap_or(t);
            u64::from_str_radix(hex, 16).unwrap_or_else(|_| panic!("bad bit pattern {t:?}"))
        })
        .collect();
    assert!(!expect_bits.is_empty(), "run directive with no expectation");
    RunCase {
        backend,
        inputs,
        expect_bits,
    }
}

fn parse_directives(src: &str) -> Directives {
    let mut d = Directives::default();
    for line in src.lines() {
        let Some(rest) = line.trim_start().strip_prefix(';') else {
            continue;
        };
        let rest = rest.trim();
        if let Some(rule) = rest.strip_prefix("lint:") {
            d.expect_rules.push(rule.trim().to_string());
        } else if rest == "lint-clean" {
            d.expect_clean = true;
        } else if let Some(kind) = rest.strip_prefix("fuse:") {
            d.fuse = Some(match kind.trim() {
                "pcs" => FmaKind::Pcs,
                "fcs" => FmaKind::Fcs,
                other => panic!("bad fuse directive {other:?}"),
            });
        } else if let Some(name) = rest.strip_prefix("mutate:") {
            d.mutate = Some(name.trim().to_string());
        } else if let Some(spec) = rest.strip_prefix("run:") {
            d.runs.push(parse_run(spec));
        } else if let Some(list) = rest.strip_prefix("run-many:") {
            let backends: Vec<String> = list.split_whitespace().map(str::to_string).collect();
            assert!(
                backends.len() >= 2,
                "run-many needs at least two backend tokens"
            );
            d.run_manys.push(backends);
        } else if let Some(tail) = rest.strip_prefix("run-jit:") {
            assert!(tail.trim().is_empty(), "run-jit takes no arguments");
            d.run_jit = true;
        } else if let Some(pair) = rest.strip_prefix("run-differential:") {
            let mut toks = pair.split_whitespace();
            let a = toks.next().expect("run-differential needs two backends");
            let b = toks.next().expect("run-differential needs two backends");
            assert!(toks.next().is_none(), "run-differential takes two backends");
            d.run_differentials.push((a.to_string(), b.to_string()));
        } else {
            panic!("unknown directive {rest:?}");
        }
    }
    let has_lint = d.expect_clean || !d.expect_rules.is_empty();
    let has_run = !d.runs.is_empty()
        || !d.run_differentials.is_empty()
        || !d.run_manys.is_empty()
        || d.run_jit;
    assert!(
        has_lint || has_run,
        "a filetest needs `; lint: <RULE>` / `; lint-clean` or `; run:` directives"
    );
    if has_lint {
        assert!(
            d.expect_clean ^ !d.expect_rules.is_empty(),
            "a filetest needs `; lint: <RULE>` lines or `; lint-clean` (not both)"
        );
    }
    d
}

/// Deterministic per-file stimulus stream (splitmix64).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Adversarial differential stimulus: specials, subnormals, raw bit
/// noise, and ordinary magnitudes — the same mix as the proptest
/// differential suites, but replayable from a fixed seed.
fn adversarial_value(r: u64) -> f64 {
    match r % 12 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::from_bits(r >> 12), // +subnormal
        6 => -f64::from_bits(r >> 12),
        7 => f64::from_bits(r), // anything at all
        8 => f64::MIN_POSITIVE * ((r % 8) as f64 + 1.0),
        _ => ((r % 2_000_001) as f64 - 1_000_000.0) * 1.0e-3,
    }
}

/// Evaluate `n_rows` rows on one named backend. Tape backends go through
/// the chunked batch executor (so `bit` takes the plane kernel on full
/// chunks); `softfloat` is the scalar graph interpreter, the reference
/// the tape backends are differentials against.
fn eval_backend(backend: &str, g: &Cdfg, tape: &Tape, rows: &[f64], threads: usize) -> Vec<f64> {
    match backend {
        "f64" => tape.eval_batch(TapeBackend::F64, rows, threads),
        "bit" => tape.eval_batch(TapeBackend::BitAccurate, rows, threads),
        "oracle" => tape.eval_batch(TapeBackend::Oracle, rows, threads),
        "jit" => tape.eval_batch(TapeBackend::Jit, rows, threads),
        "softfloat" => {
            let ni = tape.num_inputs();
            let mut out = Vec::new();
            for row in rows.chunks(ni) {
                let map: HashMap<String, f64> = tape
                    .input_names()
                    .iter()
                    .cloned()
                    .zip(row.iter().copied())
                    .collect();
                let vals = interp::eval_bit_accurate(g, &map);
                for name in tape.output_names() {
                    out.push(vals[name]);
                }
            }
            out
        }
        other => panic!("unknown run backend {other:?} (f64|softfloat|bit|oracle|jit)"),
    }
}

/// Execute the `; run:` / `; run-differential:` directives of one file.
fn run_directives(path: &std::path::Path, d: &Directives, g: &Cdfg) {
    let tape = compile(g)
        .unwrap_or_else(|e| panic!("{path:?}: run directives need a compilable program: {e:?}"));
    let ni = tape.num_inputs();
    let no = tape.num_outputs();
    const LANES: usize = 64;
    for (ci, case) in d.runs.iter().enumerate() {
        assert_eq!(
            case.inputs.len(),
            ni,
            "{path:?} run #{ci}: program takes {ni} inputs {:?}",
            tape.input_names()
        );
        assert_eq!(
            case.expect_bits.len(),
            no,
            "{path:?} run #{ci}: program has {no} outputs {:?}",
            tape.output_names()
        );
        // replicate the row to a full chunk: the bit backend must take
        // the plane kernel and reproduce the pinned bits on every lane
        let mut rows = Vec::with_capacity(ni * LANES);
        for _ in 0..LANES {
            rows.extend_from_slice(&case.inputs);
        }
        let got = eval_backend(&case.backend, g, &tape, &rows, 1);
        for lane in 0..LANES {
            for (j, name) in tape.output_names().iter().enumerate() {
                let bits = got[lane * no + j].to_bits();
                assert_eq!(
                    bits, case.expect_bits[j],
                    "{path:?} run #{ci} ({}): output {name} lane {lane}: got {bits:#018x}, \
                     directive pins {:#018x}",
                    case.backend, case.expect_bits[j]
                );
            }
        }
    }
    for (di, tokens) in d.run_manys.iter().enumerate() {
        // variant graphs cycle unfused / pcs-fused / fcs-fused, so one
        // directive mixes discrete and carry-save tapes behind one deque
        let variants = [
            g.clone(),
            fuse_critical_paths(g, &FusionConfig::new(FmaKind::Pcs)).fused,
            fuse_critical_paths(g, &FusionConfig::new(FmaKind::Fcs)).fused,
        ];
        let backends: Vec<TapeBackend> = tokens
            .iter()
            .map(|t| match t.as_str() {
                "f64" => TapeBackend::F64,
                "bit" => TapeBackend::BitAccurate,
                "oracle" => TapeBackend::Oracle,
                other => panic!("{path:?} run-many #{di}: unknown backend {other:?}"),
            })
            .collect();
        // ragged, skewed per-request batches: request i gets a different
        // row count so the flattened item list has uneven chunk tails
        let rows_by_req: Vec<Vec<f64>> = (0..backends.len())
            .map(|i| {
                let n = LANES + 37 * i + 1;
                let mut seed = 0xC0FF_EE00_0000_0000 ^ ((di as u64) << 16) ^ i as u64;
                (0..n * ni)
                    .map(|_| adversarial_value(splitmix(&mut seed)))
                    .collect()
            })
            .collect();
        let reqs: Vec<EvalManyRequest> = backends
            .iter()
            .enumerate()
            .map(|(i, &backend)| {
                EvalManyRequest::new(&variants[i % variants.len()], backend, &rows_by_req[i])
            })
            .collect();
        let results = eval_many(&reqs, 8);
        for (i, res) in results.iter().enumerate() {
            let out = res.as_ref().unwrap_or_else(|e| {
                panic!("{path:?} run-many #{di}: request {i} refused to compile: {e:?}")
            });
            let want = out.tape.eval_batch(backends[i], &rows_by_req[i], 1);
            assert_eq!(want.len(), out.outputs.len());
            for (k, (x, y)) in want.iter().zip(&out.outputs).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{path:?} run-many #{di} ({}): request {i} flat output {k} diverged \
                     from standalone eval_batch ({x:e} vs {y:e})",
                    tokens[i]
                );
            }
        }
    }
    if d.run_jit {
        let mut seed = 0x1117_0000_0000_0000 ^ (ni as u64);
        let n_rows = 3 * LANES + 1; // 3 full chunks + a ragged tail
        let rows: Vec<f64> = (0..n_rows * ni)
            .map(|_| adversarial_value(splitmix(&mut seed)))
            .collect();
        let want = eval_backend("bit", g, &tape, &rows, 1);
        for threads in [1usize, 4] {
            let got = eval_backend("jit", g, &tape, &rows, threads);
            for (i, (x, y)) in want.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{path:?} run-jit ({threads}t): flat output {i} diverged from the \
                     bit-accurate interpreter ({x:e} vs {y:e})"
                );
            }
        }
    }
    for (a, b) in &d.run_differentials {
        let mut seed = 0x5EED_0000_0000_0000 ^ (ni as u64);
        let n_rows = 3 * LANES + 1; // 3 full chunks + a ragged tail
        let rows: Vec<f64> = (0..n_rows * ni)
            .map(|_| adversarial_value(splitmix(&mut seed)))
            .collect();
        let va = eval_backend(a, g, &tape, &rows, 1);
        let vb = eval_backend(b, g, &tape, &rows, 4);
        for (i, (x, y)) in va.iter().zip(vb.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{path:?} run-differential {a}(1t) vs {b}(4t): flat output {i} \
                 diverged ({x:e} vs {y:e})"
            );
        }
    }
}

fn run_filetest(path: &std::path::Path) -> Vec<Diagnostic> {
    let raw = std::fs::read_to_string(path).unwrap();
    let d = parse_directives(&raw);
    let program: String = raw
        .lines()
        .filter(|l| !l.trim_start().starts_with(';'))
        .collect::<Vec<_>>()
        .join("\n");
    let (g, decls) = match parse_program_with_ranges(&program) {
        Ok(pair) => pair,
        Err(e) => return vec![e.to_diagnostic()],
    };
    let g = match d.fuse {
        Some(kind) => fuse_critical_paths(&g, &FusionConfig::new(kind)).fused,
        None => g,
    };
    run_directives(path, &d, &g);
    let mut diags = Vec::new();
    if let Some(name) = &d.mutate {
        // a correct compiler never emits a T*-dirty tape, so T* rule
        // reproducers seed their defect with a named mutation
        let mut tape = compile_with_options(
            &g,
            CompileOptions {
                optimize: false,
                ..CompileOptions::default()
            },
        )
        .expect("must compile");
        assert!(
            apply_mutation(&mut tape, name),
            "{path:?}: no mutation site"
        );
        diags.extend(verify_tape(&tape, &g));
    } else {
        diags.extend(csfma::hls::lint_dataflow(&g, &OpTiming::default()));
        for optimize in [false, true] {
            if let Ok(tape) = compile_with_options(
                &g,
                CompileOptions {
                    optimize,
                    ..CompileOptions::default()
                },
            ) {
                diags.extend(verify_tape(&tape, &g));
            }
        }
        diags.extend(lint_ranges(&g, &decls).diagnostics);
    }

    let ids: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
    if d.expect_clean {
        assert!(diags.is_empty(), "{path:?}: expected clean, got {diags:?}");
    }
    for rule in &d.expect_rules {
        assert!(
            ids.contains(&rule.as_str()),
            "{path:?}: expected {rule}, got {ids:?}"
        );
    }
    diags
}

#[test]
fn filetests() {
    let mut paths: Vec<_> = std::fs::read_dir("tests/filetests")
        .expect("tests/filetests must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "csfma"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 10,
        "corpus shrank: every T*/R* rule keeps a reproducer"
    );
    let run_files = paths
        .iter()
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("run_"))
        })
        .count();
    assert!(
        run_files >= 6,
        "executable corpus shrank: every fused datapath shape keeps a run_* file"
    );
    for path in paths {
        run_filetest(&path);
    }
}

/// Expectation regenerator: prints a corrected `; run:` line for every
/// run directive in the corpus (actual bits on the directive's backend).
/// Run after an intentional semantics change and paste the output back:
///
/// ```sh
/// cargo test -q --test filetests -- --ignored --nocapture regen
/// ```
#[test]
#[ignore = "prints refreshed run-directive expectations"]
fn regen_run_expectations() {
    let mut paths: Vec<_> = std::fs::read_dir("tests/filetests")
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "csfma"))
        .collect();
    paths.sort();
    for path in paths {
        let raw = std::fs::read_to_string(&path).unwrap();
        let d = parse_directives(&raw);
        if d.runs.is_empty() {
            continue;
        }
        let program: String = raw
            .lines()
            .filter(|l| !l.trim_start().starts_with(';'))
            .collect::<Vec<_>>()
            .join("\n");
        let (g, _) = parse_program_with_ranges(&program).unwrap();
        let g = match d.fuse {
            Some(kind) => fuse_critical_paths(&g, &FusionConfig::new(kind)).fused,
            None => g,
        };
        let tape = compile(&g).unwrap();
        println!("--- {}", path.display());
        for case in &d.runs {
            let got = eval_backend(&case.backend, &g, &tape, &case.inputs, 1);
            let ins: Vec<String> = case
                .inputs
                .iter()
                .map(|v| format!("{v:?}").to_lowercase())
                .collect();
            let outs: Vec<String> = got
                .iter()
                .map(|v| format!("{:#018x}", v.to_bits()))
                .collect();
            println!(
                "; run: {} {} == {}",
                case.backend,
                ins.join(" "),
                outs.join(" ")
            );
        }
    }
}
