//! Filetest runner: every `tests/filetests/*.csfma` is a datapath
//! program plus expectation directives in leading `;` comment lines
//! (stripped before parsing — the language itself uses `#` comments):
//!
//! ```text
//! ; lint: T005            expect rule T005 among the findings (repeatable)
//! ; lint-clean            expect zero findings
//! ; fuse: pcs|fcs         run the fusion pass before checking
//! ; mutate: swap-operands corrupt the compiled tape first (see
//!                         csfma::hls::mutate) — how T* defects are seeded,
//!                         since a clean compiler never produces them
//! ```
//!
//! Each new `T*`/`R*` rule keeps one minimal reproducer here, so a rule
//! regression fails a named file instead of a synthetic unit test.

use csfma::hls::{
    apply_mutation, compile_with_options, fuse_critical_paths, lint_ranges,
    parse_program_with_ranges, verify_tape, CompileOptions, FmaKind, FusionConfig, OpTiming,
};
use csfma::verify::Diagnostic;

#[derive(Default)]
struct Directives {
    expect_rules: Vec<String>,
    expect_clean: bool,
    fuse: Option<FmaKind>,
    mutate: Option<String>,
}

fn parse_directives(src: &str) -> Directives {
    let mut d = Directives::default();
    for line in src.lines() {
        let Some(rest) = line.trim_start().strip_prefix(';') else {
            continue;
        };
        let rest = rest.trim();
        if let Some(rule) = rest.strip_prefix("lint:") {
            d.expect_rules.push(rule.trim().to_string());
        } else if rest == "lint-clean" {
            d.expect_clean = true;
        } else if let Some(kind) = rest.strip_prefix("fuse:") {
            d.fuse = Some(match kind.trim() {
                "pcs" => FmaKind::Pcs,
                "fcs" => FmaKind::Fcs,
                other => panic!("bad fuse directive {other:?}"),
            });
        } else if let Some(name) = rest.strip_prefix("mutate:") {
            d.mutate = Some(name.trim().to_string());
        } else {
            panic!("unknown directive {rest:?}");
        }
    }
    assert!(
        d.expect_clean ^ !d.expect_rules.is_empty(),
        "a filetest needs `; lint: <RULE>` lines or `; lint-clean` (not both)"
    );
    d
}

fn run_filetest(path: &std::path::Path) -> Vec<Diagnostic> {
    let raw = std::fs::read_to_string(path).unwrap();
    let d = parse_directives(&raw);
    let program: String = raw
        .lines()
        .filter(|l| !l.trim_start().starts_with(';'))
        .collect::<Vec<_>>()
        .join("\n");
    let (g, decls) = match parse_program_with_ranges(&program) {
        Ok(pair) => pair,
        Err(e) => return vec![e.to_diagnostic()],
    };
    let g = match d.fuse {
        Some(kind) => fuse_critical_paths(&g, &FusionConfig::new(kind)).fused,
        None => g,
    };
    let mut diags = Vec::new();
    if let Some(name) = &d.mutate {
        // a correct compiler never emits a T*-dirty tape, so T* rule
        // reproducers seed their defect with a named mutation
        let mut tape =
            compile_with_options(&g, CompileOptions { optimize: false }).expect("must compile");
        assert!(
            apply_mutation(&mut tape, name),
            "{path:?}: no mutation site"
        );
        diags.extend(verify_tape(&tape, &g));
    } else {
        diags.extend(csfma::hls::lint_dataflow(&g, &OpTiming::default()));
        for optimize in [false, true] {
            if let Ok(tape) = compile_with_options(&g, CompileOptions { optimize }) {
                diags.extend(verify_tape(&tape, &g));
            }
        }
        diags.extend(lint_ranges(&g, &decls).diagnostics);
    }

    let ids: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
    if d.expect_clean {
        assert!(diags.is_empty(), "{path:?}: expected clean, got {diags:?}");
    }
    for rule in &d.expect_rules {
        assert!(
            ids.contains(&rule.as_str()),
            "{path:?}: expected {rule}, got {ids:?}"
        );
    }
    diags
}

#[test]
fn filetests() {
    let mut paths: Vec<_> = std::fs::read_dir("tests/filetests")
        .expect("tests/filetests must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "csfma"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 10,
        "corpus shrank: every T*/R* rule keeps a reproducer"
    );
    for path in paths {
        run_filetest(&path);
    }
}
