//! Plane/scalar equivalence: the bit-plane chunk kernel (DESIGN.md §13)
//! must be a bit-exact drop-in for the scalar behavioral units — same
//! packed transport words, same exponents, same classes — on every
//! format, every special value, and every batch shape.
//!
//! Two layers of evidence:
//!
//! * a deterministic special-value matrix straight at the kernel
//!   (NaN / ±Inf / ±0 / subnormal / all-ones mantissas that ripple
//!   carries across PCS segment boundaries), chained so non-canonical
//!   carry-save operands flow back in as inputs;
//! * proptests over full-chunk, partial-chunk and single-row batches,
//!   both at the kernel and through the compiled tape.

use csfma::core::{plane_fma_chunk, CsFmaFormat, CsFmaUnit, CsOperand, FmaScratch, PlaneScratch};
use csfma::prelude::{FmaKind, FusionConfig, Round, SoftFloat, TapeBackend};
use csfma::softfloat::FpFormat;
use proptest::prelude::*;

const FORMATS: [CsFmaFormat; 5] = [
    CsFmaFormat::PCS_55_ZD,
    CsFmaFormat::PCS_58_LZA,
    CsFmaFormat::FCS_29_LZA,
    CsFmaFormat::PCS_27_SP,
    CsFmaFormat::FCS_15_SP,
];

fn b_format(fmt: &CsFmaFormat) -> FpFormat {
    if fmt.b_sig_bits == 24 {
        FpFormat::BINARY32
    } else {
        FpFormat::BINARY64
    }
}

/// The adversarial operand menu. `0x3fffffffffffffff` (1.999…) and its
/// kin carry all-ones mantissas: multiplying and accumulating them
/// ripples carries through every PCS segment boundary.
const MATRIX: [f64; 14] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    0.0,
    -0.0,
    5e-324,               // minimal subnormal
    1.0e-310,             // mid subnormal
    f64::MIN_POSITIVE,    // normal/subnormal border
    1.9999999999999998,   // all-ones mantissa
    -1.9999999999999998,  // …negated
    6.805646932770577e38, // all-ones mantissa, high exponent
    1.0,
    -1.5,
    0.0078125,
];

fn assert_lane(fmt: &CsFmaFormat, lane: usize, scalar: &CsOperand, plane: &CsOperand) {
    assert_eq!(
        scalar.class(),
        plane.class(),
        "{}: lane {lane} class diverged",
        fmt.name
    );
    assert_eq!(
        scalar.sign_hint(),
        plane.sign_hint(),
        "{}: lane {lane} sign diverged",
        fmt.name
    );
    assert_eq!(
        scalar.exp(),
        plane.exp(),
        "{}: lane {lane} exponent diverged",
        fmt.name
    );
    assert_eq!(
        scalar.pack(),
        plane.pack(),
        "{}: lane {lane} packed transport word diverged",
        fmt.name
    );
}

/// Run `links` chained FMA rounds over a 64-lane chunk on both paths
/// and require every lane bit-identical after every link.
fn chain_and_compare(fmt: CsFmaFormat, vals: &[f64], len: usize, links: usize) {
    let unit = CsFmaUnit::new(fmt);
    let bfmt = b_format(&fmt);
    let pick = |i: usize| vals[i % vals.len()];

    // bank layout: slot 0 = acc, slot 1 = mulc, slot 2 = dst
    let mut bank = vec![CsOperand::zero(fmt, false); 3 * 64];
    let mut scalar: Vec<CsOperand> = Vec::new();
    let mut scalar_acc: Vec<CsOperand> = Vec::new();
    let mut scalar_mulc: Vec<CsOperand> = Vec::new();
    for k in 0..len {
        let a = CsOperand::from_ieee(&SoftFloat::from_f64(bfmt, pick(3 * k)), fmt);
        let c = CsOperand::from_ieee(&SoftFloat::from_f64(bfmt, pick(3 * k + 2)), fmt);
        bank[k] = a.clone();
        bank[64 + k] = c.clone();
        scalar_acc.push(a);
        scalar_mulc.push(c);
    }
    let mut ps = PlaneScratch::default();
    let mut fs = FmaScratch::default();
    for link in 0..links {
        let b: Vec<SoftFloat> = (0..len)
            .map(|k| SoftFloat::from_f64(bfmt, pick(3 * k + 1 + link)))
            .collect();
        scalar.clear();
        for k in 0..len {
            scalar.push(unit.fma_with(&scalar_acc[k], &b[k], &scalar_mulc[k], &mut fs));
        }
        plane_fma_chunk(&unit, &mut bank, 0, 64, 128, &b, len, &mut ps);
        for k in 0..len {
            assert_lane(&fmt, k, &scalar[k], &bank[128 + k]);
        }
        // feed the (non-canonical) results back in as the accumulator
        for k in 0..len {
            bank[k] = bank[128 + k].clone();
            scalar_acc[k] = scalar[k].clone();
        }
    }
}

/// Deterministic special-value matrix: every format, every pairing from
/// the menu, three chained links so segment-boundary carries and
/// non-canonical operands appear.
#[test]
fn special_value_matrix_matches_scalar_on_all_formats() {
    for fmt in FORMATS {
        chain_and_compare(fmt, &MATRIX, 64, 3);
    }
}

/// Segment-carry boundary focus: saturating mantissas only, so the PCS
/// carry-reduction segments all produce pending carries.
#[test]
fn segment_carry_boundaries_match_scalar() {
    let vals = [
        1.9999999999999998,
        -1.9999999999999998,
        1.9999999999999996,
        3.9999999999999996,
        0.9999999999999999,
        -0.9999999999999999,
    ];
    for fmt in FORMATS {
        chain_and_compare(fmt, &vals, 64, 4);
    }
}

fn stimulus() -> impl Strategy<Value = f64> {
    (0usize..10, any::<u64>(), -1.0e6f64..1.0e6).prop_map(|(class, bits, x)| match class {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::from_bits(bits % (1u64 << 52)),
        6 => -f64::from_bits(bits % (1u64 << 52)),
        7 => f64::from_bits(bits),
        8 => f64::MIN_POSITIVE * (1.0 + (bits % 8) as f64),
        _ => x,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel-level equivalence at every batch shape: single row,
    /// ragged partial chunk, full chunk — with chained links.
    #[test]
    fn plane_kernel_matches_scalar_at_any_length(
        fmt_pick in 0usize..FORMATS.len(),
        len_pick in 0usize..5,
        vals in prop::collection::vec(stimulus(), 8..24),
    ) {
        let len = [1usize, 2, 17, 63, 64][len_pick];
        chain_and_compare(FORMATS[fmt_pick], &vals, len, 2);
    }

    /// Tape-level equivalence: the bit backend (plane kernel on full
    /// chunks, scalar tail) against the all-scalar oracle backend, for
    /// batch sizes straddling the chunk boundary.
    #[test]
    fn tape_bit_backend_matches_oracle_at_any_batch_size(
        rows_pick in 0usize..6,
        kind_pick: bool,
        vals in prop::collection::vec(stimulus(), 4..16),
    ) {
        let g = csfma::hls::parse_program(
            "x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;",
        ).unwrap();
        let n_rows = [1usize, 63, 64, 65, 127, 130][rows_pick];
        let kind = if kind_pick { FmaKind::Pcs } else { FmaKind::Fcs };
        let fused = csfma::hls::fuse_critical_paths(&g, &FusionConfig::new(kind)).fused;
        let tape = csfma::hls::compile(&fused).unwrap();
        let ni = tape.num_inputs();
        let rows: Vec<f64> = (0..n_rows * ni).map(|i| vals[i % vals.len()]).collect();
        let bit = tape.eval_batch(TapeBackend::BitAccurate, &rows, 2);
        let oracle = tape.eval_batch(TapeBackend::Oracle, &rows, 1);
        for (i, (x, y)) in bit.iter().zip(oracle.iter()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "{:?} rows={}: flat output {} diverged ({:e} vs {:e})",
                kind, n_rows, i, x, y
            );
        }
    }
}

/// The transport-format round data survives the plane path too: convert
/// the chained results back to IEEE and require equality with the
/// scalar chain's conversion (a weaker but user-visible invariant,
/// checked on top of the packed-word equality above).
#[test]
fn plane_results_convert_to_identical_ieee() {
    let fmt = CsFmaFormat::PCS_55_ZD;
    let unit = CsFmaUnit::new(fmt);
    let mut bank = vec![CsOperand::zero(fmt, false); 3 * 64];
    let mut fs = FmaScratch::default();
    let mut ps = PlaneScratch::default();
    let vals: Vec<f64> = (0..64).map(|k| (k as f64 - 31.5) * 0.3125).collect();
    for k in 0..64 {
        bank[k] = CsOperand::from_f64(vals[k], fmt);
        bank[64 + k] = CsOperand::from_f64(vals[63 - k], fmt);
    }
    let b: Vec<SoftFloat> = vals
        .iter()
        .map(|v| SoftFloat::from_f64(FpFormat::BINARY64, v * 1.75))
        .collect();
    plane_fma_chunk(&unit, &mut bank, 0, 64, 128, &b, 64, &mut ps);
    for k in 0..64 {
        let scalar = unit.fma_with(
            &CsOperand::from_f64(vals[k], fmt),
            &b[k],
            &CsOperand::from_f64(vals[63 - k], fmt),
            &mut fs,
        );
        assert_eq!(
            scalar
                .to_ieee(FpFormat::BINARY64, Round::NearestEven)
                .to_f64()
                .to_bits(),
            bank[128 + k]
                .to_ieee(FpFormat::BINARY64, Round::NearestEven)
                .to_f64()
                .to_bits(),
            "lane {k} IEEE conversion diverged"
        );
    }
}
