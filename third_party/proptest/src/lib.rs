//! Offline stand-in for the `proptest` crate — see `third_party/README.md`.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro (with `#![proptest_config(..)]` headers and
//! both `name in strategy` and `name: Type` parameter forms),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and the
//! strategies: numeric ranges, strategy tuples, `any::<T>()`,
//! `.prop_map(..)`, `prop::collection::vec(..)` and `prop::sample::Index`.
//!
//! Differences from real proptest, by design:
//! - deterministic per-test seeding (FNV-1a of the test name), uniform
//!   distributions, no edge-case biasing;
//! - no shrinking — a failing case panics with the original inputs;
//! - `proptest-regressions` files are neither read nor written.

/// Deterministic case generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniform 64-bit word (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// FNV-1a — used to derive a per-test seed from the test's name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for `any::<T>()`.
    #[derive(Clone, Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Uniform whole-domain generation — the stand-in for proptest's
    /// `Arbitrary`.
    pub trait ArbitraryValue: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    wide as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_range_strategy {
        (int: $($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    ((self.start as i128).wrapping_add((wide % span) as i128)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if span == u128::MAX {
                        return wide as $t;
                    }
                    ((lo as i128).wrapping_add((wide % (span + 1)) as i128)) as $t
                }
            }
        )*};
        (float: $($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64);
                    let v = v as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    impl_range_strategy!(float: f32, f64);

    // u128/i128 ranges need a wider intermediate; handled separately with
    // modulo folding (spans above 2^127 never appear in this workspace).
    impl Strategy for std::ops::Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start + wide % (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<i128> {
        type Value = i128;
        fn generate(&self, rng: &mut TestRng) -> i128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u128;
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start.wrapping_add((wide % span) as i128)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Unconstrained generation of a `T` (uniform over the domain here).
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Length specification: an exact length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! `prop::sample::Index` — a length-agnostic index.

    use super::strategy::ArbitraryValue;
    use super::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete collection length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl ArbitraryValue for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod test_runner {
    //! Configuration for [`crate::proptest!`] blocks.

    /// Subset of proptest's config: the number of cases per property.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Cases to run per property function.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module alias so `prop::collection::vec` / `prop::sample::Index`
    /// resolve after a glob import.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Assert inside a property; panics with the formatted message (no
/// shrinking in the stand-in, so this is `assert!` with proptest's name).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard the current case when an assumption fails. Expands to an early
/// return from the per-case closure the [`proptest!`] macro wraps around
/// each body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// The property-test macro. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose parameters are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expand each test function in the block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)).as_bytes());
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::TestRng::seed_from_u64(
                    __seed ^ __case.wrapping_mul(0x9E3779B97F4A7C15),
                );
                $crate::__proptest_case! { __rng, [] [] ($($params)*) $body }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Internal: munch one parameter list, accumulating strategy expressions
/// and binding patterns, then run the body once.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // -- munch: `name in strategy` ------------------------------------
    ($rng:ident, [$($strat:expr;)*] [$($pat:ident)*] ($n:ident in $s:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case! { $rng, [$($strat;)* $s;] [$($pat)* $n] ($($rest)*) $body }
    };
    ($rng:ident, [$($strat:expr;)*] [$($pat:ident)*] ($n:ident in $s:expr) $body:block) => {
        $crate::__proptest_case! { $rng, [$($strat;)* $s;] [$($pat)* $n] () $body }
    };
    // -- munch: `name: Type` (any::<Type>()) --------------------------
    ($rng:ident, [$($strat:expr;)*] [$($pat:ident)*] ($n:ident : $t:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case! { $rng, [$($strat;)* $crate::any::<$t>();] [$($pat)* $n] ($($rest)*) $body }
    };
    ($rng:ident, [$($strat:expr;)*] [$($pat:ident)*] ($n:ident : $t:ty) $body:block) => {
        $crate::__proptest_case! { $rng, [$($strat;)* $crate::any::<$t>();] [$($pat)* $n] () $body }
    };
    // -- done: bind values and run the body in a closure so that
    //    `prop_assume!` can early-return out of the case ---------------
    ($rng:ident, [$($strat:expr;)*] [$($pat:ident)*] () $body:block) => {
        {
            use $crate::strategy::Strategy as _;
            let ($($pat,)*) = ($($strat.generate(&mut $rng),)*);
            let mut __case_fn = move || $body;
            __case_fn();
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn scaled() -> impl Strategy<Value = f64> {
        (any::<bool>(), 0u64..1000).prop_map(|(neg, m)| {
            let v = m as f64 / 10.0;
            if neg {
                -v
            } else {
                v
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_any(w in 1usize..=120, a: u128, flip: bool, x in -4.0f64..4.0) {
            prop_assert!((1..=120).contains(&w));
            prop_assert!((-4.0..4.0).contains(&x));
            let _ = (a, flip);
        }

        #[test]
        fn vec_and_index(
            ops in prop::collection::vec((0usize..4, any::<prop::sample::Index>()), 4..40),
            fixed in prop::collection::vec(-3.0f64..3.0, 8),
        ) {
            prop_assert!((4..40).contains(&ops.len()));
            prop_assert_eq!(fixed.len(), 8);
            for (op, idx) in &ops {
                prop_assert!(*op < 4);
                prop_assert!(idx.index(fixed.len()) < fixed.len());
            }
        }

        #[test]
        fn mapped_strategy_and_assume(v in scaled(), w in 0u64..10) {
            prop_assume!(w != 0);
            prop_assert!(v.abs() < 100.0);
            prop_assert_ne!(w, 0);
        }
    }

    #[test]
    fn deterministic_per_test() {
        let s1 = crate::fnv1a(b"some::test");
        let s2 = crate::fnv1a(b"some::test");
        assert_eq!(s1, s2);
        let mut r1 = crate::TestRng::seed_from_u64(s1);
        let mut r2 = crate::TestRng::seed_from_u64(s2);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}
