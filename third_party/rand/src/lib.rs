//! Offline stand-in for the `rand` crate — see `third_party/README.md`.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen_range` / `gen_bool`. The generator core is xoshiro256**
//! seeded through SplitMix64 — deterministic, seedable, statistically
//! solid for workload generation (not cryptographic).

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a half-open or inclusive
/// range (the subset of `rand::distributions::uniform` this workspace
/// needs).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((low as $wide).wrapping_add(v as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                if span == u128::MAX {
                    return (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $wide) as $t;
                }
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % (span + 1);
                ((low as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, u128 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128, isize => i128,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1)
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + unit * (high as f64 - low as f64);
                if v as $t >= high { low } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods over any [`RngCore`] (the rand 0.8 `Rng` trait).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's
    /// `StdRng` (which is also a seedable, non-cryptographic default).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.gen_range(-1.0..1.0);
            let y: f64 = b.gen_range(-1.0..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
            let n: i32 = a.gen_range(-200..200);
            b.gen_range(-200..200);
            assert!((-200..200).contains(&n));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }

    #[test]
    fn inclusive_ranges_hit_endpoints() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..200 {
            match r.gen_range(0usize..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }
}
