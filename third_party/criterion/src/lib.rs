//! Offline stand-in for the `criterion` crate — see `third_party/README.md`.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! benches use: `Criterion`, `benchmark_group` / `bench_function` /
//! `sample_size` / `finish`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is actually timed (fixed
//! small iteration budget, mean wall-clock printed) so `cargo bench`
//! remains useful for coarse comparisons — but there is no statistical
//! analysis, warm-up tuning, or HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; carried for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    println!(
        "bench: {label:<40} {:>12.3?} /iter ({} iters)",
        mean, b.iters
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's statistical sample count; reused here as the
    /// iteration budget knob.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Carried for API compatibility; the stand-in has no warm-up phase.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, &mut f);
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: 10,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), 10, &mut f);
        self
    }
}

/// Declare a benchmark group function compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| black_box(21u64) * 2));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
