#!/usr/bin/env sh
# CI gate: formatting, lints as errors, the full test suite, benchmark
# compilation, and a batch-engine smoke run.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo bench --no-run

# rustdoc is part of the deliverable: every public item documented,
# every intra-doc link resolving (crates/hls, crates/verify and
# crates/obs carry #![warn(missing_docs)])
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# the observability layer must build and pass its unit tests with the
# instrumentation compiled out (the zero-overhead configuration)
cargo test -q -p csfma-obs --no-default-features

# batch execution engine smoke: compile every example datapath and run a
# tiny batch through both backends (exit 1 on checker errors or panics);
# the profiled run must produce the same digest as the plain one (the
# observability determinism contract, DESIGN.md §11). Every example must
# also pass the full static gauntlet — T* tape translation validation at
# both optimizer settings, R* value-range analysis, warnings denied
# (exit-status contract in src/bin/csfma-lint.rs)
for f in examples/datapaths/*.csfma; do
    cargo run -q --bin csfma-lint -- --tape --ranges --deny-warnings "$f" > /dev/null
    plain=$(cargo run -q --bin csfma-run -- --fuse pcs --batch 16 --threads 2 "$f")
    prof=$(cargo run -q --bin csfma-run -- --profile=json --fuse pcs --batch 16 --threads 2 "$f")
    d1=$(printf '%s\n' "$plain" | sed -n 's/.*digest //p')
    d2=$(printf '%s\n' "$prof" | sed -n 's/.*digest //p')
    [ -n "$d1" ] && [ "$d1" = "$d2" ] || { echo "ci: --profile changed digest on $f ($d1 vs $d2)" >&2; exit 1; }
    cargo run -q --bin csfma-run -- --backend f64 --batch 16 "$f" > /dev/null
done

# golden-vector corpus: absolute output bits of the FMA units, the
# compiled example datapaths and the bit-plane chunk kernel — including
# the mutation test that arms the kernel's corruption hook and requires
# the corpus to catch a single flipped plane word (regenerate only after
# an intentional semantics change; see tests/golden_vectors.rs)
cargo test -q --test golden_vectors
cargo test -q --test cli_run

# executable filetest corpus: `; run:` directives pin per-backend result
# bits (the bit backend goes through the bit-plane kernel on a full
# 64-lane chunk) and `; run-differential:` sweeps adversarial batches
# across backends at different thread counts
cargo test -q --test filetests

# native-JIT byte-identity (DESIGN.md §16): proptest differentials
# against the bit-accurate interpreter on random IEEE graphs, every
# example datapath, fused fallback, promoted tapes and adversarial
# bailout batches. Run twice: with the JIT armed (on capable hosts the
# emitted code actually executes) and with the CSFMA_JIT kill switch
# thrown (the all-rows interpreter fallback configuration) — both must
# produce identical bytes, which is the whole contract. The rustdoc
# gate above already covers the hls::jit module (crates/hls carries
# #![warn(missing_docs)]).
cargo test -q --test jit_differential
CSFMA_JIT=off cargo test -q --test jit_differential

# plane/scalar equivalence: special-value matrix + proptests over
# full/partial/single-row batches, and ragged-tail thread invariance
# (DESIGN.md §13.3)
cargo test -q --test plane_equivalence
cargo test -q --test determinism

# scheduler torture suite (DESIGN.md §14): rows x threads grid vs the
# 1-thread oracle, robust fault plans under stealing, pathological-skew
# eval_many, and direct claim/steal races on the deque. Run three ways:
# default harness parallelism, serialized (--test-threads=1 removes
# inter-test contention so a failure reproduces cleanly), and with the
# harness pinned to 2 threads (a *different* contention pattern against
# the executor's own worker pool)
cargo test -q --test scheduler
cargo test -q --test scheduler -- --test-threads=1
RUST_TEST_THREADS=2 cargo test -q --test scheduler

# fuzz targets build and take a short deterministic run through their
# corpora (offline libfuzzer-sys stub — no cargo-fuzz needed; crank
# FUZZ_ITERS for a real session)
cargo build --release --manifest-path fuzz/Cargo.toml
FUZZ_ITERS=2000 ./fuzz/target/release/parser_round_trip fuzz/corpus/parser_round_trip > /dev/null 2>&1
FUZZ_ITERS=2000 ./fuzz/target/release/compile_gate fuzz/corpus/compile_gate > /dev/null 2>&1
FUZZ_ITERS=2000 ./fuzz/target/release/tape_verify fuzz/corpus/tape_verify > /dev/null 2>&1
FUZZ_ITERS=2000 ./fuzz/target/release/serve_frame fuzz/corpus/serve_frame > /dev/null 2>&1

# throughput audit at the baseline's conditions: verifies tape-vs-oracle
# bitwise equality, the >=5x headline, the >=1.5x fused-graph gain over
# the pre-SoA/pre-optimizer engine, the >=10x single-thread bit-plane
# gate on the PCS datapaths, the environment-aware 8-thread 10k-row
# scaling audit on every bit-backend row, and the eval_many scenario's
# bitwise + speedup-vs-sequential gate (all gates are inside the bin)
cargo run -q --release -p csfma-bench --bin throughput 10000 1024 42 > /dev/null
git checkout -- results/BENCH_throughput.json 2> /dev/null || true

# fault-injection smoke: sweep every fault site with single-bit
# transients at a fixed seed; the bin gates zero silent corruptions and
# a >=90% detection rate on every checker-covered site (DESIGN.md §10)
cargo run -q --release -p csfma-bench --bin fault_campaign 2000 42 > /dev/null
git checkout -- results/BENCH_faults.json 2> /dev/null || true

# serve smoke: bind an ephemeral port, run one in-process round trip
# (digest checked against a local eval), then drain — exit 1 on any
# failed leg (exit-status contract in src/bin/csfma-serve.rs)
cargo run -q --release --bin csfma-serve -- --self-test > /dev/null

# serve load audit under fault injection (DESIGN.md §15.3): concurrent
# clients + kill-mid-flight drill; the bin gates zero unanswered frames,
# zero digest mismatches, ledger reconciliation and server survival
cargo run -q --release -p csfma-bench --bin serve_bench 7 1 4 16 > /dev/null
git checkout -- results/BENCH_serve.json 2> /dev/null || true
