#!/usr/bin/env sh
# CI gate: formatting, lints as errors, the full test suite, benchmark
# compilation, and a batch-engine smoke run.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo bench --no-run

# batch execution engine smoke: compile every example datapath and run a
# tiny batch through both backends (exit 1 on checker errors or panics)
for f in examples/datapaths/*.csfma; do
    cargo run -q --bin csfma-run -- --fuse pcs --batch 16 --threads 2 "$f" > /dev/null
    cargo run -q --bin csfma-run -- --backend f64 --batch 16 "$f" > /dev/null
done

# throughput audit on a small batch: verifies tape-vs-oracle bitwise
# equality and the >=5x headline (full baseline regenerated in release
# via: cargo run --release -p csfma-bench --bin throughput)
cargo run -q --release -p csfma-bench --bin throughput 2000 256 42 > /dev/null
git checkout -- results/BENCH_throughput.json 2> /dev/null || true
