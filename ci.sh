#!/usr/bin/env sh
# CI gate: formatting, lints as errors, and the full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
