//! LDLᵀ factorization: symbolic fill-in analysis, numeric factorization
//! and reference solves.
//!
//! CVXGEN fixes the elimination order at code-generation time, computes
//! the fill-in pattern once, and emits fully unrolled `ldlfactor()` /
//! `ldlsolve()` code over that static pattern. This module does the same
//! analysis; `codegen` turns the pattern into a CDFG.

use crate::sparse::SymSparse;

/// The static nonzero pattern and numeric values of `K = L·D·Lᵀ`
/// (unit lower-triangular `L`, diagonal `D`).
#[derive(Clone, Debug)]
pub struct LdlFactors {
    n: usize,
    /// Strictly-lower nonzero pattern: `pattern[i]` = sorted columns `j < i`.
    pub pattern: Vec<Vec<usize>>,
    /// Numeric `L` values matching `pattern`.
    pub l_values: Vec<Vec<f64>>,
    /// Diagonal `D`.
    pub d: Vec<f64>,
}

/// Compute the fill-in pattern of LDLᵀ in the natural order.
///
/// Fill rule: `L[i][j] ≠ 0` iff `K[i][j] ≠ 0` or there is an earlier
/// column `k < j` with `L[i][k] ≠ 0` and `L[j][k] ≠ 0` (eliminating
/// column `k` couples every pair of rows that reach it). Computed by a
/// forward sweep over columns with a dense boolean lower triangle — the
/// KKT systems here are small and banded, so this is exact and cheap.
pub fn symbolic_ldl(m: &SymSparse) -> Vec<Vec<usize>> {
    let n = m.dim();
    let mut lower = vec![vec![false; n]; n];
    for (i, row) in lower.iter_mut().enumerate() {
        for &(j, _) in m.row(i) {
            if j < i {
                row[j] = true;
            }
        }
    }
    for k in 0..n {
        let reach: Vec<usize> = (k + 1..n).filter(|&i| lower[i][k]).collect();
        for (ai, &a) in reach.iter().enumerate() {
            for &b in &reach[ai + 1..] {
                // a < b by construction: fill at (b, a)
                lower[b][a] = true;
            }
        }
    }
    (0..n)
        .map(|i| (0..i).filter(|&j| lower[i][j]).collect())
        .collect()
}

impl LdlFactors {
    /// Numeric factorization over the symbolic pattern (no pivoting —
    /// valid for quasi-definite matrices).
    ///
    /// # Panics
    /// If a zero pivot appears (the matrix was not quasi-definite).
    pub fn factor(m: &SymSparse) -> LdlFactors {
        let n = m.dim();
        let pattern = symbolic_ldl(m);
        let mut l_values: Vec<Vec<f64>> = pattern.iter().map(|r| vec![0.0; r.len()]).collect();
        let mut d = vec![0.0; n];
        // dense scratch row for clarity (n is small)
        let mut lrow = vec![0.0; n];
        let mut lprev: Vec<Vec<f64>> = vec![Vec::new(); n];
        for i in 0..n {
            for x in lrow.iter_mut() {
                *x = 0.0;
            }
            for &(j, v) in m.row(i) {
                if j < i {
                    lrow[j] = v;
                }
            }
            let mut di = m.get(i, i);
            for (pos, &j) in pattern[i].iter().enumerate() {
                let mut lij = lrow[j];
                for (qpos, &k) in pattern[j].iter().enumerate() {
                    lij -= lrow[k] * lprev[j][qpos] * d[k];
                }
                lij /= d[j];
                lrow[j] = lij;
                l_values[i][pos] = lij;
                di -= lij * lij * d[j];
            }
            assert!(di != 0.0, "zero pivot at {i}");
            d[i] = di;
            lprev[i] = l_values[i].clone();
        }
        LdlFactors {
            n,
            pattern,
            l_values,
            d,
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total strictly-lower nonzeros of `L` (the unrolled code size
    /// driver).
    pub fn nnz(&self) -> usize {
        self.pattern.iter().map(|r| r.len()).sum()
    }

    /// Reference `ldlsolve`: solve `L D Lᵀ x = b` by forward substitution,
    /// diagonal scaling and backward substitution — the computation the
    /// generated straight-line code must reproduce.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        // forward: L y = b
        let mut y = b.to_vec();
        for i in 0..self.n {
            for (pos, &j) in self.pattern[i].iter().enumerate() {
                y[i] -= self.l_values[i][pos] * y[j];
            }
        }
        // diagonal: z = D^-1 y (CVXGEN stores the inverse diagonal, so
        // the generated code multiplies)
        for (yi, di) in y.iter_mut().zip(&self.d) {
            *yi /= di;
        }
        // backward: L^T x = z
        for i in (0..self.n).rev() {
            for (pos, &j) in self.pattern[i].iter().enumerate() {
                y[j] -= self.l_values[i][pos] * y[i];
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kkt::KktSystem;
    use crate::trajectory::solver_suite;

    fn residual_norm(m: &SymSparse, x: &[f64], b: &[f64]) -> f64 {
        m.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn small_dense_example() {
        // K = [[4,1],[1,3]] (SPD)
        let mut m = SymSparse::zeros(2);
        m.add(0, 0, 4.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 3.0);
        let f = LdlFactors::factor(&m);
        assert!((f.d[0] - 4.0).abs() < 1e-12);
        assert!((f.l_values[1][0] - 0.25).abs() < 1e-12);
        let x = f.solve(&[1.0, 2.0]);
        assert!(residual_norm(&m, &x, &[1.0, 2.0]) < 1e-12);
    }

    #[test]
    fn fill_in_is_detected() {
        // arrow matrix: row 3 connects to 0; rows 1,2 connect to 0 =>
        // eliminating 0 fills 1-2, 1-3, 2-3... construct: K[i][0] != 0
        let n = 4;
        let mut m = SymSparse::zeros(n);
        for i in 0..n {
            m.add(i, i, 10.0);
            if i > 0 {
                m.add(i, 0, 1.0);
            }
        }
        let p = symbolic_ldl(&m);
        // eliminating column 0 makes every later pair interact
        assert!(p[2].contains(&1));
        assert!(p[3].contains(&2));
    }

    #[test]
    fn kkt_factorization_solves() {
        for p in solver_suite() {
            let k = KktSystem::assemble(&p);
            let f = LdlFactors::factor(&k.matrix);
            let x = f.solve(&k.rhs);
            let r = residual_norm(&k.matrix, &x, &k.rhs);
            assert!(r < 1e-6, "{}: residual {r}", p.name);
            // velocity states should track roughly forward
            assert!(x.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn nnz_grows_with_horizon() {
        let suite = solver_suite();
        let nnz: Vec<usize> = suite
            .iter()
            .map(|p| LdlFactors::factor(&KktSystem::assemble(p).matrix).nnz())
            .collect();
        assert!(nnz[0] < nnz[1] && nnz[1] < nnz[2], "{nnz:?}");
    }
}

impl LdlFactors {
    /// Solve with one or more rounds of iterative refinement — the
    /// companion technique CVXGEN pairs with its static regularized
    /// factorization: solve, compute the true residual `b - Kx`, solve
    /// for the correction, repeat. Recovers the accuracy the ±ε
    /// regularization gave up.
    pub fn solve_refined(&self, k: &SymSparse, b: &[f64], rounds: usize) -> Vec<f64> {
        let mut x = self.solve(b);
        for _ in 0..rounds {
            let kx = k.mul_vec(&x);
            let r: Vec<f64> = b.iter().zip(&kx).map(|(bi, ki)| bi - ki).collect();
            let dx = self.solve(&r);
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
        }
        x
    }
}

#[cfg(test)]
mod refinement_tests {
    use super::*;
    use crate::kkt::KktSystem;
    use crate::trajectory::solver_suite;

    #[test]
    fn refinement_tightens_the_residual() {
        let p = &solver_suite()[2];
        let k = KktSystem::assemble(p);
        let f = LdlFactors::factor(&k.matrix);
        let res = |x: &[f64]| {
            k.matrix
                .mul_vec(x)
                .iter()
                .zip(&k.rhs)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        let plain = res(&f.solve(&k.rhs));
        let refined = res(&f.solve_refined(&k.matrix, &k.rhs, 2));
        assert!(refined <= plain, "refined {refined:e} vs plain {plain:e}");
        assert!(refined < 1e-9, "refined residual {refined:e}");
    }
}

#[cfg(test)]
mod symbolic_completeness {
    use super::*;
    use crate::kkt::KktSystem;
    use crate::trajectory::solver_suite;

    /// The symbolic pattern must be a superset of every numerically
    /// nonzero L entry (no structural misses), and the factorization must
    /// reconstruct K = L·D·Lᵀ entrywise.
    #[test]
    fn pattern_covers_numeric_factorization() {
        let p = &solver_suite()[0];
        let k = KktSystem::assemble(p);
        let f = LdlFactors::factor(&k.matrix);
        let n = f.dim();
        // dense reconstruct
        let mut l = vec![vec![0.0f64; n]; n];
        for (i, row) in l.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        for (i, row) in f.pattern.iter().enumerate() {
            for (pos, &j) in row.iter().enumerate() {
                l[i][j] = f.l_values[i][pos];
            }
        }
        for i in 0..n {
            for j in 0..=i {
                let mut v = 0.0;
                for (kk, dk) in f.d.iter().enumerate().take(j + 1) {
                    v += l[i][kk] * dk * l[j][kk];
                }
                let want = k.matrix.get(i, j);
                assert!(
                    (v - want).abs() <= 1e-8 * want.abs().max(1e-8),
                    "K[{i}][{j}]: {v} vs {want}"
                );
            }
        }
    }
}
