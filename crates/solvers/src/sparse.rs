//! Minimal symmetric sparse matrix for the KKT systems.
//!
//! Stores the **lower triangle** (including the diagonal) row-wise with
//! sorted column indices — all this crate needs for assembly, symbolic
//! analysis and numeric factorization of the small, banded KKT matrices
//! the trajectory problems produce.

/// Symmetric sparse matrix, lower triangle stored row-wise.
#[derive(Clone, Debug, Default)]
pub struct SymSparse {
    n: usize,
    /// `rows[i]` = sorted `(j, value)` with `j <= i`.
    rows: Vec<Vec<(usize, f64)>>,
}

impl SymSparse {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SymSparse {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Add `v` to entry `(i, j)` (symmetric: stores in the lower triangle).
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        if v == 0.0 {
            return;
        }
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        assert!(r < self.n, "index {r} out of dim {}", self.n);
        match self.rows[r].binary_search_by_key(&c, |e| e.0) {
            Ok(pos) => self.rows[r][pos].1 += v,
            Err(pos) => self.rows[r].insert(pos, (c, v)),
        }
    }

    /// Entry `(i, j)` (0 when structurally absent).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        self.rows[r]
            .binary_search_by_key(&c, |e| e.0)
            .map(|pos| self.rows[r][pos].1)
            .unwrap_or(0.0)
    }

    /// Lower-triangle row `i` as sorted `(col, value)` pairs.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// Number of stored (lower-triangle) nonzeros.
    pub fn nnz_lower(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    /// Dense copy (for the reference solve in tests).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n]; self.n];
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, v) in row {
                d[i][j] = v;
                d[j][i] = v;
            }
        }
        d
    }

    /// `y = M x` (symmetric multiply, for residual checks).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, v) in row {
                y[i] += v * x[j];
                if i != j {
                    y[j] += v * x[i];
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_symmetric() {
        let mut m = SymSparse::zeros(3);
        m.add(0, 2, 5.0);
        m.add(1, 1, 2.0);
        m.add(2, 0, 1.0); // accumulates into the same entry
        assert_eq!(m.get(0, 2), 6.0);
        assert_eq!(m.get(2, 0), 6.0);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.nnz_lower(), 2);
    }

    #[test]
    fn mul_vec_symmetric() {
        let mut m = SymSparse::zeros(2);
        m.add(0, 0, 2.0);
        m.add(1, 0, 3.0);
        m.add(1, 1, 4.0);
        let y = m.mul_vec(&[1.0, 2.0]);
        assert_eq!(y, vec![2.0 + 6.0, 3.0 + 8.0]);
    }

    #[test]
    fn dense_matches() {
        let mut m = SymSparse::zeros(2);
        m.add(0, 1, -1.5);
        let d = m.to_dense();
        assert_eq!(d[0][1], -1.5);
        assert_eq!(d[1][0], -1.5);
    }
}
