//! `ldlsolve()` code generation: unroll the solve over the static L
//! pattern into a straight-line CDFG (the CVXGEN way).
//!
//! The emitted code is division-free: like CVXGEN, the factor stage
//! stores the *inverse* diagonal, so the solve is pure multiply-add —
//! precisely the chain structure (Listing 1 / Fig. 1) whose critical path
//! the FMA fusion pass shortens. Factor entries (`L_ij`, `1/d_i`) and the
//! right-hand side (`b_i`) are inputs of the datapath; in the real
//! accelerator they arrive from the `ldlfactor` stage and the
//! interior-point residuals.

use crate::ldl::LdlFactors;
use csfma_hls::{Cdfg, NodeId};
use std::collections::HashMap;

/// A generated straight-line `ldlsolve` kernel.
#[derive(Clone, Debug)]
pub struct LdlSolveProgram {
    /// The datapath.
    pub cdfg: Cdfg,
    /// Problem dimension.
    pub dim: usize,
    /// Strictly-lower nonzeros unrolled (one multiply-add each in the
    /// forward and one in the backward pass).
    pub nnz: usize,
}

/// Input name of a right-hand-side element.
pub fn rhs_name(i: usize) -> String {
    format!("b{i}")
}

/// Input name of a factor entry `L[i][j]`.
pub fn l_name(i: usize, j: usize) -> String {
    format!("L{i}_{j}")
}

/// Input name of an inverse-diagonal entry `1/d[i]`.
pub fn dinv_name(i: usize) -> String {
    format!("Dinv{i}")
}

/// Output name of a solution element.
pub fn x_name(i: usize) -> String {
    format!("x{i}")
}

/// Emit the unrolled `ldlsolve` for a factor pattern.
///
/// ```
/// use csfma_solvers::{generate_ldlsolve, solver_suite, KktSystem, LdlFactors};
/// use csfma_hls::interp::eval_f64;
/// let problem = &solver_suite()[0];
/// let kkt = KktSystem::assemble(problem);
/// let factors = LdlFactors::factor(&kkt.matrix);
/// let prog = generate_ldlsolve(&factors);
/// let out = eval_f64(&prog.cdfg, &prog.inputs_for(&factors, &kkt.rhs));
/// let x = prog.extract_solution(&out);
/// assert_eq!(x.len(), kkt.matrix.dim());
/// ```
pub fn generate_ldlsolve(f: &LdlFactors) -> LdlSolveProgram {
    let n = f.dim();
    let mut g = Cdfg::new();

    // inputs
    let b: Vec<NodeId> = (0..n).map(|i| g.input(rhs_name(i))).collect();
    let dinv: Vec<NodeId> = (0..n).map(|i| g.input(dinv_name(i))).collect();
    let mut l: HashMap<(usize, usize), NodeId> = HashMap::new();
    for (i, row) in f.pattern.iter().enumerate() {
        for &j in row {
            l.insert((i, j), g.input(l_name(i, j)));
        }
    }

    // forward substitution: y_i = b_i - sum_j L_ij y_j
    let mut y: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = b[i];
        for &j in &f.pattern[i] {
            let m = g.mul(l[&(i, j)], y[j]);
            acc = g.sub(acc, m);
        }
        y.push(acc);
    }

    // diagonal scaling with the stored inverse: z_i = y_i * (1/d_i)
    let z: Vec<NodeId> = (0..n).map(|i| g.mul(y[i], dinv[i])).collect();

    // backward substitution: x_j = z_j - sum_{i>j} L_ij x_i
    let mut x: Vec<NodeId> = z.clone();
    for i in (0..n).rev() {
        for &j in f.pattern[i].iter().rev() {
            let m = g.mul(l[&(i, j)], x[i]);
            x[j] = g.sub(x[j], m);
        }
    }
    for (i, &xi) in x.iter().enumerate() {
        g.output(x_name(i), xi);
    }
    g.validate();
    LdlSolveProgram {
        cdfg: g,
        dim: n,
        nnz: f.nnz(),
    }
}

impl LdlSolveProgram {
    /// Bind a factorization and right-hand side to the kernel's inputs.
    pub fn inputs_for(&self, f: &LdlFactors, rhs: &[f64]) -> HashMap<String, f64> {
        assert_eq!(rhs.len(), self.dim);
        let mut m = HashMap::new();
        for (i, &v) in rhs.iter().enumerate() {
            m.insert(rhs_name(i), v);
        }
        for (i, &d) in f.d.iter().enumerate() {
            m.insert(dinv_name(i), 1.0 / d);
        }
        for (i, row) in f.pattern.iter().enumerate() {
            for (pos, &j) in row.iter().enumerate() {
                m.insert(l_name(i, j), f.l_values[i][pos]);
            }
        }
        m
    }

    /// Read the solution out of an evaluation result.
    pub fn extract_solution(&self, outputs: &HashMap<String, f64>) -> Vec<f64> {
        (0..self.dim).map(|i| outputs[&x_name(i)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kkt::KktSystem;
    use crate::trajectory::solver_suite;
    use csfma_hls::interp::eval_f64;

    #[test]
    fn generated_kernel_matches_reference_solve() {
        let p = &solver_suite()[0];
        let k = KktSystem::assemble(p);
        let f = LdlFactors::factor(&k.matrix);
        let prog = generate_ldlsolve(&f);
        let ins = prog.inputs_for(&f, &k.rhs);
        let out = eval_f64(&prog.cdfg, &ins);
        let got = prog.extract_solution(&out);
        let want = f.solve(&k.rhs);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn kernel_is_multiply_add_only() {
        use csfma_hls::Op;
        let p = &solver_suite()[0];
        let f = LdlFactors::factor(&KktSystem::assemble(p).matrix);
        let prog = generate_ldlsolve(&f);
        assert_eq!(
            prog.cdfg.count_ops(|o| matches!(o, Op::Div)),
            0,
            "division-free"
        );
        let muls = prog.cdfg.count_ops(|o| matches!(o, Op::Mul));
        let subs = prog.cdfg.count_ops(|o| matches!(o, Op::Sub));
        // one mul per L entry per pass + the diagonal scaling
        assert_eq!(muls, 2 * prog.nnz + prog.dim);
        assert_eq!(subs, 2 * prog.nnz);
    }
}

/// A generated straight-line `ldlfactor` kernel: numeric LDLᵀ
/// factorization unrolled over the static fill pattern, as CVXGEN emits
/// it. Unlike `ldlsolve` it contains divisions (one reciprocal per
/// pivot), which is why the paper compiles `ldlsolve` — the solve runs
/// once per interior-point iteration per right-hand side and dominates.
#[derive(Clone, Debug)]
pub struct LdlFactorProgram {
    /// The datapath.
    pub cdfg: Cdfg,
    /// Problem dimension.
    pub dim: usize,
}

/// Input name of a KKT entry `K[i][j]` (lower triangle incl. diagonal).
pub fn k_name(i: usize, j: usize) -> String {
    format!("K{i}_{j}")
}

/// Emit the unrolled `ldlfactor` over a fill pattern: outputs every
/// `L[i][j]`, every pivot `d[i]` and its reciprocal `Dinv[i]`.
pub fn generate_ldlfactor(pattern: &[Vec<usize>]) -> LdlFactorProgram {
    let n = pattern.len();
    let mut g = Cdfg::new();
    let one = g.constant(1.0);

    // K inputs over the full fill pattern (fill positions are bound to
    // zero by `inputs_for`)
    let mut k_in: HashMap<(usize, usize), NodeId> = HashMap::new();
    let mut l_node: HashMap<(usize, usize), NodeId> = HashMap::new();
    let mut ld_node: HashMap<(usize, usize), NodeId> = HashMap::new(); // L[i][j] * d[j]
    let mut d_node: Vec<NodeId> = Vec::with_capacity(n);
    let mut dinv_node: Vec<NodeId> = Vec::with_capacity(n);

    for (i, row) in pattern.iter().enumerate() {
        for &j in row {
            let input = g.input(k_name(i, j));
            k_in.insert((i, j), input);
        }
        k_in.insert((i, i), g.input(k_name(i, i)));
    }

    for (i, row) in pattern.iter().enumerate() {
        for &j in row {
            // L[i][j] = (K[i][j] - sum_{k in row(i) ∩ row(j)} L[i][k]·(L[j][k]·d[k])) / d[j]
            let mut acc = k_in[&(i, j)];
            for &k in row {
                if k >= j {
                    break;
                }
                if let Some(&ljk_d) = ld_node.get(&(j, k)) {
                    let m = g.mul(l_node[&(i, k)], ljk_d);
                    acc = g.sub(acc, m);
                }
            }
            let lij = g.mul(acc, dinv_node[j]);
            l_node.insert((i, j), lij);
            let lijd = g.mul(lij, d_node[j]);
            ld_node.insert((i, j), lijd);
            g.output(l_name(i, j), lij);
        }
        // d[i] = K[i][i] - sum L[i][k]^2 d[k] = K[i][i] - sum L[i][k]·(L[i][k]·d[k])
        let mut di = k_in[&(i, i)];
        for &k in row {
            let m = g.mul(l_node[&(i, k)], ld_node[&(i, k)]);
            di = g.sub(di, m);
        }
        let dinv = g.div(one, di);
        d_node.push(di);
        dinv_node.push(dinv);
        g.output(format!("d{i}"), di);
        g.output(dinv_name(i), dinv);
    }
    g.validate();
    LdlFactorProgram { cdfg: g, dim: n }
}

impl LdlFactorProgram {
    /// Bind a KKT matrix to the kernel's inputs.
    pub fn inputs_for(
        &self,
        pattern: &[Vec<usize>],
        m: &crate::sparse::SymSparse,
    ) -> HashMap<String, f64> {
        let mut ins = HashMap::new();
        for (i, row) in pattern.iter().enumerate() {
            for &j in row {
                ins.insert(k_name(i, j), m.get(i, j));
            }
            ins.insert(k_name(i, i), m.get(i, i));
        }
        ins
    }
}

#[cfg(test)]
mod factor_tests {
    use super::*;
    use crate::kkt::KktSystem;
    use crate::ldl::{symbolic_ldl, LdlFactors};
    use crate::trajectory::solver_suite;
    use csfma_hls::interp::eval_f64;

    #[test]
    fn generated_factor_matches_reference() {
        let p = &solver_suite()[0];
        let k = KktSystem::assemble(p);
        let pattern = symbolic_ldl(&k.matrix);
        let prog = generate_ldlfactor(&pattern);
        let ins = prog.inputs_for(&pattern, &k.matrix);
        let out = eval_f64(&prog.cdfg, &ins);
        let f = LdlFactors::factor(&k.matrix);
        for (i, row) in pattern.iter().enumerate() {
            let want_d = f.d[i];
            let got_d = out[&format!("d{i}")];
            assert!(
                (got_d - want_d).abs() <= 1e-9 * want_d.abs().max(1e-9),
                "d[{i}]: {got_d} vs {want_d}"
            );
            for (pos, &j) in row.iter().enumerate() {
                let want = f.l_values[i][pos];
                let got = out[&l_name(i, j)];
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1e-9),
                    "L[{i}][{j}]: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn factor_kernel_contains_divisions_solve_does_not() {
        use csfma_hls::Op;
        let p = &solver_suite()[0];
        let k = KktSystem::assemble(p);
        let pattern = symbolic_ldl(&k.matrix);
        let factor = generate_ldlfactor(&pattern);
        // exactly one reciprocal per pivot
        assert_eq!(
            factor.cdfg.count_ops(|o| matches!(o, Op::Div)),
            k.matrix.dim()
        );
        let f = LdlFactors::factor(&k.matrix);
        let solve = generate_ldlsolve(&f);
        assert_eq!(solve.cdfg.count_ops(|o| matches!(o, Op::Div)), 0);
    }

    #[test]
    fn factor_kernel_fusion_gains_less_than_solve() {
        // the division chain resists fusion — the reason the paper
        // compiles ldlsolve as the kernel
        use csfma_hls::{asap_schedule, fuse_critical_paths, FmaKind, FusionConfig, OpTiming};
        let p = &solver_suite()[0];
        let k = KktSystem::assemble(p);
        let pattern = symbolic_ldl(&k.matrix);
        let factor = generate_ldlfactor(&pattern);
        let t = OpTiming::default();
        let before = asap_schedule(&factor.cdfg, &t).length;
        let rep = fuse_critical_paths(&factor.cdfg, &FusionConfig::new(FmaKind::Fcs));
        let factor_red = 1.0 - rep.final_length as f64 / before as f64;

        let f = LdlFactors::factor(&k.matrix);
        let solve = generate_ldlsolve(&f);
        let sb = asap_schedule(&solve.cdfg, &t).length;
        let srep = fuse_critical_paths(&solve.cdfg, &FusionConfig::new(FmaKind::Fcs));
        let solve_red = 1.0 - srep.final_length as f64 / sb as f64;
        assert!(
            solve_red > factor_red,
            "solve {solve_red:.2} vs factor {factor_red:.2}"
        );
    }
}
