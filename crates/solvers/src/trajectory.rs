//! Trajectory-planning QPs for collision avoidance (Sec. I / Sec. IV-D).
//!
//! Model-predictive control of a 2-D double-integrator ground vehicle:
//! states `x_t = (p_x, p_y, v_x, v_y)`, controls `u_t = (a_x, a_y)`,
//! dynamics `x_{t+1} = A x_t + B u_t`. The QP tracks a reference path
//! around an obstacle while penalizing control effort:
//!
//! ```text
//! minimize   Σ_t (x_t - r_t)ᵀ Q (x_t - r_t) + u_tᵀ R u_t
//! subject to x_{t+1} = A x_t + B u_t,   x_0 given
//! ```
//!
//! Obstacle avoidance enters through the reference (a swerve path) and a
//! position-weight schedule — inequality constraints would add log-barrier
//! diagonal terms to the same KKT structure, so the kernel the paper
//! compiles (`ldlsolve`) is unchanged in shape.
//!
//! Three horizons give the paper's "three solvers of increasing
//! complexity".

/// State dimension (position + velocity in 2-D).
pub const NX: usize = 4;
/// Control dimension (acceleration in 2-D).
pub const NU: usize = 2;

/// One trajectory-planning problem instance.
#[derive(Clone, Debug)]
pub struct TrajectoryProblem {
    /// Display name ("solver 1" .. "solver 3").
    pub name: &'static str,
    /// MPC horizon (number of steps).
    pub horizon: usize,
    /// Integration time step.
    pub dt: f64,
    /// State tracking weights (diagonal of `Q`).
    pub q_diag: [f64; NX],
    /// Control effort weights (diagonal of `R`).
    pub r_diag: [f64; NU],
    /// Initial state.
    pub x0: [f64; NX],
    /// Obstacle position the swerve reference avoids.
    pub obstacle: [f64; 2],
}

impl TrajectoryProblem {
    /// Number of decision variables: `T` controls and `T` states.
    pub fn num_vars(&self) -> usize {
        self.horizon * (NX + NU)
    }

    /// Number of equality (dynamics) constraints.
    pub fn num_eq(&self) -> usize {
        self.horizon * NX
    }

    /// Discrete double-integrator dynamics matrix `A` (4x4).
    pub fn a_matrix(&self) -> [[f64; NX]; NX] {
        let dt = self.dt;
        [
            [1.0, 0.0, dt, 0.0],
            [0.0, 1.0, 0.0, dt],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
    }

    /// Discrete input matrix `B` (4x2).
    pub fn b_matrix(&self) -> [[f64; NU]; NX] {
        let dt = self.dt;
        let h = 0.5 * dt * dt;
        [[h, 0.0], [0.0, h], [dt, 0.0], [0.0, dt]]
    }

    /// Reference trajectory: a lane-change swerve around the obstacle.
    pub fn reference(&self, t: usize) -> [f64; NX] {
        let s = (t + 1) as f64 / self.horizon as f64;
        let forward = self.x0[0] + s * 12.0;
        // lateral offset peaks beside the obstacle
        let dist = (forward - self.obstacle[0]).abs();
        let lateral = self.obstacle[1] + 2.5 * (-dist * dist / 8.0).exp();
        [
            forward,
            lateral,
            12.0 / (self.horizon as f64 * self.dt),
            0.0,
        ]
    }
}

/// The paper's three solvers of increasing complexity.
pub fn solver_suite() -> Vec<TrajectoryProblem> {
    let base = TrajectoryProblem {
        name: "solver 1 (T=4)",
        horizon: 4,
        dt: 0.25,
        q_diag: [10.0, 10.0, 1.0, 1.0],
        r_diag: [0.5, 0.5],
        x0: [0.0, 0.0, 8.0, 0.0],
        obstacle: [6.0, 0.0],
    };
    vec![
        base.clone(),
        TrajectoryProblem {
            name: "solver 2 (T=8)",
            horizon: 8,
            ..base.clone()
        },
        TrajectoryProblem {
            name: "solver 3 (T=12)",
            horizon: 12,
            ..base
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_increases_in_complexity() {
        let suite = solver_suite();
        assert_eq!(suite.len(), 3);
        assert!(suite[0].num_vars() < suite[1].num_vars());
        assert!(suite[1].num_vars() < suite[2].num_vars());
        assert_eq!(suite[2].num_vars(), 12 * 6);
        assert_eq!(suite[2].num_eq(), 48);
    }

    #[test]
    fn reference_swerves_around_obstacle() {
        let p = &solver_suite()[2];
        let lateral_mid: f64 = (0..p.horizon)
            .map(|t| p.reference(t)[1])
            .fold(0.0, f64::max);
        let lateral_end = p.reference(p.horizon - 1)[1];
        assert!(lateral_mid > 1.0, "swerve peak {lateral_mid}");
        assert!(lateral_end < lateral_mid, "returns toward the lane");
    }

    #[test]
    fn dynamics_shapes() {
        let p = &solver_suite()[0];
        let a = p.a_matrix();
        let b = p.b_matrix();
        assert_eq!(a[0][2], p.dt);
        assert_eq!(b[2][0], p.dt);
        assert!(b[0][0] > 0.0);
    }
}
