//! Closed-loop model-predictive control — the system context of the
//! paper's application benchmark (Sec. I: solvers "used in systems
//! relying on model-based/model-predictive control rules" for trajectory
//! planning during collision avoidance).
//!
//! Each control period the vehicle measures its state, re-solves the
//! constrained trajectory QP over the receding horizon with the
//! interior-point method (whose kernel is the `ldlsolve` the paper
//! accelerates), applies the first control, and moves on. This module
//! simulates that loop and checks the closed-loop properties: the vehicle
//! tracks the reference, swerves around the obstacle, and respects its
//! actuator limits at every instant.

use crate::ipm::{solve_qp_warm, IpmResult};
use crate::qp::{trajectory_qp, u_index};
use crate::trajectory::{TrajectoryProblem, NU, NX};

/// One simulated closed-loop run.
#[derive(Clone, Debug)]
pub struct MpcRun {
    /// Vehicle state after every control period (starting state first).
    pub states: Vec<[f64; NX]>,
    /// Control applied in every period.
    pub controls: Vec<[f64; NU]>,
    /// Interior-point iterations used per period.
    pub ipm_iterations: Vec<usize>,
    /// Closest approach to the obstacle over the run.
    pub min_obstacle_distance: f64,
}

/// Configuration of the closed loop.
#[derive(Clone, Copy, Debug)]
pub struct MpcConfig {
    /// Control periods to simulate.
    pub periods: usize,
    /// Actuator limit `|u| ≤ u_max`.
    pub u_max: f64,
    /// Forward speed cap.
    pub v_max: f64,
    /// Interior-point iteration cap per solve.
    pub max_ipm_iters: usize,
    /// Warm-start each period from the previous period's solution.
    pub warm_start: bool,
}

impl Default for MpcConfig {
    fn default() -> Self {
        MpcConfig {
            periods: 16,
            u_max: 3.0,
            v_max: 14.0,
            max_ipm_iters: 60,
            warm_start: true,
        }
    }
}

/// Apply the discrete dynamics one step.
fn step_dynamics(p: &TrajectoryProblem, x: &[f64; NX], u: &[f64; NU]) -> [f64; NX] {
    let a = p.a_matrix();
    let b = p.b_matrix();
    let mut out = [0.0; NX];
    for (i, o) in out.iter_mut().enumerate() {
        *o = (0..NX).map(|k| a[i][k] * x[k]).sum::<f64>()
            + (0..NU).map(|k| b[i][k] * u[k]).sum::<f64>();
    }
    out
}

/// Run the receding-horizon loop from the problem's initial state.
pub fn run_closed_loop(base: &TrajectoryProblem, cfg: &MpcConfig) -> MpcRun {
    let mut x = base.x0;
    let mut states = vec![x];
    let mut controls = Vec::new();
    let mut iters = Vec::new();
    let mut min_dist = f64::INFINITY;

    let mut prev: Option<IpmResult> = None;
    for _ in 0..cfg.periods {
        // re-plan from the measured state (the obstacle stays world-fixed)
        let mut prob = base.clone();
        prob.x0 = x;
        let qp = trajectory_qp(&prob, cfg.u_max, cfg.v_max);
        let sol: IpmResult = solve_qp_warm(
            &qp,
            cfg.max_ipm_iters,
            1e-7,
            if cfg.warm_start { prev.as_ref() } else { None },
        );
        let u = [sol.z[u_index(0, 0)], sol.z[u_index(0, 1)]];
        x = step_dynamics(&prob, &x, &u);
        let d = ((x[0] - base.obstacle[0]).powi(2) + (x[1] - base.obstacle[1]).powi(2)).sqrt();
        min_dist = min_dist.min(d);
        states.push(x);
        controls.push(u);
        iters.push(sol.iterations);
        prev = Some(sol);
    }
    MpcRun {
        states,
        controls,
        ipm_iterations: iters,
        min_obstacle_distance: min_dist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::solver_suite;

    #[test]
    fn closed_loop_tracks_and_respects_limits() {
        let base = &solver_suite()[1];
        let cfg = MpcConfig::default();
        let run = run_closed_loop(base, &cfg);
        assert_eq!(run.states.len(), cfg.periods + 1);
        // actuator limits hold at every period
        for u in &run.controls {
            assert!(u[0].abs() <= cfg.u_max + 1e-5 && u[1].abs() <= cfg.u_max + 1e-5);
        }
        // the vehicle makes forward progress
        let start = run.states.first().unwrap()[0];
        let end = run.states.last().unwrap()[0];
        assert!(end > start + 5.0, "moved {start} -> {end}");
        // every solve converged in a handful of iterations (the CVXGEN
        // story: a fixed, small iteration count)
        assert!(run.ipm_iterations.iter().all(|&i| i <= cfg.max_ipm_iters));
        // speed cap respected in closed loop
        for s in &run.states {
            assert!(s[2] <= cfg.v_max + 1e-4, "v_x = {}", s[2]);
        }
    }

    #[test]
    fn swerves_laterally_near_the_obstacle() {
        let base = &solver_suite()[2];
        let run = run_closed_loop(
            base,
            &MpcConfig {
                periods: 20,
                ..Default::default()
            },
        );
        let max_lateral = run.states.iter().map(|s| s[1]).fold(f64::MIN, f64::max);
        assert!(max_lateral > 0.5, "lateral peak {max_lateral}");
        // and comes back toward the lane after passing
        let final_lateral = run.states.last().unwrap()[1];
        assert!(final_lateral < max_lateral + 1e-9);
    }

    #[test]
    fn tighter_actuators_bind_and_shrink_control_authority() {
        let base = &solver_suite()[1];
        let strong = run_closed_loop(
            base,
            &MpcConfig {
                u_max: 4.0,
                ..Default::default()
            },
        );
        let weak = run_closed_loop(
            base,
            &MpcConfig {
                u_max: 0.5,
                ..Default::default()
            },
        );
        let peak = |r: &MpcRun| {
            r.controls
                .iter()
                .flat_map(|u| u.iter().map(|v| v.abs()))
                .fold(0.0f64, f64::max)
        };
        assert!(peak(&weak) <= 0.5 + 1e-6, "weak peak {}", peak(&weak));
        assert!(peak(&strong) > peak(&weak), "the tighter limit binds");
        // lateral maneuvering is reduced under the tight limit
        let lat = |r: &MpcRun| r.states.iter().map(|s| s[1]).fold(f64::MIN, f64::max);
        assert!(lat(&weak) <= lat(&strong) + 1e-6);
    }
}
