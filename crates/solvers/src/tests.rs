//! End-to-end: trajectory QP → KKT → LDLᵀ → generated `ldlsolve` → HLS
//! fusion → bit-accurate evaluation. This is the full Sec. IV-D pipeline
//! in one test module (the Fig. 15 numbers come from `csfma-bench`).

use crate::codegen::generate_ldlsolve;
use crate::kkt::KktSystem;
use crate::ldl::LdlFactors;
use crate::trajectory::solver_suite;
use csfma_hls::interp::{eval_bit_accurate, eval_f64};
use csfma_hls::{asap_schedule, fuse_critical_paths, FmaKind, FusionConfig, OpTiming};

#[test]
fn fusion_accelerates_ldlsolve() {
    let p = &solver_suite()[0];
    let k = KktSystem::assemble(p);
    let f = LdlFactors::factor(&k.matrix);
    let prog = generate_ldlsolve(&f);
    let t = OpTiming::default();
    let before = asap_schedule(&prog.cdfg, &t).length;
    for (kind, min_reduction) in [(FmaKind::Pcs, 0.15), (FmaKind::Fcs, 0.30)] {
        let rep = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(kind));
        let red = 1.0 - rep.final_length as f64 / before as f64;
        assert!(
            red >= min_reduction,
            "{kind:?}: schedule {} -> {} ({:.1}%)",
            before,
            rep.final_length,
            red * 100.0
        );
        assert!(rep.fma_nodes > 0);
    }
}

#[test]
fn fused_ldlsolve_stays_numerically_faithful() {
    let p = &solver_suite()[0];
    let k = KktSystem::assemble(p);
    let f = LdlFactors::factor(&k.matrix);
    let prog = generate_ldlsolve(&f);
    let ins = prog.inputs_for(&f, &k.rhs);
    let reference = f.solve(&k.rhs);

    let rep = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(FmaKind::Fcs));
    let out = eval_bit_accurate(&rep.fused, &ins);
    let got = prog.extract_solution(&out);
    // the fused datapath must agree with the double-precision reference
    // well within the solver's own accuracy needs
    for (g, w) in got.iter().zip(&reference) {
        assert!(
            (g - w).abs() <= 1e-8 * w.abs().max(1.0),
            "fused {g} vs reference {w}"
        );
    }
    // and the unfused f64 interpretation agrees with the reference exactly
    let plain = prog.extract_solution(&eval_f64(&prog.cdfg, &ins));
    for (g, w) in plain.iter().zip(&reference) {
        assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0));
    }
}

#[test]
fn schedule_grows_with_solver_complexity() {
    let t = OpTiming::default();
    let mut lengths = Vec::new();
    for p in solver_suite() {
        let k = KktSystem::assemble(&p);
        let f = LdlFactors::factor(&k.matrix);
        let prog = generate_ldlsolve(&f);
        lengths.push(asap_schedule(&prog.cdfg, &t).length);
    }
    assert!(
        lengths[0] < lengths[1] && lengths[1] < lengths[2],
        "{lengths:?}"
    );
}

#[test]
fn ipm_iteration_runs_through_the_generated_kernel() {
    // one interior-point iteration's KKT solve, executed by the unrolled
    // ldlsolve CDFG and by the fused FCS-FMA datapath
    use crate::ipm::kkt_at_iterate;
    use crate::qp::trajectory_qp;
    use csfma_hls::interp::eval_f64;

    let p = &solver_suite()[0];
    let qp = trajectory_qp(p, 2.0, 14.0);
    let mi = qp.ineq.len();
    // an arbitrary strictly interior iterate
    let s: Vec<f64> = (0..mi).map(|i| 0.4 + 0.05 * i as f64).collect();
    let lambda: Vec<f64> = (0..mi).map(|i| 1.5 - 0.03 * i as f64).collect();
    let kkt = kkt_at_iterate(&qp, &s, &lambda);
    let f = LdlFactors::factor(&kkt);
    let prog = generate_ldlsolve(&f);
    let rhs: Vec<f64> = (0..kkt.dim())
        .map(|i| ((i * 7919) % 13) as f64 / 6.5 - 1.0)
        .collect();

    let want = f.solve(&rhs);
    let ins = prog.inputs_for(&f, &rhs);
    let plain = prog.extract_solution(&eval_f64(&prog.cdfg, &ins));
    for (g, w) in plain.iter().zip(&want) {
        assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0));
    }
    let rep = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(FmaKind::Fcs));
    let fused = prog.extract_solution(&eval_bit_accurate(&rep.fused, &ins));
    for (g, w) in fused.iter().zip(&want) {
        assert!((g - w).abs() <= 1e-7 * w.abs().max(1.0), "{g} vs {w}");
    }
}

#[test]
fn full_ipm_trajectory_respects_limits_and_avoids_obstacle() {
    use crate::ipm::solve_qp;
    use crate::qp::{trajectory_qp, u_index, x_index};
    let p = &solver_suite()[1];
    let qp = trajectory_qp(p, 2.5, 13.0);
    let r = solve_qp(&qp, 80, 1e-7);
    assert!(r.gap < 1e-6 && r.primal_residual < 1e-5);
    for t in 0..p.horizon {
        for k in 0..crate::trajectory::NU {
            assert!(r.z[u_index(t, k)].abs() <= 2.5 + 1e-5);
        }
        assert!(r.z[x_index(t, 2)] <= 13.0 + 1e-5);
    }
    // swerve behavior survives the constraints
    let max_lat = (0..p.horizon)
        .map(|t| r.z[x_index(t, 1)])
        .fold(f64::MIN, f64::max);
    assert!(max_lat > 0.3, "lateral peak {max_lat}");
}
