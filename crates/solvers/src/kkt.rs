//! Regularized KKT system assembly.
//!
//! CVXGEN's interior-point iterations repeatedly solve
//!
//! ```text
//! [ Q + εI    Aᵀ ] [ dx ]   [ r1 ]
//! [ A       -εI  ] [ dν ] = [ r2 ]
//! ```
//!
//! The ±ε regularization makes the matrix **quasi-definite**, so an LDLᵀ
//! factorization exists for any symmetric permutation *without pivoting*
//! — the property that lets CVXGEN (and us) fix the elimination order and
//! fully unroll `ldlsolve()` into straight-line code.
//!
//! Variable ordering is the natural interleaved MPC order
//! `u_0, x_1, ν_0, u_1, x_2, ν_1, …` which keeps the matrix banded and
//! the fill-in local.

use crate::sparse::SymSparse;
use crate::trajectory::{TrajectoryProblem, NU, NX};

/// CVXGEN-style regularization.
pub const EPS_REG: f64 = 1e-7;

/// An assembled KKT system with its right-hand side.
#[derive(Clone, Debug)]
pub struct KktSystem {
    /// The quasi-definite KKT matrix.
    pub matrix: SymSparse,
    /// Right-hand side (one interior-point residual vector).
    pub rhs: Vec<f64>,
    /// Number of primal variables (prefix of the ordering).
    pub num_primal: usize,
}

/// Index helpers for the interleaved ordering.
struct Order {
    horizon: usize,
}

impl Order {
    fn block(&self, t: usize) -> usize {
        // per step: NU controls + NX states + NX duals
        t * (NU + NX + NX)
    }
    fn u(&self, t: usize, k: usize) -> usize {
        self.block(t) + k
    }
    fn x(&self, t: usize, k: usize) -> usize {
        // x_{t+1} stored in step t's block
        self.block(t) + NU + k
    }
    fn nu(&self, t: usize, k: usize) -> usize {
        self.block(t) + NU + NX + k
    }
    fn dim(&self) -> usize {
        self.block(self.horizon)
    }
}

impl KktSystem {
    /// Assemble the KKT system of one trajectory problem.
    pub fn assemble(p: &TrajectoryProblem) -> KktSystem {
        let ord = Order { horizon: p.horizon };
        let dim = ord.dim();
        let mut m = SymSparse::zeros(dim);
        let mut rhs = vec![0.0; dim];

        let a = p.a_matrix();
        let b = p.b_matrix();

        for t in 0..p.horizon {
            // objective blocks (+ regularization on primals)
            for k in 0..NU {
                m.add(ord.u(t, k), ord.u(t, k), p.r_diag[k] + EPS_REG);
            }
            let r = p.reference(t);
            for k in 0..NX {
                m.add(ord.x(t, k), ord.x(t, k), p.q_diag[k] + EPS_REG);
                rhs[ord.x(t, k)] = p.q_diag[k] * r[k];
            }
            // dynamics: x_{t+1} - A x_t - B u_t = 0, dual nu_t
            for i in 0..NX {
                let row = ord.nu(t, i);
                m.add(row, row, -EPS_REG);
                m.add(row, ord.x(t, i), 1.0); // +x_{t+1}
                for (k, bi) in b[i].iter().enumerate() {
                    m.add(row, ord.u(t, k), -bi);
                }
                if t > 0 {
                    for (k, ai) in a[i].iter().enumerate() {
                        m.add(row, ord.x(t - 1, k), -ai);
                    }
                } else {
                    // x_0 is data: A x_0 moves to the rhs
                    let ax0: f64 = (0..NX).map(|k| a[i][k] * p.x0[k]).sum();
                    rhs[row] = ax0;
                }
            }
        }
        KktSystem {
            matrix: m,
            rhs,
            num_primal: p.num_vars(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::solver_suite;

    #[test]
    fn dimensions() {
        let p = &solver_suite()[0];
        let k = KktSystem::assemble(p);
        assert_eq!(k.matrix.dim(), p.num_vars() + p.num_eq());
        assert_eq!(k.rhs.len(), k.matrix.dim());
    }

    #[test]
    fn banded_structure() {
        let p = &solver_suite()[1];
        let k = KktSystem::assemble(p);
        let dim = k.matrix.dim();
        // bandwidth bounded by two step-blocks
        let band = 2 * (NU + NX + NX);
        for i in 0..dim {
            for &(j, _) in k.matrix.row(i) {
                assert!(i - j <= band, "entry ({i},{j}) outside band");
            }
        }
    }

    #[test]
    fn quasi_definite_signs() {
        let p = &solver_suite()[0];
        let k = KktSystem::assemble(p);
        let ord = Order { horizon: p.horizon };
        for t in 0..p.horizon {
            for kk in 0..NX {
                assert!(k.matrix.get(ord.x(t, kk), ord.x(t, kk)) > 0.0);
                assert!(k.matrix.get(ord.nu(t, kk), ord.nu(t, kk)) < 0.0);
            }
        }
    }
}
