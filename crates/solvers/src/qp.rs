//! General QP description with equality and inequality constraints —
//! the problem class CVXGEN's generated solvers handle:
//!
//! ```text
//! minimize    ½ zᵀ P z + qᵀ z
//! subject to  A z = b,   G z ≤ h
//! ```
//!
//! The trajectory problems of Sec. IV-D extend their equality-constrained
//! core with actuator and speed limits here; the interior-point method in
//! [`crate::ipm`] then solves KKT systems of the *same fixed sparsity*
//! every iteration — the property that lets the `ldlsolve()` kernel be
//! generated once and reused.

use crate::sparse::SymSparse;
use crate::trajectory::{TrajectoryProblem, NU, NX};

/// A sparse linear constraint row: `Σ coeffs · z (cmp) rhs`.
pub type Row = (Vec<(usize, f64)>, f64);

/// A quadratic program.
#[derive(Clone, Debug)]
pub struct QpProblem {
    /// Primal dimension.
    pub dim: usize,
    /// Quadratic cost (symmetric PSD).
    pub p: SymSparse,
    /// Linear cost.
    pub q: Vec<f64>,
    /// Equality rows `a·z = b`.
    pub eq: Vec<Row>,
    /// Inequality rows `g·z ≤ h`.
    pub ineq: Vec<Row>,
}

impl QpProblem {
    /// Objective value at `z`.
    pub fn objective(&self, z: &[f64]) -> f64 {
        let pz = self.p.mul_vec(z);
        0.5 * z.iter().zip(&pz).map(|(a, b)| a * b).sum::<f64>()
            + self.q.iter().zip(z).map(|(a, b)| a * b).sum::<f64>()
    }

    /// Max equality violation at `z`.
    pub fn eq_violation(&self, z: &[f64]) -> f64 {
        self.eq
            .iter()
            .map(|(row, b)| (row.iter().map(|&(j, v)| v * z[j]).sum::<f64>() - b).abs())
            .fold(0.0, f64::max)
    }

    /// Max inequality violation at `z` (0 when feasible).
    pub fn ineq_violation(&self, z: &[f64]) -> f64 {
        self.ineq
            .iter()
            .map(|(row, h)| (row.iter().map(|&(j, v)| v * z[j]).sum::<f64>() - h).max(0.0))
            .fold(0.0, f64::max)
    }
}

/// Index of control `u_t[k]` in the interleaved MPC variable order
/// (matching `kkt::Order`: per step `NU` controls then `NX` states).
pub fn u_index(t: usize, k: usize) -> usize {
    t * (NU + NX) + k
}

/// Index of state `x_{t+1}[k]`.
pub fn x_index(t: usize, k: usize) -> usize {
    t * (NU + NX) + NU + k
}

/// Build the constrained trajectory QP: the equality-constrained tracking
/// problem of [`TrajectoryProblem`] plus actuator limits `|u| ≤ u_max`
/// and a forward speed cap `v_x ≤ v_max`.
pub fn trajectory_qp(p: &TrajectoryProblem, u_max: f64, v_max: f64) -> QpProblem {
    let n = p.num_vars();
    let mut pm = SymSparse::zeros(n);
    let mut q = vec![0.0; n];
    for t in 0..p.horizon {
        for k in 0..NU {
            pm.add(u_index(t, k), u_index(t, k), p.r_diag[k]);
        }
        let r = p.reference(t);
        for k in 0..NX {
            pm.add(x_index(t, k), x_index(t, k), p.q_diag[k]);
            q[x_index(t, k)] = -p.q_diag[k] * r[k];
        }
    }

    let a = p.a_matrix();
    let b = p.b_matrix();
    let mut eq: Vec<Row> = Vec::new();
    for t in 0..p.horizon {
        for i in 0..NX {
            let mut row: Vec<(usize, f64)> = vec![(x_index(t, i), 1.0)];
            for (k, bi) in b[i].iter().enumerate() {
                if *bi != 0.0 {
                    row.push((u_index(t, k), -bi));
                }
            }
            let mut rhs = 0.0;
            if t > 0 {
                for (k, ai) in a[i].iter().enumerate() {
                    if *ai != 0.0 {
                        row.push((x_index(t - 1, k), -ai));
                    }
                }
            } else {
                rhs = (0..NX).map(|k| a[i][k] * p.x0[k]).sum();
            }
            eq.push((row, rhs));
        }
    }

    let mut ineq: Vec<Row> = Vec::new();
    for t in 0..p.horizon {
        for k in 0..NU {
            ineq.push((vec![(u_index(t, k), 1.0)], u_max));
            ineq.push((vec![(u_index(t, k), -1.0)], u_max));
        }
        // forward speed cap
        ineq.push((vec![(x_index(t, 2), 1.0)], v_max));
    }

    QpProblem {
        dim: n,
        p: pm,
        q,
        eq,
        ineq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::solver_suite;

    #[test]
    fn dimensions_and_counts() {
        let p = &solver_suite()[0];
        let qp = trajectory_qp(p, 3.0, 15.0);
        assert_eq!(qp.dim, p.num_vars());
        assert_eq!(qp.eq.len(), p.num_eq());
        assert_eq!(qp.ineq.len(), p.horizon * (2 * NU + 1));
    }

    #[test]
    fn objective_and_violations() {
        let p = &solver_suite()[0];
        let qp = trajectory_qp(p, 3.0, 15.0);
        let z = vec![0.0; qp.dim];
        // zero controls/states violate the dynamics with x0 moving
        assert!(qp.eq_violation(&z) > 0.0);
        assert_eq!(qp.ineq_violation(&z), 0.0);
        assert!(qp.objective(&z).abs() < 1e-12); // pure quadratic at 0
    }
}
