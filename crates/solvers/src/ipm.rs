//! Primal-dual interior-point method over the fixed-pattern KKT system —
//! the solver loop around the `ldlsolve()` kernel the paper accelerates.
//!
//! CVXGEN's generated solvers run a handful of interior-point iterations;
//! each one factors and solves a KKT matrix whose **sparsity never
//! changes** — only the `-diag(s/λ)` block updates numerically. That is
//! what makes fully unrolled, statically scheduled `ldlfactor`/`ldlsolve`
//! hardware possible. This module implements the loop (path-following
//! with a fixed centering parameter and fraction-to-boundary steps),
//! reusing [`LdlFactors`] for the per-iteration factorization; the
//! `per-iteration solve` is byte-identical in structure to the generated
//! kernel, which the tests cross-check.

use crate::ldl::LdlFactors;
use crate::qp::QpProblem;
use crate::sparse::SymSparse;

/// Regularization of the augmented system (CVXGEN-style).
const EPS_REG: f64 = 1e-8;
/// Fixed centering parameter.
const SIGMA: f64 = 0.1;
/// Fraction-to-boundary factor.
const GAMMA: f64 = 0.99;

/// Result of an interior-point solve.
#[derive(Clone, Debug)]
pub struct IpmResult {
    /// Primal solution.
    pub z: Vec<f64>,
    /// Inequality duals (λ ≥ 0).
    pub lambda: Vec<f64>,
    /// Equality duals.
    pub y: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final duality measure `sᵀλ / m`.
    pub gap: f64,
    /// Final max primal residual (equalities and inequalities).
    pub primal_residual: f64,
    /// Final max dual (stationarity) residual.
    pub dual_residual: f64,
}

/// KKT variable layout: `[z | λ | y]`.
struct Layout {
    n: usize,
    mi: usize,
    me: usize,
}

impl Layout {
    fn lam(&self, i: usize) -> usize {
        self.n + i
    }
    fn yy(&self, i: usize) -> usize {
        self.n + self.mi + i
    }
    fn dim(&self) -> usize {
        self.n + self.mi + self.me
    }
}

/// Assemble the iteration-invariant part of the KKT matrix. The
/// `-s_i/λ_i` diagonal entries are placeholders refreshed per iteration
/// — the *pattern* is what the generated kernel is specialized to.
fn assemble_kkt(qp: &QpProblem, lay: &Layout) -> SymSparse {
    let mut m = SymSparse::zeros(lay.dim());
    for i in 0..qp.dim {
        for &(j, v) in qp.p.row(i) {
            m.add(i, j, v);
        }
    }
    for i in 0..qp.dim {
        m.add(i, i, EPS_REG);
    }
    for (r, (row, _)) in qp.ineq.iter().enumerate() {
        m.add(lay.lam(r), lay.lam(r), -1.0); // placeholder for -s/λ
        for &(j, v) in row {
            m.add(lay.lam(r), j, v);
        }
    }
    for (r, (row, _)) in qp.eq.iter().enumerate() {
        m.add(lay.yy(r), lay.yy(r), -EPS_REG);
        for &(j, v) in row {
            m.add(lay.yy(r), j, v);
        }
    }
    m
}

/// Refresh the `-s/λ` diagonal for the current iterate.
fn refresh_diagonal(m: &mut SymSparse, lay: &Layout, s: &[f64], lambda: &[f64]) {
    for i in 0..lay.mi {
        let idx = lay.lam(i);
        let want = -(s[i] / lambda[i]) - EPS_REG;
        let cur = m.get(idx, idx);
        m.add(idx, idx, want - cur);
    }
}

fn dot_row(row: &[(usize, f64)], z: &[f64]) -> f64 {
    row.iter().map(|&(j, v)| v * z[j]).sum()
}

/// The KKT matrix at a given interior iterate — public so the generated
/// `ldlsolve` kernel can be cross-checked against an interior-point
/// iteration (the pattern is iterate-invariant; only the `-s/λ` diagonal
/// values change).
pub fn kkt_at_iterate(qp: &QpProblem, s: &[f64], lambda: &[f64]) -> SymSparse {
    let lay = Layout {
        n: qp.dim,
        mi: qp.ineq.len(),
        me: qp.eq.len(),
    };
    let mut m = assemble_kkt(qp, &lay);
    refresh_diagonal(&mut m, &lay, s, lambda);
    m
}

/// Solve the QP with a primal-dual path-following interior-point method.
///
/// Returns when the duality gap and primal residuals fall below `tol`
/// or after `max_iter` iterations.
pub fn solve_qp(qp: &QpProblem, max_iter: usize, tol: f64) -> IpmResult {
    solve_qp_warm(qp, max_iter, tol, None)
}

/// [`solve_qp`] with an optional warm start from a previous solution —
/// the standard MPC trick: consecutive control periods solve nearly
/// identical QPs, so re-centered duals/slacks from the last period cut
/// the iteration count substantially.
pub fn solve_qp_warm(
    qp: &QpProblem,
    max_iter: usize,
    tol: f64,
    warm: Option<&IpmResult>,
) -> IpmResult {
    let lay = Layout {
        n: qp.dim,
        mi: qp.ineq.len(),
        me: qp.eq.len(),
    };
    let mut kkt = assemble_kkt(qp, &lay);

    let (mut z, mut lambda, mut s, mut y) = match warm {
        Some(w) if w.z.len() == lay.n && w.lambda.len() == lay.mi => {
            // keep the primal/dual point but re-center the complementarity
            // pair away from the boundary (floor at 1e-3)
            let lambda: Vec<f64> = w.lambda.iter().map(|&l| l.max(1e-3)).collect();
            let s: Vec<f64> = qp
                .ineq
                .iter()
                .map(|(row, h)| (h - dot_row(row, &w.z)).max(1e-3))
                .collect();
            (w.z.clone(), lambda, s, w.y.clone())
        }
        _ => (
            vec![0.0; lay.n],
            vec![1.0; lay.mi],
            vec![1.0; lay.mi],
            vec![0.0; lay.me],
        ),
    };

    let mut iterations = 0;
    let (mut gap, mut rp_max, mut rd_max);
    loop {
        // residuals
        let pz = qp.p.mul_vec(&z);
        let mut r_dual: Vec<f64> = (0..lay.n).map(|i| pz[i] + qp.q[i]).collect();
        for (r, (row, _)) in qp.ineq.iter().enumerate() {
            for &(j, v) in row {
                r_dual[j] += v * lambda[r];
            }
        }
        for (r, (row, _)) in qp.eq.iter().enumerate() {
            for &(j, v) in row {
                r_dual[j] += v * y[r];
            }
        }
        let r_ineq: Vec<f64> = qp
            .ineq
            .iter()
            .enumerate()
            .map(|(r, (row, h))| dot_row(row, &z) + s[r] - h)
            .collect();
        let r_eq: Vec<f64> = qp.eq.iter().map(|(row, b)| dot_row(row, &z) - b).collect();

        gap = if lay.mi == 0 {
            0.0
        } else {
            s.iter().zip(&lambda).map(|(a, b)| a * b).sum::<f64>() / lay.mi as f64
        };
        rp_max = r_eq
            .iter()
            .chain(r_ineq.iter())
            .map(|v| v.abs())
            .fold(0.0, f64::max);
        rd_max = r_dual.iter().map(|v| v.abs()).fold(0.0, f64::max);
        if (gap < tol && rp_max < tol && rd_max < tol * 10.0) || iterations >= max_iter {
            break;
        }

        // assemble rhs of the reduced system
        let mu = gap;
        let mut rhs = vec![0.0; lay.dim()];
        for i in 0..lay.n {
            rhs[i] = -r_dual[i];
        }
        for r in 0..lay.mi {
            // G dz - (s/λ) dλ = -r_ineq + s - σμ/λ
            rhs[lay.lam(r)] = -r_ineq[r] + s[r] - SIGMA * mu / lambda[r];
        }
        for r in 0..lay.me {
            rhs[lay.yy(r)] = -r_eq[r];
        }

        // factor with the refreshed diagonal (fixed pattern!) and solve —
        // this is the ldlfactor/ldlsolve pair of the generated code
        refresh_diagonal(&mut kkt, &lay, &s, &lambda);
        let factors = LdlFactors::factor(&kkt);
        let d = factors.solve(&rhs);

        let dz = &d[..lay.n];
        let dl = &d[lay.n..lay.n + lay.mi];
        let ds: Vec<f64> = (0..lay.mi)
            .map(|r| SIGMA * mu / lambda[r] - s[r] - s[r] / lambda[r] * dl[r])
            .collect();
        let dy = &d[lay.n + lay.mi..];

        // fraction-to-boundary step
        let mut alpha = 1.0f64;
        for r in 0..lay.mi {
            if dl[r] < 0.0 {
                alpha = alpha.min(-lambda[r] / dl[r]);
            }
            if ds[r] < 0.0 {
                alpha = alpha.min(-s[r] / ds[r]);
            }
        }
        let alpha = (GAMMA * alpha).min(1.0);

        for i in 0..lay.n {
            z[i] += alpha * dz[i];
        }
        for r in 0..lay.mi {
            lambda[r] += alpha * dl[r];
            s[r] += alpha * ds[r];
        }
        for (yi, dyi) in y.iter_mut().zip(dy) {
            *yi += alpha * dyi;
        }
        iterations += 1;
    }

    IpmResult {
        z,
        lambda,
        y,
        iterations,
        gap,
        primal_residual: rp_max,
        dual_residual: rd_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::{trajectory_qp, u_index, x_index};
    use crate::trajectory::solver_suite;

    #[test]
    fn scalar_box_qp() {
        // minimize (z-5)^2  s.t. z <= 2  -> z* = 2, λ* = 2(2-5)*-1 = 6
        let mut p = crate::sparse::SymSparse::zeros(1);
        p.add(0, 0, 2.0);
        let qp = QpProblem {
            dim: 1,
            p,
            q: vec![-10.0],
            eq: vec![],
            ineq: vec![(vec![(0, 1.0)], 2.0)],
        };
        let r = solve_qp(&qp, 50, 1e-8);
        assert!((r.z[0] - 2.0).abs() < 1e-5, "z = {}", r.z[0]);
        assert!((r.lambda[0] - 6.0).abs() < 1e-3, "λ = {}", r.lambda[0]);
        assert!(r.gap < 1e-6);
    }

    #[test]
    fn equality_only_matches_kkt_solve() {
        // with very loose bounds the IPM must agree with the pure
        // equality-constrained KKT solution
        let p = &solver_suite()[0];
        let qp = trajectory_qp(p, 1e6, 1e6);
        let r = solve_qp(&qp, 60, 1e-9);
        assert!(r.primal_residual < 1e-6, "primal {}", r.primal_residual);
        assert!(r.dual_residual < 1e-4, "dual {}", r.dual_residual);
        // compare against an explicit equality-KKT factorization
        let lay_n = qp.dim;
        let me = qp.eq.len();
        let mut kkt = crate::sparse::SymSparse::zeros(lay_n + me);
        for i in 0..lay_n {
            for &(j, v) in qp.p.row(i) {
                kkt.add(i, j, v);
            }
            kkt.add(i, i, 1e-9);
        }
        for (rr, (row, _)) in qp.eq.iter().enumerate() {
            kkt.add(lay_n + rr, lay_n + rr, -1e-9);
            for &(j, v) in row {
                kkt.add(lay_n + rr, j, v);
            }
        }
        let mut rhs = vec![0.0; lay_n + me];
        for (slot, q) in rhs.iter_mut().zip(&qp.q) {
            *slot = -q;
        }
        for (rr, (_, b)) in qp.eq.iter().enumerate() {
            rhs[lay_n + rr] = *b;
        }
        let f = crate::ldl::LdlFactors::factor(&kkt);
        let x = f.solve(&rhs);
        for (i, xi) in x.iter().enumerate().take(lay_n) {
            assert!(
                (r.z[i] - xi).abs() < 1e-3 * xi.abs().max(1.0),
                "z[{i}] = {} vs {}",
                r.z[i],
                xi
            );
        }
    }

    #[test]
    fn actuator_limits_bind() {
        let p = &solver_suite()[1];
        // tight limits: the tracking problem wants more acceleration
        let u_max = 0.8;
        let qp = trajectory_qp(p, u_max, 1e6);
        let r = solve_qp(&qp, 80, 1e-7);
        assert!(r.primal_residual < 1e-5, "primal {}", r.primal_residual);
        assert!(qp.ineq_violation(&r.z) < 1e-6);
        // the constraint is active somewhere and controls stay in range
        let mut max_u: f64 = 0.0;
        for t in 0..p.horizon {
            for k in 0..crate::trajectory::NU {
                max_u = max_u.max(r.z[u_index(t, k)].abs());
            }
        }
        assert!(max_u <= u_max + 1e-6, "max |u| = {max_u}");
        assert!(max_u > 0.95 * u_max, "limit binds: {max_u}");
        // objective is worse than with loose limits (constrained optimum)
        let loose = solve_qp(&trajectory_qp(p, 1e6, 1e6), 80, 1e-7);
        assert!(qp.objective(&r.z) >= qp.objective(&loose.z) - 1e-6);
        // multipliers of active constraints are positive
        assert!(r.lambda.iter().cloned().fold(0.0, f64::max) > 1e-3);
    }

    #[test]
    fn speed_cap_binds() {
        let p = &solver_suite()[0];
        let v_max = 9.0; // reference wants ~12 m/s
        let qp = trajectory_qp(p, 1e6, v_max);
        let r = solve_qp(&qp, 80, 1e-7);
        let mut vmax_seen: f64 = 0.0;
        for t in 0..p.horizon {
            vmax_seen = vmax_seen.max(r.z[x_index(t, 2)]);
        }
        assert!(vmax_seen <= v_max + 1e-5, "v = {vmax_seen}");
        assert!(vmax_seen > 0.9 * v_max, "cap binds: {vmax_seen}");
    }

    #[test]
    fn kkt_pattern_is_iteration_invariant() {
        // the enabling property for static ldlsolve codegen: the pattern
        // after the diagonal refresh is identical
        let p = &solver_suite()[0];
        let qp = trajectory_qp(p, 3.0, 15.0);
        let lay = Layout {
            n: qp.dim,
            mi: qp.ineq.len(),
            me: qp.eq.len(),
        };
        let mut m = assemble_kkt(&qp, &lay);
        let pat_before: Vec<Vec<usize>> = crate::ldl::symbolic_ldl(&m);
        refresh_diagonal(&mut m, &lay, &vec![0.5; lay.mi], &vec![2.0; lay.mi]);
        let pat_after = crate::ldl::symbolic_ldl(&m);
        assert_eq!(pat_before, pat_after);
    }
}

#[cfg(test)]
mod warm_start_tests {
    use super::*;
    use crate::qp::trajectory_qp;
    use crate::trajectory::solver_suite;

    #[test]
    fn warm_start_cuts_iterations() {
        let p = &solver_suite()[1];
        let qp = trajectory_qp(p, 2.5, 13.0);
        let cold = solve_qp(&qp, 80, 1e-7);
        // slightly perturbed problem (the next MPC period)
        let mut p2 = p.clone();
        p2.x0[0] += 1.5;
        p2.x0[2] -= 0.3;
        let qp2 = trajectory_qp(&p2, 2.5, 13.0);
        let cold2 = solve_qp(&qp2, 80, 1e-7);
        let warm2 = solve_qp_warm(&qp2, 80, 1e-7, Some(&cold));
        assert!(warm2.gap < 1e-6 && warm2.primal_residual < 1e-5);
        assert!(
            warm2.iterations < cold2.iterations,
            "warm {} vs cold {}",
            warm2.iterations,
            cold2.iterations
        );
        // both land on the same optimum
        for (a, b) in warm2.z.iter().zip(&cold2.z) {
            assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0));
        }
    }

    #[test]
    fn mismatched_warm_start_is_ignored() {
        let p = &solver_suite()[0];
        let qp = trajectory_qp(p, 2.5, 13.0);
        let bogus = IpmResult {
            z: vec![0.0; 3], // wrong dimension
            lambda: vec![],
            y: vec![],
            iterations: 0,
            gap: 0.0,
            primal_residual: 0.0,
            dual_residual: 0.0,
        };
        let r = solve_qp_warm(&qp, 80, 1e-7, Some(&bogus));
        assert!(r.gap < 1e-6, "falls back to a cold start");
    }
}
