//! Addend alignment (pre-shift) into the wide addition window.
//!
//! The classic FMA (Fig. 4) and both P/FCS units pre-shift the additive
//! input `A` in parallel with the multiplication. The behavioral model
//! places a two's-complement CS addend into a `window`-bit frame at a
//! signed bit offset; bits pushed below the frame are wired away exactly
//! like hardware (they would only ever influence rounding data, whose
//! bounded inaccuracy Sec. III-E accepts).

use csfma_carrysave::CsNumber;

/// An aligned addend with diagnostics about what fell off the frame.
#[derive(Clone, Debug)]
pub struct AlignedAddend {
    /// The addend placed in the window, still in CS form.
    pub value: CsNumber,
    /// True iff nonzero low bits were dropped (right shift past the LSB).
    pub dropped_low: bool,
    /// True iff significant high bits were lost (should never happen when
    /// the window is sized per Sec. III-D; kept as a checked diagnostic).
    pub dropped_high: bool,
}

/// Place the signed CS addend `a` into a `window`-bit frame, shifted so
/// that `a`'s bit 0 lands at window position `shift` (which may be
/// negative).
///
/// Value contract (per CS word, as in hardware): each word is
/// sign-extended to the window and shifted arithmetically; for negative
/// shifts each word drops its low bits independently, so the aligned value
/// may differ from the ideally shifted value by at most 1 window ULP —
/// the same truncation a wired shifter performs.
pub fn align_addend(a: &CsNumber, window: usize, shift: i64) -> AlignedAddend {
    if shift >= 0 {
        let sh = shift as usize;
        if sh >= window {
            // the whole addend is above the frame: saturate (diagnostic)
            return AlignedAddend {
                value: CsNumber::zero(window),
                dropped_low: false,
                dropped_high: !a.sum().is_zero() || !a.carry().is_zero(),
            };
        }
        let sum = a.sum().sext(window).shl(sh);
        let carry = a.carry().sext(window).shl(sh);
        // high loss check: shifting must not change the signed value
        let dropped_high =
            sum.sar(sh) != a.sum().sext(window) || carry.sar(sh) != a.carry().sext(window);
        AlignedAddend {
            value: CsNumber::new(sum, carry),
            dropped_low: false,
            dropped_high,
        }
    } else {
        let sh = (-shift) as usize;
        let dropped_low = if sh >= a.width() {
            !a.sum().is_zero() || !a.carry().is_zero()
        } else {
            !a.sum().extract(0, sh).is_zero() || !a.carry().extract(0, sh).is_zero()
        };
        let sum = a
            .sum()
            .sext(window.max(a.width()))
            .sar(sh)
            .sext(window)
            .trunc(window);
        let carry = a
            .carry()
            .sext(window.max(a.width()))
            .sar(sh)
            .sext(window)
            .trunc(window);
        AlignedAddend {
            value: CsNumber::new(sum, carry),
            dropped_low,
            dropped_high: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csfma_bits::Bits;
    use proptest::prelude::*;

    fn cs(width: usize, v: i128, split: u64) -> CsNumber {
        CsNumber::new(
            Bits::from_i128(width, v.wrapping_sub(split as i128)),
            Bits::from_u64(width, split).zext(width),
        )
    }

    #[test]
    fn left_shift_exact() {
        let a = cs(16, -100, 7);
        let al = align_addend(&a, 64, 10);
        assert_eq!(al.value.resolve().to_i128(), -100 * 1024);
        assert!(!al.dropped_low && !al.dropped_high);
    }

    #[test]
    fn right_shift_truncates_like_hardware() {
        let a = cs(16, 0b110111, 0b1010);
        let al = align_addend(&a, 64, -3);
        // per-word truncation: (s >> 3) + (c >> 3); at most 1 ULP below ideal
        let ideal = 0b110111i128 >> 3;
        let got = al.value.resolve().to_i128();
        assert!(ideal - got <= 1 && got <= ideal, "got {got}, ideal {ideal}");
        assert!(al.dropped_low);
    }

    #[test]
    fn full_right_shift_vanishes() {
        let a = cs(16, 12345, 11);
        let al = align_addend(&a, 32, -40);
        assert!(al.value.resolve().is_zero());
        assert!(al.dropped_low);
    }

    #[test]
    fn overflow_left_is_flagged() {
        let a = cs(16, 30000, 0);
        let al = align_addend(&a, 20, 8);
        assert!(al.dropped_high);
    }

    /// The plane-space aligner (`align_lanes_to_planes`) must place each
    /// lane exactly like `align_addend` places a scalar word: same sign
    /// extension, same frame truncation, for any per-lane signed shift.
    #[test]
    fn plane_alignment_matches_align_addend_per_lane() {
        use csfma_carrysave::plane::{align_lanes_to_planes, planes_to_lanes, PLANE_LANES};

        let mut state = 0x51ab_17e5u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for &(src_w, w) in &[(112usize, 385usize), (70, 90), (64, 128), (33, 61), (1, 7)] {
            let sg = src_w.div_ceil(64);
            let mut lane_limbs = vec![0u64; PLANE_LANES * sg];
            let mut shifts = vec![0i64; PLANE_LANES];
            let mut active = 0u64;
            let mut lanes: Vec<Bits> = Vec::new();
            for l in 0..PLANE_LANES {
                let limbs: Vec<u64> = (0..sg).map(|_| next()).collect();
                lane_limbs[l * sg..(l + 1) * sg].copy_from_slice(&limbs);
                lanes.push(Bits::from_limbs(src_w, &limbs));
                // exercise both frame directions and out-of-frame shifts
                shifts[l] = (next() % (2 * (w as u64 + 8))) as i64 - (w as i64 + 8);
                if next() % 8 != 0 {
                    active |= 1 << l;
                }
            }
            let (mut scratch, mut planes, mut got) = (Vec::new(), Vec::new(), Vec::new());
            align_lanes_to_planes(
                &lane_limbs,
                src_w,
                &shifts,
                active,
                w,
                &mut scratch,
                &mut planes,
            );
            planes_to_lanes(&planes, w, PLANE_LANES, &mut got);
            for l in 0..PLANE_LANES {
                let want = if active & (1 << l) == 0 {
                    Bits::zero(w)
                } else {
                    // the frame placement applies per CS word; use the
                    // lane value as the sum word of a zero-carry pair
                    let cs = CsNumber::new(lanes[l].clone(), Bits::zero(src_w));
                    align_addend(&cs, w, shifts[l]).value.into_words().0
                };
                assert_eq!(
                    got[l], want,
                    "src_w {src_w} w {w} lane {l} shift {}",
                    shifts[l]
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_alignment_error_bounded(v in -(1i128<<30)..(1i128<<30), split in 0u64..256, shift in -40i64..40) {
            let a = cs(34, v, split);
            let al = align_addend(&a, 128, shift);
            if !al.dropped_high {
                let got = al.value.resolve().to_i128();
                let ideal = if shift >= 0 {
                    v << shift
                } else if (-shift) as u32 >= 127 {
                    if v < 0 { -1 } else { 0 }
                } else {
                    v >> (-shift)
                };
                prop_assert!(ideal - got <= 1 && got <= ideal, "got {} ideal {}", got, ideal);
            }
        }
    }
}
