//! Mod-3 residue arithmetic over datapath words — the classic cheap
//! checker for wide multipliers and adders.
//!
//! A residue code checks an arithmetic block by computing the same
//! operation in a tiny ring alongside the real one: for `R = A ⊕ B` the
//! checker verifies `R mod 3 == (A mod 3) ⊕ (B mod 3) mod 3`. The
//! modulus 3 is the standard choice for binary datapaths because
//! `2^2 ≡ 1 (mod 3)` makes the residue of a word a parity-weighted
//! popcount — a few LUT levels in hardware, a handful of `%` ops here —
//! and because **any single-bit flip is detected**: flipping bit `i`
//! changes the word's value by `±2^i`, and `2^i mod 3 ∈ {1, 2}` is never
//! zero.
//!
//! The signed variants implement the datapath's value convention
//! (two's-complement words, carry-save pairs valued as the *signed sum*
//! of their words — see `csfma-core::operand`): a `w`-bit signed word
//! values `unsigned - sign_bit·2^w`, so its residue subtracts
//! `2^w mod 3`.

use csfma_bits::Bits;
use csfma_carrysave::CsNumber;

/// `2^n mod 3`: 1 for even `n`, 2 for odd `n`.
#[inline]
pub fn mod3_pow2(n: usize) -> u32 {
    if n.is_multiple_of(2) {
        1
    } else {
        2
    }
}

/// Residue of a word interpreted as an unsigned integer. Exact for any
/// width: `2^64 ≡ 1 (mod 3)`, so limbs fold with weight one (the high
/// bits of the top limb are maintained zero by `Bits`).
pub fn mod3(word: &Bits) -> u32 {
    let mut r = 0u64;
    for &limb in word.limbs() {
        r += limb % 3;
    }
    (r % 3) as u32
}

/// Residue of a `w`-bit word interpreted as two's complement.
pub fn mod3_signed(word: &Bits) -> u32 {
    let u = mod3(word);
    if word.sign_bit() {
        (u + 3 - mod3_pow2(word.width())) % 3
    } else {
        u
    }
}

/// Residue of a carry-save pair under the datapath's signed two-word-sum
/// value convention: `sext(sum) + sext(carry)`.
pub fn mod3_cs_signed(cs: &CsNumber) -> u32 {
    (mod3_signed(cs.sum()) + mod3_signed(cs.carry())) % 3
}

/// Residue addition.
#[inline]
pub fn mod3_add(a: u32, b: u32) -> u32 {
    (a + b) % 3
}

/// Residue multiplication.
#[inline]
pub fn mod3_mul(a: u32, b: u32) -> u32 {
    (a * b) % 3
}

/// Residue negation.
#[inline]
pub fn mod3_neg(a: u32) -> u32 {
    (3 - a) % 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn residue_of_powers_of_two() {
        for i in 0..130usize {
            let b = Bits::one_hot(130, i);
            assert_eq!(mod3(&b), mod3_pow2(i), "bit {i}");
            assert_ne!(mod3(&b), 0, "a one-hot word is never ≡ 0 (mod 3)");
        }
    }

    #[test]
    fn signed_residue_of_minus_one() {
        for w in [7usize, 64, 65, 128, 131] {
            // all-ones = -1 ≡ 2 (mod 3)
            assert_eq!(mod3_signed(&Bits::ones(w)), 2, "width {w}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn prop_mod3_matches_u128(w in 1usize..=128, v: u128) {
            let v = if w == 128 { v } else { v & ((1u128 << w) - 1) };
            let b = Bits::from_u128(w, v);
            prop_assert_eq!(mod3(&b) as u128, v % 3);
        }

        #[test]
        fn prop_mod3_signed_matches_i128(w in 2usize..=126, v: i128) {
            let lo = -(1i128 << (w - 1));
            let hi = (1i128 << (w - 1)) - 1;
            let v = lo + v.rem_euclid(hi - lo + 1);
            let b = Bits::from_i128(w, v);
            prop_assert_eq!(mod3_signed(&b) as i128, v.rem_euclid(3));
        }

        #[test]
        fn prop_cs_signed_residue(w in 2usize..=100, s: i128, c: i128) {
            let m = (1i128 << (w.min(100) - 1)) - 1;
            let (s, c) = (s % m, c % m);
            let cs = CsNumber::new(Bits::from_i128(w, s), Bits::from_i128(w, c));
            prop_assert_eq!(mod3_cs_signed(&cs) as i128, (s + c).rem_euclid(3));
        }

        #[test]
        fn prop_single_bit_flip_always_moves_the_residue(w in 1usize..=130, v: u128, pos in 0usize..130) {
            let pos = pos % w;
            let v = if w >= 128 { v } else { v & ((1u128 << w) - 1) };
            let b = Bits::from_u128(w, v);
            let mut flipped = b.clone();
            flipped.set_bit(pos, !flipped.bit(pos));
            prop_assert_ne!(mod3(&b), mod3(&flipped));
            // and the same for the signed reading of the word
            prop_assert_ne!(mod3_signed(&b), mod3_signed(&flipped));
        }
    }
}
