//! The result block multiplexer (Fig. 7): a small N-to-1 mux per output
//! block replaces the full variable-distance normalization shifter.
//!
//! The PCS unit selects 2 of 7 blocks (a 6:1 choice per the paper's
//! counting, since at least two blocks must remain); the FCS unit selects
//! 3 of 13 (11:1). A parallel mux taps the block immediately right of the
//! result as rounding data for the *next* operator (Sec. III-C).

use csfma_carrysave::CsNumber;

/// Output of the block selection.
#[derive(Clone, Debug)]
pub struct BlockSelection {
    /// The `keep` selected blocks, reassembled MSB-first.
    pub result: CsNumber,
    /// The single block immediately right of the result (zero if the
    /// selection already reaches the window LSB).
    pub round_data: CsNumber,
    /// The skip value actually applied (clamped to the mux range).
    pub skip: usize,
}

/// Select `keep` consecutive blocks starting after `skip` leading blocks,
/// plus the next block as rounding data.
///
/// `skip` is clamped to `blocks.len() - keep` — the mux has only that many
/// positions (6 for PCS, 11 for FCS).
pub fn select_blocks(blocks: &[CsNumber], keep: usize, skip: usize) -> BlockSelection {
    assert!(keep >= 1 && keep <= blocks.len(), "mux keep out of range");
    let max_skip = blocks.len() - keep;
    let skip = skip.min(max_skip);
    let result = CsNumber::from_blocks(&blocks[skip..skip + keep]);
    let block_width = blocks[0].width();
    let round_data = if skip + keep < blocks.len() {
        blocks[skip + keep].clone()
    } else {
        CsNumber::zero(block_width)
    };
    BlockSelection {
        result,
        round_data,
        skip,
    }
}

/// Number of mux positions ("N-to-1") for a window of `total` blocks
/// keeping `keep`: the paper's 6-to-1 (7 blocks, keep 2) and 11-to-1
/// (13 blocks, keep 3).
pub fn mux_ways(total: usize, keep: usize) -> usize {
    total - keep + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use csfma_bits::Bits;

    fn blk(v: u64) -> CsNumber {
        CsNumber::new(Bits::from_u64(8, v), Bits::zero(8))
    }

    #[test]
    fn paper_mux_sizes() {
        assert_eq!(mux_ways(7, 2), 6); // PCS: Fig. 7
        assert_eq!(mux_ways(13, 3), 11); // FCS: Sec. III-H
    }

    #[test]
    fn selection_and_round_block() {
        let blocks = vec![blk(0), blk(0), blk(0xAB), blk(0xCD), blk(0xEF)];
        let sel = select_blocks(&blocks, 2, 2);
        assert_eq!(sel.result.resolve().to_u64(), 0xABCD);
        assert_eq!(sel.round_data.resolve().to_u64(), 0xEF);
        assert_eq!(sel.skip, 2);
    }

    #[test]
    fn skip_clamps_to_mux_range() {
        let blocks = vec![blk(1), blk(2), blk(3)];
        let sel = select_blocks(&blocks, 2, 9);
        assert_eq!(sel.skip, 1);
        assert_eq!(sel.result.resolve().to_u64(), 0x0203);
        assert!(sel.round_data.resolve().is_zero()); // at window LSB
    }

    #[test]
    fn zero_skip_keeps_top() {
        let blocks = vec![blk(9), blk(8), blk(7)];
        let sel = select_blocks(&blocks, 2, 0);
        assert_eq!(sel.result.resolve().to_u64(), 0x0908);
        assert_eq!(sel.round_data.resolve().to_u64(), 7);
    }
}
