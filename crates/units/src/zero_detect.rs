//! Block-granular Zero Detector (ZD) for two's-complement carry-save
//! mantissas (Sec. III-F, Fig. 10).
//!
//! After the block-mux normalization replaces the variable-distance
//! shifter (Fig. 7), leading zeros only need to be found at *block*
//! granularity. The CS representation complicates what "leading zero
//! block" means: Fig. 10 of the paper lists all-`0` blocks, all-`1`
//! blocks (sign replication), `1…1 2 0…0` blocks (a ripple carry that
//! zeroes the block), and an overflow hazard that forbids skipping when
//! the succeeding block's top digits could flip the sign.
//!
//! ## Value convention and exact skip conditions
//!
//! Our datapath consumes a CS pair by *sign-extending each word*
//! (multiplier rows, alignment — exactly what the FPGA wiring does), so
//! the value of a pair is `sext(sum) + sext(carry)`. Under that
//! convention, splitting off a top block `T` from a remainder `L` gives
//!
//! ```text
//! skip valid  ⟺  St' + Ct'  =  −(sl_msb + cl_msb)
//! ```
//!
//! where `St'`,`Ct'` are the top-block word values re-signed at block
//! width and `sl_msb + cl_msb` is the remainder's leading *digit*. Working
//! the three Fig. 10 patterns through this equation yields exact local
//! rules, each checking one digit of the succeeding block:
//!
//! * **all-0 block** (`St'+Ct' = 0`): skippable iff the next block's
//!   leading digit is `0`;
//! * **all-1 block** (`St'+Ct' = −1`): skippable iff the next leading
//!   digit is exactly `1`;
//! * **ripple-zero block** `1…1 2 0…0` with at least one leading `1`
//!   (`St'+Ct' = 0`): skippable iff the next leading digit is `0`. The
//!   degenerate `2 0…0` pattern re-signs to `−2^b` and is never
//!   skippable.
//!
//! These are the analogues, for the two-word signed-sum semantics, of the
//! paper's guard "skip an all-0 block only if the first two CS digits of
//! the succeeding block are also 0" (which matches a carry-resolving
//! consumer). The property test below checks value preservation on random
//! CS words digit by digit.

use csfma_carrysave::CsNumber;

/// Classification of a single CS block as seen by the detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// All digits zero (Fig. 10 a).
    AllZero,
    /// All digits one (Fig. 10 b).
    AllOne,
    /// `1…1 2 0…0` with at least one leading one: the `2` ripples the
    /// block to zero with a carry-out beyond it (Fig. 10 c).
    RippleZero,
    /// Anything else — significant.
    Significant,
}

/// Classify one block by its digit string.
pub fn classify_block(block: &CsNumber) -> BlockKind {
    let b = block.width();
    let mut all_zero = true;
    let mut all_one = true;
    for i in 0..b {
        let d = block.digit(i);
        all_zero &= d == 0;
        all_one &= d == 1;
    }
    if all_zero {
        return BlockKind::AllZero;
    }
    if all_one {
        return BlockKind::AllOne;
    }
    // ripple pattern, MSB downwards: 1+ 2 0*
    if block.digit(b - 1) == 1 {
        let mut i = b - 1;
        while i > 0 && block.digit(i) == 1 {
            i -= 1;
        }
        if block.digit(i) == 2 && (0..i).all(|j| block.digit(j) == 0) {
            return BlockKind::RippleZero;
        }
    }
    BlockKind::Significant
}

/// Run the Zero Detector over MSB-first blocks: return how many leading
/// blocks can be skipped while preserving the signed two-word value of
/// the remainder. At least `min_keep` blocks are always kept.
pub fn leading_skippable_blocks(blocks: &[CsNumber], min_keep: usize) -> usize {
    let mut skip = 0;
    while blocks.len() - skip > min_keep {
        let cur = &blocks[skip];
        let next = &blocks[skip + 1]; // exists: len - skip > min_keep >= 1
        let next_top = next.digit(next.width() - 1);
        let ok = match classify_block(cur) {
            BlockKind::AllZero | BlockKind::RippleZero => next_top == 0,
            BlockKind::AllOne => next_top == 1,
            BlockKind::Significant => false,
        };
        if !ok {
            break;
        }
        skip += 1;
    }
    skip
}

#[cfg(test)]
mod tests {
    use super::*;
    use csfma_bits::Bits;
    use proptest::prelude::*;

    fn block_from_digits(digits: &[u8]) -> CsNumber {
        // MSB-first digit string -> CS pair (digit 1 goes to sum, 2 sets both)
        let b = digits.len();
        let mut sum = Bits::zero(b);
        let mut carry = Bits::zero(b);
        for (k, &d) in digits.iter().enumerate() {
            let pos = b - 1 - k;
            match d {
                0 => {}
                1 => sum.set_bit(pos, true),
                2 => {
                    sum.set_bit(pos, true);
                    carry.set_bit(pos, true);
                }
                _ => panic!("digit out of range"),
            }
        }
        CsNumber::new(sum, carry)
    }

    fn signed_value(blocks: &[CsNumber]) -> i128 {
        CsNumber::from_blocks(blocks)
            .resolve_signed_extended()
            .to_i128()
    }

    #[test]
    fn classify_fig10_cases() {
        assert_eq!(
            classify_block(&block_from_digits(&[0, 0, 0, 0, 0, 0, 0])),
            BlockKind::AllZero
        );
        assert_eq!(
            classify_block(&block_from_digits(&[1, 1, 1, 1, 1, 1, 1])),
            BlockKind::AllOne
        );
        assert_eq!(
            classify_block(&block_from_digits(&[1, 1, 1, 1, 2, 0, 0])),
            BlockKind::RippleZero
        );
        // the degenerate `2 0…0` pattern is NOT a ripple-zero here: its
        // re-signed top-block value is -2^b, which no succeeding digit
        // can compensate
        assert_eq!(
            classify_block(&block_from_digits(&[2, 0, 0, 0, 0, 0, 0])),
            BlockKind::Significant
        );
        assert_eq!(
            classify_block(&block_from_digits(&[0, 0, 0, 0, 0, 1, 2])),
            BlockKind::Significant
        );
        assert_eq!(
            classify_block(&block_from_digits(&[1, 1, 2, 1, 0, 0, 0])),
            BlockKind::Significant
        );
    }

    #[test]
    fn all_zero_skip_requires_zero_digit() {
        let skippable = vec![block_from_digits(&[0, 0, 0]), block_from_digits(&[0, 1, 2])];
        assert_eq!(leading_skippable_blocks(&skippable, 1), 1);
        assert_eq!(signed_value(&skippable), signed_value(&skippable[1..]));
        let blocked = vec![block_from_digits(&[0, 0, 0]), block_from_digits(&[1, 0, 0])];
        assert_eq!(leading_skippable_blocks(&blocked, 1), 0);
    }

    #[test]
    fn all_one_skip_requires_one_digit() {
        let skippable = vec![block_from_digits(&[1, 1, 1]), block_from_digits(&[1, 0, 2])];
        assert_eq!(leading_skippable_blocks(&skippable, 1), 1);
        assert_eq!(signed_value(&skippable), signed_value(&skippable[1..]));
        for top in [0u8, 2] {
            let blocked = vec![
                block_from_digits(&[1, 1, 1]),
                block_from_digits(&[top, 0, 0]),
            ];
            assert_eq!(leading_skippable_blocks(&blocked, 1), 0, "next top {top}");
        }
    }

    #[test]
    fn ripple_zero_skip() {
        let skippable = vec![
            block_from_digits(&[1, 1, 2, 0]),
            block_from_digits(&[0, 1, 1, 0]),
        ];
        assert_eq!(leading_skippable_blocks(&skippable, 1), 1);
        assert_eq!(signed_value(&skippable), signed_value(&skippable[1..]));
    }

    #[test]
    fn iterative_skipping() {
        let blocks = vec![
            block_from_digits(&[0, 0, 0]),
            block_from_digits(&[0, 0, 0]),
            block_from_digits(&[0, 1, 0]),
            block_from_digits(&[2, 2, 2]),
        ];
        assert_eq!(leading_skippable_blocks(&blocks, 1), 2);
        assert_eq!(signed_value(&blocks), signed_value(&blocks[2..]));
    }

    #[test]
    fn min_keep_is_respected() {
        let blocks = vec![
            block_from_digits(&[0, 0, 0, 0]),
            block_from_digits(&[0, 0, 0, 0]),
            block_from_digits(&[0, 0, 0, 0]),
        ];
        assert_eq!(leading_skippable_blocks(&blocks, 2), 1);
        assert_eq!(leading_skippable_blocks(&blocks, 3), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4000))]

        /// The one property everything rests on: skipping preserves the
        /// signed two-word value, for every digit string and every word
        /// split of each digit (digit 1 may live in either word).
        #[test]
        fn prop_skip_preserves_signed_value(
            digits in prop::collection::vec(0u8..=2, 12),
            split_mask in any::<u16>(),
        ) {
            let blocks: Vec<CsNumber> = digits
                .chunks(3)
                .enumerate()
                .map(|(bi, ch)| {
                    let b = ch.len();
                    let mut sum = Bits::zero(b);
                    let mut carry = Bits::zero(b);
                    for (k, &d) in ch.iter().enumerate() {
                        let pos = b - 1 - k;
                        let idx = bi * 3 + k;
                        match d {
                            0 => {}
                            1 => {
                                // put the single one in sum or carry per mask
                                if split_mask >> idx & 1 == 1 {
                                    carry.set_bit(pos, true);
                                } else {
                                    sum.set_bit(pos, true);
                                }
                            }
                            _ => {
                                sum.set_bit(pos, true);
                                carry.set_bit(pos, true);
                            }
                        }
                    }
                    CsNumber::new(sum, carry)
                })
                .collect();
            let skip = leading_skippable_blocks(&blocks, 1);
            for s in 0..=skip {
                prop_assert_eq!(
                    signed_value(&blocks),
                    signed_value(&blocks[s..]),
                    "skip {} of {:?}",
                    s,
                    digits
                );
            }
        }
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;
    use csfma_bits::Bits;

    fn block(digits: &[u8]) -> CsNumber {
        let b = digits.len();
        let mut sum = Bits::zero(b);
        let mut carry = Bits::zero(b);
        for (k, &d) in digits.iter().enumerate() {
            let pos = b - 1 - k;
            if d >= 1 {
                sum.set_bit(pos, true);
            }
            if d == 2 {
                carry.set_bit(pos, true);
            }
        }
        CsNumber::new(sum, carry)
    }

    /// Slow reference classifier straight from the Fig. 10 prose.
    fn reference_classify(digits: &[u8]) -> BlockKind {
        if digits.iter().all(|&d| d == 0) {
            return BlockKind::AllZero;
        }
        if digits.iter().all(|&d| d == 1) {
            return BlockKind::AllOne;
        }
        // 1+ 2 0*
        if digits[0] == 1 {
            let ones = digits.iter().take_while(|&&d| d == 1).count();
            if digits.get(ones) == Some(&2) && digits[ones + 1..].iter().all(|&d| d == 0) {
                return BlockKind::RippleZero;
            }
        }
        BlockKind::Significant
    }

    /// All 3^5 digit strings of a 5-digit block.
    #[test]
    fn exhaustive_block_classification() {
        let mut counts = [0usize; 4];
        for code in 0..3usize.pow(5) {
            let digits: Vec<u8> = (0..5)
                .rev()
                .map(|k| ((code / 3usize.pow(k)) % 3) as u8)
                .collect();
            let got = classify_block(&block(&digits));
            let want = reference_classify(&digits);
            assert_eq!(got, want, "digits {digits:?}");
            counts[match got {
                BlockKind::AllZero => 0,
                BlockKind::AllOne => 1,
                BlockKind::RippleZero => 2,
                BlockKind::Significant => 3,
            }] += 1;
        }
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 4, "patterns 12000, 11200, 11120, 11112");
        assert_eq!(counts[0] + counts[1] + counts[2] + counts[3], 243);
    }

    /// Exhaustive 2-block skip validity: every skip the detector takes
    /// preserves the signed two-word value (soundness over the complete
    /// digit space; word splits of digit 1 are covered by the random
    /// property test in the parent module).
    #[test]
    fn exhaustive_two_block_soundness() {
        for code in 0..3usize.pow(6) {
            let digits: Vec<u8> = (0..6)
                .rev()
                .map(|k| ((code / 3usize.pow(k)) % 3) as u8)
                .collect();
            let blocks = vec![block(&digits[..3]), block(&digits[3..])];
            let skip = leading_skippable_blocks(&blocks, 1);
            if skip == 1 {
                let full = CsNumber::from_blocks(&blocks);
                let kept = CsNumber::from_blocks(&blocks[1..]);
                assert_eq!(
                    full.resolve_signed_extended().to_i128(),
                    kept.resolve_signed_extended().to_i128(),
                    "unsound skip for {digits:?}"
                );
            }
        }
    }
}
