//! Block-granular rounding decision (Secs. III-C / III-E).
//!
//! Between chained FMA operators the mantissa travels *unrounded*; the
//! consumer decides "round half away from zero" by examining only the
//! single rounding-data block attached to the operand. Because that block
//! is in carry-save form and the blocks below it were discarded, the
//! decision is inexact in two bounded ways the paper accepts:
//!
//! * a carry that would ripple through the entire block from discarded
//!   lower data is lost — the largest value erroneously rounded *down*
//!   differs from one half by less than `2^-53` for the 55-bit block
//!   (the paper quotes 0.50000000000000083 decimal);
//! * an exact tie cannot be distinguished from "just above half", so
//!   negative ties round toward zero instead of away (IEEE half-away
//!   would need the discarded sticky information).

use csfma_carrysave::CsNumber;

/// Decide whether the mantissa should be incremented by one ULP, from its
/// rounding-data block alone.
///
/// Hardware view: the block's sum and carry words are added by the short
/// segment adders (constant time); the mantissa rounds up iff the resolved
/// block value is at least half an ULP (`>= 2^(b-1)`), including the case
/// where the CS digits overflow the block (value `>= 2^b`).
pub fn round_up_from_block(round_data: &CsNumber) -> bool {
    let b = round_data.width();
    if b == 0 {
        return false;
    }
    let resolved = round_data.resolve_extended(); // b + 1 bits, no wrap
    resolved.bit(b) || resolved.bit(b - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csfma_bits::Bits;
    use proptest::prelude::*;

    fn cs(w: usize, s: u64, c: u64) -> CsNumber {
        CsNumber::new(Bits::from_u64(w, s), Bits::from_u64(w, c))
    }

    #[test]
    fn plain_half_rounds_up() {
        assert!(round_up_from_block(&cs(8, 0x80, 0)));
        assert!(!round_up_from_block(&cs(8, 0x7f, 0)));
    }

    #[test]
    fn cs_overflow_still_rounds_up() {
        // digits 2 0 ... : value 2^b, ULP-and-a-bit — must round up even
        // though neither word alone has its MSB pattern look like half
        let block = cs(8, 0x80, 0x80);
        assert!(round_up_from_block(&block));
    }

    #[test]
    fn redundant_half_detected() {
        // 0.5 represented as 0.0200cs (Sec. III-E): sum 0b0100000,
        // carry 0b0100000 at the next lower digit — resolved = 0x80
        assert!(round_up_from_block(&cs(8, 0x40, 0x40)));
    }

    #[test]
    fn misrounding_case_documented() {
        // A value just over one half whose excess lived in the *discarded*
        // lower blocks: this block alone reads exactly half-minus-epsilon
        // and rounds down. This is the accepted inaccuracy of Sec. III-E.
        let just_under_half_in_block = cs(8, 0x7f, 0);
        assert!(!round_up_from_block(&just_under_half_in_block));
    }

    proptest! {
        #[test]
        fn prop_matches_resolved_threshold(w in 1usize..24, s: u64, c: u64) {
            let m = if w >= 64 { !0u64 } else { (1u64 << w) - 1 };
            let block = cs(w, s & m, c & m);
            let v = (s & m) as u128 + (c & m) as u128;
            let want = v >= (1u128 << (w - 1));
            prop_assert_eq!(round_up_from_block(&block), want);
        }
    }
}
