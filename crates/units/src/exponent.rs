//! Excess-2047 exponent datapath (Sec. III-F).
//!
//! The P/FCS operands carry a 12-bit exponent in excess-2047 notation,
//! "explicitly chosen to surpass the range of the 11b exponent specified
//! by IEEE 754": intermediate results of a fused chain may wander outside
//! the binary64 exponent range without overflowing, and only the final
//! conversion back to IEEE 754 clamps.

/// A 12-bit excess-2047 biased exponent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BiasedExp {
    biased: u16,
}

impl BiasedExp {
    /// Field width in bits.
    pub const BITS: u32 = 12;
    /// Bias (excess) value.
    pub const BIAS: i32 = 2047;
    /// Smallest representable unbiased exponent.
    pub const MIN_UNBIASED: i32 = -Self::BIAS;
    /// Largest representable unbiased exponent.
    pub const MAX_UNBIASED: i32 = (1 << Self::BITS) - 1 - Self::BIAS;

    /// Construct from an unbiased exponent.
    ///
    /// # Panics
    /// If out of the 12-bit excess-2047 range.
    pub fn from_unbiased(e: i32) -> Self {
        assert!(
            (Self::MIN_UNBIASED..=Self::MAX_UNBIASED).contains(&e),
            "exponent {e} out of excess-2047 range"
        );
        BiasedExp {
            biased: (e + Self::BIAS) as u16,
        }
    }

    /// Construct from an unbiased exponent, saturating at the range ends.
    pub fn from_unbiased_saturating(e: i64) -> Self {
        let clamped = e.clamp(Self::MIN_UNBIASED as i64, Self::MAX_UNBIASED as i64) as i32;
        Self::from_unbiased(clamped)
    }

    /// Construct directly from the 12-bit field value.
    pub fn from_field(field: u16) -> Self {
        assert!(
            field < (1 << Self::BITS),
            "exponent field wider than 12 bits"
        );
        BiasedExp { biased: field }
    }

    /// The raw 12-bit field.
    pub fn field(&self) -> u16 {
        self.biased
    }

    /// Unbiased exponent value.
    pub fn unbiased(&self) -> i32 {
        self.biased as i32 - Self::BIAS
    }

    /// Exponent of a product (`e_b + e_c`), saturating at the field range
    /// like the hardware adder with clamp logic.
    pub fn product(b: BiasedExp, c: BiasedExp) -> BiasedExp {
        Self::from_unbiased_saturating(b.unbiased() as i64 + c.unbiased() as i64)
    }

    /// Signed difference `self - rhs` (the alignment shift distance).
    pub fn diff(&self, rhs: BiasedExp) -> i32 {
        self.unbiased() - rhs.unbiased()
    }

    /// Adjust by a signed amount (block-skip renormalization), saturating.
    pub fn adjusted(&self, delta: i64) -> BiasedExp {
        Self::from_unbiased_saturating(self.unbiased() as i64 + delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_exceeds_ieee754_double() {
        // the IEEE 754 11-bit exponent spans [-1022, 1023]; excess-2047
        // must strictly contain it (Sec. III-F)
        const { assert!(BiasedExp::MIN_UNBIASED < -1022) };
        const { assert!(BiasedExp::MAX_UNBIASED > 1023) };
        assert_eq!(BiasedExp::MAX_UNBIASED, 2048);
    }

    #[test]
    fn roundtrip() {
        for e in [-2047, -1022, 0, 1023, 2048] {
            assert_eq!(BiasedExp::from_unbiased(e).unbiased(), e);
        }
    }

    #[test]
    fn product_saturates() {
        let big = BiasedExp::from_unbiased(2000);
        assert_eq!(
            BiasedExp::product(big, big).unbiased(),
            BiasedExp::MAX_UNBIASED
        );
        let small = BiasedExp::from_unbiased(-2000);
        assert_eq!(
            BiasedExp::product(small, small).unbiased(),
            BiasedExp::MIN_UNBIASED
        );
        let a = BiasedExp::from_unbiased(100);
        let b = BiasedExp::from_unbiased(-40);
        assert_eq!(BiasedExp::product(a, b).unbiased(), 60);
    }

    #[test]
    fn diff_and_adjust() {
        let a = BiasedExp::from_unbiased(10);
        let b = BiasedExp::from_unbiased(-5);
        assert_eq!(a.diff(b), 15);
        assert_eq!(a.adjusted(-55).unbiased(), -45);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        BiasedExp::from_unbiased(3000);
    }
}
