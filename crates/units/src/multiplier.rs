//! Mantissa multiplier with integrated rounding correction (Fig. 6).
//!
//! The multiplier computes `B_M * C_M` where `C_M` arrives as a *signed
//! carry-save* mantissa (two's complement, the time-critical chained input)
//! and `B_M` is an unsigned IEEE-style significand (the non-critical
//! input). Because `C_M` is the unrounded output of the previous FMA, the
//! rounding decision for `C` is folded into the CSA tree: the product is
//! formed with the unrounded `C_M` and, when rounding would have
//! incremented `C_M` by one ULP, one extra `B_M` row corrects the result
//! (`B*(C+1) = B*C + B`), adding at most one level to the tree.

use csfma_bits::Bits;
use csfma_carrysave::{
    reduce_to_cs, reduce_to_cs_with, CsNumber, ReduceScratch, COMPRESSOR_HEADROOM_BITS,
};
#[cfg(feature = "fault-inject")]
use csfma_carrysave::{FaultHook, FaultSite};

/// Output of the mantissa multiplier: the CS product plus the structural
/// facts the fabric timing model charges for.
#[derive(Clone, Debug)]
pub struct MultiplierOutput {
    /// Product in carry-save form, `c_width + b_width + 2` bits (two
    /// headroom bits keep the signed two-word sum exact through the
    /// compressors), two's complement (sign of `C` embedded; the caller
    /// applies `B`'s sign).
    pub product: CsNumber,
    /// Number of partial-product rows fed to the CSA tree.
    pub rows: usize,
    /// 3:2 compressor levels on the tree's critical path.
    pub tree_levels: usize,
}

/// Multiply a signed CS mantissa `c` by an unsigned significand `b`,
/// optionally adding the rounding-correction row (`+ b`, i.e. one ULP of
/// `c`).
///
/// Value contract (signed two-word sum, the convention of the whole
/// datapath): `sext(product.sum) + sext(product.carry) = (sext(c.sum) +
/// sext(c.carry)) * b + (round_increment ? b : 0)`, exact.
///
/// The output is two bits wider than the nominal `c.width() + b.width()`
/// product: a 3:2 compressor preserves the signed two-word sum only while
/// every word keeps at least one redundant sign bit (the `majority << 1`
/// drops the top weight otherwise), so the tree runs with two bits of
/// headroom. Hardware keeps the same guard bits in its CSA tree wiring.
///
/// Structurally faithful: one AND-row per set bit position of `b` for each
/// of the two CS words of `c` (the paper's point in Sec. III-D — the *row
/// count* depends only on the width of the smaller operand `B_M`), reduced
/// by a 3:2 tree.
pub fn multiply_cs_by_binary(c: &CsNumber, b: &Bits, round_increment: bool) -> MultiplierOutput {
    multiply_cs_by_binary_with(
        c,
        b,
        round_increment,
        &mut Vec::new(),
        &mut ReduceScratch::default(),
    )
}

/// [`multiply_cs_by_binary`] with caller-provided working storage — the
/// batch-friendly entry point. `rows` holds the partial-product rows and
/// `scratch` the Wallace-tree layers; a batch evaluator keeps one of
/// each per worker so millions of multiplies allocate nothing. Results
/// are identical to [`multiply_cs_by_binary`].
pub fn multiply_cs_by_binary_with(
    c: &CsNumber,
    b: &Bits,
    round_increment: bool,
    rows: &mut Vec<Bits>,
    scratch: &mut ReduceScratch,
) -> MultiplierOutput {
    let out_width = c.width() + b.width() + COMPRESSOR_HEADROOM_BITS;
    // sign-extend the two's complement multiplicand words once
    let c_sum = c.sum().sext(out_width);
    let c_carry = c.carry().sext(out_width);

    rows.clear();
    rows.reserve(2 * b.width() + 1);
    let zero = Bits::zero(out_width);
    for i in 0..b.width() {
        if b.bit(i) {
            rows.push(c_sum.shl(i));
            rows.push(c_carry.shl(i));
        } else {
            // fixed-shape tree: clear multiplier bits contribute all-zero
            // rows so the reduction network's wiring is independent of the
            // operand value — hardware CSA trees are fixed wiring, and the
            // bit-plane kernel evaluates 64 lanes through one such tree in
            // lockstep, so every lane must take the same shape
            rows.push(zero.clone());
            rows.push(zero.clone());
        }
    }
    rows.push(if round_increment {
        b.zext(out_width)
    } else {
        zero
    });
    let reduced = reduce_to_cs_with(rows, out_width, scratch);
    MultiplierOutput {
        product: reduced.cs,
        rows: rows.len(),
        tree_levels: reduced.levels,
    }
}

/// Apply a sign to a CS product without resolving carries: negation stays
/// in CS form via one extra compression (`-(s+c) = !s + !c + 2`).
///
/// The non-negating case must leave the pair *untouched* — an extra
/// `csa3_2(s, c, 0)` stage is not value-safe here because the product
/// words are not guaranteed a redundant sign bit each, so the dropped
/// top majority bit can shift the signed two-word sum by `2^w`. The
/// bit-plane kernel reproduces the conditional with a per-lane select
/// between the negation stage's output and the original words.
pub fn apply_sign(product: CsNumber, negate: bool) -> CsNumber {
    if negate {
        product.negate()
    } else {
        product
    }
}

/// Fault-injection hook point at the multiplier output: let `hook`
/// strike the product's sum ([`FaultSite::MulSum`]) and carry
/// ([`FaultSite::MulCarry`]) words. The mod-3 residue check in the FMA
/// engine (`csfma-core`) runs over the returned pair, so a strike here
/// propagates into the datapath exactly like a CSA-tree upset would.
#[cfg(feature = "fault-inject")]
pub fn tamper_product(product: CsNumber, hook: &dyn FaultHook) -> CsNumber {
    let mut s = product.sum().clone();
    let mut c = product.carry().clone();
    hook.tamper_bits(FaultSite::MulSum, &mut s);
    hook.tamper_bits(FaultSite::MulCarry, &mut c);
    CsNumber::new(s, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cs_from_i128(width: usize, v: i128, split: u64) -> CsNumber {
        // split a value into a (sum, carry) pair deterministically
        let s = Bits::from_i128(width, v.wrapping_sub(split as i128));
        let c = Bits::from_u64(width, split).zext(width);
        CsNumber::new(s, c)
    }

    #[test]
    fn small_product_with_correction() {
        // C = 5 (as CS 3+2), B = 7: product 35; with correction 42
        let c = CsNumber::new(Bits::from_u64(8, 3), Bits::from_u64(8, 2));
        let b = Bits::from_u64(4, 7);
        let out = multiply_cs_by_binary(&c, &b, false);
        assert_eq!(out.product.resolve().to_u64(), 35);
        let out2 = multiply_cs_by_binary(&c, &b, true);
        assert_eq!(out2.product.resolve().to_u64(), 42);
    }

    #[test]
    fn negative_multiplicand() {
        let c = cs_from_i128(12, -9, 5);
        let b = Bits::from_u64(4, 3);
        let out = multiply_cs_by_binary(&c, &b, false);
        assert_eq!(out.product.resolve().to_i128(), -27);
    }

    #[test]
    fn row_count_depends_on_b_only() {
        // Sec. III-D: widening C must not increase the row count.
        let b = Bits::ones(53);
        let narrow = CsNumber::zero(54);
        let wide = CsNumber::zero(110);
        let r1 = multiply_cs_by_binary(&narrow, &b, false);
        let r2 = multiply_cs_by_binary(&wide, &b, false);
        assert_eq!(r1.rows, r2.rows);
        assert_eq!(r1.tree_levels, r2.tree_levels);
    }

    #[test]
    fn apply_sign_negates_mod_2w() {
        let c = CsNumber::new(Bits::from_u64(10, 100), Bits::from_u64(10, 23));
        let n = apply_sign(c.clone(), true);
        assert_eq!(n.resolve().to_i128(), -123);
        let p = apply_sign(c, false);
        assert_eq!(p.resolve().to_u64(), 123);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(300))]

        #[test]
        fn prop_product_value(cv in -(1i128<<40)..(1i128<<40), split in 0u64..1024, bv in 0u64..(1<<20), inc: bool) {
            let c = cs_from_i128(44, cv, split);
            let b = Bits::from_u64(20, bv);
            let out = multiply_cs_by_binary(&c, &b, inc);
            let want = cv * bv as i128 + if inc { bv as i128 } else { 0 };
            prop_assert_eq!(out.product.resolve().to_i128(), want);
            // the signed two-word sum (what downstream sign extension sees)
            // must match too — this is where the +2 headroom matters
            prop_assert_eq!(out.product.resolve_signed_extended().to_i128(), want);
        }

        #[test]
        fn prop_sign_application_signed_sum(cv in -(1i128<<40)..(1i128<<40), split in 0u64..1024, bv in 0u64..(1<<20), neg: bool) {
            let c = cs_from_i128(44, cv, split);
            let b = Bits::from_u64(20, bv);
            let out = apply_sign(multiply_cs_by_binary(&c, &b, false).product, neg);
            let want = cv * bv as i128 * if neg { -1 } else { 1 };
            prop_assert_eq!(out.resolve_signed_extended().to_i128(), want);
        }

        #[test]
        fn prop_rows_bound(bv in 0u64..(1<<16), inc: bool) {
            let c = CsNumber::zero(32);
            let b = Bits::from_u64(16, bv);
            let out = multiply_cs_by_binary(&c, &b, inc);
            prop_assert!(out.rows <= 2 * 16 + 1);
        }
    }
}

/// Radix-4 Booth recoding of the unsigned multiplier `b`: digits in
/// {-2,-1,0,1,2}, one per bit pair — halving the partial-product rows and
/// therefore the CSA-tree height (the alternative the DSP48E1's internal
/// 25x18 cores make moot on Virtex-6, but the classic exploration axis
/// for LUT-based multipliers).
pub fn booth_digits(b: &Bits) -> Vec<i8> {
    let n = b.width().div_ceil(2);
    let mut out = Vec::with_capacity(n);
    let bit = |i: i64| i >= 0 && b.bit(i as usize);
    for k in 0..n {
        let i = 2 * k as i64;
        // classic radix-4 table over the triple b[i+1] b[i] b[i-1]
        let code = (bit(i + 1) as i8, bit(i) as i8, bit(i - 1) as i8);
        let d = match code {
            (0, 0, 0) => 0,
            (0, 0, 1) => 1,
            (0, 1, 0) => 1,
            (0, 1, 1) => 2,
            (1, 0, 0) => -2,
            (1, 0, 1) => -1,
            (1, 1, 0) => -1,
            (1, 1, 1) => 0,
            _ => unreachable!(),
        };
        out.push(d);
    }
    // an unsigned multiplier whose top pair encodes a negative digit needs
    // one extra correction digit
    if b.width().is_multiple_of(2) && b.bit(b.width() - 1) {
        out.push(1);
    }
    out
}

/// Booth-recoded variant of [`multiply_cs_by_binary`]: identical value
/// contract, roughly half the partial-product rows.
pub fn multiply_cs_by_binary_booth(
    c: &CsNumber,
    b: &Bits,
    round_increment: bool,
) -> MultiplierOutput {
    // booth digits can overshoot by one pair beyond the plain headroom
    let out_width = c.width() + b.width() + COMPRESSOR_HEADROOM_BITS + 2;
    let c_sum = c.sum().sext(out_width);
    let c_carry = c.carry().sext(out_width);
    let neg = |v: &Bits| v.wrapping_neg();

    let mut rows: Vec<Bits> = Vec::new();
    for (k, &d) in booth_digits(b).iter().enumerate() {
        if d == 0 {
            continue;
        }
        let shift = 2 * k + usize::from(d.abs() == 2);
        for word in [&c_sum, &c_carry] {
            let row = if d < 0 { neg(word) } else { (*word).clone() };
            rows.push(row.shl(shift));
        }
    }
    if round_increment {
        rows.push(b.zext(out_width));
    }
    let reduced = reduce_to_cs(&rows, out_width);
    MultiplierOutput {
        product: reduced.cs,
        rows: rows.len(),
        tree_levels: reduced.levels,
    }
}

#[cfg(test)]
mod booth_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn booth_digit_values() {
        // 0b0110 = 6 -> digits (LSB pair first): b1b0|b-1 = 10|0 -> -2,
        // b3b2|b1 = 01|1 -> 2 : 6 = -2 + 2*4
        let d = booth_digits(&Bits::from_u64(4, 6));
        let val: i64 = d
            .iter()
            .enumerate()
            .map(|(k, &x)| (x as i64) << (2 * k))
            .sum();
        assert_eq!(val, 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn prop_booth_digits_reconstruct(w in 1usize..24, bv: u64) {
            let m = if w >= 64 { !0u64 } else { (1u64 << w) - 1 };
            let b = Bits::from_u64(w, bv & m);
            let val: i64 = booth_digits(&b)
                .iter()
                .enumerate()
                .map(|(k, &d)| (d as i64) << (2 * k))
                .sum();
            prop_assert_eq!(val as u64, bv & m);
        }

        #[test]
        fn prop_booth_matches_plain(cv in -(1i128<<30)..(1i128<<30), split in 0u64..512, bv in 0u64..(1u64<<16), inc: bool) {
            let c = CsNumber::new(
                Bits::from_i128(34, cv.wrapping_sub(split as i128)),
                Bits::from_u64(34, split),
            );
            let b = Bits::from_u64(16, bv);
            let plain = multiply_cs_by_binary(&c, &b, inc);
            let booth = multiply_cs_by_binary_booth(&c, &b, inc);
            prop_assert_eq!(
                booth.product.resolve_signed_extended().to_i128(),
                plain.product.resolve_signed_extended().to_i128()
            );
            // the architectural payoff is on the worst case: at most one
            // digit per bit pair (plus correction digit and inc row)
            prop_assert!(booth.rows <= 2 * (16 / 2 + 1) + 1, "{}", booth.rows);
        }
    }

    #[test]
    fn booth_halves_tree_depth_at_fma_scale() {
        let c = CsNumber::zero(110);
        let b = Bits::ones(53);
        let plain = multiply_cs_by_binary(&c, &b, false);
        let booth = multiply_cs_by_binary_booth(&c, &b, false);
        assert!(booth.rows < plain.rows / 2 + 4);
        assert!(booth.tree_levels < plain.tree_levels);
    }
}
