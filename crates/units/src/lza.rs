//! Leading-zero anticipation (LZA) over carry-save pairs.
//!
//! The early-anticipation variant of the FMA (Sec. III-G) must know, from
//! the *inputs alone*, a safe bound on how many leading non-significant
//! bits the sum will have — before the carry-propagating addition runs.
//! This module implements the two-sided (sign-agnostic) indicator of
//! Schmookler & Nowka \[23\]: a per-position boolean string `f` whose
//! leading one falls on the leading significant bit of `a + b`, or one
//! position above it.
//!
//! The exported [`anticipate_leading`] is clamped to the *safe* side: it
//! never reports more skippable bits than the sum actually has, and
//! undershoots by at most [`LZA_MAX_ERROR`] — the "error of up to one bit
//! position" the paper budgets for (Sec. III-G).

use csfma_bits::Bits;
use csfma_carrysave::CsNumber;

/// Maximum undershoot of [`anticipate_leading`] versus the true number of
/// redundant leading bits (excluding the all-cancel case, which the caller
/// must detect separately — the paper's "reliably detect all-0 mantissas").
pub const LZA_MAX_ERROR: usize = 1;

/// Raw Schmookler/Nowka general-case indicator string for `a + b` (two's
/// complement, equal widths), computed over the inputs sign-extended by
/// two bits so the top positions need no special-case boundary. The
/// leading one of the indicator falls on the leading significant bit of
/// the sum or one position above it.
pub fn lza_indicator(a: &Bits, b: &Bits) -> Bits {
    assert_eq!(a.width(), b.width(), "lza width mismatch");
    let w = a.width();
    if w == 0 {
        return Bits::zero(0);
    }
    let we = w + 2;
    let ax = a.sext(we);
    let bx = b.sext(we);
    let t = |i: usize| {
        let i = i.min(we - 1); // positions above the top replicate the sign
        ax.bit(i) ^ bx.bit(i)
    };
    let g = |i: usize| ax.bit(i) && bx.bit(i);
    let z = |i: usize| !ax.bit(i) && !bx.bit(i);
    let mut f = Bits::zero(we);
    for i in 0..we {
        // neighbor below position 0: neither generate nor zero (a carry-in
        // of unknown value is conservatively assumed possible)
        let (gi_1, zi_1) = if i == 0 {
            (false, false)
        } else {
            (g(i - 1), z(i - 1))
        };
        let ti1 = t(i + 1);
        let fi = (ti1 && ((g(i) && !zi_1) || (z(i) && !gi_1)))
            || (!ti1 && ((z(i) && !zi_1) || (g(i) && !gi_1)));
        if fi {
            f.set_bit(i, true);
        }
    }
    f
}

/// Anticipated count of leading *non-significant* bits of the **exact**
/// (non-wrapping) sum of two `w`-bit two's-complement operands, evaluated
/// in `w + 2` bits — leading zeros of a positive sum, leading ones of a
/// negative one, beyond the single sign bit.
///
/// The FMA adders are sized with headroom (Sec. III-D derives the 385-bit
/// window precisely so alignment can never overflow), so the exact sum is
/// the quantity whose normalization the unit anticipates.
///
/// Guarantees (enforced by exhaustive tests, with
/// `truth = redundant_sign_bits(sext(a, w+2) + sext(b, w+2))`):
/// * `anticipate_leading(a,b) <= truth` (safe side: never skip real bits),
/// * `truth - anticipate_leading(a,b) <= LZA_MAX_ERROR`,
///   unless the exact sum is `0` or `-1` (full cancellation — no
///   significant bit exists and the indicator may undershoot arbitrarily;
///   the FMA handles that case with an explicit zero check,
///   cf. Sec. III-G "reliably detect all-0 input mantissas").
pub fn anticipate_leading(a: &Bits, b: &Bits) -> usize {
    let w = a.width();
    let f = lza_indicator(a, b);
    if f.is_zero() {
        // no significant bit anticipated anywhere: full cancellation;
        // report the maximum redundancy of a (w+2)-bit word
        return w + 1;
    }
    let pos_f = f.width() - 1 - f.leading_zeros();
    // a (w+2)-bit word with first significant bit at `p` has `w - p`
    // redundant sign bits; the indicator may overshoot p by one, which
    // only makes this smaller (safe)
    w.saturating_sub(pos_f)
}

/// Anticipated leading non-significant bits for a carry-save value: the
/// CS pair *is* an unfinished addition, which is exactly what the LZA
/// consumes.
pub fn anticipate_leading_cs(v: &CsNumber) -> usize {
    anticipate_leading(v.sum(), v.carry())
}

/// True number of redundant leading bits of a two's complement value: how
/// many MSBs merely replicate the sign (the quantity LZA anticipates).
pub fn true_redundant(v: &Bits) -> usize {
    v.redundant_sign_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact (non-wrapping) sum and its redundancy — the LZA contract's
    /// ground truth.
    fn exact_sum_redundant(a: &Bits, b: &Bits) -> (Bits, usize) {
        let we = a.width() + 2;
        let sum = a.sext(we).wrapping_add(&b.sext(we));
        let r = true_redundant(&sum);
        (sum, r)
    }

    fn check_contract(a: &Bits, b: &Bits) {
        let (sum, truth) = exact_sum_redundant(a, b);
        if sum.is_zero() || sum.is_all_ones() {
            return; // full cancellation: no significant bit exists
        }
        let ant = anticipate_leading(a, b);
        assert!(
            ant <= truth,
            "unsafe anticipation: a={a:?} b={b:?} ant={ant} truth={truth}"
        );
        assert!(
            truth - ant <= LZA_MAX_ERROR,
            "too pessimistic: a={a:?} b={b:?} ant={ant} truth={truth}"
        );
    }

    /// Exhaustive check of the LZA contract on all 8-bit pairs.
    #[test]
    fn exhaustive_8bit_contract() {
        for av in 0u64..256 {
            for bv in 0u64..256 {
                check_contract(&Bits::from_u64(8, av), &Bits::from_u64(8, bv));
            }
        }
    }

    #[test]
    fn positive_example() {
        // 12 + 4 = 16 = 0b0000010000 in 10 bits: 5 redundant sign bits
        let a = Bits::from_u64(8, 12);
        let b = Bits::from_u64(8, 4);
        let (_, truth) = exact_sum_redundant(&a, &b);
        assert_eq!(truth, 4); // 0b0000010000: 4 redundant zeros past the sign
        let ant = anticipate_leading(&a, &b);
        assert!(ant <= truth && truth - ant <= 1, "ant={ant}");
    }

    #[test]
    fn negative_example() {
        let a = Bits::from_i128(8, -3);
        let b = Bits::from_i128(8, -4);
        let (_, truth) = exact_sum_redundant(&a, &b); // -7 = 0b1111111001
        assert_eq!(truth, 6);
        let ant = anticipate_leading(&a, &b);
        assert!(ant <= truth && truth - ant <= 1, "ant={ant}");
    }

    #[test]
    fn cs_wrapper_consistent() {
        let cs = CsNumber::new(Bits::from_u64(16, 0x00f0), Bits::from_u64(16, 0x0010));
        let ant = anticipate_leading_cs(&cs);
        let (_, truth) = exact_sum_redundant(cs.sum(), cs.carry());
        assert!(ant <= truth && truth - ant <= LZA_MAX_ERROR);
    }

    #[test]
    fn full_cancellation_is_out_of_contract_but_bounded() {
        // x + (-x) = 0: the indicator may fire anywhere (the unit detects
        // this case separately); the report must still be in range
        let a = Bits::from_i128(8, 42);
        let b = Bits::from_i128(8, -42);
        assert!(anticipate_leading(&a, &b) <= 9); // <= w + 1
    }

    #[test]
    fn wide_words() {
        // spot-check the contract at FMA-like widths
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..2000 {
            let a = Bits::from_limbs(116, &[next(), next()]);
            let b = Bits::from_limbs(116, &[next(), next()]);
            check_contract(&a, &b);
        }
    }
}
