//! # csfma-units — behavioral models of the FMA datapath blocks
//!
//! Each module here is the bit-accurate software counterpart of one box in
//! the paper's architecture figures:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`multiplier`] | mantissa multiplier with the rounding-correction row folded into the CSA tree (Fig. 6) |
//! | [`align`] | addend pre-shifter running in parallel with the multiply (Figs. 4/9/11) |
//! | [`lza`] | leading-zero anticipation over carry-save pairs (Sec. III-G, [Schmookler/Nowka]) |
//! | [`zero_detect`] | block-granular Zero Detector with the two's-complement-CS skip rules of Fig. 10 |
//! | [`block_mux`] | the 6:1 / 11:1 result block multiplexer replacing the variable-distance shifter (Fig. 7) |
//! | [`rounding`] | block-granular round-half-away-from-zero decision with the bounded misrounding of Sec. III-E |
//! | [`exponent`] | excess-2047 exponent helpers (12-bit, exceeding the IEEE 754 11-bit range) |
//! | [`residue`] | mod-3 residue arithmetic backing the self-checking datapath (DESIGN.md §10) |
//!
//! The value contract of every block is stated in its docs and enforced by
//! property tests; `csfma-core` assembles these blocks into the Classic,
//! PCS and FCS FMA units.

pub mod align;
pub mod block_mux;
pub mod exponent;
pub mod lza;
pub mod multiplier;
pub mod residue;
pub mod rounding;
pub mod zero_detect;
