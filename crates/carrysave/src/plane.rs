//! Bit-plane (bit-sliced) carry-save primitives.
//!
//! A *plane* view transposes up to [`PLANE_LANES`] independent values of
//! the same width: plane word `j` holds bit `j` of every lane, one lane
//! per bit of the `u64`. Boolean datapath stages — CSA compression, the
//! partial-carry-save segment adders, block classification — then run as
//! word-parallel logic: one machine operation advances all 64 lanes
//! through one gate level. This is the software analogue of the fact that
//! the paper's units are *fixed wiring*: every lane takes the same tree,
//! so the tree can be evaluated once over lane-mask words.
//!
//! The contract of every routine here is bit-exactness versus its scalar
//! counterpart in this crate ([`csa3_2`](crate::csa3_2),
//! [`reduce_to_cs_with`](crate::reduce_to_cs_with),
//! [`CsNumber::carry_reduce`](crate::CsNumber::carry_reduce)) — enforced
//! lane-by-lane by the tests at the bottom of this module.

use csfma_bits::Bits;

/// Lanes carried by one plane word (bits of a `u64`).
pub const PLANE_LANES: usize = 64;

/// In-place 64×64 bit-matrix transpose (recursive delta-swap, after
/// Hacker's Delight 7-3 with the quadrant exchange mirrored for the
/// bit-`0`-is-column-`0` convention): afterwards, bit `l` of `a[j]` is
/// what bit `j` of `a[l]` was.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Transpose lane-major values into plane-major words: `out[j]` bit `l`
/// equals `lanes[l].bit(j)`. Lanes beyond `lanes.len()` (up to
/// [`PLANE_LANES`]) read as all-zero; lanes narrower than `width` are
/// zero-extended. `out` is resized to exactly `width` words.
///
/// # Panics
/// If more than [`PLANE_LANES`] lanes are supplied.
pub fn lanes_to_planes(lanes: &[Bits], width: usize, out: &mut Vec<u64>) {
    assert!(lanes.len() <= PLANE_LANES, "too many lanes");
    out.clear();
    out.resize(width, 0);
    let mut m = [0u64; PLANE_LANES];
    for g in 0..width.div_ceil(64) {
        for (l, w) in m.iter_mut().enumerate() {
            *w = lanes
                .get(l)
                .and_then(|b| b.limbs().get(g))
                .copied()
                .unwrap_or(0);
        }
        transpose64(&mut m);
        let hi = (width - g * 64).min(64);
        out[g * 64..g * 64 + hi].copy_from_slice(&m[..hi]);
    }
}

/// Inverse of [`lanes_to_planes`]: rebuild `n_lanes` width-`width`
/// [`Bits`] values from plane words, appending them to `out` (which is
/// cleared first). Plane bits of lanes `>= n_lanes` are discarded.
///
/// # Panics
/// If `planes.len() < width` or `n_lanes > PLANE_LANES`.
pub fn planes_to_lanes(planes: &[u64], width: usize, n_lanes: usize, out: &mut Vec<Bits>) {
    assert!(planes.len() >= width, "plane set narrower than width");
    assert!(n_lanes <= PLANE_LANES, "too many lanes");
    out.clear();
    let groups = width.div_ceil(64);
    let mut m = [0u64; PLANE_LANES];
    let mut limbs = vec![0u64; n_lanes * groups];
    for g in 0..groups {
        let hi = (width - g * 64).min(64);
        m[..hi].copy_from_slice(&planes[g * 64..g * 64 + hi]);
        m[hi..].fill(0);
        transpose64(&mut m);
        for (l, lane_limbs) in limbs.chunks_exact_mut(groups).enumerate() {
            lane_limbs[g] = m[l];
        }
    }
    for lane_limbs in limbs.chunks_exact(groups) {
        out.push(Bits::from_limbs(width, lane_limbs));
    }
}

/// Transpose plane-major words into a flat lane-major limb matrix:
/// `out[l * groups + g]` is limb `g` of lane `l`'s value, where
/// `groups = width.div_ceil(64)`. All [`PLANE_LANES`] lanes are
/// produced; bits above `width` read zero. The raw-limb counterpart of
/// [`planes_to_lanes`] for callers that stay in word arithmetic.
///
/// # Panics
/// If `planes.len() < width`.
pub fn planes_to_lane_limbs(planes: &[u64], width: usize, out: &mut Vec<u64>) {
    assert!(planes.len() >= width, "plane set narrower than width");
    let groups = width.div_ceil(64);
    out.clear();
    out.resize(PLANE_LANES * groups, 0);
    let mut m = [0u64; PLANE_LANES];
    for g in 0..groups {
        let hi = (width - g * 64).min(64);
        m[..hi].copy_from_slice(&planes[g * 64..g * 64 + hi]);
        m[hi..].fill(0);
        transpose64(&mut m);
        for (l, w) in m.iter().enumerate() {
            out[l * groups + g] = *w;
        }
    }
}

/// Per-lane window alignment straight to plane-major form, bit-exact
/// with [`align_addend`](../../csfma_units/align/fn.align_addend.html)'s
/// frame placement per lane: output plane `j` of lane `l` reads
/// `src_ext(j - shifts[l])`, where `src_ext` is zero below bit 0, the
/// lane's limb bits on `[0, src_w)` and the lane's sign bit (`src_w-1`)
/// above — i.e. each lane is sign-extended and placed at its own signed
/// offset, bits falling outside the `w`-bit frame wired away. Lanes not
/// set in `active` produce all-zero columns.
///
/// `lane_limbs` is the flat lane-major matrix of [`planes_to_lane_limbs`]
/// (`PLANE_LANES * src_w.div_ceil(64)` words); `scratch` is reusable
/// working storage; `out` is resized to `w` plane words.
///
/// # Panics
/// If `lane_limbs` is too small, `shifts` covers more than
/// [`PLANE_LANES`] lanes, or `src_w == 0`.
pub fn align_lanes_to_planes(
    lane_limbs: &[u64],
    src_w: usize,
    shifts: &[i64],
    active: u64,
    w: usize,
    scratch: &mut Vec<u64>,
    out: &mut Vec<u64>,
) {
    assert!(src_w > 0, "empty alignment source");
    assert!(shifts.len() <= PLANE_LANES, "too many lanes");
    let sg = src_w.div_ceil(64);
    let wg = w.div_ceil(64);
    assert!(
        lane_limbs.len() >= PLANE_LANES * sg,
        "lane matrix too small"
    );
    scratch.clear();
    scratch.resize(PLANE_LANES * wg, 0);
    let top_bit = (src_w - 1) % 64;
    let top_g = (src_w - 1) / 64;
    let used_top = src_w - (sg - 1) * 64; // bits of the top source limb in use
    for (l, &sh) in shifts.iter().enumerate() {
        if active & (1 << l) == 0 {
            continue;
        }
        let lane = &lane_limbs[l * sg..(l + 1) * sg];
        let fill = if (lane[top_g] >> top_bit) & 1 != 0 {
            !0u64
        } else {
            0
        };
        // sign-extended source limb, limb indices beyond either end
        // clamped to zero (below) or the sign fill (above)
        let ext = |k: i64| -> u64 {
            if k < 0 {
                0
            } else if (k as usize) < sg {
                let mut v = lane[k as usize];
                if k as usize == sg - 1 && used_top < 64 {
                    v &= (1u64 << used_top) - 1;
                    v |= fill << used_top;
                }
                v
            } else {
                fill
            }
        };
        for g in 0..wg {
            // funnel-gather the 64 source bits starting at j0 = 64g - sh
            let j0 = (64 * g) as i64 - sh;
            let (q, r) = (j0.div_euclid(64), j0.rem_euclid(64) as u32);
            scratch[l * wg + g] = if r == 0 {
                ext(q)
            } else {
                (ext(q) >> r) | (ext(q + 1) << (64 - r))
            };
        }
    }
    out.clear();
    out.resize(w, 0);
    let mut m = [0u64; PLANE_LANES];
    for g in 0..wg {
        for (l, mw) in m.iter_mut().enumerate() {
            *mw = scratch[l * wg + g];
        }
        transpose64(&mut m);
        let hi = (w - g * 64).min(64);
        out[g * 64..g * 64 + hi].copy_from_slice(&m[..hi]);
    }
}

/// Plane-parallel 3:2 compressor, bit-exact with
/// [`csa3_2`](crate::csa3_2) per lane: `sum[j] = a[j] ^ b[j] ^ c[j]`,
/// `carry[j] = maj(a, b, c)[j-1]` (the `majority << 1` of the scalar
/// compressor; the top majority plane is dropped by the width, exactly
/// like the scalar `shl`).
///
/// # Panics
/// If the five slices do not all have the same length.
pub fn plane_csa3_2(a: &[u64], b: &[u64], c: &[u64], sum: &mut [u64], carry: &mut [u64]) {
    let w = a.len();
    assert!(
        b.len() == w && c.len() == w && sum.len() == w && carry.len() == w,
        "plane width mismatch"
    );
    if w == 0 {
        return;
    }
    sum[0] = a[0] ^ b[0] ^ c[0];
    carry[0] = 0;
    for j in 1..w {
        sum[j] = a[j] ^ b[j] ^ c[j];
        let (x, y, z) = (a[j - 1], b[j - 1], c[j - 1]);
        carry[j] = (x & y) | (y & z) | (x & z);
    }
}

/// Plane-parallel Wallace reduction with exactly the tree shape of
/// [`reduce_to_cs_with`](crate::reduce_to_cs_with) for the same row
/// count: rows are consumed three at a time in order, each chunk's
/// sum/carry pair is emitted in order, the `< 3` remainder rides along
/// to the next level. Bit-exactness per lane follows because the shape
/// depends only on `n_rows` — which is why the scalar multiplier feeds a
/// *fixed* number of rows regardless of operand values.
///
/// `layer` holds `n_rows` rows of `width` plane words each, row-major;
/// it is consumed as working storage. `spare` is the ping-pong buffer.
/// The reduced pair lands in `sum`/`carry` (resized to `width`).
///
/// # Panics
/// If `layer` is shorter than `n_rows * width` or `n_rows == 0`.
pub fn plane_reduce_to_cs(
    layer: &mut Vec<u64>,
    n_rows: usize,
    width: usize,
    spare: &mut Vec<u64>,
    sum: &mut Vec<u64>,
    carry: &mut Vec<u64>,
) {
    assert!(n_rows > 0, "reduction of zero rows");
    assert!(layer.len() >= n_rows * width, "layer arena too small");
    layer.truncate(n_rows * width);
    let mut n = n_rows;
    while n > 2 {
        let chunks = n / 3;
        let rem = n % 3;
        // every word of the spare level is written below (compressor
        // outputs plus the copied remainder), so no zero-fill is needed;
        // resize only adjusts the length
        spare.resize((2 * chunks + rem) * width, 0);
        for t in 0..chunks {
            let base = 3 * t * width;
            let (a, rest) = layer[base..].split_at(width);
            let (b, rest) = rest.split_at(width);
            let c = &rest[..width];
            let (s, k) = spare[2 * t * width..(2 * t + 2) * width].split_at_mut(width);
            plane_csa3_2(a, b, c, s, k);
        }
        spare[2 * chunks * width..].copy_from_slice(&layer[3 * chunks * width..n * width]);
        std::mem::swap(layer, spare);
        n = 2 * chunks + rem;
    }
    sum.clear();
    carry.clear();
    sum.extend_from_slice(&layer[..width]);
    if n == 2 {
        carry.extend_from_slice(&layer[width..2 * width]);
    } else {
        carry.resize(width, 0);
    }
}

/// Plane-parallel Carry Reduce (Sec. III-E), bit-exact with
/// [`CsNumber::carry_reduce`](crate::CsNumber::carry_reduce) per lane:
/// each `spacing`-digit segment is summed by a ripple of full adders
/// (constant depth in hardware — the segments are narrow by design), the
/// sum bits replace `sum`, and the segment carry-out becomes the single
/// explicit carry bit at the next segment's base. The final segment's
/// carry-out falls off the window top, exactly like the scalar code.
pub fn plane_carry_reduce(sum: &mut [u64], carry: &mut [u64], spacing: usize) {
    let width = sum.len();
    assert_eq!(carry.len(), width, "plane width mismatch");
    assert!(spacing > 0, "carry spacing must be positive");
    let mut pending = 0u64; // carry-out plane owed to the next segment base
    let mut lo = 0;
    while lo < width {
        let len = spacing.min(width - lo);
        let mut cin = 0u64;
        for b in 0..len {
            let p = lo + b;
            let (s, c) = (sum[p], carry[p]);
            sum[p] = s ^ c ^ cin;
            let cout = (s & c) | (c & cin) | (s & cin);
            carry[p] = if b == 0 { pending } else { 0 };
            cin = cout;
        }
        pending = cin;
        lo += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{csa3_2, reduce_to_cs_with, CsNumber, ReduceScratch};

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn random_bits(width: usize, state: &mut u64) -> Bits {
        let limbs: Vec<u64> = (0..width.div_ceil(64)).map(|_| splitmix(state)).collect();
        Bits::from_limbs(width, &limbs)
    }

    #[test]
    fn transpose_round_trips_and_matches_bit_lookup() {
        let mut state = 7u64;
        let mut a = [0u64; 64];
        for w in a.iter_mut() {
            *w = splitmix(&mut state);
        }
        let orig = a;
        transpose64(&mut a);
        for (j, w) in a.iter().enumerate() {
            for (l, o) in orig.iter().enumerate() {
                assert_eq!((w >> l) & 1, (o >> j) & 1, "({j},{l})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn lane_plane_round_trip() {
        for &(width, n_lanes) in &[(1usize, 1usize), (63, 64), (64, 17), (165, 64), (385, 37)] {
            let mut state = width as u64 ^ (n_lanes as u64) << 32;
            let lanes: Vec<Bits> = (0..n_lanes)
                .map(|_| random_bits(width, &mut state))
                .collect();
            let mut planes = Vec::new();
            lanes_to_planes(&lanes, width, &mut planes);
            for (j, p) in planes.iter().enumerate() {
                for (l, lane) in lanes.iter().enumerate() {
                    assert_eq!((p >> l) & 1 == 1, lane.bit(j), "plane {j} lane {l}");
                }
            }
            let mut back = Vec::new();
            planes_to_lanes(&planes, width, n_lanes, &mut back);
            assert_eq!(back, lanes);
        }
    }

    #[test]
    fn plane_csa_matches_scalar_per_lane() {
        let width = 97;
        let mut state = 11u64;
        let a: Vec<Bits> = (0..64).map(|_| random_bits(width, &mut state)).collect();
        let b: Vec<Bits> = (0..64).map(|_| random_bits(width, &mut state)).collect();
        let c: Vec<Bits> = (0..64).map(|_| random_bits(width, &mut state)).collect();
        let (mut pa, mut pb, mut pc) = (Vec::new(), Vec::new(), Vec::new());
        lanes_to_planes(&a, width, &mut pa);
        lanes_to_planes(&b, width, &mut pb);
        lanes_to_planes(&c, width, &mut pc);
        let (mut ps, mut pk) = (vec![0; width], vec![0; width]);
        plane_csa3_2(&pa, &pb, &pc, &mut ps, &mut pk);
        let (mut ls, mut lk) = (Vec::new(), Vec::new());
        planes_to_lanes(&ps, width, 64, &mut ls);
        planes_to_lanes(&pk, width, 64, &mut lk);
        for l in 0..64 {
            let cs = csa3_2(&a[l], &b[l], &c[l]);
            assert_eq!(&ls[l], cs.sum(), "lane {l} sum");
            assert_eq!(&lk[l], cs.carry(), "lane {l} carry");
        }
    }

    #[test]
    fn plane_reduce_matches_scalar_tree_shape() {
        let width = 70;
        for n_rows in [1usize, 2, 3, 4, 5, 7, 12, 49, 107] {
            let mut state = n_rows as u64;
            // per-lane row sets share the row count, not the values
            let rows: Vec<Vec<Bits>> = (0..64)
                .map(|_| {
                    (0..n_rows)
                        .map(|_| random_bits(width, &mut state))
                        .collect()
                })
                .collect();
            let mut layer = vec![0u64; n_rows * width];
            for r in 0..n_rows {
                let lane_row: Vec<Bits> = rows.iter().map(|lane| lane[r].clone()).collect();
                let mut planes = Vec::new();
                lanes_to_planes(&lane_row, width, &mut planes);
                layer[r * width..(r + 1) * width].copy_from_slice(&planes);
            }
            let (mut spare, mut sum, mut carry) = (Vec::new(), Vec::new(), Vec::new());
            plane_reduce_to_cs(&mut layer, n_rows, width, &mut spare, &mut sum, &mut carry);
            let (mut ls, mut lk) = (Vec::new(), Vec::new());
            planes_to_lanes(&sum, width, 64, &mut ls);
            planes_to_lanes(&carry, width, 64, &mut lk);
            let mut scratch = ReduceScratch::default();
            for (l, lane_rows) in rows.iter().enumerate() {
                let rs = lane_rows.clone();
                let scalar = reduce_to_cs_with(&rs, width, &mut scratch);
                assert_eq!(&ls[l], scalar.cs.sum(), "rows {n_rows} lane {l} sum");
                assert_eq!(&lk[l], scalar.cs.carry(), "rows {n_rows} lane {l} carry");
            }
        }
    }

    #[test]
    fn plane_carry_reduce_matches_scalar_per_lane() {
        for &(width, spacing) in &[(385usize, 11usize), (406, 29), (60, 11), (33, 33), (5, 2)] {
            let mut state = (width * 31 + spacing) as u64;
            let s: Vec<Bits> = (0..64).map(|_| random_bits(width, &mut state)).collect();
            let c: Vec<Bits> = (0..64).map(|_| random_bits(width, &mut state)).collect();
            let (mut ps, mut pc) = (Vec::new(), Vec::new());
            lanes_to_planes(&s, width, &mut ps);
            lanes_to_planes(&c, width, &mut pc);
            plane_carry_reduce(&mut ps, &mut pc, spacing);
            let (mut ls, mut lk) = (Vec::new(), Vec::new());
            planes_to_lanes(&ps, width, 64, &mut ls);
            planes_to_lanes(&pc, width, 64, &mut lk);
            for l in 0..64 {
                let pcs = CsNumber::new(s[l].clone(), c[l].clone()).carry_reduce(spacing);
                assert_eq!(&ls[l], pcs.sum(), "w{width}/k{spacing} lane {l} sum");
                assert_eq!(&lk[l], pcs.carry(), "w{width}/k{spacing} lane {l} carry");
            }
        }
    }
}
