//! Carry-save compressors and reduction trees.
//!
//! These are the behavioral models of the CSA structures inside the
//! paper's mantissa multipliers and wide adders. The value contract is
//! always: *output value ≡ sum of input values (mod 2^width)*.

use crate::cs::CsNumber;
use csfma_bits::Bits;

/// Extra width a CSA tree needs above the nominal result so the *signed
/// two-word sum* stays exact: each 3:2 level's `majority << 1` discards
/// the top weight unless every word keeps a redundant sign bit, and the
/// final two-word addition needs one more position. Two bits cover both
/// (one redundant sign + one carry-out) for any tree depth — the
/// multiplier widens its output by this much, and `csfma-verify`'s W001
/// rule demands the same headroom of every FMA window geometry.
pub const COMPRESSOR_HEADROOM_BITS: usize = 2;

/// 3:2 compressor (full-adder row): three addends become a CS pair in one
/// full-adder delay, independent of width.
///
/// `sum = a ⊕ b ⊕ c`, `carry = majority(a,b,c) << 1`.
pub fn csa3_2(a: &Bits, b: &Bits, c: &Bits) -> CsNumber {
    assert!(
        a.width() == b.width() && b.width() == c.width(),
        "csa3_2 width mismatch"
    );
    let sum = &(a ^ b) ^ c;
    let maj = &(&(a & b) | &(b & c)) | &(a & c);
    CsNumber::new(sum, maj.shl(1))
}

/// 4:2 compressor row: four addends to a CS pair. Built from two chained
/// 3:2 rows (the transfer bits never interact, so the delay is still two
/// full-adder levels regardless of width — the structure FPGA carry logic
/// implements directly).
pub fn csa4_2(a: &Bits, b: &Bits, c: &Bits, d: &Bits) -> CsNumber {
    let first = csa3_2(a, b, c);
    let second = csa3_2(first.sum(), &first.carry().zext(a.width()), d);
    second
}

/// Result of reducing many addends: the CS pair plus the number of 3:2
/// levels used — the quantity the fabric timing model charges for
/// ("the height of its CSA tree depends on the number of inputs",
/// Sec. III-D).
#[derive(Clone, Debug)]
pub struct ReduceResult {
    /// The compressed carry-save pair.
    pub cs: CsNumber,
    /// Number of 3:2 compressor levels on the critical path.
    pub levels: usize,
}

/// Wallace-style reduction of an arbitrary set of addends to one CS pair
/// using 3:2 rows. All addends must share one width; the caller pre-shifts
/// partial products into place.
pub fn reduce_to_cs(addends: &[Bits], width: usize) -> ReduceResult {
    reduce_to_cs_with(addends, width, &mut ReduceScratch::default())
}

/// Reusable working storage for [`reduce_to_cs_with`]: the two row
/// buffers the Wallace reduction ping-pongs between. A batch evaluator
/// that reduces millions of partial-product sets keeps one scratch per
/// worker so the row vectors are allocated once, not per reduction.
#[derive(Clone, Debug, Default)]
pub struct ReduceScratch {
    layer: Vec<Bits>,
    next: Vec<Bits>,
}

/// [`reduce_to_cs`] with caller-provided scratch storage — the
/// batch-friendly entry point. Results are identical to
/// [`reduce_to_cs`]; only the allocation behavior differs.
pub fn reduce_to_cs_with(
    addends: &[Bits],
    width: usize,
    scratch: &mut ReduceScratch,
) -> ReduceResult {
    let layer = &mut scratch.layer;
    let next = &mut scratch.next;
    layer.clear();
    layer.extend(addends.iter().map(|a| a.zext(width)));
    let mut levels = 0;
    if layer.is_empty() {
        return ReduceResult {
            cs: CsNumber::zero(width),
            levels: 0,
        };
    }
    while layer.len() > 2 {
        next.clear();
        let mut chunks = layer.chunks_exact(3);
        for ch in &mut chunks {
            let cs = csa3_2(&ch[0], &ch[1], &ch[2]);
            next.push(cs.sum().clone());
            next.push(cs.carry().clone());
        }
        next.extend_from_slice(chunks.remainder());
        std::mem::swap(layer, next);
        levels += 1;
    }
    let cs = match layer.len() {
        1 => CsNumber::from_binary(layer.pop().unwrap()),
        _ => {
            let c = layer.pop().unwrap();
            let s = layer.pop().unwrap();
            CsNumber::new(s, c)
        }
    };
    ReduceResult { cs, levels }
}

/// Number of 3:2 levels needed to reduce `n` addends to two rows
/// (the Dadda/Wallace bound) — used by the fabric model to derive CSA-tree
/// depth from the input count without building the tree.
pub fn reduction_depth_3_2(n: usize) -> usize {
    // sequence of maximum reducible heights: 2, 3, 4, 6, 9, 13, 19, ...
    let mut height = 2usize;
    let mut levels = 0;
    while height < n {
        height = height * 3 / 2;
        levels += 1;
    }
    levels
}
