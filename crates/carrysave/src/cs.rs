//! Full carry-save numbers.

use csfma_bits::Bits;

/// A number in (full) carry-save representation: the value is
/// `sum + carry`, both words `width` bits wide, with wrap-around at
/// `2^width` exactly like a hardware register pair.
///
/// ```
/// use csfma_bits::Bits;
/// use csfma_carrysave::{csa3_2, CsNumber};
/// // three addends compress to a CS pair in one full-adder delay
/// let cs = csa3_2(
///     &Bits::from_u64(16, 1000),
///     &Bits::from_u64(16, 2000),
///     &Bits::from_u64(16, 3000),
/// );
/// assert_eq!(cs.resolve().to_u64(), 6000);
/// // partial carry-save: explicit carries only every 11th position
/// let pcs = cs.carry_reduce(11);
/// assert_eq!(pcs.resolve().to_u64(), 6000);
/// ```
///
/// Carry bits are stored *at their weight*: a compressor that generates a
/// carry out of position `i` stores it at position `i+1` of the carry word.
/// Each digit position `i` holds `sum[i] + carry[i] ∈ {0, 1, 2}` — the
/// redundant digit set of Sec. II.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsNumber {
    sum: Bits,
    carry: Bits,
}

impl CsNumber {
    /// Zero in CS form.
    pub fn zero(width: usize) -> Self {
        CsNumber {
            sum: Bits::zero(width),
            carry: Bits::zero(width),
        }
    }

    /// Wrap a plain binary value (empty carry word).
    pub fn from_binary(sum: Bits) -> Self {
        let carry = Bits::zero(sum.width());
        CsNumber { sum, carry }
    }

    /// Assemble from a sum and carry word of equal width.
    pub fn new(sum: Bits, carry: Bits) -> Self {
        assert_eq!(sum.width(), carry.width(), "CS sum/carry width mismatch");
        CsNumber { sum, carry }
    }

    /// Word width.
    pub fn width(&self) -> usize {
        self.sum.width()
    }

    /// Sum word.
    pub fn sum(&self) -> &Bits {
        &self.sum
    }

    /// Carry word.
    pub fn carry(&self) -> &Bits {
        &self.carry
    }

    /// Deconstruct into the `(sum, carry)` words without cloning.
    pub fn into_words(self) -> (Bits, Bits) {
        (self.sum, self.carry)
    }

    /// The redundant digit at position `i`: `0`, `1` or `2`.
    pub fn digit(&self, i: usize) -> u8 {
        self.sum.bit(i) as u8 + self.carry.bit(i) as u8
    }

    /// True iff both words are all-zero (the canonical zero; note that CS
    /// zero representations are *not* unique once wrap-around is involved).
    pub fn is_canonical_zero(&self) -> bool {
        self.sum.is_zero() && self.carry.is_zero()
    }

    /// Resolve to plain binary: `sum + carry mod 2^width`. This is the
    /// expensive carry-propagating step the CS format exists to avoid; in
    /// hardware it appears only at fused-region boundaries.
    pub fn resolve(&self) -> Bits {
        self.sum.wrapping_add(&self.carry)
    }

    /// Resolve into a wider word (no wrap): `sum + carry` in
    /// `width + 1` bits, both inputs zero-extended.
    pub fn resolve_extended(&self) -> Bits {
        let w = self.width() + 1;
        self.sum.zext(w).wrapping_add(&self.carry.zext(w))
    }

    /// Resolve interpreting both words as two's complement signed values of
    /// `width` bits, into a `width + 1`-bit signed result.
    pub fn resolve_signed_extended(&self) -> Bits {
        let w = self.width() + 1;
        self.sum.sext(w).wrapping_add(&self.carry.sext(w))
    }

    /// Zero-extend both words.
    pub fn zext(&self, new_width: usize) -> Self {
        CsNumber {
            sum: self.sum.zext(new_width),
            carry: self.carry.zext(new_width),
        }
    }

    /// Sign-extend both words (two's complement CS).
    pub fn sext(&self, new_width: usize) -> Self {
        CsNumber {
            sum: self.sum.sext(new_width),
            carry: self.carry.sext(new_width),
        }
    }

    /// Shift both words left (weights increase; bits drop off the top).
    pub fn shl(&self, n: usize) -> Self {
        CsNumber {
            sum: self.sum.shl(n),
            carry: self.carry.shl(n),
        }
    }

    /// Extract a digit block `[lo, lo+len)` as a CS pair of width `len`.
    pub fn extract(&self, lo: usize, len: usize) -> Self {
        CsNumber {
            sum: self.sum.extract(lo, len),
            carry: self.carry.extract(lo, len),
        }
    }

    /// Split into `count` blocks of `block_width` digits, MSB block first.
    pub fn blocks(&self, block_width: usize, count: usize) -> Vec<CsNumber> {
        assert_eq!(
            self.width(),
            block_width * count,
            "CS blocks width mismatch"
        );
        (0..count)
            .rev()
            .map(|i| self.extract(i * block_width, block_width))
            .collect()
    }

    /// Reassemble from MSB-first blocks.
    pub fn from_blocks(blocks: &[CsNumber]) -> Self {
        let mut sums = Vec::with_capacity(blocks.len());
        let mut carries = Vec::with_capacity(blocks.len());
        for b in blocks {
            sums.push(b.sum.clone());
            carries.push(b.carry.clone());
        }
        CsNumber {
            sum: Bits::from_blocks(&sums),
            carry: Bits::from_blocks(&carries),
        }
    }

    /// Two's-complement negation kept in CS form: `-(s + c) = !s + !c + 2`,
    /// folded back to a pair with one 3:2 compression (constant time, no
    /// carry propagation). The value is exact modulo `2^width`.
    pub fn negate(&self) -> Self {
        let w = self.width();
        let two = Bits::from_u64(w, 2);
        crate::compress::csa3_2(&!(&self.sum), &!(&self.carry), &two)
    }

    /// Reduce to *partial* carry-save with explicit carries only at
    /// positions that are multiples of `spacing` (Sec. III-E, "Carry
    /// Reduction" in Fig. 9).
    ///
    /// Hardware interpretation: the word is cut into `spacing`-bit
    /// segments; each segment adds its own sum and carry bits with a short
    /// ripple adder (constant time — 11b in the paper, 1.742 ns), emitting
    /// a single carry-out at the base of the next segment. The carry-out of
    /// the top segment wraps away, exactly like the `2^width` wrap of the
    /// register pair.
    pub fn carry_reduce(&self, spacing: usize) -> crate::pcs::PcsNumber {
        crate::pcs::PcsNumber::reduce_from(self, spacing)
    }
}
