//! Partial carry-save numbers (Sec. III-E).
//!
//! A PCS number stores explicit carry bits only at every `spacing`-th
//! position. The paper evaluates spacings 5, 11 and 55 for its 55-bit
//! blocks and picks 11: the delay difference between a 5b and an 11b
//! segment adder is negligible (1.650 ns vs 1.742 ns) while the carry
//! storage shrinks (385b of sum + 35b of carries instead of 384b).

use crate::cs::CsNumber;
use csfma_bits::Bits;

/// A number in partial carry-save form: value = `sum + carry mod 2^width`,
/// with the invariant that `carry` may be nonzero only at positions that
/// are nonzero multiples of `spacing`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcsNumber {
    sum: Bits,
    carry: Bits,
    spacing: usize,
}

impl PcsNumber {
    /// Zero in PCS form.
    pub fn zero(width: usize, spacing: usize) -> Self {
        assert!(spacing >= 1);
        PcsNumber {
            sum: Bits::zero(width),
            carry: Bits::zero(width),
            spacing,
        }
    }

    /// Wrap a plain binary value (no explicit carries).
    pub fn from_binary(sum: Bits, spacing: usize) -> Self {
        assert!(spacing >= 1);
        let carry = Bits::zero(sum.width());
        PcsNumber {
            sum,
            carry,
            spacing,
        }
    }

    /// Assemble from words, validating the carry-position invariant.
    ///
    /// # Panics
    /// If `carry` has a bit set at a position that is not a nonzero
    /// multiple of `spacing`.
    pub fn new(sum: Bits, carry: Bits, spacing: usize) -> Self {
        assert_eq!(sum.width(), carry.width(), "PCS sum/carry width mismatch");
        for pos in 0..carry.width() {
            if carry.bit(pos) {
                assert!(
                    pos != 0 && pos % spacing == 0,
                    "PCS carry bit at illegal position {pos} (spacing {spacing})"
                );
            }
        }
        PcsNumber {
            sum,
            carry,
            spacing,
        }
    }

    /// The constant-time carry-reduction step (Fig. 9, "Carry Reduction"):
    /// cut the FCS input into `spacing`-bit segments, add each segment's
    /// sum and carry bits with a short adder, and emit one carry-out at the
    /// base of the next segment. The top segment's carry-out wraps away
    /// (mod `2^width`), like any register overflow.
    pub fn reduce_from(cs: &CsNumber, spacing: usize) -> Self {
        assert!(spacing >= 1);
        let width = cs.width();
        let mut sum = Bits::zero(width);
        let mut carry = Bits::zero(width);
        let mut lo = 0;
        while lo < width {
            let len = spacing.min(width - lo);
            let seg_s = cs.sum().extract(lo, len).zext(len + 1);
            let seg_c = cs.carry().extract(lo, len).zext(len + 1);
            let seg = seg_s.wrapping_add(&seg_c);
            for b in 0..len {
                if seg.bit(b) {
                    sum.set_bit(lo + b, true);
                }
            }
            if seg.bit(len) && lo + len < width {
                carry.set_bit(lo + len, true);
            }
            lo += len;
        }
        PcsNumber {
            sum,
            carry,
            spacing,
        }
    }

    /// Word width.
    pub fn width(&self) -> usize {
        self.sum.width()
    }

    /// Carry spacing `k`.
    pub fn spacing(&self) -> usize {
        self.spacing
    }

    /// Sum word.
    pub fn sum(&self) -> &Bits {
        &self.sum
    }

    /// Carry word (sparse; see the type invariant).
    pub fn carry(&self) -> &Bits {
        &self.carry
    }

    /// Number of storage bits for carries (`floor((width-1)/spacing)`) —
    /// the quantity behind the paper's "385b sum + 35b of carries".
    pub fn carry_storage_bits(&self) -> usize {
        if self.width() == 0 {
            0
        } else {
            (self.width() - 1) / self.spacing
        }
    }

    /// View as a full CS pair (forgetting the sparsity invariant).
    pub fn to_cs(&self) -> CsNumber {
        CsNumber::new(self.sum.clone(), self.carry.clone())
    }

    /// Resolve to plain binary, `mod 2^width`.
    pub fn resolve(&self) -> Bits {
        self.to_cs().resolve()
    }

    /// Replace the carry word wholesale (fault-injection plumbing; the
    /// caller guarantees only legal lane positions are set — see
    /// `fault::tamper_carry_lanes`, which builds the word from lanes).
    #[cfg(feature = "fault-inject")]
    pub(crate) fn set_carry_lanes(&mut self, carry: Bits) {
        debug_assert_eq!(carry.width(), self.width());
        self.carry = carry;
    }

    /// Extract digits `[lo, lo+len)` as a PCS number of width `len`.
    /// `lo` must be a multiple of `spacing` so the invariant is kept.
    pub fn extract(&self, lo: usize, len: usize) -> Self {
        assert!(
            lo.is_multiple_of(self.spacing),
            "PCS extract must start on a segment base"
        );
        let mut carry = self.carry.extract(lo, len);
        // a carry that sat exactly at `lo` has position 0 in the slice,
        // which the invariant forbids — it belongs to this slice's value,
        // so fold it into the sum via the segment adder.
        if carry.bit(0) {
            carry.set_bit(0, false);
            let cs = CsNumber::new(self.sum.extract(lo, len).wrapping_add_u64(1), carry);
            return PcsNumber::reduce_from(&cs, self.spacing);
        }
        PcsNumber {
            sum: self.sum.extract(lo, len),
            carry,
            spacing: self.spacing,
        }
    }
}
