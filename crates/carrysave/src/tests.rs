//! Unit and property tests for the carry-save substrate: the single
//! invariant everything rests on is *value preservation modulo 2^width*.

use crate::{csa3_2, csa4_2, reduce_to_cs, reduction_depth_3_2, CsNumber, PcsNumber};
use csfma_bits::Bits;
use proptest::prelude::*;

fn mask(w: usize) -> u128 {
    if w >= 128 {
        !0
    } else {
        (1u128 << w) - 1
    }
}

#[test]
fn csa3_2_small_example() {
    // 5 + 3 + 6 = 14
    let w = 8;
    let cs = csa3_2(
        &Bits::from_u64(w, 5),
        &Bits::from_u64(w, 3),
        &Bits::from_u64(w, 6),
    );
    assert_eq!(cs.resolve().to_u64(), 14);
}

#[test]
fn digits_are_0_1_2() {
    let cs = CsNumber::new(Bits::from_u64(4, 0b1010), Bits::from_u64(4, 0b1110));
    assert_eq!(cs.digit(0), 0);
    assert_eq!(cs.digit(1), 2);
    assert_eq!(cs.digit(2), 1);
    assert_eq!(cs.digit(3), 2);
}

#[test]
fn cs_representation_of_half_is_not_unique() {
    // Sec. III-E example: 0.5d = 0.1000b can appear as CS digits 0.0200
    // (sum 0.0100, carry 0.0100) — the MSB fraction digit is zero although
    // the value is one half.
    let w = 5; // digits: x.xxxx with weight 2^-1 at bit 3
    let plain = CsNumber::from_binary(Bits::from_bin_str(w, "01000"));
    let redundant = CsNumber::new(
        Bits::from_bin_str(w, "00100"),
        Bits::from_bin_str(w, "00100"),
    );
    assert_eq!(plain.resolve(), redundant.resolve());
    assert!(!redundant.sum().bit(3)); // examining one digit misjudges 0.5
}

#[test]
fn negate_is_exact_mod_2w() {
    for v in [0u64, 1, 37, 255, 128] {
        let cs = CsNumber::new(Bits::from_u64(8, v / 2), Bits::from_u64(8, v - v / 2));
        let neg = cs.negate();
        let sum = cs.resolve().wrapping_add(&neg.resolve());
        assert!(sum.is_zero(), "negate failed for {v}");
    }
}

#[test]
fn reduce_depth_bounds() {
    assert_eq!(reduction_depth_3_2(2), 0);
    assert_eq!(reduction_depth_3_2(3), 1);
    assert_eq!(reduction_depth_3_2(4), 2);
    assert_eq!(reduction_depth_3_2(6), 3);
    assert_eq!(reduction_depth_3_2(9), 4);
    assert_eq!(reduction_depth_3_2(13), 5);
    // 54 partial products (53x54 multiply) needs 9 levels
    // (Dadda heights 2,3,4,6,9,13,19,28,42,63)
    assert_eq!(reduction_depth_3_2(54), 9);
}

#[test]
fn carry_reduce_spacing_invariant() {
    let cs = CsNumber::new(Bits::ones(33), Bits::ones(33));
    let pcs = cs.carry_reduce(11);
    assert_eq!(pcs.spacing(), 11);
    for pos in 0..33 {
        if pcs.carry().bit(pos) {
            assert!(pos % 11 == 0 && pos != 0);
        }
    }
    assert_eq!(pcs.resolve(), cs.resolve());
}

#[test]
fn carry_storage_matches_paper() {
    // Sec. III-E: 385b of sum carries 35b of explicit carries at spacing 11
    let pcs = PcsNumber::zero(385, 11);
    assert_eq!(pcs.carry_storage_bits(), 34); // positions 11,22,...,374
                                              // (the paper counts the top segment's carry-out too: 35)
                                              // and a 110b mantissa at spacing 11 carries ~10 carry bits (Fig. 8)
    let mant = PcsNumber::zero(110, 11);
    assert_eq!(mant.carry_storage_bits(), 9);
}

#[test]
fn pcs_new_rejects_bad_positions() {
    let ok = PcsNumber::new(Bits::zero(22), Bits::from_u64(22, 1 << 11), 11);
    assert!(ok.carry().bit(11));
    let bad =
        std::panic::catch_unwind(|| PcsNumber::new(Bits::zero(22), Bits::from_u64(22, 1 << 5), 11));
    assert!(bad.is_err());
}

#[test]
fn pcs_extract_on_segment_base() {
    let cs = CsNumber::new(Bits::ones(44), Bits::ones(44));
    let pcs = cs.carry_reduce(11);
    let lo = pcs.extract(0, 22);
    let expect = pcs.resolve().extract(0, 22);
    assert_eq!(lo.resolve(), expect);
    let hi = pcs.extract(22, 22);
    // upper slice value may differ from the binary slice by the carry that
    // crossed the cut — verify total value consistency instead
    let total = hi
        .resolve()
        .zext(44)
        .shl(22)
        .wrapping_add(&lo.resolve().zext(44));
    assert_eq!(total, pcs.resolve());
}

#[test]
fn blocks_roundtrip_cs() {
    let cs = CsNumber::new(
        Bits::from_u128(110, 0xdead_beef_1234_5678_9abc_def0u128),
        Bits::from_u128(110, 0x1111_2222_3333_4444u128),
    );
    let blocks = cs.blocks(55, 2);
    assert_eq!(CsNumber::from_blocks(&blocks), cs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn prop_csa3_2_preserves_value(w in 1usize..100, a: u128, b: u128, c: u128) {
        let (a, b, c) = (a & mask(w), b & mask(w), c & mask(w));
        let cs = csa3_2(&Bits::from_u128(w, a), &Bits::from_u128(w, b), &Bits::from_u128(w, c));
        prop_assert_eq!(cs.resolve().to_u128(), (a.wrapping_add(b).wrapping_add(c)) & mask(w));
    }

    #[test]
    fn prop_csa4_2_preserves_value(w in 1usize..100, a: u128, b: u128, c: u128, d: u128) {
        let (a, b, c, d) = (a & mask(w), b & mask(w), c & mask(w), d & mask(w));
        let cs = csa4_2(
            &Bits::from_u128(w, a),
            &Bits::from_u128(w, b),
            &Bits::from_u128(w, c),
            &Bits::from_u128(w, d),
        );
        let want = a.wrapping_add(b).wrapping_add(c).wrapping_add(d) & mask(w);
        prop_assert_eq!(cs.resolve().to_u128(), want);
    }

    #[test]
    fn prop_reduce_tree_preserves_value(w in 8usize..80, vals in prop::collection::vec(any::<u64>(), 0..12)) {
        let addends: Vec<Bits> = vals.iter().map(|&v| Bits::from_u64(w.min(64), v).zext(w)).collect();
        let r = reduce_to_cs(&addends, w);
        let want = vals
            .iter()
            .fold(0u128, |acc, &v| acc.wrapping_add((v as u128) & mask(w.min(64))))
            & mask(w);
        prop_assert_eq!(r.cs.resolve().to_u128(), want);
        prop_assert!(r.levels <= reduction_depth_3_2(vals.len().max(2)) + 1);
    }

    #[test]
    fn prop_reduce_with_scratch_matches_fresh(
        w in 8usize..80,
        groups in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..10), 1..5),
    ) {
        // one scratch reused across several reductions must not leak
        // state between them
        let mut scratch = crate::ReduceScratch::default();
        for vals in &groups {
            let addends: Vec<Bits> =
                vals.iter().map(|&v| Bits::from_u64(w.min(64), v).zext(w)).collect();
            let fresh = reduce_to_cs(&addends, w);
            let reused = crate::reduce_to_cs_with(&addends, w, &mut scratch);
            prop_assert_eq!(&fresh.cs, &reused.cs);
            prop_assert_eq!(fresh.levels, reused.levels);
        }
    }

    #[test]
    fn prop_carry_reduce_preserves_value(w in 2usize..120, k in 1usize..20, a: u128, b: u128) {
        let (a, b) = (a & mask(w), b & mask(w));
        let cs = CsNumber::new(Bits::from_u128(w, a), Bits::from_u128(w, b));
        let pcs = cs.carry_reduce(k);
        prop_assert_eq!(pcs.resolve().to_u128(), a.wrapping_add(b) & mask(w));
    }

    #[test]
    fn prop_negate_mod(w in 2usize..100, a: u128, b: u128) {
        let (a, b) = (a & mask(w), b & mask(w));
        let cs = CsNumber::new(Bits::from_u128(w, a), Bits::from_u128(w, b));
        let sum = cs.resolve().wrapping_add(&cs.negate().resolve());
        prop_assert!(sum.is_zero());
    }

    #[test]
    fn prop_resolve_extended_no_wrap(w in 1usize..100, a: u128, b: u128) {
        let (a, b) = (a & mask(w), b & mask(w));
        let cs = CsNumber::new(Bits::from_u128(w, a), Bits::from_u128(w, b));
        prop_assert_eq!(cs.resolve_extended().to_u128(), a + b);
    }
}

mod signed_sum_semantics {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(400))]

        /// The compressors preserve the *signed two-word sum* whenever the
        /// inputs keep one redundant sign bit of headroom — the invariant
        /// the FMA datapath relies on (DESIGN.md §7.2).
        #[test]
        fn prop_csa3_2_signed_sum_with_headroom(
            a in -(1i128 << 60)..(1i128 << 60),
            b in -(1i128 << 60)..(1i128 << 60),
            c in -(1i128 << 60)..(1i128 << 60),
        ) {
            let w = 64; // values use <= 61 bits plus sign: >= 2 redundant
            let cs = csa3_2(
                &Bits::from_i128(w, a),
                &Bits::from_i128(w, b),
                &Bits::from_i128(w, c),
            );
            prop_assert_eq!(cs.resolve_signed_extended().to_i128(), a + b + c);
        }

        /// Carry Reduce preserves the signed two-word sum *in context*:
        /// its input is always a compressor output whose words are
        /// sign-constant above the data (the FMA window shape), not an
        /// arbitrary pair. (An adversarial all-ones carry word can emit a
        /// carry into the sign position — which the window's block
        /// headroom makes unreachable.)
        #[test]
        fn prop_carry_reduce_signed_sum_in_context(
            rows in prop::collection::vec(-(1i128 << 48)..(1i128 << 48), 1..6),
            k in 1usize..16,
        ) {
            let w = 80; // >= 2k + content headroom, like the FMA window
            let addends: Vec<Bits> = rows.iter().map(|&r| Bits::from_i128(w, r)).collect();
            let cs = reduce_to_cs(&addends, w).cs;
            let want: i128 = rows.iter().sum();
            prop_assert_eq!(cs.resolve_signed_extended().to_i128(), want);
            let pcs = cs.carry_reduce(k);
            prop_assert_eq!(pcs.to_cs().resolve_signed_extended().to_i128(), want);
        }

        /// Negation preserves the signed sum given headroom.
        #[test]
        fn prop_negate_signed_sum_with_headroom(
            a in -(1i128 << 60)..(1i128 << 60),
            b in -(1i128 << 60)..(1i128 << 60),
        ) {
            let w = 64;
            let cs = CsNumber::new(Bits::from_i128(w, a), Bits::from_i128(w, b));
            prop_assert_eq!(cs.negate().resolve_signed_extended().to_i128(), -(a + b));
        }
    }
}
