//! Fault-injection primitives shared by every layer of the datapath.
//!
//! The robustness story (DESIGN.md §10) needs three small vocabulary
//! types that both the arithmetic crates (`csfma-units`, `csfma-core`)
//! and the execution engine (`csfma-hls`) agree on, without creating a
//! dependency cycle — so they live here, one level above `csfma-bits`:
//!
//! * [`FaultSite`] — the named places a single-event upset can strike;
//! * [`FaultHook`] — the injection interface the datapath consults at
//!   each site (a no-op outside fault campaigns; every tamper call site
//!   is additionally gated behind the `fault-inject` cargo feature so a
//!   `--no-default-features` build carries zero injection code);
//! * [`FaultDetected`] / [`CheckKind`] — the structured finding a
//!   self-checking evaluation reports instead of a silently wrong bit
//!   pattern.
//!
//! The seeded [`FaultPlan`](../../csfma_core/fault/struct.FaultPlan.html)
//! that drives campaigns lives in `csfma-core::fault`, which re-exports
//! everything here.

use csfma_bits::Bits;
use std::fmt;

/// A named place in the datapath where a fault can be injected. The
/// taxonomy follows the FMA pipeline order (Figs. 9/11) plus the batch
/// engine's register planes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Sum word of the multiplier's carry-save product (CSA tree output).
    MulSum,
    /// Carry word of the multiplier's carry-save product.
    MulCarry,
    /// Explicit carry lanes of the PCS number after Carry Reduce.
    PcsCarry,
    /// Skip index chosen by the block-granular normalizer (mux select).
    BlockSelect,
    /// The 12-bit excess-2047 result exponent field.
    ExpField,
    /// A register plane of the batch executor's tape scratch.
    TapeReg,
    /// A worker panic while evaluating a chunk (models a crashed lane).
    ExecPanic,
    /// A word of the bit-plane kernel's CSA product (the plane analogue
    /// of [`FaultSite::MulSum`]: one plane word holds one product bit of
    /// all 64 lanes, so a strike flips one lane's bit of one plane).
    PlaneCsaWord,
    /// An output word of the plane kernel's 64×64 B-significand
    /// transpose — a flipped bit feeds a wrong multiplier row mask to
    /// every level of the Wallace tree for the struck lane.
    TransposeOut,
    /// A block-classify mask word of the plane normalizer (Fig. 10): a
    /// flipped all-zero bit derails the struck lane's skip chain.
    PlaneClassifyMask,
}

impl FaultSite {
    /// Stable lower-case name (campaign JSON keys, CLI output).
    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::MulSum => "mul-sum",
            FaultSite::MulCarry => "mul-carry",
            FaultSite::PcsCarry => "pcs-carry",
            FaultSite::BlockSelect => "block-select",
            FaultSite::ExpField => "exp-field",
            FaultSite::TapeReg => "tape-reg",
            FaultSite::ExecPanic => "exec-panic",
            FaultSite::PlaneCsaWord => "plane-csa-word",
            FaultSite::TransposeOut => "transpose-out",
            FaultSite::PlaneClassifyMask => "plane-classify-mask",
        }
    }

    /// Every site, in pipeline order (scalar datapath, executor, then
    /// the bit-plane kernel's stages).
    pub const ALL: [FaultSite; 10] = [
        FaultSite::MulSum,
        FaultSite::MulCarry,
        FaultSite::PcsCarry,
        FaultSite::BlockSelect,
        FaultSite::ExpField,
        FaultSite::TapeReg,
        FaultSite::ExecPanic,
        FaultSite::PlaneCsaWord,
        FaultSite::TransposeOut,
        FaultSite::PlaneClassifyMask,
    ];

    /// The bit-plane kernel's fault populations. Invisible to the
    /// scalar residue checks (the plane kernel runs none); the robust
    /// executor covers them with its scalar differential oracle instead.
    pub const PLANE: [FaultSite; 3] = [
        FaultSite::PlaneCsaWord,
        FaultSite::TransposeOut,
        FaultSite::PlaneClassifyMask,
    ];

    /// The mantissa-datapath sites the residue/recompute checkers cover
    /// (the campaign's zero-silent-corruption gate runs over these).
    pub const MANTISSA: [FaultSite; 4] = [
        FaultSite::MulSum,
        FaultSite::MulCarry,
        FaultSite::PcsCarry,
        FaultSite::BlockSelect,
    ];
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which checker flagged a mismatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Mod-3 residue of the multiplier product vs the prediction from
    /// its inputs (exact — the product contract has no truncation).
    MulResidue,
    /// Mod-3 residue of the compressed window vs the wrapping sum of the
    /// rows that fed it (exact mod `2^w` on both sides).
    WindowResidue,
    /// Recompute-and-compare guard over the Carry Reduce step.
    CarryReduce,
    /// Recompute-and-compare guard over the normalizer's block select.
    BlockSelect,
    /// Duplicate computation of the result exponent field.
    ExponentPath,
    /// The robust executor's scalar-vs-plane differential: the bit-plane
    /// kernel's output for a lane disagreed with the scalar engine's.
    PlaneDifferential,
}

impl CheckKind {
    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            CheckKind::MulResidue => "mul-residue",
            CheckKind::WindowResidue => "window-residue",
            CheckKind::CarryReduce => "carry-reduce",
            CheckKind::BlockSelect => "block-select",
            CheckKind::ExponentPath => "exponent-path",
            CheckKind::PlaneDifferential => "plane-differential",
        }
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured checker finding: some check's prediction disagreed with
/// the datapath — the value flowing onward cannot be trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultDetected {
    /// Which checker fired.
    pub check: CheckKind,
    /// Specifics (the residues / fields that disagreed).
    pub message: String,
}

impl fmt::Display for FaultDetected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault detected by {} check: {}",
            self.check, self.message
        )
    }
}

/// The injection interface the datapath consults at each [`FaultSite`].
///
/// Implementations decide per call whether to strike (a transient SEU
/// fires once; a stuck-at fault fires every time) and must be cheap when
/// idle: the hook is consulted once per site per evaluation. All methods
/// take `&self` — one hook may be shared across the lanes of a chunk.
pub trait FaultHook {
    /// Flip bits of a datapath word at `site` (multiplier words, PCS
    /// carry lanes gathered into a dense word, …). A no-op when the hook
    /// has no armed fault for the site.
    fn tamper_bits(&self, site: FaultSite, word: &mut Bits);

    /// Corrupt a small control index (block-mux select, exponent field)
    /// at `site`, keeping it inside `0..modulus`.
    fn tamper_index(&self, site: FaultSite, index: &mut u64, modulus: u64);

    /// True when an [`FaultSite::ExecPanic`] fault should strike this
    /// evaluation. The call claims the fault (a transient fires once).
    fn wants_panic(&self) -> bool {
        false
    }

    /// An armed [`FaultSite::TapeReg`] fault: returns the instruction
    /// index (`< n_instrs`) after which to flip a destination-plane bit,
    /// and the raw bit position to flip. The call claims the fault.
    fn tape_fault(&self, n_instrs: usize) -> Option<(usize, u32)> {
        let _ = n_instrs;
        None
    }
}

impl crate::pcs::PcsNumber {
    /// Fault-injection support: expose the explicit carry lanes (the
    /// only legal carry positions — nonzero multiples of the spacing) as
    /// a dense word, let `hook` tamper it, and scatter the result back.
    /// Going through the dense view keeps the type's carry-position
    /// invariant no matter what the hook flips.
    #[cfg(feature = "fault-inject")]
    pub fn tamper_carry_lanes(&mut self, site: FaultSite, hook: &dyn FaultHook) {
        let n = self.carry_storage_bits();
        if n == 0 {
            return;
        }
        let mut lanes = Bits::zero(n);
        for i in 0..n {
            lanes.set_bit(i, self.carry().bit((i + 1) * self.spacing()));
        }
        hook.tamper_bits(site, &mut lanes);
        let mut carry = Bits::zero(self.width());
        for i in 0..n {
            carry.set_bit((i + 1) * self.spacing(), lanes.bit(i));
        }
        self.set_carry_lanes(carry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_and_check_names_are_unique() {
        let mut names: Vec<_> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultSite::ALL.len());
        let checks = [
            CheckKind::MulResidue,
            CheckKind::WindowResidue,
            CheckKind::CarryReduce,
            CheckKind::BlockSelect,
            CheckKind::ExponentPath,
            CheckKind::PlaneDifferential,
        ];
        let mut cn: Vec<_> = checks.iter().map(|c| c.name()).collect();
        cn.sort_unstable();
        cn.dedup();
        assert_eq!(cn.len(), checks.len());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn pcs_lane_tamper_keeps_the_carry_invariant() {
        use crate::{CsNumber, PcsNumber};

        struct FlipLane(usize);
        impl FaultHook for FlipLane {
            fn tamper_bits(&self, _site: FaultSite, word: &mut Bits) {
                let pos = self.0 % word.width();
                word.set_bit(pos, !word.bit(pos));
            }
            fn tamper_index(&self, _site: FaultSite, _index: &mut u64, _modulus: u64) {}
        }

        let cs = CsNumber::new(Bits::ones(33), Bits::from_u64(33, 0b1010));
        let mut p = PcsNumber::reduce_from(&cs, 11);
        let before = p.resolve();
        p.tamper_carry_lanes(FaultSite::PcsCarry, &FlipLane(1));
        // flipping lane 1 toggles the carry bit at position 22
        assert_ne!(p.resolve(), before);
        // re-validating through the panicking constructor must succeed
        let _ = PcsNumber::new(p.sum().clone(), p.carry().clone(), 11);
    }
}
