//! # csfma-carrysave — carry-save number formats and compressors
//!
//! Carry-save (CS) arithmetic is the core enabling technique of the paper's
//! FMA units: instead of propagating carries across a wide word, a number
//! is held as a pair *(sum, carry)* whose true value is `sum + carry`. Each
//! digit position can then hold the values {0, 1, 2} (Sec. II), addition
//! becomes a constant-time 3:2 compression, and the expensive carry
//! propagation is deferred — in this workspace, sometimes across an entire
//! chain of fused multiply-adds.
//!
//! This crate provides:
//!
//! * [`CsNumber`] — a full carry-save (FCS) pair with value semantics,
//! * [`csa3_2`] / [`csa4_2`] and [`reduce_to_cs`] — the compressors and
//!   reduction trees used inside the multipliers and adders (with depth
//!   reporting for the `csfma-fabric` timing model),
//! * [`plane`] — bit-plane (bit-sliced) views of the same compressors:
//!   the batch engine transposes 64 rows into plane words so one machine
//!   operation advances all lanes through one gate level,
//! * [`PcsNumber`] — the *partial carry-save* representation of
//!   Sec. III-E: explicit carry bits only every `k`-th position (the paper
//!   settles on `k = 11`), produced by the constant-time
//!   [`CsNumber::carry_reduce`] step.

mod compress;
mod cs;
pub mod fault;
mod pcs;
pub mod plane;

pub use compress::{
    csa3_2, csa4_2, reduce_to_cs, reduce_to_cs_with, reduction_depth_3_2, ReduceResult,
    ReduceScratch, COMPRESSOR_HEADROOM_BITS,
};
pub use cs::CsNumber;
pub use fault::{CheckKind, FaultDetected, FaultHook, FaultSite};
pub use pcs::PcsNumber;

#[cfg(test)]
mod tests;
