//! Switching-activity energy model — the XPower substitute for Table II.
//!
//! The paper recorded post-layout switching activity (VCD/SAIF via ISim)
//! of the Sec. IV-B recurrence in pipeline steady state and let XPower
//! integrate it. Here the behavioral models play the workload, every named
//! datapath net records its value per operation, and the model counts bit
//! toggles between consecutive operations. Energy per multiply-add is
//!
//! ```text
//! E = Σ_net toggles(net)/op · coeff(class(net)) + E_static_per_op
//! ```
//!
//! with one coefficient per resource class (DSP-internal, fabric
//! LUT/routing, register). The coefficients are calibrated so the CoreGen
//! baseline lands on the paper's 0.54 nJ; the other three cells are then
//! *measurements* of this model (recorded in EXPERIMENTS.md against the
//! paper's 0.74 / 2.67 / 2.36 nJ).

use csfma_bits::Bits;
use csfma_core::{CsFmaFormat, CsFmaUnit, CsOperand, TraceSink, VecSink};
use csfma_softfloat::{FpFormat, Round, SoftFloat};
use std::collections::HashMap;

/// Resource class of a net, keyed by its name prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResourceClass {
    /// Inside DSP48E1 blocks (hard macro: cheapest per toggle).
    Dsp,
    /// Fabric LUTs and routing (the expensive wide CSA trees).
    Fabric,
    /// Pipeline/output registers.
    Reg,
}

/// Map a net name to its resource class.
pub fn classify(net: &str) -> ResourceClass {
    match net.split('.').next().unwrap_or("") {
        "mul" | "dsp" => ResourceClass::Dsp,
        "res" | "reg" => ResourceClass::Reg,
        _ => ResourceClass::Fabric, // win, cr, fab, ...
    }
}

/// Per-toggle energy coefficients in picojoules.
#[derive(Clone, Copy, Debug)]
pub struct EnergyCoefficients {
    /// DSP-internal toggle.
    pub dsp_pj: f64,
    /// Fabric LUT/routing toggle.
    pub fabric_pj: f64,
    /// Register toggle.
    pub reg_pj: f64,
    /// Static + clock-tree energy per operation.
    pub static_pj: f64,
}

impl Default for EnergyCoefficients {
    /// Calibrated against the paper's Table II anchors on the Sec. IV-B
    /// workload (CoreGen 0.54 nJ, FloPoCo 0.74 nJ, PCS 2.67 nJ). The DSP
    /// coefficient covers the whole cascade behind each traced product
    /// bit; the register coefficient covers the full transport bus and its
    /// routing at speed, which is why it is the largest.
    fn default() -> Self {
        EnergyCoefficients {
            dsp_pj: 1.00,
            fabric_pj: 0.93,
            reg_pj: 3.65,
            static_pj: 190.0,
        }
    }
}

/// Accumulates per-net toggle counts over a stream of operations.
#[derive(Default, Debug)]
pub struct ActivityAccumulator {
    nets: HashMap<&'static str, (Bits, u64)>,
    ops: u64,
}

impl ActivityAccumulator {
    /// Record all net values of one operation.
    pub fn record_op(&mut self, events: &[(&'static str, Bits)]) {
        for (net, value) in events {
            match self.nets.get_mut(net) {
                Some((last, toggles)) => {
                    let v = if last.width() == value.width() {
                        value.clone()
                    } else {
                        value.zext(last.width())
                    };
                    *toggles += (&*last ^ &v).count_ones() as u64;
                    *last = v;
                }
                None => {
                    self.nets.insert(net, (value.clone(), 0));
                }
            }
        }
        self.ops += 1;
    }

    /// Operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Average toggles per op for one resource class.
    pub fn toggles_per_op(&self, class: ResourceClass) -> f64 {
        if self.ops <= 1 {
            return 0.0;
        }
        let total: u64 = self
            .nets
            .iter()
            .filter(|(net, _)| classify(net) == class)
            .map(|(_, (_, t))| *t)
            .sum();
        total as f64 / (self.ops - 1) as f64
    }

    /// Energy per operation in nanojoules.
    pub fn energy_nj_per_op(&self, co: &EnergyCoefficients) -> f64 {
        let pj = self.toggles_per_op(ResourceClass::Dsp) * co.dsp_pj
            + self.toggles_per_op(ResourceClass::Fabric) * co.fabric_pj
            + self.toggles_per_op(ResourceClass::Reg) * co.reg_pj
            + co.static_pj;
        pj / 1000.0
    }
}

/// The Sec. IV-B workload: one recurrence step = one multiply-add pair per
/// FMA unit ("a pair of FMA units recursively computing x\[50\]").
pub struct RecurrenceWorkload {
    b1: SoftFloat,
    b2: SoftFloat,
    xs: [f64; 3],
    state: u64,
}

impl RecurrenceWorkload {
    /// Seeded workload with the paper's operand ranges
    /// (`1 < |B1| < 32`, `0 < |B2| < 1`).
    pub fn new(seed: u64) -> Self {
        let mut w = RecurrenceWorkload {
            b1: SoftFloat::one(FpFormat::BINARY64),
            b2: SoftFloat::one(FpFormat::BINARY64),
            xs: [0.3, -0.7, 1.1],
            state: seed | 1,
        };
        let b1 = (1.0 + w.uniform() * 31.0) * w.sign();
        let b2 = w.uniform().max(1e-3) * w.sign();
        w.b1 = SoftFloat::from_f64(FpFormat::BINARY64, b1);
        w.b2 = SoftFloat::from_f64(FpFormat::BINARY64, b2);
        w
    }

    fn uniform(&mut self) -> f64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }

    fn sign(&mut self) -> f64 {
        if self.uniform() > 0.5 {
            1.0
        } else {
            -1.0
        }
    }

    /// Keep the recurrence bounded: restart the seeds when it overflows
    /// the double range (the hardware testbench reseeds per computation —
    /// "arithmetic mean over 20 computations").
    fn advance(&mut self, x: f64) -> [f64; 3] {
        let x = if x.is_finite() && x.abs() < 1e290 {
            x
        } else {
            self.uniform() * 2.0 - 1.0
        };
        self.xs = [self.xs[1], self.xs[2], x];
        self.xs
    }
}

/// Measure a P/FCS-FMA unit on the recurrence: returns the filled
/// accumulator after `steps` multiply-add pairs in steady state.
pub fn measure_cs_unit(format: CsFmaFormat, steps: usize, seed: u64) -> ActivityAccumulator {
    let unit = CsFmaUnit::new(format);
    let mut w = RecurrenceWorkload::new(seed);
    let mut acc = ActivityAccumulator::default();
    let mut x3 = CsOperand::from_ieee(&SoftFloat::from_f64(FpFormat::BINARY64, w.xs[0]), format);
    let mut x2 = CsOperand::from_ieee(&SoftFloat::from_f64(FpFormat::BINARY64, w.xs[1]), format);
    let mut x1 = CsOperand::from_ieee(&SoftFloat::from_f64(FpFormat::BINARY64, w.xs[2]), format);
    for _ in 0..steps {
        let mut sink = VecSink::default();
        let t = unit.fma_traced(&x3, &w.b2, &x2, &mut sink).0;
        let x = unit.fma_traced(&t, &w.b1, &x1, &mut sink).0;
        // operand transport registers
        sink.record("res.pack", &x.pack());
        acc.record_op(&sink.events);
        let xv = x.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64();
        let xs = w.advance(xv);
        x3 = CsOperand::from_ieee(&SoftFloat::from_f64(FpFormat::BINARY64, xs[0]), format);
        x2 = CsOperand::from_ieee(&SoftFloat::from_f64(FpFormat::BINARY64, xs[1]), format);
        x1 = x;
    }
    acc
}

/// Which discrete (IEEE-in/IEEE-out) implementation to trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiscreteKind {
    /// CoreGen separate multiplier + adder.
    CoreGen,
    /// FloPoCo fused pipeline (wide merged addition in fabric).
    FloPoCo,
}

/// Measure a discrete double-precision implementation on the recurrence.
pub fn measure_discrete(kind: DiscreteKind, steps: usize, seed: u64) -> ActivityAccumulator {
    let fmt = FpFormat::BINARY64;
    let mut w = RecurrenceWorkload::new(seed);
    let mut acc = ActivityAccumulator::default();
    let (mut x3, mut x2, mut x1) = (w.xs[0], w.xs[1], w.xs[2]);
    for _ in 0..steps {
        let mut events: Vec<(&'static str, Bits)> = Vec::new();
        let ma = |bk: &SoftFloat, xk: f64, add: f64, ev: &mut Vec<(&'static str, Bits)>| {
            let x = SoftFloat::from_f64(fmt, xk);
            let a = SoftFloat::from_f64(fmt, add);
            // the 106-bit raw product toggles inside the DSPs
            let prod = (bk.significand() as u128) * (x.significand() as u128);
            ev.push(("dsp.prod", Bits::from_u128(106, prod)));
            match kind {
                DiscreteKind::CoreGen => {
                    // separate adder: align + mantissa add in fabric
                    let p = bk.mul(&x);
                    let s = p.add(&a);
                    ev.push(("fab.addmant", Bits::from_u64(57, s.significand())));
                    ev.push(("reg.out", s.encode()));
                    s.to_f64()
                }
                DiscreteKind::FloPoCo => {
                    // fused: wide merged addition + normalization shift,
                    // both in fabric (161b / 110b paths)
                    let s = bk.fma(&x, &a);
                    let shift = ((a.exp() - bk.exp() - x.exp()).rem_euclid(55)) as usize;
                    let wide = Bits::from_u128(106, prod)
                        .zext(161)
                        .shl(shift)
                        .wrapping_add(&Bits::from_u64(64, a.significand()).zext(161));
                    ev.push(("fab.fused", wide));
                    ev.push((
                        "fab.norm",
                        Bits::from_u64(57, s.significand())
                            .zext(110)
                            .shl(shift.min(53)),
                    ));
                    ev.push(("reg.out", s.encode()));
                    s.to_f64()
                }
            }
        };
        let t = ma(&w.b2.clone(), x2, x3, &mut events);
        let x = ma(&w.b1.clone(), x1, t, &mut events);
        acc.record_op(&events);
        let xs = w.advance(x);
        x3 = xs[0];
        x2 = xs[1];
        x1 = xs[2];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_counting() {
        let mut acc = ActivityAccumulator::default();
        acc.record_op(&[("fab.x", Bits::from_u64(8, 0b0000_0000))]);
        acc.record_op(&[("fab.x", Bits::from_u64(8, 0b1111_0000))]);
        acc.record_op(&[("fab.x", Bits::from_u64(8, 0b1111_1111))]);
        assert_eq!(acc.toggles_per_op(ResourceClass::Fabric), 4.0); // 8 toggles / 2 intervals
    }

    #[test]
    fn classes_by_prefix() {
        assert_eq!(classify("mul.sum"), ResourceClass::Dsp);
        assert_eq!(classify("win.carry"), ResourceClass::Fabric);
        assert_eq!(classify("cr.sum"), ResourceClass::Fabric);
        assert_eq!(classify("res.pack"), ResourceClass::Reg);
        assert_eq!(classify("fab.fused"), ResourceClass::Fabric);
    }

    #[test]
    fn table2_shape() {
        // Table II: Xilinx 0.54, FloPoCo 0.74, PCS 2.67, FCS 2.36 nJ.
        // Shape requirements: CoreGen cheapest, FloPoCo moderate, the CS
        // units 3.5x-6x above CoreGen, FCS below PCS.
        let co = EnergyCoefficients::default();
        let steps = 400;
        let xilinx = measure_discrete(DiscreteKind::CoreGen, steps, 42).energy_nj_per_op(&co);
        let flopoco = measure_discrete(DiscreteKind::FloPoCo, steps, 42).energy_nj_per_op(&co);
        let pcs = measure_cs_unit(CsFmaFormat::PCS_55_ZD, steps, 42).energy_nj_per_op(&co);
        let fcs = measure_cs_unit(CsFmaFormat::FCS_29_LZA, steps, 42).energy_nj_per_op(&co);
        assert!(
            (0.40..0.70).contains(&xilinx),
            "CoreGen calibration anchor: {xilinx:.2} nJ (paper 0.54)"
        );
        assert!(
            flopoco > xilinx,
            "FloPoCo {flopoco:.2} vs Xilinx {xilinx:.2}"
        );
        assert!(
            pcs > 3.0 * xilinx,
            "PCS {pcs:.2} must be several x Xilinx {xilinx:.2}"
        );
        assert!(
            fcs > 3.0 * xilinx,
            "FCS {fcs:.2} must be several x Xilinx {xilinx:.2}"
        );
        assert!(fcs < pcs, "FCS {fcs:.2} below PCS {pcs:.2} (Table II)");
    }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;

    #[test]
    fn fcs_shifts_work_into_the_dsps() {
        // the FCS pre-adders move carry resolution into the DSP columns:
        // relative to PCS, its fabric share shrinks while DSP activity
        // stays comparable (Sec. III-H's efficiency argument)
        let pcs = measure_cs_unit(CsFmaFormat::PCS_55_ZD, 300, 11);
        let fcs = measure_cs_unit(CsFmaFormat::FCS_29_LZA, 300, 11);
        let share = |acc: &ActivityAccumulator| {
            let f = acc.toggles_per_op(ResourceClass::Fabric);
            let d = acc.toggles_per_op(ResourceClass::Dsp);
            f / (f + d)
        };
        assert!(
            share(&fcs) < share(&pcs),
            "FCS fabric share {:.2} vs PCS {:.2}",
            share(&fcs),
            share(&pcs)
        );
    }

    #[test]
    fn energy_scales_with_activity_not_steps() {
        // per-op energy is a steady-state intensity: doubling the run
        // length must not change it much
        let co = EnergyCoefficients::default();
        let short = measure_cs_unit(CsFmaFormat::PCS_55_ZD, 150, 3).energy_nj_per_op(&co);
        let long = measure_cs_unit(CsFmaFormat::PCS_55_ZD, 600, 3).energy_nj_per_op(&co);
        assert!(
            (short - long).abs() / long < 0.12,
            "{short:.3} vs {long:.3}"
        );
    }
}
