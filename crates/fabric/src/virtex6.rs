//! Virtex-6 (-1 speed grade) primitive timing and area constants.
//!
//! Calibration: the per-bit carry-chain delay and the base LUT+routing
//! delay are solved from the paper's 5b/11b adder anchors; the wide-adder
//! routing penalty from its 385b anchor. Everything else is standard
//! Virtex-6 data-sheet magnitudes tuned so the end-to-end unit reports
//! land near Table I.

/// The device model. All delays in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct Virtex6 {
    /// Base delay of a LUT hop including local routing.
    pub lut_level_ns: f64,
    /// Extra delay per carry-chain bit.
    pub carry_per_bit_ns: f64,
    /// Base delay of a carry-chain structure (first LUT + chain entry).
    pub adder_base_ns: f64,
    /// Long-line routing penalty per bit beyond [`Self::route_free_bits`].
    pub route_per_bit_ns: f64,
    /// Width up to which a datapath stays in one column (no long-line
    /// penalty).
    pub route_free_bits: usize,
    /// Register clock-to-out plus setup (pipeline overhead per stage).
    pub reg_overhead_ns: f64,
    /// Delay of one fully pipelined DSP48E1 stage.
    pub dsp_stage_ns: f64,
    /// Extra DSP input delay when the pre-adder is used (Virtex-6 only).
    pub dsp_preadder_ns: f64,
}

impl Virtex6 {
    /// The `-1` speed grade model used throughout the paper.
    pub const SPEED_GRADE_1: Virtex6 = Virtex6 {
        lut_level_ns: 0.68,
        carry_per_bit_ns: 0.015_333,
        adder_base_ns: 1.573_3,
        route_per_bit_ns: 0.004_59,
        route_free_bits: 64,
        reg_overhead_ns: 0.60,
        dsp_stage_ns: 2.00,
        dsp_preadder_ns: 1.30,
    };

    /// Register-to-register delay of a `width`-bit ripple (carry-chain)
    /// adder. Reproduces the paper's anchors: 1.650 ns at 5b, 1.742 ns at
    /// 11b, 8.95 ns at 385b.
    pub fn adder_ns(&self, width: usize) -> f64 {
        let route = width.saturating_sub(self.route_free_bits) as f64 * self.route_per_bit_ns;
        self.adder_base_ns + width as f64 * self.carry_per_bit_ns + route
    }

    /// Delay of `levels` LUT levels of random logic.
    pub fn logic_ns(&self, levels: usize) -> f64 {
        levels as f64 * self.lut_level_ns
    }

    /// Delay of an `ways`-to-1 multiplexer of any width (tree of 4:1 LUT
    /// muxes; width adds routing, not logic depth).
    pub fn mux_ns(&self, ways: usize) -> f64 {
        let levels = (usize::BITS - (ways.max(2) - 1).leading_zeros()).div_ceil(2) as usize;
        self.logic_ns(levels.max(1))
    }

    /// Delay of a barrel shifter over `width` bits with up to
    /// `max_distance` positions: one 4:1 mux level per 2 distance bits.
    pub fn shifter_ns(&self, width: usize, max_distance: usize) -> f64 {
        let dist_bits = (usize::BITS - max_distance.max(1).leading_zeros()) as usize;
        let levels = dist_bits.div_ceil(2).max(1);
        let route = width.saturating_sub(self.route_free_bits) as f64 * self.route_per_bit_ns * 0.5;
        self.logic_ns(levels) + route
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: Virtex6 = Virtex6::SPEED_GRADE_1;

    #[test]
    fn adder_anchors_from_paper() {
        // Sec. III-E: 5b vs 11b adder delays
        assert!((V.adder_ns(5) - 1.650).abs() < 0.002, "{}", V.adder_ns(5));
        assert!((V.adder_ns(11) - 1.742).abs() < 0.002, "{}", V.adder_ns(11));
        // Sec. III-D: a single 385b adder is about 8.95 ns — "far too slow"
        assert!((V.adder_ns(385) - 8.95).abs() < 0.02, "{}", V.adder_ns(385));
    }

    #[test]
    fn wide_adders_miss_200mhz() {
        // the architectural motivation: plain binary addition at the
        // window width cannot make the 5 ns cycle budget
        assert!(V.adder_ns(385) > 5.0);
        assert!(V.adder_ns(161) > 4.0); // classic FMA adder is also critical
                                        // while short segment adders fit easily
        assert!(V.adder_ns(11) < 2.0);
        assert!(V.adder_ns(29) < 2.5);
    }

    #[test]
    fn mux_and_shifter_scale() {
        assert!(V.mux_ns(6) < V.mux_ns(64));
        assert!(V.shifter_ns(162, 162) > V.mux_ns(6)); // Fig. 7's point
        assert!(V.shifter_ns(385, 385) > V.shifter_ns(64, 64));
    }
}
