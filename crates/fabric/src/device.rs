//! Device capacity check — does a datapath fit the part?
//!
//! The paper targets the Virtex-6 family and notes it was "forced to
//! reduce the mantissa from 116b down to 87b" on the FCS unit "due to
//! routing difficulties using ISE 14.1 on Virtex-6" — resource pressure
//! is part of the design story. This module holds the published
//! capacities of representative family members and computes utilization.

use crate::components::Area;

/// A Virtex-6 family member's usable resources.
#[derive(Clone, Copy, Debug)]
pub struct Device {
    /// Part name.
    pub name: &'static str,
    /// 6-input LUTs.
    pub luts: usize,
    /// DSP48E1 slices.
    pub dsps: usize,
    /// Flip-flops.
    pub regs: usize,
}

/// The mid-range part commonly used on ML605 evaluation boards.
pub const XC6VLX240T: Device = Device {
    name: "XC6VLX240T",
    luts: 150_720,
    dsps: 768,
    regs: 301_440,
};

/// A smaller family member.
pub const XC6VLX75T: Device = Device {
    name: "XC6VLX75T",
    luts: 46_560,
    dsps: 288,
    regs: 93_120,
};

/// Utilization of one device by one datapath.
#[derive(Clone, Copy, Debug)]
pub struct Utilization {
    /// LUT share in percent.
    pub luts_pct: f64,
    /// DSP share in percent.
    pub dsps_pct: f64,
    /// Register share in percent.
    pub regs_pct: f64,
}

impl Utilization {
    /// True when every resource is within the device.
    pub fn fits(&self) -> bool {
        self.luts_pct <= 100.0 && self.dsps_pct <= 100.0 && self.regs_pct <= 100.0
    }

    /// The binding resource share in percent.
    pub fn bottleneck_pct(&self) -> f64 {
        self.luts_pct.max(self.dsps_pct).max(self.regs_pct)
    }
}

impl Device {
    /// Compute utilization of this device by an area requirement.
    pub fn utilization(&self, area: &Area) -> Utilization {
        Utilization {
            luts_pct: 100.0 * area.luts as f64 / self.luts as f64,
            dsps_pct: 100.0 * area.dsps as f64 / self.dsps as f64,
            regs_pct: 100.0 * area.regs as f64 / self.regs as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::all_units;
    use crate::virtex6::Virtex6;

    #[test]
    fn single_units_fit_comfortably() {
        // every evaluated operator fits even the small family member
        let v = Virtex6::SPEED_GRADE_1;
        for u in all_units() {
            let r = u.synthesize(&v);
            let area = Area {
                luts: r.luts,
                dsps: r.dsps,
                regs: r.regs,
            };
            let util = XC6VLX75T.utilization(&area);
            assert!(util.fits(), "{}: {:.1}%", u.name, util.bottleneck_pct());
            assert!(util.bottleneck_pct() < 25.0, "{}", u.name);
        }
    }

    #[test]
    fn many_pcs_units_pressure_the_dsps() {
        // the Sec. IV-D datapaths used up to 39 FMA units; on the LX240T
        // the PCS unit's 21 DSPs become the binding resource near there
        let v = Virtex6::SPEED_GRADE_1;
        let pcs = crate::designs::pcs_fma().synthesize(&v);
        let one = Area {
            luts: pcs.luts,
            dsps: pcs.dsps,
            regs: pcs.regs,
        };
        let mut area = Area::default();
        for _ in 0..39 {
            area = area.plus(one);
        }
        let util = XC6VLX240T.utilization(&area);
        assert!(util.dsps_pct > 90.0, "39 x 21 DSPs = {:.0}%", util.dsps_pct);
        // a full 39-unit PCS pool overcommits the LX240T — why the paper
        // time-multiplexes and fuses only selectively
        assert!(!util.fits());
    }

    #[test]
    fn utilization_math() {
        let u = XC6VLX240T.utilization(&Area {
            luts: 15_072,
            dsps: 384,
            regs: 0,
        });
        assert!((u.luts_pct - 10.0).abs() < 1e-9);
        assert!((u.dsps_pct - 50.0).abs() < 1e-9);
        assert_eq!(u.bottleneck_pct(), u.dsps_pct);
        assert!(u.fits());
        assert!(!XC6VLX75T
            .utilization(&Area {
                luts: 50_000,
                dsps: 0,
                regs: 0
            })
            .fits());
    }
}
