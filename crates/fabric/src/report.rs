//! Synthesis report rows — the schema of Table I and Fig. 13.

use std::fmt;

/// One operator implementation's synthesis outcome.
#[derive(Clone, Copy, Debug)]
pub struct SynthesisReport {
    /// Operator name (Table I row label).
    pub name: &'static str,
    /// Achievable clock in MHz.
    pub fmax_mhz: f64,
    /// Pipeline latency in cycles.
    pub cycles: usize,
    /// 6-input LUTs.
    pub luts: usize,
    /// DSP48E1 blocks.
    pub dsps: usize,
    /// Flip-flops (not a Table I column; kept for the energy model).
    pub regs: usize,
    /// Critical stage delay in ns.
    pub critical_ns: f64,
}

impl SynthesisReport {
    /// Fig. 13's metric: minimum computation time for one multiply-add =
    /// minimum cycle time × pipeline length.
    pub fn latency_ns(&self) -> f64 {
        self.cycles as f64 * 1000.0 / self.fmax_mhz
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:>6.0} {:>7} {:>6} {:>5} {:>10.2}",
            self.name,
            self.fmax_mhz,
            self.cycles,
            self.luts,
            self.dsps,
            self.latency_ns()
        )
    }
}

/// Print a Table I-style header plus rows.
pub fn print_table(rows: &[SynthesisReport]) {
    println!(
        "{:<22} {:>6} {:>7} {:>6} {:>5} {:>10}",
        "Architecture", "fMax", "Cycles", "LUTs", "DSPs", "Lat(ns)"
    );
    for r in rows {
        println!("{r}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_metric() {
        let r = SynthesisReport {
            name: "x",
            fmax_mhz: 250.0,
            cycles: 5,
            luts: 0,
            dsps: 0,
            regs: 0,
            critical_ns: 4.0,
        };
        assert!((r.latency_ns() - 20.0).abs() < 1e-9);
    }
}
