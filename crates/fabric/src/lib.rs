//! # csfma-fabric — calibrated Virtex-6 timing / area / energy model
//!
//! The paper's synthesis evaluation (Table I, Figs. 13/15, Table II) ran
//! through Xilinx ISE 14.1 on a Virtex-6 (speed grade -1). No vendor
//! toolchain exists here, so this crate substitutes a **structural cost
//! model**: every operator is described as a DAG of primitive components
//! (ripple/segment adders, CSA trees, DSP48E1 tiles, muxes, shifters,
//! detectors), each with a delay and area function calibrated against the
//! anchors the paper itself prints:
//!
//! * 5-bit adder 1.650 ns, 11-bit adder 1.742 ns (Sec. III-E),
//! * 385-bit adder 8.95 ns register-to-register (Sec. III-D),
//! * CoreGen double ops at 244 MHz (5-cycle mul + 4-cycle add),
//! * FloPoCo fused pipeline at 190 MHz / 11 cycles,
//! * the paper's own PCS-FMA (231 MHz / 5) and FCS-FMA (211 MHz / 3).
//!
//! A greedy pipeliner cuts each DAG into stages under a target clock
//! period and reports `{fMax, cycles, LUTs, DSPs}` — the Table I columns.
//! The energy model (Table II) replays a workload through the behavioral
//! units, counts per-net bit toggles (the XPower substitute) and weights
//! them with per-resource-class coefficients.

pub mod components;
pub mod designs;
pub mod device;
pub mod energy;
pub mod pipeline;
pub mod report;
pub mod vcd;
pub mod virtex6;

pub use designs::{
    all_units, converter_cs_to_ieee, converter_ieee_to_cs, coregen_adder, coregen_multiplier,
    design_from_format, fcs_fma, pcs_fma, UnitDesign, UnitKind,
};
pub use device::{Device, Utilization, XC6VLX240T, XC6VLX75T};
pub use pipeline::{pipeline_design, PipelineResult};
pub use report::SynthesisReport;
pub use virtex6::Virtex6;
