//! Structural descriptions of the four evaluated operator implementations
//! (Table I rows), each as a critical-path component chain plus the
//! blocks that run beside it.

use crate::components::{Component as C, MultStyle};
use crate::pipeline::{pipeline_fixed, PipelineResult};
use crate::report::SynthesisReport;
use crate::virtex6::Virtex6;
use csfma_core::CsFmaFormat;

/// Which Table I row a design corresponds to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// Xilinx CoreGen discrete multiply + add ("low latency" 5+4 cycles).
    CoreGen,
    /// FloPoCo FPPipeline fused multiply-add (11 cycles).
    FloPoCo,
    /// The paper's PCS-FMA (Fig. 9, 5 cycles).
    PcsFma,
    /// The paper's FCS-FMA (Fig. 11, 3 cycles).
    FcsFma,
}

/// A named operator design ready for pipelining.
#[derive(Clone, Debug)]
pub struct UnitDesign {
    /// Table name.
    pub name: &'static str,
    /// Row identity.
    pub kind: UnitKind,
    /// Components on the register-to-register critical path, in order.
    pub critical: Vec<C>,
    /// Components running in parallel (area only).
    pub parallel: Vec<C>,
    /// Designer-chosen pipeline depth (Sec. IV-A: vendor configuration /
    /// manual pipelining).
    pub cycles: usize,
}

impl UnitDesign {
    /// Pipeline on the device and produce the Table I row.
    pub fn synthesize(&self, v: &Virtex6) -> SynthesisReport {
        let r: PipelineResult = pipeline_fixed(v, &self.critical, &self.parallel, self.cycles);
        SynthesisReport {
            name: self.name,
            fmax_mhz: r.fmax_mhz,
            cycles: r.cycles,
            luts: r.area.luts,
            dsps: r.area.dsps,
            regs: r.area.regs,
            critical_ns: r.critical_ns,
        }
    }
}

/// Xilinx CoreGen: discrete double-precision multiplier (5 cycles) chained
/// with a discrete adder (4 cycles). Both operators normalize and round.
pub fn coregen_muladd() -> UnitDesign {
    UnitDesign {
        name: "Xilinx CoreGen",
        kind: UnitKind::CoreGen,
        critical: vec![
            // multiplier: operand prep, 3 DSP cascade stages, product add
            C::Logic {
                levels: 1,
                luts: 120,
            },
            C::DspMultiplier {
                a_bits: 53,
                b_bits: 53,
                style: MultStyle::FullTiling,
            },
            C::Logic {
                levels: 2,
                luts: 90,
            },
            C::RippleAdder { width: 106 },
            C::Rounder { width: 53 },
            // adder: swap/align, mantissa add, normalize, round
            C::Logic {
                levels: 2,
                luts: 110,
            },
            C::Shifter {
                width: 57,
                max_distance: 57,
            },
            C::RippleAdder { width: 57 },
            C::Shifter {
                width: 57,
                max_distance: 57,
            },
            C::Rounder { width: 53 },
        ],
        parallel: vec![
            C::ExponentPath,
            C::ExponentPath,
            C::Logic {
                levels: 1,
                luts: 160,
            },
        ],
        cycles: 9,
    }
}

/// FloPoCo FPPipeline fused multiply-add: truncated DSP multiplier with
/// LUT correction, one wide merged addition, single normalize/round.
pub fn flopoco_fused() -> UnitDesign {
    UnitDesign {
        name: "FloPoCo FPPipeline",
        kind: UnitKind::FloPoCo,
        critical: vec![
            C::Logic {
                levels: 2,
                luts: 60,
            },
            C::DspMultiplier {
                a_bits: 53,
                b_bits: 53,
                style: MultStyle::Truncated,
            },
            // truncation correction logic in LUTs
            C::CsaTree { rows: 5, width: 66 },
            C::Shifter {
                width: 56,
                max_distance: 56,
            },
            // the wide fused addition is the critical component (cf. the
            // classic FMA's 161b adder, Sec. III-A)
            C::RippleAdder { width: 161 },
            C::Complement { width: 110 },
            C::Shifter {
                width: 110,
                max_distance: 110,
            },
            C::RippleAdder { width: 56 },
            C::Rounder { width: 53 },
        ],
        parallel: vec![
            C::Lza { width: 57 },
            C::ExponentPath,
            C::Logic {
                levels: 1,
                luts: 80,
            },
        ],
        cycles: 11,
    }
}

/// The paper's PCS-FMA (Fig. 9): multiplier with integrated rounding,
/// window compression, Carry Reduce, Zero Detector (critical, Sec. III-F),
/// 6:1 block mux.
pub fn pcs_fma() -> UnitDesign {
    let f = CsFmaFormat::PCS_55_ZD;
    let w = f.window_bits();
    UnitDesign {
        name: "PCS-FMA",
        kind: UnitKind::PcsFma,
        critical: vec![
            C::DspMultiplier {
                a_bits: f.mant_bits(),
                b_bits: 53,
                style: MultStyle::FullTiling,
            },
            // compress the DSP column outputs + rounding-correction row
            // (each of the 5 cascaded columns contributes a CS pair)
            C::CsaTree {
                rows: 10,
                width: f.product_bits(),
            },
            // window compression: product CS + aligned A CS + increment
            C::CsaTree { rows: 5, width: w },
            // "the Carry Reduce step is carried out in parallel with ZD,
            // the latter is now critical" (Sec. III-F)
            C::ZeroDetector {
                blocks: f.window_blocks(),
                block_bits: f.block_bits,
            },
            // mux moves the result+round CS pair (sum and carry wires)
            C::BlockMux {
                ways: f.mux_ways(),
                width: 2 * (f.mant_bits() + f.block_bits),
            },
        ],
        parallel: vec![
            C::SegmentedAdder {
                width: w,
                segment: 11,
            },
            // the aligner shifts the addend's CS pair into the window
            C::Shifter {
                width: 2 * f.mant_bits(),
                max_distance: w - f.mant_bits(),
            },
            C::Rounder {
                width: f.block_bits,
            },
            C::Rounder {
                width: f.block_bits,
            },
            C::ExponentPath,
            C::Logic {
                levels: 1,
                luts: 180,
            },
        ],
        cycles: 5,
    }
}

/// The paper's FCS-FMA (Fig. 11): DSP pre-adders fold the CS→binary
/// conversion of `C_M` into the multiplier; no Carry Reduce; early LZA
/// off the critical path; 11:1 mux.
pub fn fcs_fma() -> UnitDesign {
    let f = CsFmaFormat::FCS_29_LZA;
    let w = f.window_bits();
    UnitDesign {
        name: "FCS-FMA",
        kind: UnitKind::FcsFma,
        critical: vec![
            C::DspMultiplier {
                a_bits: f.mant_bits(),
                b_bits: 53,
                style: MultStyle::PreAdded { chunk: 23 },
            },
            C::CsaTree {
                rows: 8,
                width: f.product_bits(),
            },
            C::CsaTree { rows: 5, width: w },
            // the "more complex multiplexer" (11:1 over the CS pair)
            C::BlockMux {
                ways: f.mux_ways(),
                width: 2 * (f.mant_bits() + f.block_bits),
            },
        ],
        parallel: vec![
            C::Shifter {
                width: 2 * f.mant_bits(),
                max_distance: w - f.mant_bits(),
            },
            C::Lza {
                width: f.mant_bits(),
            },
            C::Lza {
                width: f.mant_bits(),
            },
            C::Rounder {
                width: f.block_bits,
            },
            C::Rounder {
                width: f.block_bits,
            },
            C::ExponentPath,
            C::Logic {
                levels: 1,
                luts: 150,
            },
        ],
        cycles: 3,
    }
}

/// All four Table I designs in row order.
///
/// ```
/// use csfma_fabric::{all_units, Virtex6};
/// let reports: Vec<_> = all_units()
///     .iter()
///     .map(|u| u.synthesize(&Virtex6::SPEED_GRADE_1))
///     .collect();
/// // the FCS-FMA needs only 3 cycles and 12 DSPs (Table I)
/// assert_eq!((reports[3].cycles, reports[3].dsps), (3, 12));
/// ```
pub fn all_units() -> Vec<UnitDesign> {
    vec![coregen_muladd(), flopoco_fused(), pcs_fma(), fcs_fma()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsp_counts_match_table1() {
        let v = Virtex6::SPEED_GRADE_1;
        let reports: Vec<_> = all_units().iter().map(|u| u.synthesize(&v)).collect();
        assert_eq!(reports[0].dsps, 13, "CoreGen");
        assert_eq!(reports[1].dsps, 7, "FloPoCo");
        assert_eq!(reports[2].dsps, 21, "PCS");
        assert_eq!(reports[3].dsps, 12, "FCS");
    }

    #[test]
    fn cycle_counts_match_table1() {
        let v = Virtex6::SPEED_GRADE_1;
        let cycles: Vec<_> = all_units()
            .iter()
            .map(|u| u.synthesize(&v).cycles)
            .collect();
        assert_eq!(cycles, vec![9, 11, 5, 3]);
    }

    #[test]
    fn synthesis_calibration_against_table1() {
        // Every modeled fMax must land within 15% of the paper's
        // post-layout number, and the orderings must be exact.
        let v = Virtex6::SPEED_GRADE_1;
        let paper_fmax = [244.0, 190.0, 231.0, 211.0];
        let paper_luts = [1253.0, 1508.0, 5832.0, 4685.0];
        let reports: Vec<_> = all_units().iter().map(|u| u.synthesize(&v)).collect();
        for (r, (&pf, &pl)) in reports.iter().zip(paper_fmax.iter().zip(paper_luts.iter())) {
            let fmax_err = (r.fmax_mhz - pf).abs() / pf;
            assert!(
                fmax_err < 0.15,
                "{}: fMax {:.0} vs paper {:.0}",
                r.name,
                r.fmax_mhz,
                pf
            );
            let lut_err = (r.luts as f64 - pl).abs() / pl;
            assert!(
                lut_err < 0.30,
                "{}: LUTs {} vs paper {}",
                r.name,
                r.luts,
                pl
            );
        }
        // shape: all units clear 200 MHz except FloPoCo
        assert!(reports[1].fmax_mhz < 200.0);
        for i in [0usize, 2, 3] {
            assert!(reports[i].fmax_mhz >= 200.0, "{}", reports[i].name);
        }
        // shape: our units need more LUTs than both competitors
        assert!(reports[2].luts > reports[0].luts && reports[2].luts > reports[1].luts);
        assert!(reports[3].luts > reports[0].luts && reports[3].luts > reports[1].luts);
        // shape: FCS beats PCS in area thanks to the pre-adders
        assert!(reports[3].luts < reports[2].luts);
    }

    #[test]
    fn fig13_latency_ordering() {
        // Fig. 13: latency = cycles x min clock period; FCS ~2.5x and PCS
        // ~1.7x faster than the best competitor
        let v = Virtex6::SPEED_GRADE_1;
        let lat: Vec<f64> = all_units()
            .iter()
            .map(|u| u.synthesize(&v).latency_ns())
            .collect();
        let best_competitor = lat[0].min(lat[1]);
        let pcs_speedup = best_competitor / lat[2];
        let fcs_speedup = best_competitor / lat[3];
        assert!(
            (1.4..=2.1).contains(&pcs_speedup),
            "PCS speedup {pcs_speedup:.2} (paper ~1.7x)"
        );
        assert!(
            (2.0..=3.0).contains(&fcs_speedup),
            "FCS speedup {fcs_speedup:.2} (paper ~2.5x)"
        );
    }
}

/// The CoreGen double-precision multiplier alone (5 cycles) — for
/// datapath-level area accounting of time-multiplexed operator pools.
pub fn coregen_multiplier() -> UnitDesign {
    UnitDesign {
        name: "CoreGen Mul",
        kind: UnitKind::CoreGen,
        critical: vec![
            C::Logic {
                levels: 1,
                luts: 120,
            },
            C::DspMultiplier {
                a_bits: 53,
                b_bits: 53,
                style: MultStyle::FullTiling,
            },
            C::Logic {
                levels: 2,
                luts: 90,
            },
            C::RippleAdder { width: 106 },
            C::Rounder { width: 53 },
        ],
        parallel: vec![
            C::ExponentPath,
            C::Logic {
                levels: 1,
                luts: 80,
            },
        ],
        cycles: 5,
    }
}

/// The CoreGen double-precision adder alone (4 cycles).
pub fn coregen_adder() -> UnitDesign {
    UnitDesign {
        name: "CoreGen Add",
        kind: UnitKind::CoreGen,
        critical: vec![
            C::Logic {
                levels: 2,
                luts: 110,
            },
            C::Shifter {
                width: 57,
                max_distance: 57,
            },
            C::RippleAdder { width: 57 },
            C::Shifter {
                width: 57,
                max_distance: 57,
            },
            C::Rounder { width: 53 },
        ],
        parallel: vec![
            C::ExponentPath,
            C::Logic {
                levels: 1,
                luts: 80,
            },
        ],
        cycles: 4,
    }
}

/// The `IEEE 754 → CS` conversion hardware the fusion pass inserts:
/// widening wiring plus a registered conditional complement (1 cycle).
pub fn converter_ieee_to_cs(f: &CsFmaFormat) -> UnitDesign {
    UnitDesign {
        name: "IEEE->CS",
        kind: if f.carry_spacing.is_some() {
            UnitKind::PcsFma
        } else {
            UnitKind::FcsFma
        },
        critical: vec![C::Complement {
            width: f.mant_bits(),
        }],
        parallel: vec![C::ExponentPath],
        cycles: 1,
    }
}

/// The `CS → IEEE 754` conversion: carry resolve, complement, normalize
/// at bit granularity, round (3 cycles) — the expensive direction.
pub fn converter_cs_to_ieee(f: &CsFmaFormat) -> UnitDesign {
    let m = f.mant_bits();
    UnitDesign {
        name: "CS->IEEE",
        kind: if f.carry_spacing.is_some() {
            UnitKind::PcsFma
        } else {
            UnitKind::FcsFma
        },
        critical: vec![
            C::RippleAdder { width: m }, // carry resolve
            // conditional complement as carry-select logic beside the adder
            C::Logic { levels: 1, luts: m },
            C::Shifter {
                width: m,
                max_distance: m,
            }, // single-bit normalize
            C::Rounder { width: 53 },
        ],
        parallel: vec![C::Lza { width: m }, C::ExponentPath],
        cycles: 3,
    }
}

#[cfg(test)]
mod operator_pool_tests {
    use super::*;

    #[test]
    fn single_operators_meet_timing() {
        let v = Virtex6::SPEED_GRADE_1;
        for u in [coregen_multiplier(), coregen_adder()] {
            let r = u.synthesize(&v);
            assert!(r.fmax_mhz >= 200.0, "{}: {:.0}", u.name, r.fmax_mhz);
        }
        for f in [CsFmaFormat::PCS_55_ZD, CsFmaFormat::FCS_29_LZA] {
            for u in [converter_ieee_to_cs(&f), converter_cs_to_ieee(&f)] {
                let r = u.synthesize(&v);
                assert!(
                    r.fmax_mhz >= 200.0,
                    "{} {}: {:.0}",
                    f.name,
                    u.name,
                    r.fmax_mhz
                );
            }
        }
    }

    #[test]
    fn conversion_direction_asymmetry() {
        // IEEE->CS is nearly free; CS->IEEE pays for resolve+normalize
        let v = Virtex6::SPEED_GRADE_1;
        let f = CsFmaFormat::PCS_55_ZD;
        let i2c = converter_ieee_to_cs(&f).synthesize(&v);
        let c2i = converter_cs_to_ieee(&f).synthesize(&v);
        assert!(c2i.luts > 2 * i2c.luts);
        assert!(c2i.cycles > i2c.cycles);
    }
}

/// Derive a unit design *from the format parameters* — the generalization
/// that makes the model an exploration tool rather than four hard-coded
/// rows: any `CsFmaFormat` (block size, carry spacing, normalizer, window
/// geometry) gets a synthesizable component chain built the same way the
/// paper's two design points were.
pub fn design_from_format(f: &CsFmaFormat, cycles: usize) -> UnitDesign {
    use csfma_core::Normalizer;
    let w = f.window_bits();
    let full_cs = f.carry_spacing.is_none();

    let mult_style = if full_cs {
        // pre-adders absorb the CS->binary conversion (Sec. III-H)
        MultStyle::PreAdded { chunk: 23 }
    } else {
        MultStyle::FullTiling
    };
    // DSP column outputs: one CS pair per multiplicand tile column
    let columns = if full_cs {
        f.mant_bits().div_ceil(23)
    } else {
        f.mant_bits().div_ceil(24)
    };
    let mut critical = vec![
        C::DspMultiplier {
            a_bits: f.mant_bits(),
            b_bits: f.b_sig_bits,
            style: mult_style,
        },
        C::CsaTree {
            rows: 2 * columns,
            width: f.product_bits(),
        },
        C::CsaTree { rows: 5, width: w },
    ];
    let mut parallel = vec![
        C::Shifter {
            width: 2 * f.mant_bits(),
            max_distance: w - f.mant_bits(),
        },
        C::Rounder {
            width: f.block_bits,
        },
        C::Rounder {
            width: f.block_bits,
        },
        C::ExponentPath,
        C::Logic {
            levels: 1,
            luts: 150,
        },
    ];
    if let Some(k) = f.carry_spacing {
        // Carry Reduce runs in parallel with the ZD (Sec. III-F)
        parallel.push(C::SegmentedAdder {
            width: w,
            segment: k,
        });
    }
    match f.normalizer {
        Normalizer::ZeroDetect => critical.push(C::ZeroDetector {
            blocks: f.window_blocks(),
            block_bits: f.block_bits,
        }),
        Normalizer::EarlyLza => {
            parallel.push(C::Lza {
                width: f.mant_bits(),
            });
            parallel.push(C::Lza {
                width: f.mant_bits(),
            });
        }
    }
    critical.push(C::BlockMux {
        ways: f.mux_ways(),
        width: 2 * (f.mant_bits() + f.block_bits),
    });
    UnitDesign {
        name: f.name,
        kind: UnitKind::PcsFma,
        critical,
        parallel,
        cycles,
    }
}

#[cfg(test)]
mod derived_design_tests {
    use super::*;
    use csfma_core::Normalizer;

    #[test]
    fn derived_designs_track_the_hand_built_ones() {
        // the generator must land near the curated Table I rows
        let v = Virtex6::SPEED_GRADE_1;
        let pcs_hand = pcs_fma().synthesize(&v);
        let pcs_gen = design_from_format(&CsFmaFormat::PCS_55_ZD, 5).synthesize(&v);
        assert_eq!(pcs_gen.dsps, pcs_hand.dsps);
        assert!((pcs_gen.fmax_mhz - pcs_hand.fmax_mhz).abs() / pcs_hand.fmax_mhz < 0.10);
        assert!((pcs_gen.luts as f64 - pcs_hand.luts as f64).abs() / (pcs_hand.luts as f64) < 0.25);

        let fcs_hand = fcs_fma().synthesize(&v);
        let fcs_gen = design_from_format(&CsFmaFormat::FCS_29_LZA, 3).synthesize(&v);
        assert_eq!(fcs_gen.dsps, fcs_hand.dsps);
        assert!((fcs_gen.fmax_mhz - fcs_hand.fmax_mhz).abs() / fcs_hand.fmax_mhz < 0.10);
    }

    #[test]
    fn exploration_trends_hold() {
        let v = Virtex6::SPEED_GRADE_1;
        // wider blocks shrink the mux but grow the mantissa datapath
        let mk = |bb: usize, spacing: usize| CsFmaFormat {
            name: "explore",
            block_bits: bb,
            mant_blocks: 2,
            left_blocks: 2,
            right_blocks: 2,
            carry_spacing: Some(spacing),
            normalizer: Normalizer::ZeroDetect,
            b_sig_bits: 53,
        };
        let narrow = design_from_format(&mk(44, 11), 5).synthesize(&v);
        let wide = design_from_format(&mk(66, 11), 5).synthesize(&v);
        assert!(wide.luts > narrow.luts, "wider mantissa costs LUTs");
        assert!(wide.dsps >= narrow.dsps, "wider C means more DSP tiles");
        // the early-LZA variant of the same geometry clears a higher fMax
        // at the same depth (the ZD priority chain leaves the critical path)
        let zd = design_from_format(&mk(55, 11), 4).synthesize(&v);
        let lza = design_from_format(
            &CsFmaFormat {
                normalizer: Normalizer::EarlyLza,
                ..mk(55, 11)
            },
            4,
        )
        .synthesize(&v);
        assert!(
            lza.fmax_mhz > zd.fmax_mhz,
            "{} vs {}",
            lza.fmax_mhz,
            zd.fmax_mhz
        );
    }
}
