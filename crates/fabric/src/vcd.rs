//! VCD (Value Change Dump) waveform export for behavioral traces.
//!
//! The paper's energy flow recorded post-layout switching activity "in
//! VCD/SAIF format using the Xilinx ISim simulator" (Sec. IV-C). The
//! behavioral traces captured by [`csfma_core::VecSink`] can be written
//! in the same industry format, so any waveform viewer (GTKWave etc.) can
//! inspect a unit's datapath activity cycle by cycle — and the toggle
//! counts the energy model integrates are exactly the value changes a
//! VCD consumer would see.

use csfma_bits::Bits;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Writes traces of named nets into VCD text.
#[derive(Debug, Default)]
pub struct VcdWriter {
    /// `net -> (width, [value per timestep])`; absent steps repeat the
    /// previous value.
    nets: BTreeMap<String, (usize, Vec<Option<Bits>>)>,
    steps: usize,
}

impl VcdWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the events of one operation (one timestep). Typically fed
    /// straight from a `VecSink` after each traced evaluation.
    pub fn record_step(&mut self, events: &[(&'static str, Bits)]) {
        let step = self.steps;
        for (net, value) in events {
            let entry = self
                .nets
                .entry(net.to_string())
                .or_insert_with(|| (value.width(), Vec::new()));
            entry.1.resize(step, None);
            entry.1.push(Some(value.clone()));
            entry.0 = entry.0.max(value.width());
        }
        self.steps += 1;
    }

    /// Number of recorded timesteps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Render the full VCD document (timescale 1 ns per step).
    pub fn render(&self, module: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date csfma behavioral trace $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {module} $end");
        let ids: Vec<String> = (0..self.nets.len())
            .map(|i| {
                // printable short identifiers: !, ", #, ... then two-char
                let a = (33 + (i % 94)) as u8 as char;
                if i < 94 {
                    a.to_string()
                } else {
                    format!("{}{}", a, (33 + (i / 94)) as u8 as char)
                }
            })
            .collect();
        for ((name, (width, _)), id) in self.nets.iter().zip(&ids) {
            let safe = name.replace('.', "_");
            let _ = writeln!(out, "$var wire {width} {id} {safe} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        let mut last: Vec<Option<Bits>> = vec![None; self.nets.len()];
        for step in 0..self.steps {
            let mut changes = String::new();
            for (idx, ((_, (width, values)), id)) in self.nets.iter().zip(&ids).enumerate() {
                if let Some(Some(v)) = values.get(step) {
                    if last[idx].as_ref() != Some(v) {
                        let mut bits = String::with_capacity(*width);
                        for pos in (0..*width).rev() {
                            bits.push(if v.bit(pos) { '1' } else { '0' });
                        }
                        let _ = writeln!(changes, "b{bits} {id}");
                        last[idx] = Some(v.clone());
                    }
                }
            }
            if !changes.is_empty() || step == 0 {
                let _ = writeln!(out, "#{step}");
                out.push_str(&changes);
            }
        }
        let _ = writeln!(out, "#{}", self.steps);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_changes() {
        let mut w = VcdWriter::new();
        w.record_step(&[("win.sum", Bits::from_u64(4, 0b1010))]);
        w.record_step(&[("win.sum", Bits::from_u64(4, 0b1010))]); // unchanged
        w.record_step(&[("win.sum", Bits::from_u64(4, 0b0110))]);
        let vcd = w.render("pcs_fma");
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$var wire 4 ! win_sum $end"));
        assert!(vcd.contains("b1010 !"));
        assert!(vcd.contains("b0110 !"));
        // the unchanged step emits no duplicate change record
        assert_eq!(vcd.matches("b1010 !").count(), 1);
        assert_eq!(w.steps(), 3);
    }

    #[test]
    fn real_unit_trace_dumps() {
        use csfma_core::{CsFmaFormat, CsFmaUnit, CsOperand, VecSink};
        use csfma_softfloat::{FpFormat, SoftFloat};
        let fmt = CsFmaFormat::PCS_55_ZD;
        let unit = CsFmaUnit::new(fmt);
        let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);
        let mut w = VcdWriter::new();
        let mut acc = CsOperand::from_ieee(&sf(1.0), fmt);
        for i in 0..5 {
            let mut sink = VecSink::default();
            let c = CsOperand::from_ieee(&sf(0.5 + i as f64), fmt);
            acc = unit.fma_traced(&acc, &sf(1.01), &c, &mut sink).0;
            w.record_step(&sink.events);
        }
        let vcd = w.render("pcs_fma");
        assert!(vcd.contains("win_sum"));
        assert!(vcd.contains("cr_carry"));
        assert!(vcd.lines().filter(|l| l.starts_with('#')).count() >= 5);
        // every change line carries a full-width binary vector
        for line in vcd.lines().filter(|l| l.starts_with('b')) {
            let bits = line[1..].split(' ').next().unwrap();
            assert!(bits.chars().all(|c| c == '0' || c == '1'));
            assert!(bits.len() >= 12);
        }
    }
}
