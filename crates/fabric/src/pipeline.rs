//! Greedy retiming of a component chain into pipeline stages.
//!
//! The paper's units were "manually pipelined to 200 MHz operation"
//! (Sec. IV-A); this module automates exactly that: walk the operator's
//! critical-path component chain, accumulate combinational delay, and cut
//! a register stage whenever the next component would exceed the target
//! period. `fMax` is then set by the slowest stage.

use crate::components::{Area, Component};
use crate::virtex6::Virtex6;

/// One pipelined operator implementation.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Number of pipeline stages (= operator latency in cycles).
    pub cycles: usize,
    /// Slowest stage delay including register overhead, in ns.
    pub critical_ns: f64,
    /// Achievable clock in MHz.
    pub fmax_mhz: f64,
    /// Combinational area of all components.
    pub area: Area,
    /// Per-stage combinational delays (diagnostics).
    pub stage_ns: Vec<f64>,
}

/// Pipeline the given critical-path component chain for `target_mhz`.
///
/// `parallel` components (off the critical path — e.g. the exponent
/// datapath, the LZA running beside the adder) contribute area but not
/// stage delay, exactly like their hardware counterparts.
pub fn pipeline_design(
    v: &Virtex6,
    critical_chain: &[Component],
    parallel: &[Component],
    target_mhz: f64,
) -> PipelineResult {
    let period = 1000.0 / target_mhz;
    let budget = (period - v.reg_overhead_ns).max(0.1);

    let mut stages: Vec<f64> = Vec::new();
    let mut current = 0.0f64;
    for comp in critical_chain {
        let d = comp.delay_ns(v);
        if current > 0.0 && current + d > budget {
            stages.push(current);
            current = 0.0;
        }
        current += d;
    }
    if current > 0.0 || stages.is_empty() {
        stages.push(current);
    }

    let worst = stages.iter().cloned().fold(0.0f64, f64::max) + v.reg_overhead_ns;
    let mut area = Area::default();
    for c in critical_chain.iter().chain(parallel) {
        area = area.plus(c.area());
    }
    // pipeline registers: one full-width rank per cut (approximated by the
    // widest component)
    let width_proxy = critical_chain
        .iter()
        .map(|c| c.area().luts)
        .max()
        .unwrap_or(0);
    area.regs += stages.len().saturating_sub(1) * width_proxy.min(512);

    PipelineResult {
        cycles: stages.len(),
        critical_ns: worst,
        fmax_mhz: 1000.0 / worst,
        area,
        stage_ns: stages,
    }
}

/// Pipeline the chain into exactly `cycles` balanced stages — the
/// "manually pipelined" mode of Sec. IV-A (vendor cores and the paper's
/// own units come with designer-chosen latencies). Uses the optimal
/// linear-partition DP: contiguous components, minimize the largest stage.
pub fn pipeline_fixed(
    v: &Virtex6,
    critical_chain: &[Component],
    parallel: &[Component],
    cycles: usize,
) -> PipelineResult {
    assert!(cycles >= 1);
    let delays: Vec<f64> = critical_chain.iter().map(|c| c.delay_ns(v)).collect();
    let n = delays.len();
    let k = cycles.min(n.max(1));

    // prefix sums + DP over (items, stages)
    let mut prefix = vec![0.0f64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + delays[i];
    }
    let seg = |i: usize, j: usize| prefix[j] - prefix[i];
    let mut dp = vec![vec![f64::INFINITY; k + 1]; n + 1];
    let mut cut = vec![vec![0usize; k + 1]; n + 1];
    dp[0][0] = 0.0;
    for j in 1..=k {
        for i in j..=n {
            for p in (j - 1)..i {
                let cand = dp[p][j - 1].max(seg(p, i));
                if cand < dp[i][j] {
                    dp[i][j] = cand;
                    cut[i][j] = p;
                }
            }
        }
    }
    // recover stage delays
    let mut stages = Vec::with_capacity(k);
    let mut i = n;
    for j in (1..=k).rev() {
        let p = cut[i][j];
        stages.push(seg(p, i));
        i = p;
    }
    stages.reverse();
    if stages.is_empty() {
        stages.push(0.0);
    }

    let worst = stages.iter().cloned().fold(0.0f64, f64::max) + v.reg_overhead_ns;
    let mut area = Area::default();
    for c in critical_chain.iter().chain(parallel) {
        area = area.plus(c.area());
    }
    let width_proxy = critical_chain
        .iter()
        .map(|c| c.area().luts)
        .max()
        .unwrap_or(0);
    area.regs += cycles.saturating_sub(1) * width_proxy.min(512);

    PipelineResult {
        cycles,
        critical_ns: worst,
        fmax_mhz: 1000.0 / worst,
        area,
        stage_ns: stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::Component as C;

    const V: Virtex6 = Virtex6::SPEED_GRADE_1;

    #[test]
    fn single_fast_component_is_one_stage() {
        let r = pipeline_design(&V, &[C::RippleAdder { width: 11 }], &[], 200.0);
        assert_eq!(r.cycles, 1);
        assert!(r.fmax_mhz > 200.0);
    }

    #[test]
    fn long_chain_gets_cut() {
        let chain = vec![
            C::RippleAdder { width: 64 },
            C::RippleAdder { width: 64 },
            C::RippleAdder { width: 64 },
            C::RippleAdder { width: 64 },
        ];
        let r = pipeline_design(&V, &chain, &[], 200.0);
        assert!(
            r.cycles >= 3,
            "4 x 2.55ns does not fit two 5ns stages: {}",
            r.cycles
        );
        assert!(r.fmax_mhz >= 200.0);
    }

    #[test]
    fn slow_monolith_limits_fmax() {
        // a single 385b adder cannot be cut: fMax ends up well under 200
        let r = pipeline_design(&V, &[C::RippleAdder { width: 385 }], &[], 200.0);
        assert_eq!(r.cycles, 1);
        assert!(r.fmax_mhz < 120.0);
    }

    #[test]
    fn fixed_partition_is_balanced() {
        let chain = vec![
            C::RippleAdder { width: 32 },
            C::RippleAdder { width: 32 },
            C::RippleAdder { width: 32 },
            C::RippleAdder { width: 32 },
        ];
        let r = pipeline_fixed(&V, &chain, &[], 2);
        assert_eq!(r.cycles, 2);
        // optimal 2-partition of 4 equal items: 2 + 2
        let d = C::RippleAdder { width: 32 }.delay_ns(&V);
        assert!((r.stage_ns[0] - 2.0 * d).abs() < 1e-9);
        assert!((r.stage_ns[1] - 2.0 * d).abs() < 1e-9);
    }

    #[test]
    fn fixed_more_stages_never_slower() {
        let chain = vec![
            C::DspMultiplier {
                a_bits: 53,
                b_bits: 53,
                style: crate::components::MultStyle::FullTiling,
            },
            C::RippleAdder { width: 106 },
            C::RippleAdder { width: 57 },
        ];
        let r2 = pipeline_fixed(&V, &chain, &[], 2);
        let r3 = pipeline_fixed(&V, &chain, &[], 3);
        assert!(r3.fmax_mhz >= r2.fmax_mhz);
    }

    #[test]
    fn stage_delays_partition_the_total() {
        // for both pipelining modes: stage delays sum to the chain total
        let chain = vec![
            C::RippleAdder { width: 32 },
            C::Shifter {
                width: 57,
                max_distance: 57,
            },
            C::RippleAdder { width: 106 },
            C::Rounder { width: 53 },
        ];
        let total: f64 = chain.iter().map(|c| c.delay_ns(&V)).sum();
        for r in [
            pipeline_design(&V, &chain, &[], 200.0),
            pipeline_fixed(&V, &chain, &[], 3),
        ] {
            let sum: f64 = r.stage_ns.iter().sum();
            assert!((sum - total).abs() < 1e-9, "{sum} vs {total}");
            // the worst stage is at least the average
            let worst = r.stage_ns.iter().cloned().fold(0.0, f64::max);
            assert!(worst + 1e-9 >= total / r.stage_ns.len() as f64);
        }
    }

    #[test]
    fn fixed_is_optimal_partition() {
        // DP result must never be worse than the greedy cut at the same
        // stage count
        let chain = vec![
            C::RippleAdder { width: 64 },
            C::Logic {
                levels: 3,
                luts: 10,
            },
            C::RippleAdder { width: 96 },
            C::Logic {
                levels: 1,
                luts: 10,
            },
            C::RippleAdder { width: 32 },
        ];
        let greedy = pipeline_design(&V, &chain, &[], 220.0);
        let fixed = pipeline_fixed(&V, &chain, &[], greedy.cycles);
        assert!(fixed.critical_ns <= greedy.critical_ns + 1e-9);
    }

    #[test]
    fn parallel_components_add_area_not_delay() {
        let base = pipeline_design(&V, &[C::RippleAdder { width: 32 }], &[], 200.0);
        let with = pipeline_design(
            &V,
            &[C::RippleAdder { width: 32 }],
            &[C::Lza { width: 120 }],
            200.0,
        );
        assert_eq!(base.cycles, with.cycles);
        assert!(with.area.luts > base.area.luts);
    }
}
