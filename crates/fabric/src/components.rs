//! Primitive datapath components with delay and area functions.

use crate::virtex6::Virtex6;
use csfma_carrysave::reduction_depth_3_2;

/// Area of a component, in the units Table I reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Area {
    /// 6-input LUTs.
    pub luts: usize,
    /// DSP48E1 blocks.
    pub dsps: usize,
    /// Flip-flops (not in Table I but tracked for the energy model).
    pub regs: usize,
}

impl Area {
    /// Component-wise sum.
    pub fn plus(self, other: Area) -> Area {
        Area {
            luts: self.luts + other.luts,
            dsps: self.dsps + other.dsps,
            regs: self.regs + other.regs,
        }
    }
}

/// How a mantissa multiplier maps onto DSP48E1 blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultStyle {
    /// Vendor-style full tiling of `a x b` into 24x17 tiles plus one
    /// correction DSP (CoreGen's 13-DSP double multiplier; the PCS unit's
    /// 110x53 comes out at 21).
    FullTiling,
    /// FloPoCo-style truncated tiling \[17\]\[24\]: fewer tiles, LUT
    /// correction logic (7 DSPs for double precision).
    Truncated,
    /// FCS style (Sec. III-H): the carry-save `C` input is pre-added in
    /// 23-bit chunks by the DSP48E1 pre-adders, each chunk feeding a
    /// column of `ceil(b/18)` DSPs — 12 for the 87c x 53 case.
    PreAdded {
        /// Chunk width handled by one pre-adder (23 bits, Sec. III-H).
        chunk: usize,
    },
}

/// Number of DSP48E1 blocks for an `a_bits x b_bits` multiplier.
pub fn dsp_count(a_bits: usize, b_bits: usize, style: MultStyle) -> usize {
    match style {
        MultStyle::FullTiling => a_bits.div_ceil(24) * b_bits.div_ceil(17) + 1,
        MultStyle::Truncated => {
            // keep only the tiles above the truncation line and patch the
            // rest in LUTs — the 7/12 ratio is calibrated to FloPoCo's
            // faithfully-rounded 53x53 multiplier (7 DSPs, Table I)
            let full = a_bits.div_ceil(24) * b_bits.div_ceil(17);
            (full * 7).div_ceil(12)
        }
        MultStyle::PreAdded { chunk } => a_bits.div_ceil(chunk) * b_bits.div_ceil(18),
    }
}

/// A primitive component of an operator datapath.
#[derive(Clone, Debug, PartialEq)]
pub enum Component {
    /// Carry-propagating (carry-chain) adder.
    RippleAdder { width: usize },
    /// PCS segment adders: `width/segment` independent short adders
    /// (constant time — this is the Carry Reduce step).
    SegmentedAdder { width: usize, segment: usize },
    /// Carry-save compression of `rows` addends at `width` bits.
    CsaTree { rows: usize, width: usize },
    /// DSP-based mantissa multiplier producing a CS result.
    DspMultiplier {
        a_bits: usize,
        b_bits: usize,
        style: MultStyle,
    },
    /// Variable-distance barrel shifter.
    Shifter { width: usize, max_distance: usize },
    /// N-to-1 block multiplexer.
    BlockMux { ways: usize, width: usize },
    /// Leading-zero anticipator (parallel prefix over `width` bits).
    Lza { width: usize },
    /// Block-granular zero detector over `blocks` blocks with its
    /// priority chain.
    ZeroDetector { blocks: usize, block_bits: usize },
    /// Rounding decision + increment injection.
    Rounder { width: usize },
    /// Conditional two's complement.
    Complement { width: usize },
    /// Exponent datapath (compare/add/adjust on ~12-bit quantities).
    ExponentPath,
    /// Fixed LUT logic of a given depth and size (glue, exception wires).
    Logic { levels: usize, luts: usize },
}

impl Component {
    /// Combinational delay on the device.
    pub fn delay_ns(&self, v: &Virtex6) -> f64 {
        match *self {
            Component::RippleAdder { width } => v.adder_ns(width),
            Component::SegmentedAdder { segment, .. } => v.adder_ns(segment),
            Component::CsaTree { rows, width } => {
                let levels = reduction_depth_3_2(rows.max(2));
                let route =
                    width.saturating_sub(v.route_free_bits) as f64 * v.route_per_bit_ns * 0.25;
                v.logic_ns(levels.max(1)) + route
            }
            Component::DspMultiplier { style, .. } => {
                let pre = match style {
                    MultStyle::PreAdded { .. } => v.dsp_preadder_ns,
                    _ => 0.0,
                };
                v.dsp_stage_ns + pre
            }
            Component::Shifter {
                width,
                max_distance,
            } => v.shifter_ns(width, max_distance),
            Component::BlockMux { ways, width } => {
                let route =
                    width.saturating_sub(v.route_free_bits) as f64 * v.route_per_bit_ns * 0.25;
                v.mux_ns(ways) + route
            }
            Component::Lza { width } => {
                // parallel-prefix: log2 levels over the indicator string
                let levels = (usize::BITS - width.max(2).leading_zeros()) as usize / 2 + 1;
                v.logic_ns(levels)
            }
            Component::ZeroDetector { blocks, block_bits } => {
                // per-block digit AND-trees (6-LUT reduction) in parallel,
                // then a priority chain across blocks (the part early LZA
                // removes from the critical path)
                let mut tree = 1;
                let mut cap = 6usize;
                while cap < block_bits {
                    cap *= 6;
                    tree += 1;
                }
                v.logic_ns(tree + blocks.div_ceil(4))
            }
            Component::Rounder { width } => v.adder_ns(width.min(64)) * 0.5 + v.logic_ns(1),
            Component::Complement { width } => v.adder_ns(width),
            Component::ExponentPath => v.adder_ns(13),
            Component::Logic { levels, .. } => v.logic_ns(levels),
        }
    }

    /// Silicon area.
    pub fn area(&self) -> Area {
        let a = |luts: usize| Area {
            luts,
            dsps: 0,
            regs: 0,
        };
        match *self {
            Component::RippleAdder { width } => a(width),
            Component::SegmentedAdder { width, .. } => a(width),
            Component::CsaTree { rows, width } => a(width * rows.saturating_sub(2).max(1)),
            Component::DspMultiplier {
                a_bits,
                b_bits,
                style,
            } => Area {
                // LUT glue for partial-product alignment & recombination
                luts: (a_bits + b_bits) * 2,
                dsps: dsp_count(a_bits, b_bits, style),
                regs: 0,
            },
            Component::Shifter {
                width,
                max_distance,
            } => {
                let dist_bits = (usize::BITS - max_distance.max(1).leading_zeros()) as usize;
                a(width * dist_bits.div_ceil(2))
            }
            Component::BlockMux { ways, width } => a(width * ways.div_ceil(3)),
            Component::Lza { width } => a(width * 2),
            Component::ZeroDetector { blocks, block_bits } => a(blocks * block_bits / 2),
            Component::Rounder { width } => a(width),
            Component::Complement { width } => a(width),
            Component::ExponentPath => a(26),
            Component::Logic { luts, .. } => a(luts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsp_tiling_matches_table1() {
        // CoreGen double-precision multiplier: 13 DSP48E1s
        assert_eq!(dsp_count(53, 53, MultStyle::FullTiling), 13);
        // PCS-FMA 110x53 multiplier: 21 DSPs (Table I)
        assert_eq!(dsp_count(110, 53, MultStyle::FullTiling), 21);
        // FCS-FMA with 23b pre-adder chunks on the 87c mantissa: 12 DSPs
        assert_eq!(dsp_count(87, 53, MultStyle::PreAdded { chunk: 23 }), 12);
        // FloPoCo truncated double multiplier: 7 DSPs
        assert_eq!(dsp_count(53, 53, MultStyle::Truncated), 7);
    }

    #[test]
    fn component_delays_ordered() {
        let v = Virtex6::SPEED_GRADE_1;
        let wide = Component::RippleAdder { width: 385 }.delay_ns(&v);
        let seg = Component::SegmentedAdder {
            width: 385,
            segment: 11,
        }
        .delay_ns(&v);
        assert!(
            seg < 2.0 && wide > 8.0,
            "segmenting must break the carry chain"
        );
        let shifter = Component::Shifter {
            width: 162,
            max_distance: 162,
        }
        .delay_ns(&v);
        let mux = Component::BlockMux {
            ways: 6,
            width: 110,
        }
        .delay_ns(&v);
        assert!(mux < shifter, "Fig. 7: block mux replaces the slow shifter");
    }

    #[test]
    fn areas_accumulate() {
        let t = Component::CsaTree {
            rows: 106,
            width: 163,
        }
        .area();
        assert!(
            t.luts > 5000,
            "the big CSA trees dominate LUT count: {}",
            t.luts
        );
        let sum = t.plus(Component::ExponentPath.area());
        assert_eq!(sum.luts, t.luts + 26);
    }
}
