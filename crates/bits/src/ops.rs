//! Arithmetic, logic and shift operations on [`Bits`].
//!
//! All arithmetic is wrapping modulo `2^width`, mirroring fixed-width
//! hardware registers. Mixed-width operands are rejected by assertion —
//! hardware adders have one width; widen explicitly with
//! [`Bits::zext`]/[`Bits::sext`] first.

use crate::bits::Bits;
use std::cmp::Ordering;
use std::ops::{BitAnd, BitOr, BitXor, Not};

impl Bits {
    /// Wrapping addition; returns the sum and the carry-out of the MSB.
    ///
    /// # Panics
    /// If widths differ.
    pub fn carrying_add(&self, rhs: &Bits) -> (Bits, bool) {
        assert_eq!(self.width, rhs.width, "carrying_add width mismatch");
        let mut out = Bits::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 | c2) as u64;
        }
        // Carry-out must be taken at bit `width`, not at the limb boundary.
        let rem = self.width % 64;
        let carry_out = if self.width == 0 {
            false
        } else if rem == 0 {
            carry == 1
        } else {
            let last = self.limbs.len() - 1;
            let c = out.limbs[last] >> rem != 0;
            out.mask_top();
            c
        };
        (out, carry_out)
    }

    /// Wrapping addition modulo `2^width`.
    pub fn wrapping_add(&self, rhs: &Bits) -> Bits {
        self.carrying_add(rhs).0
    }

    /// Wrapping subtraction modulo `2^width`.
    pub fn wrapping_sub(&self, rhs: &Bits) -> Bits {
        self.wrapping_add(&rhs.wrapping_neg())
    }

    /// Two's-complement negation modulo `2^width`.
    pub fn wrapping_neg(&self) -> Bits {
        let inv = !self;
        inv.wrapping_add(&Bits::from_u64(
            self.width,
            if self.width == 0 { 0 } else { 1 },
        ))
    }

    /// Add a single `u64` (wrapping).
    pub fn wrapping_add_u64(&self, v: u64) -> Bits {
        self.wrapping_add(&Bits::from_u64(self.width, v))
    }

    /// Schoolbook unsigned multiply producing a full-width product of
    /// `self.width + rhs.width` bits. Never overflows.
    pub fn mul_full(&self, rhs: &Bits) -> Bits {
        let out_width = self.width + rhs.width;
        let mut out = Bits::zero(out_width);
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let idx = i + j;
                if idx >= out.limbs.len() {
                    break;
                }
                let t = a as u128 * b as u128 + out.limbs[idx] as u128 + carry;
                out.limbs[idx] = t as u64;
                carry = t >> 64;
            }
            let mut idx = i + rhs.limbs.len();
            while carry != 0 && idx < out.limbs.len() {
                let t = out.limbs[idx] as u128 + carry;
                out.limbs[idx] = t as u64;
                carry = t >> 64;
                idx += 1;
            }
        }
        out.mask_top();
        out
    }

    /// Signed (two's complement) multiply producing `self.width + rhs.width`
    /// bits, computed as sign/magnitude around [`Bits::mul_full`].
    pub fn mul_full_signed(&self, rhs: &Bits) -> Bits {
        let neg = self.sign_bit() ^ rhs.sign_bit();
        let a = if self.sign_bit() {
            self.wrapping_neg()
        } else {
            self.clone()
        };
        let b = if rhs.sign_bit() {
            rhs.wrapping_neg()
        } else {
            rhs.clone()
        };
        let p = a.mul_full(&b);
        if neg {
            p.wrapping_neg()
        } else {
            p
        }
    }

    /// Logical shift left by `n`, dropping bits shifted past `width`.
    pub fn shl(&self, n: usize) -> Bits {
        if n >= self.width {
            return Bits::zero(self.width);
        }
        let mut out = Bits::zero(self.width);
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        for i in (0..self.limbs.len()).rev() {
            let mut v = 0u64;
            if i >= limb_shift {
                v = self.limbs[i - limb_shift] << bit_shift;
                if bit_shift != 0 && i > limb_shift {
                    v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
                }
            }
            out.limbs[i] = v;
        }
        out.mask_top();
        out
    }

    /// Logical shift right by `n`, filling with zeros.
    pub fn shr(&self, n: usize) -> Bits {
        if n >= self.width {
            return Bits::zero(self.width);
        }
        let mut out = Bits::zero(self.width);
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        for i in 0..self.limbs.len() {
            let src = i + limb_shift;
            let mut v = 0u64;
            if src < self.limbs.len() {
                v = self.limbs[src] >> bit_shift;
                if bit_shift != 0 && src + 1 < self.limbs.len() {
                    v |= self.limbs[src + 1] << (64 - bit_shift);
                }
            }
            out.limbs[i] = v;
        }
        out
    }

    /// Arithmetic shift right by `n`, replicating the sign bit.
    pub fn sar(&self, n: usize) -> Bits {
        if !self.sign_bit() {
            return self.shr(n);
        }
        if n >= self.width {
            return Bits::ones(self.width);
        }
        let mut out = self.shr(n);
        // fill the vacated top n bits with ones
        for pos in self.width - n..self.width {
            out.set_bit(pos, true);
        }
        out
    }

    /// Unsigned comparison.
    pub fn unsigned_cmp(&self, rhs: &Bits) -> Ordering {
        assert_eq!(self.width, rhs.width, "unsigned_cmp width mismatch");
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&rhs.limbs[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Two's-complement signed comparison.
    pub fn signed_cmp(&self, rhs: &Bits) -> Ordering {
        assert_eq!(self.width, rhs.width, "signed_cmp width mismatch");
        match (self.sign_bit(), rhs.sign_bit()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.unsigned_cmp(rhs),
        }
    }
}

impl Not for &Bits {
    type Output = Bits;
    fn not(self) -> Bits {
        let mut out = Bits {
            width: self.width,
            limbs: self.limbs.iter().map(|l| !l).collect(),
        };
        out.mask_top();
        out
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for &Bits {
            type Output = Bits;
            fn $fn(self, rhs: &Bits) -> Bits {
                assert_eq!(self.width, rhs.width, concat!(stringify!($fn), " width mismatch"));
                Bits {
                    width: self.width,
                    limbs: self
                        .limbs
                        .iter()
                        .zip(rhs.limbs.iter())
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }
    };
}

impl_bitop!(BitAnd, bitand, &);
impl_bitop!(BitOr, bitor, |);
impl_bitop!(BitXor, bitxor, ^);
