//! # csfma-bits — wide two's-complement bit vectors
//!
//! The arithmetic units in this workspace operate on datapaths that are far
//! wider than any machine integer: the PCS-FMA carries a 385-bit internal
//! adder, the FCS-FMA a 377-digit alignment window. This crate provides the
//! [`Bits`] type — an arbitrary-width bit vector stored as little-endian
//! `u64` limbs — together with the wrapping two's-complement arithmetic,
//! shifting, slicing and counting operations the behavioral hardware models
//! are built from.
//!
//! Semantics follow hardware registers: every value has an explicit `width`,
//! all arithmetic wraps modulo `2^width`, and signedness is a property of
//! the *operation* (e.g. [`Bits::sext`], [`Bits::signed_cmp`]), not of the
//! value.

mod bits;
mod ops;
mod slice;

pub use bits::Bits;

#[cfg(test)]
mod tests;
