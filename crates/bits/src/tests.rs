//! Unit and property tests for `Bits`, checked against `u128`/`i128`
//! reference semantics.

use crate::Bits;
use proptest::prelude::*;
use std::cmp::Ordering;

#[test]
fn zero_and_ones_basics() {
    let z = Bits::zero(385);
    assert!(z.is_zero());
    assert_eq!(z.width(), 385);
    assert_eq!(z.leading_zeros(), 385);
    let o = Bits::ones(385);
    assert!(o.is_all_ones());
    assert_eq!(o.leading_ones(), 385);
    assert_eq!(o.count_ones(), 385);
}

#[test]
fn from_u64_truncates() {
    let b = Bits::from_u64(4, 0xff);
    assert_eq!(b.to_u64(), 0xf);
}

#[test]
fn from_i128_negative_wide() {
    let b = Bits::from_i128(200, -5);
    assert!(b.sign_bit());
    assert_eq!(b.to_i128(), -5);
    assert_eq!(b.leading_ones(), 197); // -5 = ...11111011
}

#[test]
fn one_hot_positions() {
    let b = Bits::one_hot(130, 128);
    assert!(b.bit(128));
    assert_eq!(b.count_ones(), 1);
    assert_eq!(b.leading_zeros(), 1);
}

#[test]
#[should_panic]
fn one_hot_out_of_range_panics() {
    let _ = Bits::one_hot(8, 8);
}

#[test]
fn from_bin_str_msb_first() {
    let b = Bits::from_bin_str(8, "1010_0001");
    assert_eq!(b.to_u64(), 0xA1);
}

#[test]
fn carrying_add_carry_out_at_width() {
    // Carry must be observed at the logical width, not at the limb edge.
    let a = Bits::from_u64(5, 0b11111);
    let b = Bits::from_u64(5, 1);
    let (sum, carry) = a.carrying_add(&b);
    assert!(sum.is_zero());
    assert!(carry);
}

#[test]
fn carrying_add_carry_out_at_limb_boundary() {
    let a = Bits::ones(64);
    let b = Bits::from_u64(64, 1);
    let (sum, carry) = a.carrying_add(&b);
    assert!(sum.is_zero());
    assert!(carry);
}

#[test]
fn neg_is_additive_inverse() {
    let a = Bits::from_u128(100, 0xdead_beef_cafe);
    let s = a.wrapping_add(&a.wrapping_neg());
    assert!(s.is_zero());
}

#[test]
fn mul_full_never_wraps() {
    let a = Bits::ones(53);
    let b = Bits::ones(110);
    let p = a.mul_full(&b);
    assert_eq!(p.width(), 163);
    // (2^53-1)(2^110-1) = 2^163 - 2^110 - 2^53 + 1
    let expect = Bits::one_hot(164, 163)
        .wrapping_sub(&Bits::one_hot(164, 110))
        .wrapping_sub(&Bits::one_hot(164, 53))
        .wrapping_add(&Bits::from_u64(164, 1));
    assert_eq!(p.zext(164), expect);
}

#[test]
fn mul_full_signed_signs() {
    let a = Bits::from_i128(60, -7);
    let b = Bits::from_i128(60, 9);
    assert_eq!(a.mul_full_signed(&b).to_i128(), -63);
    let c = Bits::from_i128(60, -7);
    let d = Bits::from_i128(60, -9);
    assert_eq!(c.mul_full_signed(&d).to_i128(), 63);
}

#[test]
fn shifts_cross_limbs() {
    let a = Bits::one_hot(200, 0);
    assert!(a.shl(150).bit(150));
    assert!(a.shl(150).shr(150).bit(0));
    assert!(a.shl(200).is_zero());
    assert!(a.shr(1).is_zero());
}

#[test]
fn sar_fills_sign() {
    let a = Bits::from_i128(100, -256);
    assert_eq!(a.sar(4).to_i128(), -16);
    assert_eq!(a.sar(100).to_i128(), -1); // saturates to all-ones
    let p = Bits::from_i128(100, 256);
    assert_eq!(p.sar(4).to_i128(), 16);
}

#[test]
fn redundant_sign_bits_examples() {
    assert_eq!(Bits::from_i128(8, -1).redundant_sign_bits(), 7);
    assert_eq!(Bits::from_i128(8, 1).redundant_sign_bits(), 6);
    assert_eq!(Bits::from_i128(8, -128).redundant_sign_bits(), 0);
    assert_eq!(Bits::zero(8).redundant_sign_bits(), 7);
}

#[test]
fn display_groups_bytes() {
    let b = Bits::from_u64(16, 0xA1B2);
    assert_eq!(format!("{b}"), "10100001_10110010");
}

#[test]
fn zero_width_value_is_inert() {
    let z = Bits::zero(0);
    assert!(z.is_zero());
    assert!(!z.sign_bit());
    let z2 = z.wrapping_add(&Bits::zero(0));
    assert!(z2.is_zero());
    assert_eq!(z.concat(&Bits::from_u64(4, 5)).to_u64(), 5);
}

fn bits_of_u128(w: usize, v: u128) -> Bits {
    Bits::from_u128(w, v)
}

fn mask(w: usize) -> u128 {
    if w >= 128 {
        !0
    } else {
        (1u128 << w) - 1
    }
}

proptest! {
    #[test]
    fn prop_add_matches_u128(w in 1usize..=120, a: u128, b: u128) {
        let a = a & mask(w);
        let b = b & mask(w);
        let got = bits_of_u128(w, a).wrapping_add(&bits_of_u128(w, b));
        prop_assert_eq!(got.to_u128(), a.wrapping_add(b) & mask(w));
    }

    #[test]
    fn prop_sub_matches_u128(w in 1usize..=120, a: u128, b: u128) {
        let a = a & mask(w);
        let b = b & mask(w);
        let got = bits_of_u128(w, a).wrapping_sub(&bits_of_u128(w, b));
        prop_assert_eq!(got.to_u128(), a.wrapping_sub(b) & mask(w));
    }

    #[test]
    fn prop_mul_matches_u128(w in 1usize..=60, a: u64, b: u64) {
        let a = (a as u128) & mask(w);
        let b = (b as u128) & mask(w);
        let got = bits_of_u128(w, a).mul_full(&bits_of_u128(w, b));
        prop_assert_eq!(got.to_u128(), a * b);
    }

    #[test]
    fn prop_shl_matches_u128(w in 1usize..=120, a: u128, n in 0usize..130) {
        let a = a & mask(w);
        let expect = if n >= w { 0 } else { (a << n) & mask(w) };
        prop_assert_eq!(bits_of_u128(w, a).shl(n).to_u128(), expect);
    }

    #[test]
    fn prop_shr_matches_u128(w in 1usize..=120, a: u128, n in 0usize..130) {
        let a = a & mask(w);
        let expect = if n >= w { 0 } else { a >> n };
        prop_assert_eq!(bits_of_u128(w, a).shr(n).to_u128(), expect);
    }

    #[test]
    fn prop_sar_matches_i128(w in 2usize..=120, a: i128, n in 0usize..130) {
        let v = Bits::from_i128(w, a);
        let signed = v.to_i128();
        let expect = if n >= w {
            if signed < 0 { -1 } else { 0 }
        } else {
            signed >> n
        };
        prop_assert_eq!(v.sar(n).to_i128(), expect);
    }

    #[test]
    fn prop_cmp_matches(w in 1usize..=120, a: u128, b: u128) {
        let a = a & mask(w);
        let b = b & mask(w);
        prop_assert_eq!(bits_of_u128(w, a).unsigned_cmp(&bits_of_u128(w, b)), a.cmp(&b));
    }

    #[test]
    fn prop_signed_cmp_matches(w in 2usize..=120, a: i128, b: i128) {
        let va = Bits::from_i128(w, a);
        let vb = Bits::from_i128(w, b);
        let expect: Ordering = va.to_i128().cmp(&vb.to_i128());
        prop_assert_eq!(va.signed_cmp(&vb), expect);
    }

    #[test]
    fn prop_sext_preserves_signed_value(w in 2usize..=100, a: i128, extra in 0usize..200) {
        let v = Bits::from_i128(w, a);
        prop_assert_eq!(v.sext(w + extra).to_i128(), v.to_i128());
    }

    #[test]
    fn prop_zext_preserves_unsigned_value(w in 1usize..=120, a: u128, extra in 0usize..200) {
        let a = a & mask(w);
        let v = bits_of_u128(w, a);
        prop_assert_eq!(v.zext(w + extra).to_u128(), a);
    }

    #[test]
    fn prop_leading_zeros_matches(w in 1usize..=120, a: u128) {
        let a = a & mask(w);
        let expect = if a == 0 { w } else { w - (128 - a.leading_zeros() as usize) };
        prop_assert_eq!(bits_of_u128(w, a).leading_zeros(), expect);
    }

    #[test]
    fn prop_blocks_roundtrip(bw in 1usize..=60, count in 1usize..=6, seed: u64) {
        let w = bw * count;
        let mut v = Bits::zero(w);
        let mut s = seed;
        for i in 0..w {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.set_bit(i, s >> 63 == 1);
        }
        let blocks = v.blocks(bw, count);
        prop_assert_eq!(Bits::from_blocks(&blocks), v);
    }

    #[test]
    fn prop_mul_signed_matches_i128(a in -(1i128<<50)..(1i128<<50), b in -(1i128<<50)..(1i128<<50)) {
        let va = Bits::from_i128(55, a);
        let vb = Bits::from_i128(55, b);
        prop_assert_eq!(va.mul_full_signed(&vb).to_i128(), a * b);
    }
}

mod bitops_and_formatting {
    use super::*;

    #[test]
    fn bit_logic_ops() {
        let a = Bits::from_u64(8, 0b1100_1010);
        let b = Bits::from_u64(8, 0b1010_0110);
        assert_eq!((&a & &b).to_u64(), 0b1000_0010);
        assert_eq!((&a | &b).to_u64(), 0b1110_1110);
        assert_eq!((&a ^ &b).to_u64(), 0b0110_1100);
        assert_eq!((!&a).to_u64(), 0b0011_0101);
    }

    #[test]
    fn debug_format_hex() {
        let b = Bits::from_u128(72, 0xAB_1234_5678_9ABC_DEF0);
        let s = format!("{b:?}");
        assert!(s.starts_with("Bits<72>(0x"), "{s}");
        assert!(s.contains("ab"), "{s}");
    }

    #[test]
    fn carrying_add_mixed_widths_panics() {
        let a = Bits::zero(8);
        let b = Bits::zero(9);
        assert!(std::panic::catch_unwind(|| a.carrying_add(&b)).is_err());
    }

    #[test]
    fn from_bin_str_rejects_garbage() {
        assert!(std::panic::catch_unwind(|| Bits::from_bin_str(4, "10x1")).is_err());
        assert!(std::panic::catch_unwind(|| Bits::from_bin_str(2, "101")).is_err());
    }

    proptest! {
        #[test]
        fn prop_xor_is_add_without_carry(w in 1usize..100, a: u128, b: u128) {
            let m = if w >= 128 { !0u128 } else { (1u128 << w) - 1 };
            let (a, b) = (a & m, b & m);
            // a + b == (a ^ b) + 2*(a & b): the identity every CSA uses
            let x = Bits::from_u128(w, a);
            let y = Bits::from_u128(w, b);
            let sum = x.wrapping_add(&y);
            let via_csa = (&x ^ &y).wrapping_add(&(&x & &y).shl(1));
            prop_assert_eq!(sum, via_csa);
        }

        #[test]
        fn prop_not_not_identity(w in 1usize..150, a: u128) {
            let m = if w >= 128 { !0u128 } else { (1u128 << w) - 1 };
            let x = Bits::from_u128(w, a & m);
            prop_assert_eq!(!&(!&x), x);
        }

        #[test]
        fn prop_display_parse_roundtrip(w in 1usize..80, a: u128) {
            let m = if w >= 128 { !0u128 } else { (1u128 << w) - 1 };
            let x = Bits::from_u128(w, a & m);
            let s = format!("{}", x);
            let back = Bits::from_bin_str(w, &s);
            prop_assert_eq!(back, x);
        }
    }
}
