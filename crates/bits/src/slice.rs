//! Width changes, slicing, block decomposition and concatenation.
//!
//! The block-oriented normalization of the P/FCS-FMA units (Sec. III-D of
//! the paper) works on fixed-size mantissa blocks; [`Bits::blocks`] and
//! [`Bits::concat`] are the behavioral counterparts of that wiring.

use crate::bits::Bits;

impl Bits {
    /// Zero-extend or truncate to `new_width` (unsigned resize).
    pub fn zext(&self, new_width: usize) -> Bits {
        let mut out = Bits::zero(new_width);
        let n = out.limbs.len().min(self.limbs.len());
        out.limbs[..n].copy_from_slice(&self.limbs[..n]);
        out.mask_top();
        out
    }

    /// Sign-extend or truncate to `new_width` (two's-complement resize).
    pub fn sext(&self, new_width: usize) -> Bits {
        if new_width <= self.width || !self.sign_bit() {
            return self.zext(new_width);
        }
        let mut out = Bits::ones(new_width);
        // copy the original limbs, then patch the partial top limb
        for i in 0..self.limbs.len() {
            out.limbs[i] = self.limbs[i];
        }
        let rem = self.width % 64;
        if rem != 0 {
            let last = (self.width - 1) / 64;
            out.limbs[last] |= !0u64 << rem;
        }
        out.mask_top();
        out
    }

    /// Truncate to the low `new_width` bits.
    pub fn trunc(&self, new_width: usize) -> Bits {
        assert!(new_width <= self.width, "trunc cannot widen");
        self.zext(new_width)
    }

    /// Extract bits `[lo, lo + len)` (weight `2^lo` becomes weight `2^0`).
    /// Bits beyond `width` read as zero.
    pub fn extract(&self, lo: usize, len: usize) -> Bits {
        self.shr(lo).zext(len)
    }

    /// Concatenate with `low`: `self` becomes the high part.
    /// Result width is `self.width + low.width`.
    pub fn concat(&self, low: &Bits) -> Bits {
        let w = self.width + low.width;
        let hi = self.zext(w).shl(low.width);
        let lo = low.zext(w);
        &hi | &lo
    }

    /// Split into `count` blocks of `block_width` bits, most significant
    /// block first. The value must be exactly `count * block_width` wide.
    ///
    /// # Panics
    /// If `width != count * block_width`.
    pub fn blocks(&self, block_width: usize, count: usize) -> Vec<Bits> {
        assert_eq!(
            self.width,
            block_width * count,
            "blocks: width {} != {count} x {block_width}",
            self.width
        );
        (0..count)
            .rev()
            .map(|i| self.extract(i * block_width, block_width))
            .collect()
    }

    /// Reassemble from blocks (most significant first), inverse of
    /// [`Bits::blocks`].
    pub fn from_blocks(blocks: &[Bits]) -> Bits {
        let mut out = Bits::zero(0);
        for b in blocks {
            out = out.concat(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_roundtrip() {
        let v = Bits::from_u128(110, 0x1234_5678_9abc_def0_1122_3344u128);
        let blocks = v.blocks(55, 2);
        assert_eq!(blocks.len(), 2);
        assert_eq!(Bits::from_blocks(&blocks), v);
    }

    #[test]
    fn extract_past_width_reads_zero() {
        let v = Bits::from_u64(8, 0xff);
        assert_eq!(v.extract(4, 8).to_u64(), 0x0f);
    }

    #[test]
    fn concat_orders_high_low() {
        let hi = Bits::from_u64(4, 0xA);
        let lo = Bits::from_u64(8, 0x55);
        assert_eq!(hi.concat(&lo).to_u64(), 0xA55);
    }

    #[test]
    fn sext_partial_limb() {
        let v = Bits::from_u64(5, 0b10000); // -16 in 5 bits
        assert_eq!(v.sext(64).to_i128(), -16);
        assert_eq!(v.sext(130).to_i128(), -16);
    }
}
