//! Core [`Bits`] type: construction, access, conversion, formatting.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Limbs kept inline before spilling to the heap. 8 limbs = 512 bits,
/// which covers every width the binary64 carry-save datapaths touch
/// (the widest is the 440-bit multiplier output plus compressor
/// headroom); wider values still work, they just allocate.
const INLINE_LIMBS: usize = 8;

/// Little-endian limb storage with a small-vector layout: values up to
/// `INLINE_LIMBS` limbs live inline (no heap traffic — the batch
/// engine's hot loops clone and rebuild `Bits` millions of times), wider
/// values spill to a `Vec`.
#[derive(Clone)]
pub(crate) enum LimbVec {
    Inline { len: u8, buf: [u64; INLINE_LIMBS] },
    Heap(Vec<u64>),
}

impl LimbVec {
    #[inline]
    pub(crate) fn zeros(n: usize) -> Self {
        if n <= INLINE_LIMBS {
            LimbVec::Inline {
                len: n as u8,
                buf: [0; INLINE_LIMBS],
            }
        } else {
            LimbVec::Heap(vec![0; n])
        }
    }

    #[inline]
    pub(crate) fn filled(n: usize, v: u64) -> Self {
        if n <= INLINE_LIMBS {
            LimbVec::Inline {
                len: n as u8,
                buf: [v; INLINE_LIMBS],
            }
        } else {
            LimbVec::Heap(vec![v; n])
        }
    }
}

impl Deref for LimbVec {
    type Target = [u64];
    #[inline]
    fn deref(&self) -> &[u64] {
        match self {
            LimbVec::Inline { len, buf } => &buf[..*len as usize],
            LimbVec::Heap(v) => v,
        }
    }
}

impl DerefMut for LimbVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u64] {
        match self {
            LimbVec::Inline { len, buf } => &mut buf[..*len as usize],
            LimbVec::Heap(v) => v,
        }
    }
}

impl PartialEq for LimbVec {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for LimbVec {}

impl std::hash::Hash for LimbVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl fmt::Debug for LimbVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl FromIterator<u64> for LimbVec {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut it = iter.into_iter();
        let mut buf = [0u64; INLINE_LIMBS];
        let mut len = 0usize;
        for v in it.by_ref() {
            if len < INLINE_LIMBS {
                buf[len] = v;
                len += 1;
            } else {
                let mut vec = Vec::with_capacity(len + 1 + it.size_hint().0);
                vec.extend_from_slice(&buf);
                vec.push(v);
                vec.extend(it);
                return LimbVec::Heap(vec);
            }
        }
        LimbVec::Inline {
            len: len as u8,
            buf,
        }
    }
}

/// An arbitrary-width bit vector with two's-complement semantics.
///
/// ```
/// use csfma_bits::Bits;
/// // a 385-bit adder input, as in the PCS-FMA window
/// let a = Bits::one_hot(385, 384);
/// let b = Bits::from_u64(385, 1);
/// let (sum, carry_out) = a.carrying_add(&b);
/// assert!(sum.bit(384) && sum.bit(0) && !carry_out);
/// assert_eq!(sum.leading_zeros(), 0);
/// ```
///
/// Stored as little-endian `u64` limbs. Invariants:
/// * `limbs.len() == max(1, ceil(width / 64))`,
/// * all bits at positions `>= width` are zero.
///
/// A zero-width `Bits` is permitted (it models an empty wire bundle) and
/// always has value 0 with a single all-zero limb.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    pub(crate) width: usize,
    pub(crate) limbs: LimbVec,
}

pub(crate) fn limbs_for(width: usize) -> usize {
    width.div_ceil(64).max(1)
}

impl Bits {
    /// All-zero value of the given width.
    pub fn zero(width: usize) -> Self {
        Bits {
            width,
            limbs: LimbVec::zeros(limbs_for(width)),
        }
    }

    /// All-ones value of the given width (i.e. `2^width - 1`, or `-1` signed).
    pub fn ones(width: usize) -> Self {
        let mut b = Bits {
            width,
            limbs: LimbVec::filled(limbs_for(width), !0u64),
        };
        b.mask_top();
        b
    }

    /// Value with a single `1` at position `pos` (weight `2^pos`).
    ///
    /// # Panics
    /// If `pos >= width`.
    pub fn one_hot(width: usize, pos: usize) -> Self {
        assert!(pos < width, "one_hot position {pos} out of width {width}");
        let mut b = Bits::zero(width);
        b.set_bit(pos, true);
        b
    }

    /// Build from a `u64`, truncating to `width`.
    pub fn from_u64(width: usize, value: u64) -> Self {
        let mut b = Bits::zero(width);
        b.limbs[0] = value;
        b.mask_top();
        b
    }

    /// Build from a `u128`, truncating to `width`.
    pub fn from_u128(width: usize, value: u128) -> Self {
        let mut b = Bits::zero(width);
        b.limbs[0] = value as u64;
        if b.limbs.len() > 1 {
            b.limbs[1] = (value >> 64) as u64;
        }
        b.mask_top();
        b
    }

    /// Build from an `i128` in two's complement, truncating to `width`.
    pub fn from_i128(width: usize, value: i128) -> Self {
        let mut b = Bits::zero(width);
        let uv = value as u128;
        b.limbs[0] = uv as u64;
        if b.limbs.len() > 1 {
            b.limbs[1] = (uv >> 64) as u64;
        }
        // sign-extend into higher limbs
        if value < 0 {
            for l in b.limbs.iter_mut().skip(2) {
                *l = !0u64;
            }
        }
        b.mask_top();
        b
    }

    /// Build from little-endian limbs, truncating/padding to `width`.
    pub fn from_limbs(width: usize, limbs: &[u64]) -> Self {
        let mut b = Bits::zero(width);
        let n = b.limbs.len().min(limbs.len());
        b.limbs[..n].copy_from_slice(&limbs[..n]);
        b.mask_top();
        b
    }

    /// Parse from a binary string (MSB first); `_` separators are ignored.
    ///
    /// # Panics
    /// If the string contains characters other than `0`, `1`, `_`, or has
    /// more significant bits than `width`.
    pub fn from_bin_str(width: usize, s: &str) -> Self {
        let mut b = Bits::zero(width);
        let digits: Vec<bool> = s
            .chars()
            .filter(|&c| c != '_')
            .map(|c| match c {
                '0' => false,
                '1' => true,
                _ => panic!("invalid binary digit {c:?}"),
            })
            .collect();
        assert!(digits.len() <= width, "binary literal wider than {width}");
        for (i, &d) in digits.iter().rev().enumerate() {
            b.set_bit(i, d);
        }
        b
    }

    /// Bit width of this value.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Little-endian limb view.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Read the bit at `pos` (weight `2^pos`). Positions `>= width` read 0.
    #[inline]
    pub fn bit(&self, pos: usize) -> bool {
        if pos >= self.width {
            return false;
        }
        (self.limbs[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Set the bit at `pos` (weight `2^pos`).
    ///
    /// # Panics
    /// If `pos >= width`.
    #[inline]
    pub fn set_bit(&mut self, pos: usize, value: bool) {
        assert!(
            pos < self.width,
            "set_bit {pos} out of width {}",
            self.width
        );
        let limb = pos / 64;
        let off = pos % 64;
        if value {
            self.limbs[limb] |= 1u64 << off;
        } else {
            self.limbs[limb] &= !(1u64 << off);
        }
    }

    /// The most significant bit (the sign bit under two's complement).
    /// Zero-width values report `false`.
    #[inline]
    pub fn sign_bit(&self) -> bool {
        if self.width == 0 {
            false
        } else {
            self.bit(self.width - 1)
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// True iff every bit within `width` is one (i.e. `-1` signed).
    pub fn is_all_ones(&self) -> bool {
        if self.width == 0 {
            return false;
        }
        *self == Bits::ones(self.width)
    }

    /// Number of leading zero bits, counted from the MSB. Full width if zero.
    pub fn leading_zeros(&self) -> usize {
        // limb-at-a-time: bits above `width` are zero by invariant, so the
        // highest set bit of the highest nonzero limb is the answer
        for i in (0..self.limbs.len()).rev() {
            let l = self.limbs[i];
            if l != 0 {
                let pos = i * 64 + (63 - l.leading_zeros() as usize);
                return self.width - 1 - pos;
            }
        }
        self.width
    }

    /// Number of leading one bits, counted from the MSB.
    pub fn leading_ones(&self) -> usize {
        if self.width == 0 {
            return 0;
        }
        // complement within the width and find its highest set bit
        let rem = self.width % 64;
        for i in (0..self.limbs.len()).rev() {
            let mask = if rem != 0 && i == self.limbs.len() - 1 {
                (1u64 << rem) - 1
            } else {
                !0u64
            };
            let inv = !self.limbs[i] & mask;
            if inv != 0 {
                let pos = i * 64 + (63 - inv.leading_zeros() as usize);
                return self.width - 1 - pos;
            }
        }
        self.width
    }

    /// Number of redundant sign bits: leading bits equal to the sign bit,
    /// *excluding* the sign bit itself. A two's-complement value can be
    /// narrowed by this many bits without changing its value.
    pub fn redundant_sign_bits(&self) -> usize {
        if self.width <= 1 {
            return 0;
        }
        let run = if self.sign_bit() {
            self.leading_ones()
        } else {
            self.leading_zeros()
        };
        run.saturating_sub(1).min(self.width - 1)
    }

    /// Population count.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Value as `u64`.
    ///
    /// # Panics
    /// If the value does not fit.
    pub fn to_u64(&self) -> u64 {
        assert!(
            self.limbs.iter().skip(1).all(|&l| l == 0),
            "Bits value does not fit in u64"
        );
        self.limbs[0]
    }

    /// Value as `u128`.
    ///
    /// # Panics
    /// If the value does not fit.
    pub fn to_u128(&self) -> u128 {
        assert!(
            self.limbs.iter().skip(2).all(|&l| l == 0),
            "Bits value does not fit in u128"
        );
        let lo = self.limbs[0] as u128;
        let hi = *self.limbs.get(1).unwrap_or(&0) as u128;
        lo | (hi << 64)
    }

    /// Two's-complement signed value as `i128`.
    ///
    /// # Panics
    /// If the signed value does not fit in an `i128`.
    pub fn to_i128(&self) -> i128 {
        let se = self.sext(self.width.max(128));
        let lo = se.limbs[0] as u128;
        let hi = se.limbs[1] as u128;
        let value = (lo | (hi << 64)) as i128;
        assert!(
            *self == Bits::from_i128(self.width, value),
            "Bits signed value does not fit in i128"
        );
        value
    }

    /// Clear any bits at positions `>= width` in the top limb.
    pub(crate) fn mask_top(&mut self) {
        if self.width == 0 {
            self.limbs[0] = 0;
            return;
        }
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << rem) - 1;
        }
        // limbs beyond the width (only possible for width == 0 handled above)
        for i in limbs_for(self.width)..self.limbs.len() {
            self.limbs[i] = 0;
        }
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits<{}>(0x", self.width)?;
        for (i, l) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for Bits {
    /// Binary, MSB first, with `_` every 8 bits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 0 {
            return write!(f, "<empty>");
        }
        for pos in (0..self.width).rev() {
            write!(f, "{}", if self.bit(pos) { '1' } else { '0' })?;
            if pos != 0 && pos % 8 == 0 {
                write!(f, "_")?;
            }
        }
        Ok(())
    }
}
