//! # csfma-softfloat — parametric IEEE-754-like floating point, no subnormals
//!
//! Software model of the FPGA floating-point operators the paper compares
//! against and uses as accuracy references:
//!
//! * **binary64** operators in the style of Xilinx CoreGen / FloPoCo —
//!   IEEE 754 round-to-nearest-even, but *without subnormal support*
//!   (both vendor libraries omit subnormals; the paper follows suit,
//!   Sec. II). Subnormal inputs/results flush to zero.
//! * **Widened formats** (68-bit and 75-bit words with 56b/63b fractions)
//!   used in Sec. IV-B as accuracy references — the 75b run is the golden
//!   reference of Fig. 14.
//! * **FloPoCo-style two-wire exception signalling** ([`FpClass`]): the
//!   class (zero / normal / inf / NaN) travels beside the number instead of
//!   being encoded in special exponent patterns (Sec. III-B).
//!
//! All arithmetic goes through an exact binary fixed-point intermediate
//! ([`ExactFloat`]) and rounds once at the end, so `fma` is a true fused
//! multiply-add and every operation is correctly rounded in the chosen
//! [`Round`] mode.

pub mod batch;
mod divsqrt;
mod exact;
mod format;
mod ops;
mod value;

pub use exact::ExactFloat;
pub use format::{FpClass, FpFormat, Round};
pub use value::SoftFloat;

#[cfg(test)]
mod tests;
