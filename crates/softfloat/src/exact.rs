//! Exact binary fixed-point intermediates.
//!
//! Every soft-float operation computes its result exactly as a signed
//! magnitude `(-1)^sign * mag * 2^scale` with an arbitrary-width magnitude,
//! then rounds once. This is the software analogue of the "fused region"
//! of the paper (Fig. 3): no intermediate normalization or rounding happens
//! until the value leaves the region.

use crate::format::{FpClass, FpFormat, Round};
use csfma_bits::Bits;

/// Multiply by `2^e` in safe chunks: a single `powi` over/underflows for
/// |e| beyond the f64 range even when the final product is representable.
fn mul_pow2(mut v: f64, mut e: i32) -> f64 {
    while e > 1023 {
        v *= 2f64.powi(1023);
        e -= 1023;
    }
    while e < -1022 {
        v *= 2f64.powi(-1022);
        e += 1022;
    }
    v * 2f64.powi(e)
}

/// An exact (error-free) binary floating-point value
/// `(-1)^sign * mag * 2^scale`.
#[derive(Clone, Debug)]
pub struct ExactFloat {
    sign: bool,
    mag: Bits,
    scale: i64,
}

/// Result of rounding an [`ExactFloat`] into a finite format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundedParts {
    /// Exception class of the rounded result (`Zero`, `Normal`, `Inf`).
    pub class: FpClass,
    /// Sign of the result.
    pub sign: bool,
    /// Unbiased exponent (valid only for `Normal`).
    pub exp: i32,
    /// Fraction bits below the implied one (valid only for `Normal`).
    pub frac: u64,
    /// True iff rounding discarded nonzero bits (inexact).
    pub inexact: bool,
}

impl ExactFloat {
    /// Exact zero (positively signed).
    pub fn zero() -> Self {
        ExactFloat {
            sign: false,
            mag: Bits::zero(1),
            scale: 0,
        }
    }

    /// Build from sign, magnitude and scale. The representation is
    /// canonicalized (trailing zeros folded into the scale, magnitude
    /// trimmed to its significant width).
    pub fn from_parts(sign: bool, mag: Bits, scale: i64) -> Self {
        let mut e = ExactFloat { sign, mag, scale };
        e.canonicalize();
        e
    }

    /// Build from an unsigned significand in a `u128`.
    pub fn from_u128(sign: bool, mag: u128, scale: i64) -> Self {
        Self::from_parts(sign, Bits::from_u128(128, mag), scale)
    }

    /// Build the exact value of a finite `f64` (subnormals included —
    /// exactness here is about the *reference*, not the no-subnormal
    /// operator model).
    pub fn from_f64(v: f64) -> Self {
        assert!(
            v.is_finite(),
            "ExactFloat::from_f64 requires a finite value"
        );
        if v == 0.0 {
            let mut z = Self::zero();
            z.sign = v.is_sign_negative();
            return z;
        }
        let bits = v.to_bits();
        let sign = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        let (sig, exp) = if biased == 0 {
            (frac, -1022 - 52) // subnormal: 0.frac * 2^-1022
        } else {
            (frac | (1u64 << 52), biased as i64 as i32 - 1023 - 52)
        };
        Self::from_parts(sign, Bits::from_u64(64, sig), exp as i64)
    }

    /// True iff the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Sign (meaningful for zero as well: signed zero).
    pub fn sign(&self) -> bool {
        self.sign
    }

    /// Magnitude bits (canonical: odd, i.e. LSB set, unless zero).
    pub fn magnitude(&self) -> &Bits {
        &self.mag
    }

    /// Binary scale of the magnitude LSB.
    pub fn scale(&self) -> i64 {
        self.scale
    }

    fn canonicalize(&mut self) {
        if self.mag.is_zero() {
            self.mag = Bits::zero(1);
            self.scale = 0;
            return;
        }
        // fold trailing zeros into the scale
        let mut tz = 0;
        while !self.mag.bit(tz) {
            tz += 1;
        }
        if tz > 0 {
            self.mag = self.mag.shr(tz);
            self.scale += tz as i64;
        }
        // trim to the significant width
        let sig_width = self.mag.width() - self.mag.leading_zeros();
        self.mag = self.mag.trunc(sig_width);
    }

    /// Position of the most significant bit relative to `2^0`
    /// (i.e. `floor(log2(|value|))`). Panics on zero.
    pub fn msb_exp(&self) -> i64 {
        assert!(!self.is_zero(), "msb_exp of zero");
        self.scale + (self.mag.width() as i64 - 1)
    }

    /// Exact negation.
    pub fn neg(&self) -> Self {
        let mut out = self.clone();
        out.sign = !out.sign;
        out
    }

    /// Exact product.
    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            let mut z = Self::zero();
            z.sign = self.sign ^ rhs.sign;
            return z;
        }
        Self::from_parts(
            self.sign ^ rhs.sign,
            self.mag.mul_full(&rhs.mag),
            self.scale + rhs.scale,
        )
    }

    /// Exact sum.
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        let scale = self.scale.min(rhs.scale);
        let sa = (self.scale - scale) as usize;
        let sb = (rhs.scale - scale) as usize;
        let width = (self.mag.width() + sa).max(rhs.mag.width() + sb) + 1;
        let a = self.mag.zext(width).shl(sa);
        let b = rhs.mag.zext(width).shl(sb);
        if self.sign == rhs.sign {
            return Self::from_parts(self.sign, a.wrapping_add(&b), scale);
        }
        match a.unsigned_cmp(&b) {
            std::cmp::Ordering::Equal => Self::zero(),
            std::cmp::Ordering::Greater => Self::from_parts(self.sign, a.wrapping_sub(&b), scale),
            std::cmp::Ordering::Less => Self::from_parts(rhs.sign, b.wrapping_sub(&a), scale),
        }
    }

    /// Exact difference `self - rhs`.
    pub fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.neg())
    }

    /// Compare magnitudes: `|self|` vs `|rhs|`.
    pub fn cmp_magnitude(&self, rhs: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.is_zero(), rhs.is_zero()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        match self.msb_exp().cmp(&rhs.msb_exp()) {
            Ordering::Equal => {}
            o => return o,
        }
        // same MSB position: widen both to a common width and compare
        let scale = self.scale.min(rhs.scale);
        let sa = (self.scale - scale) as usize;
        let sb = (rhs.scale - scale) as usize;
        let width = (self.mag.width() + sa).max(rhs.mag.width() + sb);
        let a = self.mag.zext(width).shl(sa);
        let b = rhs.mag.zext(width).shl(sb);
        a.unsigned_cmp(&b)
    }

    /// Lossy conversion to `f64` (round to nearest even), for reporting.
    /// Saturates to `±f64::MAX` far out of range.
    pub fn to_f64_lossy(&self) -> f64 {
        if self.is_zero() {
            return if self.sign { -0.0 } else { 0.0 };
        }
        let msb = self.msb_exp();
        if msb > 1200 {
            return if self.sign { f64::MIN } else { f64::MAX };
        }
        if msb < -1200 {
            return if self.sign { -0.0 } else { 0.0 };
        }
        // take the top 54 bits (53 + guard) and a sticky
        let w = self.mag.width();
        let take = 54.min(w);
        let top = self.mag.extract(w - take, take).to_u64();
        let sticky = if w > take {
            !self.mag.extract(0, w - take).is_zero()
        } else {
            false
        };
        let mut val = top as f64;
        if sticky {
            // nudge below half an ulp of the 54-bit window; enough to break
            // round-to-even ties correctly in this lossy path
            val += 0.25;
        }
        let exp = (msb - take as i64 + 1) as i32;
        let r = mul_pow2(val, exp);
        if self.sign {
            -r
        } else {
            r
        }
    }

    /// Round into `format` with rounding mode `mode`.
    ///
    /// Results below the normal range flush to zero (no subnormals);
    /// results above it follow the IEEE overflow rules for the mode
    /// (to-nearest modes produce infinity; directed modes clamp to the
    /// largest finite value when rounding toward zero).
    pub fn round(&self, format: FpFormat, mode: Round) -> RoundedParts {
        if self.is_zero() {
            return RoundedParts {
                class: FpClass::Zero,
                sign: self.sign,
                exp: 0,
                frac: 0,
                inexact: false,
            };
        }
        let fb = format.frac_bits as usize;
        let w = self.mag.width();
        let mut exp = self.msb_exp();

        // Split into kept fraction / guard / sticky. The kept window is the
        // implied one plus `fb` fraction bits.
        let keep = fb + 1;
        let (mut sig, guard, sticky) = if w <= keep {
            (self.mag.zext(keep).shl(keep - w).to_u128(), false, false)
        } else {
            let sig = self.mag.extract(w - keep, keep).to_u128();
            let guard = self.mag.bit(w - keep - 1);
            let sticky = w > keep + 1 && !self.mag.extract(0, w - keep - 1).is_zero();
            (sig, guard, sticky)
        };

        let inexact_pre = guard || sticky;
        let round_up = match mode {
            Round::NearestEven => guard && (sticky || sig & 1 == 1),
            Round::HalfAwayFromZero => guard,
            Round::TowardZero => false,
            Round::TowardPosInf => inexact_pre && !self.sign,
            Round::TowardNegInf => inexact_pre && self.sign,
        };
        if round_up {
            sig += 1;
            if sig >> keep != 0 {
                sig >>= 1;
                exp += 1;
            }
        }

        if exp > format.emax() as i64 {
            return self.overflow(format, mode);
        }
        if exp < format.emin() as i64 {
            // flush to zero: no subnormals anywhere in this workspace
            return RoundedParts {
                class: FpClass::Zero,
                sign: self.sign,
                exp: 0,
                frac: 0,
                inexact: true,
            };
        }
        RoundedParts {
            class: FpClass::Normal,
            sign: self.sign,
            exp: exp as i32,
            frac: (sig as u64) & ((1u64 << fb) - 1),
            inexact: inexact_pre,
        }
    }

    fn overflow(&self, format: FpFormat, mode: Round) -> RoundedParts {
        let to_inf = match mode {
            Round::NearestEven | Round::HalfAwayFromZero => true,
            Round::TowardZero => false,
            Round::TowardPosInf => !self.sign,
            Round::TowardNegInf => self.sign,
        };
        if to_inf {
            RoundedParts {
                class: FpClass::Inf,
                sign: self.sign,
                exp: 0,
                frac: 0,
                inexact: true,
            }
        } else {
            RoundedParts {
                class: FpClass::Normal,
                sign: self.sign,
                exp: format.emax(),
                frac: (1u64 << format.frac_bits) - 1,
                inexact: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip_exact() {
        for v in [1.0, -2.5, std::f64::consts::PI, 1e-300, -1e300, 5e-324] {
            let e = ExactFloat::from_f64(v);
            assert_eq!(e.to_f64_lossy(), v, "roundtrip of {v}");
        }
    }

    #[test]
    fn add_cancellation_is_exact() {
        let a = ExactFloat::from_f64(1.0 + 2f64.powi(-52));
        let b = ExactFloat::from_f64(-1.0);
        let d = a.add(&b);
        assert_eq!(d.to_f64_lossy(), 2f64.powi(-52));
    }

    #[test]
    fn mul_exactness_beyond_f64() {
        // (1 + 2^-52)^2 = 1 + 2^-51 + 2^-104: exact here, inexact in f64
        let a = ExactFloat::from_f64(1.0 + 2f64.powi(-52));
        let p = a.mul(&a);
        let expect = ExactFloat::from_f64(1.0)
            .add(&ExactFloat::from_f64(2f64.powi(-51)))
            .add(&ExactFloat::from_f64(2f64.powi(-104)));
        assert!(p.sub(&expect).is_zero());
    }

    #[test]
    fn round_nearest_even_tie() {
        // 1 + 2^-53 is exactly halfway between 1.0 and 1+2^-52: ties to even (1.0)
        let e = ExactFloat::from_u128(false, (1u128 << 53) + 1, -53);
        let r = e.round(FpFormat::BINARY64, Round::NearestEven);
        assert_eq!(r.frac, 0);
        assert_eq!(r.exp, 0);
        assert!(r.inexact);
        // half away from zero rounds it up
        let r2 = e.round(FpFormat::BINARY64, Round::HalfAwayFromZero);
        assert_eq!(r2.frac, 1);
    }

    #[test]
    fn round_underflow_flushes() {
        let e = ExactFloat::from_u128(false, 1, -1040); // 2^-1040: below emin
        let r = e.round(FpFormat::BINARY64, Round::NearestEven);
        assert_eq!(r.class, FpClass::Zero);
        assert!(r.inexact);
    }

    #[test]
    fn round_overflow_modes() {
        let e = ExactFloat::from_u128(false, 1, 2000);
        assert_eq!(
            e.round(FpFormat::BINARY64, Round::NearestEven).class,
            FpClass::Inf
        );
        let tz = e.round(FpFormat::BINARY64, Round::TowardZero);
        assert_eq!(tz.class, FpClass::Normal);
        assert_eq!(tz.exp, FpFormat::BINARY64.emax());
        assert_eq!(tz.frac, (1u64 << 52) - 1);
        assert_eq!(
            e.neg().round(FpFormat::BINARY64, Round::TowardPosInf).class,
            FpClass::Normal
        );
        assert_eq!(
            e.round(FpFormat::BINARY64, Round::TowardPosInf).class,
            FpClass::Inf
        );
    }

    #[test]
    fn carry_out_of_rounding_bumps_exponent() {
        // all-ones significand + guard set rounds up to the next power of two
        let mag = (1u128 << 54) - 1; // 53 ones + guard one
        let e = ExactFloat::from_u128(false, mag, -53);
        let r = e.round(FpFormat::BINARY64, Round::NearestEven);
        assert_eq!(r.exp, 1);
        assert_eq!(r.frac, 0);
    }

    #[test]
    fn cmp_magnitude_orders() {
        use std::cmp::Ordering::*;
        let a = ExactFloat::from_f64(1.5);
        let b = ExactFloat::from_f64(-1.75);
        assert_eq!(a.cmp_magnitude(&b), Less);
        assert_eq!(b.cmp_magnitude(&a), Greater);
        assert_eq!(a.cmp_magnitude(&a), Equal);
        assert_eq!(ExactFloat::zero().cmp_magnitude(&a), Less);
    }
}
