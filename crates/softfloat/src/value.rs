//! The [`SoftFloat`] value type: a number in a specific [`FpFormat`]
//! together with its FloPoCo-style exception class.

use crate::exact::{ExactFloat, RoundedParts};
use crate::format::{FpClass, FpFormat, Round};
use csfma_bits::Bits;

/// A floating-point value in a parametric format, with the exception class
/// carried beside the number (two-wire signalling, Sec. III-B).
///
/// ```
/// use csfma_softfloat::{FpFormat, SoftFloat};
/// let a = SoftFloat::from_f64(FpFormat::BINARY64, 0.1);
/// let b = SoftFloat::from_f64(FpFormat::BINARY64, 0.2);
/// // correctly rounded, matching host IEEE 754 hardware
/// assert_eq!(a.add(&b).to_f64(), 0.1 + 0.2);
/// // a true fused multiply-add rounds once
/// let c = SoftFloat::from_f64(FpFormat::BINARY64, -0.02);
/// assert_eq!(a.fma(&b, &c).to_f64(), 0.1f64.mul_add(0.2, -0.02));
/// ```
///
/// Invariants for `class == Normal`:
/// * `emin <= exp <= emax` for the format,
/// * `frac < 2^frac_bits` (the implied leading one is not stored).
///
/// For other classes `exp` and `frac` are zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SoftFloat {
    format: FpFormat,
    class: FpClass,
    sign: bool,
    exp: i32,
    frac: u64,
}

impl SoftFloat {
    /// Signed zero.
    pub fn zero(format: FpFormat, sign: bool) -> Self {
        SoftFloat {
            format,
            class: FpClass::Zero,
            sign,
            exp: 0,
            frac: 0,
        }
    }

    /// Signed infinity.
    pub fn inf(format: FpFormat, sign: bool) -> Self {
        SoftFloat {
            format,
            class: FpClass::Inf,
            sign,
            exp: 0,
            frac: 0,
        }
    }

    /// Canonical NaN.
    pub fn nan(format: FpFormat) -> Self {
        SoftFloat {
            format,
            class: FpClass::Nan,
            sign: false,
            exp: 0,
            frac: 0,
        }
    }

    /// The value 1.0.
    pub fn one(format: FpFormat) -> Self {
        SoftFloat {
            format,
            class: FpClass::Normal,
            sign: false,
            exp: 0,
            frac: 0,
        }
    }

    /// Construct a normal number from parts.
    ///
    /// # Panics
    /// If `exp` or `frac` are outside the format's range.
    pub fn from_parts(format: FpFormat, sign: bool, exp: i32, frac: u64) -> Self {
        assert!(
            exp >= format.emin() && exp <= format.emax(),
            "exponent out of range"
        );
        assert!(
            frac < (1u64 << format.frac_bits),
            "fraction wider than format"
        );
        SoftFloat {
            format,
            class: FpClass::Normal,
            sign,
            exp,
            frac,
        }
    }

    /// Construct from the result of rounding an exact value.
    pub fn from_rounded(format: FpFormat, r: RoundedParts) -> Self {
        match r.class {
            FpClass::Zero => SoftFloat::zero(format, r.sign),
            FpClass::Inf => SoftFloat::inf(format, r.sign),
            FpClass::Nan => SoftFloat::nan(format),
            FpClass::Normal => SoftFloat::from_parts(format, r.sign, r.exp, r.frac),
        }
    }

    /// Convert a host `f64` into this format (round to nearest even).
    /// Subnormal `f64` inputs flush to zero; NaN/Inf map to their classes.
    pub fn from_f64(format: FpFormat, v: f64) -> Self {
        if v.is_nan() {
            return SoftFloat::nan(format);
        }
        if v.is_infinite() {
            return SoftFloat::inf(format, v < 0.0);
        }
        if v == 0.0 || v.is_subnormal() {
            return SoftFloat::zero(format, v.is_sign_negative());
        }
        let e = ExactFloat::from_f64(v);
        SoftFloat::from_rounded(format, e.round(format, Round::NearestEven))
    }

    /// Convert to a host `f64` (round to nearest even; exact whenever the
    /// format fits inside binary64).
    pub fn to_f64(&self) -> f64 {
        match self.class {
            FpClass::Nan => f64::NAN,
            FpClass::Inf => {
                if self.sign {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            FpClass::Zero => {
                if self.sign {
                    -0.0
                } else {
                    0.0
                }
            }
            FpClass::Normal => self.to_exact().to_f64_lossy(),
        }
    }

    /// Exact value of a finite number.
    ///
    /// # Panics
    /// On Inf/NaN.
    pub fn to_exact(&self) -> ExactFloat {
        match self.class {
            FpClass::Zero => {
                let mut z = ExactFloat::zero();
                if self.sign {
                    z = z.neg();
                }
                z
            }
            FpClass::Normal => ExactFloat::from_u128(
                self.sign,
                self.significand() as u128,
                self.exp as i64 - self.format.frac_bits as i64,
            ),
            _ => panic!("to_exact on {:?}", self.class),
        }
    }

    /// Full significand including the implied leading one
    /// (`1.frac` scaled to an integer). Zero for class Zero.
    pub fn significand(&self) -> u64 {
        match self.class {
            FpClass::Normal => (1u64 << self.format.frac_bits) | self.frac,
            _ => 0,
        }
    }

    /// Format of this value.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    /// Exception class.
    pub fn class(&self) -> FpClass {
        self.class
    }

    /// Sign bit (true = negative).
    pub fn sign(&self) -> bool {
        self.sign
    }

    /// Unbiased exponent (only meaningful for normals).
    pub fn exp(&self) -> i32 {
        self.exp
    }

    /// Stored fraction bits (below the implied one).
    pub fn frac(&self) -> u64 {
        self.frac
    }

    /// True for NaN.
    pub fn is_nan(&self) -> bool {
        self.class == FpClass::Nan
    }

    /// True for ±Inf.
    pub fn is_inf(&self) -> bool {
        self.class == FpClass::Inf
    }

    /// True for ±0.
    pub fn is_zero(&self) -> bool {
        self.class == FpClass::Zero
    }

    /// True for a finite nonzero number.
    pub fn is_normal(&self) -> bool {
        self.class == FpClass::Normal
    }

    /// Negation (sign flip; NaN unaffected).
    pub fn neg(&self) -> Self {
        let mut out = *self;
        if out.class != FpClass::Nan {
            out.sign = !out.sign;
        }
        out
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        let mut out = *self;
        if out.class != FpClass::Nan {
            out.sign = false;
        }
        out
    }

    /// One unit in the last place at this value's exponent, as an exact
    /// value (`2^(exp - frac_bits)`); meaningful for normals.
    pub fn ulp(&self) -> ExactFloat {
        assert!(self.is_normal(), "ulp of non-normal");
        ExactFloat::from_u128(false, 1, self.exp as i64 - self.format.frac_bits as i64)
    }

    /// Pack into the conventional bit layout `sign | biased exp | frac`
    /// (the class travels separately, as in FloPoCo). Used for register
    /// toggle accounting in the fabric energy model.
    pub fn encode(&self) -> Bits {
        let f = self.format;
        let total = f.total_bits() as usize;
        let mut out = Bits::zero(total);
        match self.class {
            FpClass::Normal => {
                let biased = (self.exp + f.bias()) as u64;
                out = Bits::from_u64(total, self.frac)
                    .wrapping_add(&Bits::from_u64(total, biased).shl(f.frac_bits as usize));
            }
            FpClass::Inf | FpClass::Zero | FpClass::Nan => {}
        }
        if self.sign {
            out.set_bit(total - 1, true);
        }
        out
    }

    /// Decode a value packed by [`SoftFloat::encode`] with a separate class.
    pub fn decode(format: FpFormat, class: FpClass, bits: &Bits) -> Self {
        assert_eq!(bits.width(), format.total_bits() as usize);
        let sign = bits.bit(format.total_bits() as usize - 1);
        match class {
            FpClass::Normal => {
                let frac = bits.extract(0, format.frac_bits as usize).to_u64();
                let biased = bits
                    .extract(format.frac_bits as usize, format.exp_bits as usize)
                    .to_u64();
                SoftFloat::from_parts(format, sign, biased as i32 - format.bias(), frac)
            }
            FpClass::Zero => SoftFloat::zero(format, sign),
            FpClass::Inf => SoftFloat::inf(format, sign),
            FpClass::Nan => SoftFloat::nan(format),
        }
    }
}

impl std::fmt::Display for SoftFloat {
    /// Human-readable rendering: the numeric value plus class markers for
    /// the specials (`inf`, `-inf`, `NaN`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            FpClass::Nan => write!(f, "NaN"),
            FpClass::Inf => write!(f, "{}inf", if self.sign { "-" } else { "" }),
            FpClass::Zero => write!(f, "{}0.0", if self.sign { "-" } else { "" }),
            FpClass::Normal => write!(f, "{}", self.to_f64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip_binary64() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            std::f64::consts::PI,
            1e-300,
            1e300,
            f64::INFINITY,
        ] {
            let s = SoftFloat::from_f64(FpFormat::BINARY64, v);
            assert_eq!(s.to_f64().to_bits(), v.to_bits(), "roundtrip of {v}");
        }
        assert!(SoftFloat::from_f64(FpFormat::BINARY64, f64::NAN)
            .to_f64()
            .is_nan());
    }

    #[test]
    fn subnormal_input_flushes() {
        let s = SoftFloat::from_f64(FpFormat::BINARY64, 5e-324);
        assert!(s.is_zero());
    }

    #[test]
    fn significand_has_implied_one() {
        let s = SoftFloat::from_f64(FpFormat::BINARY64, 1.5);
        assert_eq!(s.significand(), (1u64 << 52) | (1u64 << 51));
        assert_eq!(s.exp(), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for v in [1.0, -2.75, 6.02e23, -1e-200] {
            let s = SoftFloat::from_f64(FpFormat::BINARY64, v);
            let d = SoftFloat::decode(FpFormat::BINARY64, s.class(), &s.encode());
            assert_eq!(d, s);
        }
    }

    #[test]
    fn encode_matches_ieee754_for_binary64() {
        // Our packing must agree with the native IEEE 754 binary64 layout.
        for v in [1.0f64, -2.5, 0.1, 1e308, -4e-300] {
            let s = SoftFloat::from_f64(FpFormat::BINARY64, v);
            assert_eq!(s.encode().to_u64(), v.to_bits());
        }
    }

    #[test]
    fn widened_format_roundtrips_doubles_exactly() {
        // every binary64 value is exactly representable in B68/B75
        for v in [0.1, 2.0 / 3.0, -1.0e-17] {
            for fmt in [FpFormat::B68, FpFormat::B75] {
                let s = SoftFloat::from_f64(fmt, v);
                assert_eq!(s.to_f64(), v);
            }
        }
    }

    #[test]
    fn display_renders() {
        assert_eq!(
            format!("{}", SoftFloat::from_f64(FpFormat::BINARY64, 1.5)),
            "1.5"
        );
        assert_eq!(
            format!("{}", SoftFloat::inf(FpFormat::BINARY64, true)),
            "-inf"
        );
        assert_eq!(format!("{}", SoftFloat::nan(FpFormat::BINARY64)), "NaN");
        assert_eq!(
            format!("{}", SoftFloat::zero(FpFormat::BINARY64, true)),
            "-0.0"
        );
    }

    #[test]
    fn neg_abs() {
        let s = SoftFloat::from_f64(FpFormat::BINARY64, -2.0);
        assert_eq!(s.neg().to_f64(), 2.0);
        assert_eq!(s.abs().to_f64(), 2.0);
        assert!(SoftFloat::nan(FpFormat::BINARY64).neg().is_nan());
    }
}
