//! Batch-friendly binary64 entry points.
//!
//! The scalar [`SoftFloat`] operators allocate nothing, but they carry a
//! per-value class/sign/exp/frac decomposition through every call, which
//! costs ~50× a hardware multiply when a batch engine streams millions of
//! operands. This module provides the hot-loop contract the compiled
//! tape executor (`csfma-hls::compile`) is built on:
//!
//! Every binary64 workspace value is a **canonical FTZ double** — the
//! image of `SoftFloat::from_f64` followed by `to_f64`:
//!
//! * no subnormals (they flush to signed zero, like the operators do),
//! * a single NaN representation (`f64::NAN`, no payloads, no sign),
//! * all other values (±0, ±Inf, normals) exactly as IEEE encodes them.
//!
//! On that domain the map `f64 ↔ SoftFloat(BINARY64)` is a bijection, so
//! an operator may be evaluated *on the host FPU* whenever the host and
//! the soft-float model provably agree, falling back to the soft-float
//! operator in the narrow window where they can differ:
//!
//! * results that are NaN (host NaN bit patterns are platform-defined;
//!   the model has exactly one NaN), and
//! * results in `(0, MIN_POSITIVE]` — the flush-to-zero boundary, where
//!   the host rounds on the subnormal grid but the model rounds on its
//!   own finer `emin-1` grid before flushing (`x = MIN_POSITIVE` itself
//!   is included because the host can reach it by rounding *across* the
//!   boundary from below, e.g. ties at `MIN_POSITIVE - 2^-1075`).
//!
//! Everywhere else both sides round the same exact value to the same
//! normal-range grid, so the results are bit-identical; the differential
//! suites (`softfloat::tests`, `tests/exec_differential.rs`) enforce
//! this on random and special operands.

use crate::format::FpFormat;
use crate::value::SoftFloat;
use csfma_obs::Counter;

const F: FpFormat = FpFormat::BINARY64;

/// Process-wide count of hosted results that failed the trust guard and
/// were recomputed with the soft-float operator. The *total* hosted-op
/// count is tallied per-chunk by the tape executor (one add per
/// instruction, not per lane), so the fast-path hit rate is
/// `1 - fallbacks/total`; only this rare slow path pays a per-call
/// atomic. No-op unless the `obs` feature is enabled.
static SOFTFLOAT_FALLBACKS: Counter = Counter::new();

/// Hosted-FPU results recomputed via soft-float since process start
/// (always `0` when the `obs` feature is compiled out).
pub fn softfloat_fallbacks() -> u64 {
    SOFTFLOAT_FALLBACKS.get()
}

/// Canonicalize a host double into the workspace value domain: subnormals
/// flush to signed zero, every NaN collapses to `f64::NAN`. This is
/// exactly `SoftFloat::from_f64(BINARY64, v).to_f64()`, computed without
/// building the intermediate.
#[inline]
pub fn canonicalize(v: f64) -> f64 {
    if v.is_nan() {
        f64::NAN
    } else if v.is_subnormal() {
        if v.is_sign_negative() {
            -0.0
        } else {
            0.0
        }
    } else {
        v
    }
}

/// Canonicalize a slice in place.
pub fn canonicalize_slice(vs: &mut [f64]) {
    for v in vs {
        *v = canonicalize(*v);
    }
}

/// True when a host-computed result cannot be trusted to match the
/// soft-float operator bit-for-bit and must be recomputed.
#[inline]
fn needs_softfloat(r: f64) -> bool {
    r.is_nan() || (r != 0.0 && r.abs() <= f64::MIN_POSITIVE)
}

#[inline]
fn sf(v: f64) -> SoftFloat {
    SoftFloat::from_f64(F, v)
}

/// `a + b` with soft-float binary64 semantics at host speed.
/// Operands must be canonical (see [`canonicalize`]); the result is.
#[inline]
pub fn hosted_add(a: f64, b: f64) -> f64 {
    let r = a + b;
    if needs_softfloat(r) {
        SOFTFLOAT_FALLBACKS.incr();
        sf(a).add(&sf(b)).to_f64()
    } else {
        r
    }
}

/// `a - b` with soft-float binary64 semantics at host speed.
#[inline]
pub fn hosted_sub(a: f64, b: f64) -> f64 {
    let r = a - b;
    if needs_softfloat(r) {
        SOFTFLOAT_FALLBACKS.incr();
        sf(a).sub(&sf(b)).to_f64()
    } else {
        r
    }
}

/// `a * b` with soft-float binary64 semantics at host speed.
#[inline]
pub fn hosted_mul(a: f64, b: f64) -> f64 {
    let r = a * b;
    if needs_softfloat(r) {
        SOFTFLOAT_FALLBACKS.incr();
        sf(a).mul(&sf(b)).to_f64()
    } else {
        r
    }
}

/// `a / b` with soft-float binary64 semantics at host speed.
#[inline]
pub fn hosted_div(a: f64, b: f64) -> f64 {
    let r = a / b;
    if needs_softfloat(r) {
        SOFTFLOAT_FALLBACKS.incr();
        sf(a).div(&sf(b)).to_f64()
    } else {
        r
    }
}

/// `-a` with soft-float binary64 semantics. Negation never rounds, so the
/// only divergence is the NaN representation (the model's NaN is
/// sign-less; the host flips the sign bit).
#[inline]
pub fn hosted_neg(a: f64) -> f64 {
    if a.is_nan() {
        f64::NAN
    } else {
        -a
    }
}

/// Elementwise `dst[i] = a[i] + b[i]` over canonical slices.
pub fn add_slices(dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(
        dst.len() == a.len() && a.len() == b.len(),
        "length mismatch"
    );
    for i in 0..dst.len() {
        dst[i] = hosted_add(a[i], b[i]);
    }
}

/// Elementwise `dst[i] = a[i] * b[i]` over canonical slices.
pub fn mul_slices(dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(
        dst.len() == a.len() && a.len() == b.len(),
        "length mismatch"
    );
    for i in 0..dst.len() {
        dst[i] = hosted_mul(a[i], b[i]);
    }
}

/// Elementwise `dst[i] = a[i] - b[i]` over canonical slices.
pub fn sub_slices(dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(
        dst.len() == a.len() && a.len() == b.len(),
        "length mismatch"
    );
    for i in 0..dst.len() {
        dst[i] = hosted_sub(a[i], b[i]);
    }
}

/// Elementwise `dst[i] = a[i] / b[i]` over canonical slices.
pub fn div_slices(dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(
        dst.len() == a.len() && a.len() == b.len(),
        "length mismatch"
    );
    for i in 0..dst.len() {
        dst[i] = hosted_div(a[i], b[i]);
    }
}

/// Elementwise `dst[i] = -a[i]` over canonical slices.
pub fn neg_slices(dst: &mut [f64], a: &[f64]) {
    assert!(dst.len() == a.len(), "length mismatch");
    for i in 0..dst.len() {
        dst[i] = hosted_neg(a[i]);
    }
}

/// Elementwise true fused `dst[i] = a[i] * b[i] + c[i]` via the
/// soft-float `fma` (single rounding). There is no host fast path here:
/// `f64::mul_add` may lower to separate multiply/add on targets without
/// an FMA instruction, so only the soft-float operator is trustworthy.
pub fn fma_slices(dst: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
    assert!(
        dst.len() == a.len() && a.len() == b.len() && b.len() == c.len(),
        "length mismatch"
    );
    for i in 0..dst.len() {
        dst[i] = sf(a[i]).fma(&sf(b[i]), &sf(c[i])).to_f64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_maps_into_from_f64_image() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -2.5e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0, // subnormal
            -4.9e-324,               // smallest subnormal
        ] {
            let via_soft = SoftFloat::from_f64(F, v).to_f64();
            assert_eq!(canonicalize(v).to_bits(), via_soft.to_bits(), "v={v:e}");
        }
    }

    #[test]
    fn hosted_ops_agree_with_softfloat_on_underflow_boundary() {
        // exactly the divergence window the guard exists for: a product
        // that lands between the largest subnormal and MIN_POSITIVE
        let a = f64::MIN_POSITIVE * 1.999999;
        let b = 0.5;
        assert_eq!(
            hosted_mul(a, b).to_bits(),
            sf(a).mul(&sf(b)).to_f64().to_bits()
        );
        // and straight into the subnormal range
        let c = f64::MIN_POSITIVE * 0.3;
        assert_eq!(
            hosted_mul(c, 0.5).to_bits(),
            sf(c).mul(&sf(0.5)).to_f64().to_bits()
        );
    }

    #[test]
    fn hosted_nan_is_canonical() {
        let r = hosted_mul(0.0, f64::INFINITY);
        assert_eq!(r.to_bits(), f64::NAN.to_bits());
        assert_eq!(hosted_neg(f64::NAN).to_bits(), f64::NAN.to_bits());
        assert_eq!(hosted_div(0.0, 0.0).to_bits(), f64::NAN.to_bits());
    }
}
