//! Property tests: soft-float binary64 against the host's IEEE 754
//! hardware, on inputs/outputs that avoid the (unsupported) subnormal range.

use crate::{FpFormat, Round, SoftFloat};
use proptest::prelude::*;

const F: FpFormat = FpFormat::BINARY64;

/// A finite, normal-range f64 whose magnitude keeps products/sums of two
/// operands well inside the normal range.
fn normal_f64() -> impl Strategy<Value = f64> {
    // sign * mantissa in [1,2) * 2^e with |e| <= 400
    (any::<bool>(), 0u64..(1u64 << 52), -400i32..=400).prop_map(|(s, m, e)| {
        let v = f64::from_bits(((1023 + e) as u64) << 52 | m);
        if s {
            -v
        } else {
            v
        }
    })
}

fn sf(v: f64) -> SoftFloat {
    SoftFloat::from_f64(F, v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn prop_add_matches_host(a in normal_f64(), b in normal_f64()) {
        let want = a + b;
        prop_assume!(want == 0.0 || !want.is_subnormal());
        let got = sf(a).add(&sf(b)).to_f64();
        prop_assert_eq!(got.to_bits(), want.to_bits(), "{} + {}", a, b);
    }

    #[test]
    fn prop_mul_matches_host(a in normal_f64(), b in normal_f64()) {
        let want = a * b;
        prop_assume!(want.is_finite() && (want == 0.0 || !want.is_subnormal()));
        let got = sf(a).mul(&sf(b)).to_f64();
        prop_assert_eq!(got.to_bits(), want.to_bits(), "{} * {}", a, b);
    }

    #[test]
    fn prop_fma_matches_host(a in normal_f64(), b in normal_f64(), c in normal_f64()) {
        let want = a.mul_add(b, c);
        prop_assume!(want.is_finite() && (want == 0.0 || !want.is_subnormal()));
        let got = sf(a).fma(&sf(b), &sf(c)).to_f64();
        // the host fma produces -0.0 for exact cancellation in some cases we
        // canonicalize to +0.0 (round-to-nearest zero-sum rule); compare values
        if want == 0.0 {
            prop_assert_eq!(got, 0.0);
        } else {
            prop_assert_eq!(got.to_bits(), want.to_bits(), "fma({},{},{})", a, b, c);
        }
    }

    #[test]
    fn prop_sub_antisymmetric(a in normal_f64(), b in normal_f64()) {
        let x = sf(a).sub(&sf(b));
        let y = sf(b).sub(&sf(a));
        prop_assert_eq!(x.to_f64(), -y.to_f64());
    }

    #[test]
    fn prop_directed_modes_bracket(a in normal_f64(), b in normal_f64()) {
        // round-down <= exact-ish (RNE) <= round-up
        let dn = sf(a).add_r(&sf(b), Round::TowardNegInf).to_f64();
        let ne = sf(a).add_r(&sf(b), Round::NearestEven).to_f64();
        let up = sf(a).add_r(&sf(b), Round::TowardPosInf).to_f64();
        prop_assert!(dn <= ne && ne <= up, "{} {} {}", dn, ne, up);
    }

    #[test]
    fn prop_widen_narrow_roundtrip(a in normal_f64()) {
        let w = sf(a).convert(FpFormat::B75, Round::NearestEven);
        prop_assert_eq!(w.convert(F, Round::NearestEven).to_f64(), a);
    }

    #[test]
    fn prop_mul_in_b75_at_least_as_accurate(a in normal_f64(), b in normal_f64()) {
        // computing in the widened format then rounding back never loses
        // more than direct binary64 computation... they are equal except
        // double rounding; check the wide result is within 1 ulp of host
        let wa = SoftFloat::from_f64(FpFormat::B75, a);
        let wb = SoftFloat::from_f64(FpFormat::B75, b);
        let wide = wa.mul(&wb).to_f64();
        let host = a * b;
        prop_assume!(host.is_finite() && (host == 0.0 || !host.is_subnormal()));
        let ulp = (host.abs() * 2f64.powi(-52)).max(f64::MIN_POSITIVE);
        prop_assert!((wide - host).abs() <= ulp);
    }

    #[test]
    fn prop_encode_decode(a in normal_f64()) {
        let s = sf(a);
        let back = SoftFloat::decode(F, s.class(), &s.encode());
        prop_assert_eq!(back, s);
    }
}

/// binary32 operations against host f32 hardware (subnormal-free range).
mod binary32 {
    use super::*;

    fn normal_f32() -> impl Strategy<Value = f32> {
        (any::<bool>(), 0u32..(1u32 << 23), -60i32..=60).prop_map(|(s, m, e)| {
            let v = f32::from_bits(((127 + e) as u32) << 23 | m);
            if s {
                -v
            } else {
                v
            }
        })
    }

    fn s32(v: f32) -> SoftFloat {
        SoftFloat::from_f64(FpFormat::BINARY32, v as f64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn prop_add_matches_f32(a in normal_f32(), b in normal_f32()) {
            let want = a + b;
            prop_assume!(want == 0.0 || !want.is_subnormal());
            prop_assert_eq!(s32(a).add(&s32(b)).to_f64() as f32, want);
        }

        #[test]
        fn prop_mul_matches_f32(a in normal_f32(), b in normal_f32()) {
            let want = a * b;
            prop_assume!(want.is_finite() && (want == 0.0 || !want.is_subnormal()));
            prop_assert_eq!(s32(a).mul(&s32(b)).to_f64() as f32, want);
        }

        #[test]
        fn prop_fma_matches_f32(a in normal_f32(), b in normal_f32(), c in normal_f32()) {
            let want = a.mul_add(b, c);
            prop_assume!(want.is_finite() && want != 0.0 && !want.is_subnormal());
            prop_assert_eq!(s32(a).fma(&s32(b), &s32(c)).to_f64() as f32, want);
        }
    }
}

/// Tie cases for every rounding mode, exhaustively at small magnitudes.
mod tie_semantics {
    use super::*;
    use crate::ExactFloat;

    #[test]
    fn all_modes_on_exact_ties() {
        // value = (2k+1) * 2^-53: exactly between k*2^-52 neighbors of 1.x
        for k in 0..32u64 {
            let mag = ((1u128 << 53) + 2 * k as u128 + 1) << 1; // guard set, sticky clear
            let e = ExactFloat::from_u128(false, mag, -54);
            let ne = e.round(FpFormat::BINARY64, Round::NearestEven);
            assert_eq!(ne.frac % 2, 0, "nearest-even lands on even at k={k}");
            let up = e.round(FpFormat::BINARY64, Round::HalfAwayFromZero);
            assert_eq!(up.frac, k + 1, "half-away rounds up at k={k}");
            let tz = e.round(FpFormat::BINARY64, Round::TowardZero);
            assert_eq!(tz.frac, k, "truncation keeps k at k={k}");
        }
    }

    #[test]
    fn negative_directed_modes() {
        let e = ExactFloat::from_u128(true, (1u128 << 53) + 1, -53);
        let down = e.round(FpFormat::BINARY64, Round::TowardNegInf);
        let up = e.round(FpFormat::BINARY64, Round::TowardPosInf);
        assert_eq!(
            down.frac, 1,
            "toward -inf grows the magnitude of a negative"
        );
        assert_eq!(up.frac, 0, "toward +inf truncates a negative");
        assert!(down.sign && up.sign);
    }
}

mod special_value_matrix {
    //! Exhaustive special-value matrix for the batch module's hosted
    //! fast path: for every pair drawn from the IEEE special classes
    //! (NaN, ±Inf, ±0, subnormals, underflow-boundary and extreme
    //! normals), `hosted_*` over canonicalized inputs must agree **bit
    //! for bit** with the soft-float operators — the equivalence the
    //! compiled tape's bit-accurate backend stands on.

    use crate::batch::{canonicalize, hosted_add, hosted_div, hosted_mul, hosted_neg, hosted_sub};
    use crate::{FpFormat, SoftFloat};

    fn specials() -> Vec<f64> {
        vec![
            f64::NAN,
            -f64::NAN, // host-negative NaN: canonicalize must erase the sign
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::from_bits(1), // smallest subnormal
            -f64::from_bits(1),
            f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
            -f64::from_bits(0x000F_FFFF_FFFF_FFFF),
            f64::MIN_POSITIVE, // smallest normal
            -f64::MIN_POSITIVE,
            f64::MIN_POSITIVE * 1.999, // just above the boundary
            f64::MAX,
            -f64::MAX,
            1.5,
            -2.25,
            1e-300,
            -1e308,
        ]
    }

    fn sf(v: f64) -> SoftFloat {
        SoftFloat::from_f64(FpFormat::BINARY64, v)
    }

    #[test]
    fn hosted_ops_match_softfloat_on_full_matrix() {
        for &ra in &specials() {
            for &rb in &specials() {
                // the tape canonicalizes on load, so the hosted ops see
                // only canonical-FTZ values — same as from_f64 would give
                let (a, b) = (canonicalize(ra), canonicalize(rb));
                let cases = [
                    ("add", hosted_add(a, b), sf(ra).add(&sf(rb))),
                    ("sub", hosted_sub(a, b), sf(ra).sub(&sf(rb))),
                    ("mul", hosted_mul(a, b), sf(ra).mul(&sf(rb))),
                    ("div", hosted_div(a, b), sf(ra).div(&sf(rb))),
                ];
                for (op, got, want) in cases {
                    assert_eq!(
                        got.to_bits(),
                        want.to_f64().to_bits(),
                        "{op}({ra:e}, {rb:e}): hosted {got:e} vs softfloat {:e}",
                        want.to_f64()
                    );
                }
            }
            let a = canonicalize(ra);
            assert_eq!(
                hosted_neg(a).to_bits(),
                sf(ra).neg().to_f64().to_bits(),
                "neg({ra:e})"
            );
        }
    }

    #[test]
    fn canonicalize_is_idempotent_and_ftz_on_matrix() {
        for &v in &specials() {
            let c = canonicalize(v);
            assert_eq!(
                c.to_bits(),
                canonicalize(c).to_bits(),
                "idempotent on {v:e}"
            );
            // image contains no subnormals and only the canonical NaN
            assert!(c.is_nan() || c == 0.0 || c.abs() >= f64::MIN_POSITIVE);
            if c.is_nan() {
                assert_eq!(c.to_bits(), f64::NAN.to_bits());
            }
        }
    }
}
