//! Floating-point formats, rounding modes and exception classes.

/// A binary floating-point format: `1` sign bit, `exp_bits` of exponent,
/// `frac_bits` of stored fraction (below the implied leading one).
///
/// No subnormals exist in any format: the smallest representable magnitude
/// is `2^emin` and anything smaller flushes to zero, matching the Xilinx
/// CoreGen and FloPoCo configurations used in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct FpFormat {
    /// Exponent field width in bits (2..=17).
    pub exp_bits: u32,
    /// Stored fraction width in bits (1..=63; the implied one is not stored).
    pub frac_bits: u32,
}

impl FpFormat {
    /// IEEE 754 binary64 (double precision): 11-bit exponent, 52-bit fraction.
    pub const BINARY64: FpFormat = FpFormat {
        exp_bits: 11,
        frac_bits: 52,
    };
    /// IEEE 754 binary32 (single precision): 8-bit exponent, 23-bit fraction.
    pub const BINARY32: FpFormat = FpFormat {
        exp_bits: 8,
        frac_bits: 23,
    };
    /// The 68-bit reference format of Sec. IV-B: binary64 with 4 extra
    /// fraction bits (11-bit exponent, 56-bit fraction).
    pub const B68: FpFormat = FpFormat {
        exp_bits: 11,
        frac_bits: 56,
    };
    /// The 75-bit golden-reference format of Sec. IV-B: binary64 with 11
    /// extra fraction bits (11-bit exponent, 63-bit fraction).
    pub const B75: FpFormat = FpFormat {
        exp_bits: 11,
        frac_bits: 63,
    };

    /// Construct a format, validating the field widths.
    pub fn new(exp_bits: u32, frac_bits: u32) -> Self {
        assert!((2..=17).contains(&exp_bits), "exp_bits out of range");
        assert!((1..=63).contains(&frac_bits), "frac_bits out of range");
        FpFormat {
            exp_bits,
            frac_bits,
        }
    }

    /// Total storage width including the sign bit.
    pub fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.frac_bits
    }

    /// Exponent bias (`2^(exp_bits-1) - 1`, IEEE-style).
    pub fn bias(&self) -> i32 {
        (1i32 << (self.exp_bits - 1)) - 1
    }

    /// Largest unbiased exponent of a finite number (`2^exp_bits - 2`
    /// biased — the all-ones pattern stays reserved even though exceptions
    /// travel on separate wires, so values remain interchangeable with
    /// conventionally-encoded IEEE operands).
    pub fn emax(&self) -> i32 {
        ((1i32 << self.exp_bits) - 2) - self.bias()
    }

    /// Smallest unbiased exponent of a normal number.
    pub fn emin(&self) -> i32 {
        1 - self.bias()
    }

    /// Units in the last place of 1.0: `2^-frac_bits`.
    pub fn ulp_of_one(&self) -> f64 {
        (2.0f64).powi(-(self.frac_bits as i32))
    }
}

/// Rounding modes. The paper's FMA units transfer unrounded mantissas and
/// use *round half away from zero* between chained operators (Sec. III-C:
/// that mode needs only one extra transferred bit); the IEEE-754 default
/// for the CoreGen/FloPoCo comparison operators is *round to nearest even*.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum Round {
    /// IEEE 754 default: ties round to the even mantissa.
    #[default]
    NearestEven,
    /// Ties round away from zero (the paper's inter-operator mode).
    HalfAwayFromZero,
    /// Truncate toward zero.
    TowardZero,
    /// Round toward +infinity.
    TowardPosInf,
    /// Round toward -infinity.
    TowardNegInf,
}

/// FloPoCo-style two-wire exception class accompanying every number
/// (Sec. III-B: "two additional wires for explicitly signalling exceptions
/// instead of encoding them in the number representation").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FpClass {
    /// Exact zero (signed).
    Zero,
    /// Ordinary finite nonzero number.
    Normal,
    /// Signed infinity.
    Inf,
    /// Not a number. Sign and payload are ignored.
    Nan,
}

impl FpClass {
    /// Encode as the two-bit wire pattern used by FloPoCo
    /// (`00` zero, `01` normal, `10` inf, `11` NaN).
    pub fn to_wire(self) -> u8 {
        match self {
            FpClass::Zero => 0b00,
            FpClass::Normal => 0b01,
            FpClass::Inf => 0b10,
            FpClass::Nan => 0b11,
        }
    }

    /// Decode the two-bit wire pattern.
    pub fn from_wire(w: u8) -> Self {
        match w & 0b11 {
            0b00 => FpClass::Zero,
            0b01 => FpClass::Normal,
            0b10 => FpClass::Inf,
            _ => FpClass::Nan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary64_parameters() {
        let f = FpFormat::BINARY64;
        assert_eq!(f.total_bits(), 64);
        assert_eq!(f.bias(), 1023);
        assert_eq!(f.emin(), -1022);
        assert_eq!(f.emax(), 1023);
    }

    #[test]
    fn reference_formats_are_wider() {
        assert_eq!(FpFormat::B68.total_bits(), 68);
        assert_eq!(FpFormat::B75.total_bits(), 75);
        const { assert!(FpFormat::B75.frac_bits > FpFormat::B68.frac_bits) };
    }

    #[test]
    fn wire_encoding_roundtrip() {
        for c in [FpClass::Zero, FpClass::Normal, FpClass::Inf, FpClass::Nan] {
            assert_eq!(FpClass::from_wire(c.to_wire()), c);
        }
    }

    #[test]
    #[should_panic]
    fn frac_bits_cap() {
        FpFormat::new(11, 64);
    }
}
