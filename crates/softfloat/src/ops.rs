//! Arithmetic on [`SoftFloat`]: add, sub, mul and a true fused
//! multiply-add, each correctly rounded in any [`Round`] mode.
//!
//! These model the discrete CoreGen-style operators (separate multiply and
//! add, each rounding its result) and — via [`SoftFloat::fma_r`] — an
//! idealized fused unit that rounds once. The paper's P/FCS-FMA behavioral
//! models in `csfma-core` are checked against [`SoftFloat::fma_r`] and the
//! exact path.

use crate::format::{FpClass, FpFormat, Round};
use crate::value::SoftFloat;

fn result_format(a: &SoftFloat, b: &SoftFloat) -> FpFormat {
    assert_eq!(a.format(), b.format(), "mixed-format arithmetic");
    a.format()
}

/// Sign of an exact-zero sum under the rounding mode (IEEE 754 §6.3).
fn zero_sum_sign(mode: Round) -> bool {
    matches!(mode, Round::TowardNegInf)
}

impl SoftFloat {
    /// Addition, round to nearest even.
    pub fn add(&self, rhs: &Self) -> Self {
        self.add_r(rhs, Round::NearestEven)
    }

    /// Subtraction, round to nearest even.
    pub fn sub(&self, rhs: &Self) -> Self {
        self.sub_r(rhs, Round::NearestEven)
    }

    /// Multiplication, round to nearest even.
    pub fn mul(&self, rhs: &Self) -> Self {
        self.mul_r(rhs, Round::NearestEven)
    }

    /// Fused multiply-add `self * b + c`, round to nearest even.
    pub fn fma(&self, b: &Self, c: &Self) -> Self {
        self.fma_r(b, c, Round::NearestEven)
    }

    /// Addition with explicit rounding mode.
    pub fn add_r(&self, rhs: &Self, mode: Round) -> Self {
        let fmt = result_format(self, rhs);
        if self.is_nan() || rhs.is_nan() {
            return SoftFloat::nan(fmt);
        }
        match (self.class(), rhs.class()) {
            (FpClass::Inf, FpClass::Inf) => {
                if self.sign() == rhs.sign() {
                    *self
                } else {
                    SoftFloat::nan(fmt)
                }
            }
            (FpClass::Inf, _) => *self,
            (_, FpClass::Inf) => *rhs,
            (FpClass::Zero, FpClass::Zero) => {
                let sign = if self.sign() == rhs.sign() {
                    self.sign()
                } else {
                    zero_sum_sign(mode)
                };
                SoftFloat::zero(fmt, sign)
            }
            _ => {
                let e = self.to_exact().add(&rhs.to_exact());
                if e.is_zero() {
                    // exact cancellation of nonzero operands
                    return SoftFloat::zero(fmt, zero_sum_sign(mode));
                }
                SoftFloat::from_rounded(fmt, e.round(fmt, mode))
            }
        }
    }

    /// Subtraction with explicit rounding mode.
    pub fn sub_r(&self, rhs: &Self, mode: Round) -> Self {
        self.add_r(&rhs.neg(), mode)
    }

    /// Multiplication with explicit rounding mode.
    pub fn mul_r(&self, rhs: &Self, mode: Round) -> Self {
        let fmt = result_format(self, rhs);
        if self.is_nan() || rhs.is_nan() {
            return SoftFloat::nan(fmt);
        }
        let sign = self.sign() ^ rhs.sign();
        match (self.class(), rhs.class()) {
            (FpClass::Inf, FpClass::Zero) | (FpClass::Zero, FpClass::Inf) => SoftFloat::nan(fmt),
            (FpClass::Inf, _) | (_, FpClass::Inf) => SoftFloat::inf(fmt, sign),
            (FpClass::Zero, _) | (_, FpClass::Zero) => SoftFloat::zero(fmt, sign),
            _ => {
                let e = self.to_exact().mul(&rhs.to_exact());
                SoftFloat::from_rounded(fmt, e.round(fmt, mode))
            }
        }
    }

    /// Fused multiply-add `self * b + c` with explicit rounding mode: the
    /// product is exact and a single rounding happens at the end.
    pub fn fma_r(&self, b: &Self, c: &Self, mode: Round) -> Self {
        let fmt = result_format(self, b);
        assert_eq!(fmt, c.format(), "mixed-format fma");
        if self.is_nan() || b.is_nan() || c.is_nan() {
            return SoftFloat::nan(fmt);
        }
        let psign = self.sign() ^ b.sign();
        // product special cases
        let prod_class = match (self.class(), b.class()) {
            (FpClass::Inf, FpClass::Zero) | (FpClass::Zero, FpClass::Inf) => {
                return SoftFloat::nan(fmt)
            }
            (FpClass::Inf, _) | (_, FpClass::Inf) => FpClass::Inf,
            (FpClass::Zero, _) | (_, FpClass::Zero) => FpClass::Zero,
            _ => FpClass::Normal,
        };
        match (prod_class, c.class()) {
            (FpClass::Inf, FpClass::Inf) => {
                return if psign == c.sign() {
                    SoftFloat::inf(fmt, psign)
                } else {
                    SoftFloat::nan(fmt)
                };
            }
            (FpClass::Inf, _) => return SoftFloat::inf(fmt, psign),
            (_, FpClass::Inf) => return *c,
            (FpClass::Zero, FpClass::Zero) => {
                let sign = if psign == c.sign() {
                    psign
                } else {
                    zero_sum_sign(mode)
                };
                return SoftFloat::zero(fmt, sign);
            }
            (FpClass::Zero, _) => return *c,
            _ => {}
        }
        let e = self.to_exact().mul(&b.to_exact()).add(&c.to_exact());
        if e.is_zero() {
            return SoftFloat::zero(fmt, zero_sum_sign(mode));
        }
        SoftFloat::from_rounded(fmt, e.round(fmt, mode))
    }

    /// Convert to another format (rounding if narrowing).
    pub fn convert(&self, target: FpFormat, mode: Round) -> Self {
        match self.class() {
            FpClass::Nan => SoftFloat::nan(target),
            FpClass::Inf => SoftFloat::inf(target, self.sign()),
            FpClass::Zero => SoftFloat::zero(target, self.sign()),
            FpClass::Normal => SoftFloat::from_rounded(target, self.to_exact().round(target, mode)),
        }
    }

    /// Numeric comparison: `None` if either side is NaN, otherwise the
    /// IEEE total order of the values (with `-0 == +0`).
    pub fn numeric_cmp(&self, rhs: &Self) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        if self.is_nan() || rhs.is_nan() {
            return None;
        }
        let side = |v: &SoftFloat| -> i32 {
            match v.class() {
                FpClass::Inf => {
                    if v.sign() {
                        -2
                    } else {
                        2
                    }
                }
                FpClass::Zero => 0,
                FpClass::Normal => {
                    if v.sign() {
                        -1
                    } else {
                        1
                    }
                }
                FpClass::Nan => unreachable!(),
            }
        };
        let (sa, sb) = (side(self), side(rhs));
        if sa != sb {
            return Some(sa.cmp(&sb));
        }
        if sa == 0 || sa.abs() == 2 {
            return Some(Ordering::Equal);
        }
        let mag = self.to_exact().cmp_magnitude(&rhs.to_exact());
        Some(if sa < 0 { mag.reverse() } else { mag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::BINARY64;

    fn sf(v: f64) -> SoftFloat {
        SoftFloat::from_f64(F, v)
    }

    #[test]
    fn add_matches_host() {
        for (a, b) in [
            (1.0, 2.0),
            (0.1, 0.2),
            (1e300, 1e300),
            (1.0, -1.0),
            (3.5e-12, -7.25),
        ] {
            assert_eq!(
                sf(a).add(&sf(b)).to_f64().to_bits(),
                (a + b).to_bits(),
                "{a} + {b}"
            );
        }
    }

    #[test]
    fn mul_matches_host() {
        for (a, b) in [(1.5, 2.5), (0.1, 0.1), (1e-160, 1e-160), (-3.0, 7.0)] {
            let want: f64 = a * b;
            let want = if want.is_subnormal() { 0.0 } else { want };
            assert_eq!(sf(a).mul(&sf(b)).to_f64(), want, "{a} * {b}");
        }
    }

    #[test]
    fn fma_matches_host_mul_add() {
        for (a, b, c) in [(1.1, 2.2, 3.3), (1e8, 1e-8, -1.0), (0.1, 10.0, -1.0)] {
            assert_eq!(
                sf(a).fma(&sf(b), &sf(c)).to_f64().to_bits(),
                a.mul_add(b, c).to_bits(),
                "fma({a},{b},{c})"
            );
        }
    }

    #[test]
    fn fma_is_fused_not_sequential() {
        // a*b rounds away the low part; fused keeps it: (1+2^-30)^2 - 1 - 2^-29
        let a = 1.0 + 2f64.powi(-30);
        let fused = sf(a).fma(&sf(a), &sf(-1.0 - 2f64.powi(-29)));
        assert_eq!(fused.to_f64(), 2f64.powi(-60));
        let seq = sf(a).mul(&sf(a)).add(&sf(-1.0 - 2f64.powi(-29)));
        assert_ne!(seq.to_f64(), fused.to_f64());
    }

    #[test]
    fn inf_nan_propagation() {
        let inf = SoftFloat::inf(F, false);
        assert!(inf.sub(&inf).is_nan());
        assert!(inf.mul(&sf(0.0)).is_nan());
        assert!(sf(1.0).add(&SoftFloat::nan(F)).is_nan());
        assert_eq!(inf.add(&sf(-1e308)).class(), FpClass::Inf);
        assert!(SoftFloat::zero(F, false).mul(&inf).is_nan());
        // fma: inf*1 + (-inf) = NaN
        assert!(inf.fma(&sf(1.0), &inf.neg()).is_nan());
    }

    #[test]
    fn overflow_to_inf() {
        let big = sf(1e308);
        assert!(big.mul(&sf(10.0)).is_inf());
        assert!(big.add(&big).is_inf());
    }

    #[test]
    fn underflow_flushes_to_zero() {
        let tiny = sf(1e-300);
        let r = tiny.mul(&tiny); // 1e-600: subnormal-free -> zero
        assert!(r.is_zero());
        assert!(!r.sign());
        let rn = tiny.neg().mul(&tiny);
        assert!(rn.is_zero());
        assert!(rn.sign());
    }

    #[test]
    fn rounding_mode_directionality() {
        let a = sf(1.0);
        let tiny = sf(2f64.powi(-80));
        assert_eq!(
            a.add_r(&tiny, Round::TowardPosInf).to_f64(),
            1.0 + 2f64.powi(-52)
        );
        assert_eq!(a.add_r(&tiny, Round::TowardZero).to_f64(), 1.0);
        assert_eq!(a.add_r(&tiny, Round::NearestEven).to_f64(), 1.0);
        assert_eq!(
            a.neg().sub_r(&tiny, Round::TowardNegInf).to_f64(),
            -1.0 - 2f64.powi(-52)
        );
    }

    #[test]
    fn exact_cancellation_zero_sign() {
        let a = sf(1.5);
        assert_eq!(a.add(&a.neg()).to_f64().to_bits(), 0.0f64.to_bits());
        assert_eq!(
            a.add_r(&a.neg(), Round::TowardNegInf).to_f64().to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn convert_narrow_and_widen() {
        let third = sf(1.0 / 3.0);
        let wide = third.convert(FpFormat::B75, Round::NearestEven);
        assert_eq!(wide.to_f64(), 1.0 / 3.0); // widening is exact
        let narrow = wide.convert(F, Round::NearestEven);
        assert_eq!(narrow, third);
        let single = sf(0.1).convert(FpFormat::BINARY32, Round::NearestEven);
        assert_eq!(single.to_f64(), 0.1f32 as f64);
    }

    #[test]
    fn numeric_cmp_total() {
        use std::cmp::Ordering::*;
        assert_eq!(sf(1.0).numeric_cmp(&sf(2.0)), Some(Less));
        assert_eq!(sf(-1.0).numeric_cmp(&sf(-2.0)), Some(Greater));
        assert_eq!(sf(0.0).numeric_cmp(&sf(-0.0)), Some(Equal));
        assert_eq!(
            SoftFloat::inf(F, false).numeric_cmp(&sf(1e308)),
            Some(Greater)
        );
        assert_eq!(SoftFloat::nan(F).numeric_cmp(&sf(0.0)), None);
    }
}
