//! Correctly rounded division and square root.
//!
//! CoreGen ships divider and square-root operators alongside multiply/add
//! (the `Div` nodes of generated solver code run on them); these
//! implementations produce the correctly rounded result in any mode via
//! integer long division / integer square root with guard and sticky —
//! the same remainder-based decision real SRT dividers make.

use crate::exact::ExactFloat;
use crate::format::{FpClass, Round};
use crate::value::SoftFloat;
use csfma_bits::Bits;

impl SoftFloat {
    /// Division, round to nearest even.
    pub fn div(&self, rhs: &Self) -> Self {
        self.div_r(rhs, Round::NearestEven)
    }

    /// Division with explicit rounding mode.
    pub fn div_r(&self, rhs: &Self, mode: Round) -> Self {
        let fmt = self.format();
        assert_eq!(fmt, rhs.format(), "mixed-format division");
        if self.is_nan() || rhs.is_nan() {
            return SoftFloat::nan(fmt);
        }
        let sign = self.sign() ^ rhs.sign();
        match (self.class(), rhs.class()) {
            (FpClass::Inf, FpClass::Inf) | (FpClass::Zero, FpClass::Zero) => {
                return SoftFloat::nan(fmt)
            }
            (FpClass::Inf, _) | (_, FpClass::Zero) => return SoftFloat::inf(fmt, sign),
            (FpClass::Zero, _) | (_, FpClass::Inf) => return SoftFloat::zero(fmt, sign),
            _ => {}
        }

        // integer long division with fb + 3 extra quotient bits:
        // q = (sig_a << k) / sig_b, remainder -> sticky
        let fb = fmt.frac_bits as usize;
        let k = fb + 3;
        let num = Bits::from_u64(64, self.significand()).zext(64 + k).shl(k);
        let den = Bits::from_u64(64 + k, rhs.significand());
        let (q, r) = long_divide(&num, &den);
        // value = q * 2^(ea - eb - k); fold the sticky as an extra LSB
        let mut mag = q.concat(&Bits::from_u64(1, (!r.is_zero()) as u64));
        let scale = self.exp() as i64 - rhs.exp() as i64 - k as i64 - 1;
        // (the concat shifted the quotient up one bit; scale adjusts)
        if mag.is_zero() {
            mag = Bits::zero(1);
        }
        let e = ExactFloat::from_parts(sign, mag, scale);
        SoftFloat::from_rounded(fmt, e.round(fmt, mode))
    }

    /// Square root, round to nearest even.
    pub fn sqrt(&self) -> Self {
        self.sqrt_r(Round::NearestEven)
    }

    /// Square root with explicit rounding mode. Negative inputs yield NaN.
    pub fn sqrt_r(&self, mode: Round) -> Self {
        let fmt = self.format();
        if self.is_nan() || (self.sign() && !self.is_zero()) {
            return SoftFloat::nan(fmt);
        }
        match self.class() {
            FpClass::Zero => return *self,
            FpClass::Inf => return SoftFloat::inf(fmt, false),
            _ => {}
        }
        // sig * 2^e: make the exponent even, take isqrt of sig << k
        let fb = fmt.frac_bits as usize;
        let mut e = self.exp() as i64 - fb as i64;
        let mut sig = Bits::from_u64(64, self.significand()).zext(128 + 2 * fb);
        if e % 2 != 0 {
            sig = sig.shl(1);
            e -= 1;
        }
        let shifted = sig.shl(2 * fb + 6);
        let e_out = (e - (2 * fb as i64 + 6)) / 2;
        let (root, rem) = isqrt(&shifted);
        let mag = root.concat(&Bits::from_u64(1, (!rem.is_zero()) as u64));
        let ex = ExactFloat::from_parts(false, mag, e_out - 1);
        SoftFloat::from_rounded(fmt, ex.round(fmt, mode))
    }
}

/// Bit-serial restoring long division: returns `(quotient, remainder)`.
fn long_divide(num: &Bits, den: &Bits) -> (Bits, Bits) {
    let w = num.width();
    let den = den.zext(w);
    let mut rem = Bits::zero(w);
    let mut quo = Bits::zero(w);
    for pos in (0..w).rev() {
        rem = rem.shl(1);
        if num.bit(pos) {
            rem = rem.wrapping_add_u64(1);
        }
        if rem.unsigned_cmp(&den) != std::cmp::Ordering::Less {
            rem = rem.wrapping_sub(&den);
            quo.set_bit(pos, true);
        }
    }
    (quo, rem)
}

/// Bit-pair integer square root: returns `(root, remainder)` with
/// `root^2 + remainder == input` and `remainder <= 2*root`.
fn isqrt(v: &Bits) -> (Bits, Bits) {
    let w = v.width();
    let half = w.div_ceil(2);
    let mut root = Bits::zero(half + 1);
    let mut rem = Bits::zero(w + 2);
    let pairs = w.div_ceil(2);
    for i in (0..pairs).rev() {
        // bring down the next two bits
        let two = v.extract(2 * i, 2).zext(w + 2);
        rem = rem.shl(2).wrapping_add(&two);
        // trial subtrahend: (root << 2) + 1
        let trial = root.zext(w + 2).shl(2).wrapping_add_u64(1);
        if rem.unsigned_cmp(&trial) != std::cmp::Ordering::Less {
            rem = rem.wrapping_sub(&trial);
            root = root.shl(1).wrapping_add_u64(1);
        } else {
            root = root.shl(1);
        }
    }
    (root, rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    use crate::format::FpFormat;
    const F: FpFormat = FpFormat::BINARY64;

    fn sf(v: f64) -> SoftFloat {
        SoftFloat::from_f64(F, v)
    }

    #[test]
    fn exact_divisions() {
        for (a, b) in [(6.0, 3.0), (1.0, 2.0), (10.0, 4.0), (-9.0, 3.0)] {
            assert_eq!(sf(a).div(&sf(b)).to_f64(), a / b);
        }
    }

    #[test]
    fn inexact_division_matches_host() {
        for (a, b) in [(1.0, 3.0), (2.0, 7.0), (0.1, 0.3), (-5.0, 1.1)] {
            assert_eq!(
                sf(a).div(&sf(b)).to_f64().to_bits(),
                (a / b).to_bits(),
                "{a}/{b}"
            );
        }
    }

    #[test]
    fn division_specials() {
        let inf = SoftFloat::inf(F, false);
        let zero = SoftFloat::zero(F, false);
        assert!(inf.div(&inf).is_nan());
        assert!(zero.div(&zero).is_nan());
        assert!(sf(1.0).div(&zero).is_inf());
        assert!(sf(-1.0).div(&zero).is_inf() && sf(-1.0).div(&zero).sign());
        assert!(sf(1.0).div(&inf).is_zero());
    }

    #[test]
    fn sqrt_matches_host() {
        for v in [4.0, 2.0, 0.25, 1e10, 7.3, 0.1] {
            assert_eq!(
                sf(v).sqrt().to_f64().to_bits(),
                v.sqrt().to_bits(),
                "sqrt({v})"
            );
        }
        assert!(sf(-1.0).sqrt().is_nan());
        assert!(SoftFloat::zero(F, true).sqrt().is_zero());
        assert!(SoftFloat::inf(F, false).sqrt().is_inf());
    }

    #[test]
    fn isqrt_contract() {
        for v in [0u64, 1, 2, 3, 4, 15, 16, 17, 255, 256, 1 << 40] {
            let (r, rem) = isqrt(&Bits::from_u64(64, v));
            let root = r.to_u64();
            assert_eq!(root * root + rem.to_u64(), v, "isqrt({v})");
            assert!(rem.to_u64() <= 2 * root, "remainder bound at {v}");
        }
    }

    fn normal_f64() -> impl Strategy<Value = f64> {
        (any::<bool>(), 0u64..(1u64 << 52), -300i32..=300).prop_map(|(s, m, e)| {
            let v = f64::from_bits(((1023 + e) as u64) << 52 | m);
            if s {
                -v
            } else {
                v
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn prop_div_matches_host(a in normal_f64(), b in normal_f64()) {
            let want = a / b;
            prop_assume!(want.is_finite() && (want == 0.0 || !want.is_subnormal()));
            let got = sf(a).div(&sf(b)).to_f64();
            prop_assert_eq!(got.to_bits(), want.to_bits(), "{} / {}", a, b);
        }

        #[test]
        fn prop_sqrt_matches_host(a in normal_f64()) {
            let a = a.abs();
            let want = a.sqrt();
            let got = sf(a).sqrt().to_f64();
            prop_assert_eq!(got.to_bits(), want.to_bits(), "sqrt({})", a);
        }

        #[test]
        fn prop_directed_div_brackets(a in normal_f64(), b in normal_f64()) {
            prop_assume!((a / b).is_finite() && !(a / b).is_subnormal() && a / b != 0.0);
            let dn = sf(a).div_r(&sf(b), Round::TowardNegInf).to_f64();
            let up = sf(a).div_r(&sf(b), Round::TowardPosInf).to_f64();
            prop_assert!(dn <= up);
            prop_assert!((up - dn).abs() <= (a / b).abs() * 2f64.powi(-51));
        }
    }
}
