//! Criterion benchmarks of the HLS flow: solver generation, scheduling
//! and the Fig. 12 fusion pass.

use criterion::{criterion_group, criterion_main, Criterion};
use csfma_hls::{asap_schedule, fuse_critical_paths, FmaKind, FusionConfig, OpTiming};
use csfma_solvers::{generate_ldlsolve, solver_suite, KktSystem, LdlFactors};
use std::hint::black_box;

fn bench_solver_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver_generation");
    g.sample_size(20);
    for p in solver_suite() {
        g.bench_function(p.name, |bch| {
            bch.iter(|| {
                let k = KktSystem::assemble(black_box(&p));
                let f = LdlFactors::factor(&k.matrix);
                black_box(generate_ldlsolve(&f))
            })
        });
    }
    g.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduling");
    let p = &solver_suite()[1];
    let k = KktSystem::assemble(p);
    let f = LdlFactors::factor(&k.matrix);
    let prog = generate_ldlsolve(&f);
    let t = OpTiming::default();
    g.bench_function("asap/solver2", |bch| {
        bch.iter(|| black_box(asap_schedule(black_box(&prog.cdfg), &t)))
    });
    g.finish();
}

fn bench_fusion_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("fusion_pass");
    g.sample_size(10);
    let p = &solver_suite()[0];
    let k = KktSystem::assemble(p);
    let f = LdlFactors::factor(&k.matrix);
    let prog = generate_ldlsolve(&f);
    for kind in [FmaKind::Pcs, FmaKind::Fcs] {
        g.bench_function(format!("{kind:?}/solver1"), |bch| {
            bch.iter(|| {
                black_box(fuse_critical_paths(
                    black_box(&prog.cdfg),
                    &FusionConfig::new(kind),
                ))
            })
        });
    }
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    use csfma_hls::optimize::optimize;
    use csfma_hls::parse_program;
    let mut g = c.benchmark_group("optimizer");
    let mut src = String::new();
    for i in 0..40 {
        src.push_str(&format!(
            "y{i} = a{} * w + b{} * w + a{} * w * 1.0 + 0.0;
",
            i % 8,
            i % 8,
            i % 8
        ));
    }
    src.push_str("out z = y0");
    for i in 1..40 {
        src.push_str(&format!(" + y{i}"));
    }
    src.push(';');
    let graph = parse_program(&src).unwrap();
    g.bench_function("cse_fold_identities", |bch| {
        bch.iter(|| black_box(optimize(black_box(&graph))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_solver_generation,
    bench_scheduling,
    bench_fusion_pass,
    bench_optimizer
);
criterion_main!(benches);
