//! Criterion micro-benchmarks of the behavioral arithmetic units and the
//! design-choice ablations called out in DESIGN.md.
//!
//! These measure *simulation* throughput (how fast the bit-accurate
//! models run on the host), plus the carry-spacing ablation of
//! Sec. III-E / Sec. V (5 vs 11 vs 55) at the behavioral level.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use csfma_bits::Bits;
use csfma_carrysave::CsNumber;
use csfma_core::{ChainEvaluator, ClassicFma, CsFmaFormat, CsFmaUnit, CsOperand};
use csfma_softfloat::{FpFormat, Round, SoftFloat};
use std::hint::black_box;

fn sf(v: f64) -> SoftFloat {
    SoftFloat::from_f64(FpFormat::BINARY64, v)
}

fn bench_fma_units(c: &mut Criterion) {
    let mut g = c.benchmark_group("fma_units");
    let a = sf(1.234567890123);
    let b = sf(-0.987654321);
    let cc = sf(std::f64::consts::PI);

    for fmt in [
        CsFmaFormat::PCS_55_ZD,
        CsFmaFormat::PCS_58_LZA,
        CsFmaFormat::FCS_29_LZA,
    ] {
        let unit = CsFmaUnit::new(fmt);
        let ao = CsOperand::from_ieee(&a, fmt);
        let co = CsOperand::from_ieee(&cc, fmt);
        g.bench_function(fmt.name, |bch| {
            bch.iter(|| black_box(unit.fma(black_box(&ao), black_box(&b), black_box(&co))))
        });
    }

    let classic = ClassicFma::new(Round::NearestEven);
    g.bench_function("Classic FMA (soft-float)", |bch| {
        bch.iter(|| black_box(classic.fma(black_box(&a), black_box(&b), black_box(&cc))))
    });
    g.bench_function("discrete mul+add (soft-float)", |bch| {
        bch.iter(|| black_box(b.mul(black_box(&cc)).add(black_box(&a))))
    });
    g.finish();
}

fn bench_conversions(c: &mut Criterion) {
    let mut g = c.benchmark_group("conversions");
    let v = sf(std::f64::consts::E);
    for fmt in [CsFmaFormat::PCS_55_ZD, CsFmaFormat::FCS_29_LZA] {
        g.bench_function(format!("ieee_to_cs/{}", fmt.name), |bch| {
            bch.iter(|| black_box(CsOperand::from_ieee(black_box(&v), fmt)))
        });
        let op = CsOperand::from_ieee(&v, fmt);
        g.bench_function(format!("cs_to_ieee/{}", fmt.name), |bch| {
            bch.iter(|| black_box(op.to_ieee(FpFormat::BINARY64, Round::NearestEven)))
        });
    }
    g.finish();
}

/// Ablation: carry-reduce spacing 5 / 11 / 55 over the 385-bit window
/// (Sec. III-E weighs these; the paper picks 11 for area at nearly the
/// 5-bit delay — here we measure the behavioral cost and, in the fabric
/// model's terms, the stored carry bits).
fn bench_carry_spacing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_carry_spacing");
    let sum = Bits::from_limbs(385, &[0x123456789abcdef0; 7]);
    let carry = Bits::from_limbs(385, &[0x0fedcba987654321; 7]);
    let cs = CsNumber::new(sum, carry);
    for spacing in [5usize, 11, 55] {
        g.bench_function(format!("spacing_{spacing}"), |bch| {
            bch.iter(|| black_box(cs.carry_reduce(black_box(spacing))))
        });
    }
    g.finish();
}

/// Ablation: recurrence chains through each format (the Fig. 14 workload
/// inner loop).
fn bench_recurrence_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("recurrence_chain");
    g.sample_size(20);
    for fmt in [CsFmaFormat::PCS_55_ZD, CsFmaFormat::FCS_29_LZA] {
        let chain = ChainEvaluator::new(CsFmaUnit::new(fmt));
        let (b1, b2) = (sf(1.75), sf(-0.3125));
        let seeds = [sf(0.3), sf(-0.7), sf(1.1)];
        g.bench_function(format!("x50/{}", fmt.name), |bch| {
            bch.iter_batched(
                || (),
                |_| {
                    black_box(chain.run_recurrence(&b1, &b2, [&seeds[0], &seeds[1], &seeds[2]], 48))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Fused dot product vs an equivalent FMA chain (same 8 terms).
fn bench_dot_vs_chain(c: &mut Criterion) {
    use csfma_core::CsDotUnit;
    let mut g = c.benchmark_group("dot_vs_chain");
    let fmt = CsFmaFormat::FCS_29_LZA;
    let dot = CsDotUnit::new(fmt);
    let fma = CsFmaUnit::new(fmt);
    let terms: Vec<(SoftFloat, CsOperand)> = (0..8)
        .map(|i| {
            (
                sf(0.1 + i as f64),
                CsOperand::from_ieee(&sf(1.0 - 0.05 * i as f64), fmt),
            )
        })
        .collect();
    g.bench_function("fused_dot_8", |bch| {
        bch.iter(|| black_box(dot.dot(black_box(&terms))))
    });
    g.bench_function("fma_chain_8", |bch| {
        bch.iter(|| {
            let mut acc = CsOperand::zero(fmt, false);
            for (b, cc) in &terms {
                acc = fma.fma(&acc, b, cc);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Plain AND-array rows vs radix-4 Booth recoding in the mantissa
/// multiplier (tree height is the architectural argument; this measures
/// the behavioral-model cost).
fn bench_multiplier_styles(c: &mut Criterion) {
    use csfma_carrysave::CsNumber;
    use csfma_units::multiplier::{multiply_cs_by_binary, multiply_cs_by_binary_booth};
    let mut g = c.benchmark_group("multiplier_styles");
    let cs = CsNumber::new(
        Bits::from_limbs(110, &[0x0123_4567_89ab_cdef, 0x0fed_cba9_8765_4321]),
        Bits::from_limbs(110, &[0x0101_0101_0101_0101, 0x1010_1010_1010_1010]),
    );
    let b = Bits::from_limbs(53, &[0x001f_ffff_ffff_ffff]);
    g.bench_function("and_array_rows", |bch| {
        bch.iter(|| black_box(multiply_cs_by_binary(black_box(&cs), black_box(&b), false)))
    });
    g.bench_function("booth_radix4", |bch| {
        bch.iter(|| {
            black_box(multiply_cs_by_binary_booth(
                black_box(&cs),
                black_box(&b),
                false,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fma_units,
    bench_conversions,
    bench_carry_spacing,
    bench_recurrence_chain,
    bench_dot_vs_chain,
    bench_multiplier_styles
);
criterion_main!(benches);
