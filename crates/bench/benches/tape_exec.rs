//! Criterion benchmarks of the batch execution engine: scalar oracle vs
//! compiled tape, both backends, plus compile and cache-hit cost.

use criterion::{criterion_group, criterion_main, Criterion};
use csfma_bench::throughput::bench_graphs;
use csfma_hls::{
    compile, compile_cached,
    interp::{eval_bit_accurate, eval_f64},
    TapeBackend,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::hint::black_box;

const ROWS: usize = 256;

fn bench_eval(c: &mut Criterion) {
    for (name, g) in bench_graphs() {
        let tape = compile(&g).expect("bench graphs compile");
        let ni = tape.num_inputs();
        let mut rng = StdRng::seed_from_u64(7);
        let stim: Vec<f64> = (0..ROWS * ni)
            .map(|_| rng.gen_range(-100.0..100.0))
            .collect();
        let one_row: HashMap<String, f64> = tape
            .input_names()
            .iter()
            .enumerate()
            .map(|(k, n)| (n.clone(), stim[k]))
            .collect();

        let mut grp = c.benchmark_group(format!("tape/{name}"));
        grp.sample_size(10);
        grp.bench_function("scalar_bit_1row", |b| {
            b.iter(|| black_box(eval_bit_accurate(black_box(&g), &one_row)))
        });
        grp.bench_function("scalar_f64_1row", |b| {
            b.iter(|| black_box(eval_f64(black_box(&g), &one_row)))
        });
        grp.bench_function("tape_bit_batch", |b| {
            b.iter(|| black_box(tape.eval_batch(TapeBackend::BitAccurate, black_box(&stim), 1)))
        });
        grp.bench_function("tape_f64_batch", |b| {
            b.iter(|| black_box(tape.eval_batch(TapeBackend::F64, black_box(&stim), 1)))
        });
        grp.finish();
    }
}

fn bench_compile(c: &mut Criterion) {
    let (_, g) = bench_graphs().pop().expect("ldlsolve graph");
    let mut grp = c.benchmark_group("tape/compile");
    grp.sample_size(10);
    grp.bench_function("cold_ldlsolve", |b| {
        b.iter(|| black_box(compile(&g).unwrap()))
    });
    grp.bench_function("cached_ldlsolve", |b| {
        let _ = compile_cached(&g).unwrap();
        b.iter(|| black_box(compile_cached(&g).unwrap()))
    });
    grp.finish();
}

criterion_group!(benches, bench_eval, bench_compile);
criterion_main!(benches);
