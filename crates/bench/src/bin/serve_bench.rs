//! Serve-layer load benchmark and acceptance audit, written to
//! `results/BENCH_serve.json`.
//!
//! ```sh
//! cargo run -q --release -p csfma-bench --bin serve_bench [SEED [CLIENTS...]]
//! ```
//!
//! Defaults: fault seed 7 (nonzero — every request runs under a seeded
//! transient-fault sprinkle), client counts 1, 4, 16. Exit status 1
//! when the gate fails: any unanswered frame, any digest mismatch on a
//! non-quarantined result, an unbalanced server ledger, a contained
//! panic, or a kill-mid-flight drill the server does not survive.

use csfma_bench::serve::{run_serve_bench, to_json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(7);
    let clients: Vec<usize> = {
        let rest: Vec<usize> = args.filter_map(|v| v.parse().ok()).collect();
        if rest.is_empty() {
            vec![1, 4, 16]
        } else {
            rest
        }
    };
    assert!(
        seed != 0,
        "the serve bench is a drill under fire: seed must be nonzero"
    );

    let bench = run_serve_bench(seed, &clients);

    let json = to_json(&bench);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_serve.json", &json).expect("write results");
    println!("{json}");

    for s in &bench.scenarios {
        eprintln!(
            "audit: {:>2} client(s)  p50 {:>8.3} ms  p99 {:>8.3} ms  {:>8.0} rows/s  \
             shed {:>3}  deadline {:>3}  quarantined {:>4}  {}",
            s.clients,
            s.p50_ms,
            s.p99_ms,
            s.rows_per_sec,
            s.shed,
            s.deadline,
            s.quarantined_rows,
            if s.passes() { "ok" } else { "FAIL" },
        );
        if !s.passes() {
            eprintln!(
                "audit:     FAIL detail: unanswered {}  digest_mismatches {}  errors {}  \
                 reconciled {}  panics_contained {}",
                s.unanswered,
                s.digest_mismatches,
                s.errors,
                s.reconciled(),
                s.server.panics_contained,
            );
        }
    }
    eprintln!(
        "audit: kill-mid-flight: {} torn connection(s), survived: {}, contained panics: {}",
        bench.kill.torn_connections, bench.kill.server_survived, bench.kill.panics_contained,
    );

    if bench.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
