//! One-shot reproduction report: every table and figure of the paper's
//! evaluation, printed in sequence with the paper's values alongside.
//!
//! ```sh
//! cargo run -q --release -p csfma-bench --bin repro_report
//! ```

use csfma_bench::{fig13, fig14, fig15, table1, table2};

fn main() {
    println!("================================================================");
    println!(" csfma reproduction report — Liebig/Huthmann/Koch, IPDPSW 2013");
    println!("================================================================");

    println!("\n--- Table I: synthesis results (measured / paper) ---");
    let paper1: [(f64, usize, usize, usize); 4] = [
        (244.0, 9, 1253, 13),
        (190.0, 11, 1508, 7),
        (231.0, 5, 5832, 21),
        (211.0, 3, 4685, 12),
    ];
    for (r, p) in table1().iter().zip(paper1.iter()) {
        println!(
            "{:<20} fMax {:>3.0}/{:<3.0}  cyc {:>2}/{:<2}  LUT {:>4}/{:<4}  DSP {:>2}/{:<2}",
            r.name, r.fmax_mhz, p.0, r.cycles, p.1, r.luts, p.2, r.dsps, p.3
        );
    }

    println!("\n--- Fig. 13: latency per multiply-add ---");
    let rows = fig13();
    let best = rows[0].1.min(rows[1].1);
    for (n, ns) in &rows {
        println!("{n:<20} {ns:>6.1} ns");
    }
    println!(
        "speedups: PCS {:.2}x (paper ~1.7x), FCS {:.2}x (paper ~2.5x)",
        best / rows[2].1,
        best / rows[3].1
    );

    println!("\n--- Fig. 14: avg mantissa error of x[50] (20 runs) ---");
    for r in fig14(20, 48, 2013) {
        println!("{:<22} {:>12.6} ulp", r.name, r.avg_ulp);
    }

    println!("\n--- Table II: energy per multiply-add ---");
    let paper2 = [0.54, 0.74, 2.67, 2.36];
    for ((n, nj), p) in table2(600, 42).iter().zip(paper2.iter()) {
        println!("{n:<20} {nj:>5.2} nJ (paper {p:.2})");
    }

    println!("\n--- Fig. 15: ldlsolve schedule cycles ---");
    for r in fig15() {
        println!(
            "{:<16} discrete {:>4}  PCS {:>4} (-{:>4.1}%)  FCS {:>4} (-{:>4.1}%)",
            r.solver,
            r.discrete,
            r.pcs,
            r.reduction_pcs(),
            r.fcs,
            r.reduction_fcs()
        );
    }
    println!("(paper: 26.0%..50.1% reduction, up to 39 time-multiplexed units)");
}
