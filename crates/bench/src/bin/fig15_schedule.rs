//! Regenerate **Fig. 15**: `ldlsolve()` schedule length (cycles) for the
//! three trajectory-planning solvers of increasing complexity, with
//! discrete IEEE operators and after automatic P/FCS-FMA insertion.

use csfma_bench::fig15;

fn main() {
    println!("Fig. 15: ldlsolve() schedule cycles (200 MHz operators)");
    println!(
        "{:<16} {:>5} {:>9} {:>14} {:>14} {:>10}",
        "solver", "dim", "discrete", "PCS-FMA", "FCS-FMA", "FMA units"
    );
    let rows = fig15();
    for r in &rows {
        println!(
            "{:<16} {:>5} {:>9} {:>6} (-{:>4.1}%) {:>6} (-{:>4.1}%) {:>4} / {:<4}",
            r.solver,
            r.dim,
            r.discrete,
            r.pcs,
            r.reduction_pcs(),
            r.fcs,
            r.reduction_fcs(),
            r.fma_units.0,
            r.fma_units.1,
        );
    }
    println!("\noperator-pool area (Nymble time-multiplexing model):");
    println!(
        "{:<16} {:>16} {:>16} {:>16}",
        "solver", "discrete", "PCS-FMA", "FCS-FMA"
    );
    for r in &rows {
        println!(
            "{:<16} {:>9} LUTs {:>2}D {:>9} LUTs {:>2}D {:>9} LUTs {:>2}D",
            r.solver,
            r.discrete_area.luts,
            r.discrete_area.dsps,
            r.pcs_area.luts,
            r.pcs_area.dsps,
            r.fcs_area.luts,
            r.fcs_area.dsps,
        );
    }
    let max_red = rows.iter().map(|r| r.reduction_fcs()).fold(0.0, f64::max);
    let min_red = rows.iter().map(|r| r.reduction_pcs()).fold(100.0, f64::min);
    println!(
        "\nreductions span {min_red:.1}% .. {max_red:.1}% (paper: 26.0% .. 50.1%, up to 39 units)"
    );
}
