//! Export every experiment's data as CSV under `results/` — plot-ready
//! series for anyone regenerating the paper's figures with their own
//! tooling.
//!
//! ```sh
//! cargo run -q -p csfma-bench --bin export_results
//! ```

use csfma_bench::{fig13, fig14, fig15, table1, table2};
use std::fs;
use std::io::Write as _;

fn write(path: &str, content: &str) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(content.as_bytes())
}

fn main() -> std::io::Result<()> {
    fs::create_dir_all("results")?;

    // Table I
    let mut t1 = String::from("architecture,fmax_mhz,cycles,luts,dsps,latency_ns\n");
    for r in table1() {
        t1.push_str(&format!(
            "{},{:.1},{},{},{},{:.2}\n",
            r.name,
            r.fmax_mhz,
            r.cycles,
            r.luts,
            r.dsps,
            r.latency_ns()
        ));
    }
    write("results/table1_synthesis.csv", &t1)?;

    // Fig. 13
    let mut f13 = String::from("architecture,latency_ns\n");
    for (name, ns) in fig13() {
        f13.push_str(&format!("{name},{ns:.3}\n"));
    }
    write("results/fig13_latency.csv", &f13)?;

    // Fig. 14
    let mut f14 = String::from("implementation,avg_mantissa_error_ulp\n");
    for r in fig14(20, 48, 2013) {
        f14.push_str(&format!("{},{:.9}\n", r.name, r.avg_ulp));
    }
    write("results/fig14_accuracy.csv", &f14)?;

    // Table II
    let mut t2 = String::from("unit,energy_nj_per_op\n");
    for (name, nj) in table2(600, 42) {
        t2.push_str(&format!("{name},{nj:.4}\n"));
    }
    write("results/table2_energy.csv", &t2)?;

    // Fig. 15
    let mut f15 = String::from(
        "solver,kkt_dim,discrete_cycles,pcs_cycles,fcs_cycles,pcs_reduction_pct,fcs_reduction_pct,pcs_luts,fcs_luts\n",
    );
    for r in fig15() {
        f15.push_str(&format!(
            "{},{},{},{},{},{:.1},{:.1},{},{}\n",
            r.solver,
            r.dim,
            r.discrete,
            r.pcs,
            r.fcs,
            r.reduction_pcs(),
            r.reduction_fcs(),
            r.pcs_area.luts,
            r.fcs_area.luts,
        ));
    }
    write("results/fig15_schedule.csv", &f15)?;

    for f in fs::read_dir("results")? {
        let f = f?;
        println!(
            "wrote {} ({} bytes)",
            f.path().display(),
            f.metadata()?.len()
        );
    }
    Ok(())
}
