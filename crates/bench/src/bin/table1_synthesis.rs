//! Regenerate **Table I** (synthesis results): fMax, cycles, LUTs, DSPs
//! for CoreGen, FloPoCo, PCS-FMA and FCS-FMA on the calibrated Virtex-6
//! model.

use csfma_bench::table1;

const PAPER: [(&str, f64, usize, usize, usize); 4] = [
    ("Xilinx CoreGen", 244.0, 9, 1253, 13),
    ("FloPoCo FPPipeline", 190.0, 11, 1508, 7),
    ("PCS-FMA", 231.0, 5, 5832, 21),
    ("FCS-FMA", 211.0, 3, 4685, 12),
];

fn main() {
    println!("Table I: Synthesis results (model vs paper, Virtex-6 speed grade -1)");
    println!(
        "{:<22} {:>12} {:>8} {:>16} {:>6}",
        "Architecture", "fMax [MHz]", "Cycles", "LUTs", "DSPs"
    );
    for (r, p) in table1().iter().zip(PAPER.iter()) {
        assert_eq!(r.name, p.0);
        println!(
            "{:<22} {:>5.0} ({:>4.0}) {:>4} ({:>2}) {:>7} ({:>5}) {:>3} ({:>2})",
            r.name, r.fmax_mhz, p.1, r.cycles, p.2, r.luts, p.3, r.dsps, p.4
        );
    }
    println!("\n(model value first, paper's post-layout value in parentheses)");
}
