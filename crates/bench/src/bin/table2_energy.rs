//! Regenerate **Table II**: average energy per multiply-add computation
//! (nJ), from the switching-activity model in pipeline steady state on
//! the Sec. IV-B workload.

use csfma_bench::table2;

fn main() {
    let rows = table2(600, 42);
    let paper = [0.54, 0.74, 2.67, 2.36];
    println!("Table II: Average energy per multiply-add computation (nJ)");
    for ((name, nj), p) in rows.iter().zip(paper.iter()) {
        println!("{name:<18} {nj:>6.2} nJ (paper {p:.2})");
    }
    let x = rows[0].1;
    println!(
        "\nCS units vs CoreGen: PCS {:.1}x, FCS {:.1}x (paper: 4.9x / 4.4x; \"4x to 5x increase\")",
        rows[2].1 / x,
        rows[3].1 / x
    );
}
