//! Differential stress test: hammer every FMA format with random and
//! adversarial operand mixes, tracking the worst observed deviation from
//! the exact result (in double ULPs at the dominant-operand scale — the
//! "never more inaccurate than IEEE 754 double precision" envelope).
//!
//! ```sh
//! cargo run -q --release -p csfma-bench --bin stress_accuracy [ops]
//! ```

use csfma_core::{exact_fma, CsFmaFormat, CsFmaUnit, CsOperand};
use csfma_softfloat::{FpFormat, SoftFloat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Stats {
    ops: usize,
    worst: f64,
    worst_case: (f64, f64, f64),
    buckets: [usize; 7], // log10 error buckets: <1e-18 .. >=1e-12
}

impl Stats {
    fn new() -> Self {
        Stats {
            ops: 0,
            worst: 0.0,
            worst_case: (0.0, 0.0, 0.0),
            buckets: [0; 7],
        }
    }

    fn record(&mut self, rel: f64, case: (f64, f64, f64)) {
        self.ops += 1;
        if rel > self.worst {
            self.worst = rel;
            self.worst_case = case;
        }
        let b = if rel <= 0.0 {
            0
        } else {
            ((rel.log10() + 18.0).floor().clamp(0.0, 6.0)) as usize
        };
        self.buckets[b] += 1;
    }
}

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let mut rng = StdRng::seed_from_u64(0xC5F3A);
    let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);

    let formats = [
        CsFmaFormat::PCS_55_ZD,
        CsFmaFormat::PCS_58_LZA,
        CsFmaFormat::FCS_29_LZA,
    ];
    for fmt in formats {
        let unit = CsFmaUnit::new(fmt);
        let mut st = Stats::new();
        for i in 0..ops {
            // mix of regimes: uniform, wide exponents, near-cancellation
            let (a, b, c) = match i % 4 {
                0 => (
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                ),
                1 => {
                    let e = |r: &mut StdRng| 2f64.powi(r.gen_range(-200..200));
                    (
                        rng.gen_range(-1.0..1.0) * e(&mut rng),
                        rng.gen_range(-1.0..1.0) * e(&mut rng),
                        rng.gen_range(-1.0..1.0) * e(&mut rng),
                    )
                }
                2 => {
                    // a ~ -b*c up to a small perturbation
                    let b = rng.gen_range(0.5..2.0);
                    let c = rng.gen_range(0.5..2.0);
                    let a = -(b * c) * (1.0 + rng.gen_range(-1e-10..1e-10));
                    (a, b, c)
                }
                _ => (
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(1.0..32.0),
                    rng.gen_range(-1.0..1.0),
                ),
            };
            let (av, bv, cv) = (sf(a), sf(b), sf(c));
            let ao = CsOperand::from_ieee(&av, fmt);
            let co = CsOperand::from_ieee(&cv, fmt);
            let r = unit.fma(&ao, &bv, &co);
            let exact = exact_fma(&av, &bv, &cv);
            let diff = r.exact_value().sub(&exact);
            if diff.is_zero() {
                st.record(0.0, (a, b, c));
                continue;
            }
            // error relative to the dominant operand (the double envelope)
            let p = bv.to_exact().mul(&cv.to_exact());
            let dom = if av.to_exact().cmp_magnitude(&p) == std::cmp::Ordering::Greater {
                av.to_exact()
            } else {
                p
            };
            let rel = diff.to_f64_lossy().abs() / dom.to_f64_lossy().abs().max(1e-300);
            st.record(rel, (a, b, c));
        }
        println!("\n{}: {} ops", fmt.name, st.ops);
        println!(
            "  worst relative error: {:.3e} (double envelope: 1.1e-16)",
            st.worst
        );
        println!(
            "  worst case: a={:.6e} b={:.6e} c={:.6e}",
            st.worst_case.0, st.worst_case.1, st.worst_case.2
        );
        let labels = [
            "<1e-17", "1e-17", "1e-16", "1e-15", "1e-14", "1e-13", ">=1e-12",
        ];
        print!("  histogram:");
        for (l, b) in labels.iter().zip(st.buckets.iter()) {
            print!(" {l}:{b}");
        }
        println!();
        assert!(
            st.worst < 1.12e-16,
            "{} exceeded the double envelope: {:.3e}",
            fmt.name,
            st.worst
        );
    }
    println!("\nall formats stayed within one binary64 ULP of the dominant operand.");
}
