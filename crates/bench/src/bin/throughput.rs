//! Batch-execution throughput report: compiled tape vs scalar oracle,
//! written to `results/BENCH_throughput.json`.
//!
//! ```sh
//! cargo run -q --release -p csfma-bench --bin throughput [ROWS [SCALAR_CAP [SEED]]]
//! ```
//!
//! Defaults: 10000 rows per datapath, oracle audited on 1024 of them,
//! seed 42. Exit status 1 if any tape output diverged from the scalar
//! oracle or the headline speedup target (>= 5x, bit-accurate backend,
//! 8 threads, best graph) is missed — so CI can run a tiny smoke with
//! relaxed expectations via arguments, while the checked-in baseline is
//! regenerated with the defaults.

use csfma_bench::throughput::{throughput, to_json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let cap: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(1024);
    let seed: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(42);

    let rows_data = throughput(rows, cap, seed);
    let json = to_json(&rows_data, rows, seed);

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_throughput.json", &json).expect("write results");
    println!("{json}");

    let all_equal = rows_data.iter().all(|r| r.bitwise_equal);
    let best_bit_8t = rows_data
        .iter()
        .filter(|r| r.backend == "bit")
        .map(|r| r.speedup_8t)
        .fold(0.0f64, f64::max);
    eprintln!(
        "audit: bitwise_equal={all_equal}, best bit-accurate 8-thread speedup {best_bit_8t:.1}x"
    );

    // fused-graph regression gates, both against the same binary's scalar
    // row loop (`speedup_1t` is self-relative, so the gate holds across
    // machine speeds) and against the pre-SoA/pre-optimizer baseline
    // (checked-in BENCH_throughput.json before this engine landed):
    //
    //  * PCS datapaths must clear >= 10x single-thread — the bit-plane
    //    chunk kernel (DESIGN.md §13) makes the 64-lane word-parallel
    //    evaluation an order of magnitude faster than the scalar units.
    //  * The FCS datapath keeps the older >= 1.5x-vs-baseline floor (its
    //    13-block window and 3-row carry-save layers leave more scalar
    //    per-lane work between plane stages).
    const PLANE_GATE: &[(&str, f64)] = &[("listing1-pcs", 10.0), ("horner8-pcs", 10.0)];
    const BASELINE_US: &[(&str, f64)] = &[
        ("listing1-pcs", 69.9340),
        ("listing1-fcs", 88.0146),
        ("horner8-pcs", 303.2365),
    ];
    let mut fused_ok = true;
    for &(graph, baseline) in BASELINE_US {
        let Some(r) = rows_data
            .iter()
            .find(|r| r.graph == graph && r.backend == "bit")
        else {
            continue;
        };
        let us_1t = r
            .tape_us_per_row
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|(_, us)| *us)
            .unwrap_or(f64::INFINITY);
        let gain = baseline / us_1t;
        eprintln!(
            "audit: {graph} bit 1t {us_1t:.2} us/row, {gain:.2}x vs baseline {baseline:.2}, \
             {:.2}x vs scalar",
            r.speedup_1t
        );
        if gain < 1.5 {
            fused_ok = false;
        }
        if let Some(&(_, floor)) = PLANE_GATE.iter().find(|(g, _)| *g == graph) {
            if r.speedup_1t < floor {
                eprintln!(
                    "audit: {graph} speedup_1t {:.2}x below plane gate {floor}x",
                    r.speedup_1t
                );
                fused_ok = false;
            }
        }
    }

    if !all_equal || best_bit_8t < 5.0 || !fused_ok {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
