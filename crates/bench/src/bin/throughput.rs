//! Batch-execution throughput report: compiled tape vs scalar oracle,
//! written to `results/BENCH_throughput.json`.
//!
//! ```sh
//! cargo run -q --release -p csfma-bench --bin throughput [ROWS [SCALAR_CAP [SEED]]]
//! ```
//!
//! Defaults: 10000 rows per datapath, oracle audited on 1024 of them,
//! seed 42. Exit status 1 if any tape output diverged from the scalar
//! oracle or the headline speedup target (>= 5x, bit-accurate backend,
//! 8 threads, best graph) is missed — so CI can run a tiny smoke with
//! relaxed expectations via arguments, while the checked-in baseline is
//! regenerated with the defaults.
//!
//! The 8-thread gates are environment-aware: parallel *speedup* can only
//! be demanded of hardware that has the cores to give it. On a machine
//! with >= 8 hardware threads every bit-backend row must show
//! `speedup_8t > speedup_1t`; on smaller hosts the gate degrades to a
//! no-regression bound (`speedup_8t >= 0.75 * speedup_1t`), i.e. an
//! 8-way oversubscribed run may not pay more than 25% scheduling tax —
//! on a host where all 8 workers time-share one core, the tax is pure
//! context-switch overhead and is largest on the cheapest per-row
//! graphs.
//! Bitwise equality is gated unconditionally everywhere.

use csfma_bench::throughput::{eval_many_scenario, throughput, to_json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let cap: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(1024);
    let seed: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(42);

    let rows_data = throughput(rows, cap, seed);
    let many = eval_many_scenario((rows / 4).max(64), seed);
    let json = to_json(&rows_data, &many, rows, seed);

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_throughput.json", &json).expect("write results");
    println!("{json}");

    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let all_equal = rows_data.iter().all(|r| r.bitwise_equal);
    let best_bit_8t = rows_data
        .iter()
        .filter(|r| r.backend == "bit")
        .map(|r| r.speedup_8t)
        .fold(0.0f64, f64::max);
    eprintln!(
        "audit: bitwise_equal={all_equal}, best bit-accurate 8-thread speedup {best_bit_8t:.1}x \
         ({hw_threads} hardware thread(s))"
    );

    // 8-thread scaling audit over every bit-backend row (module docs:
    // strict on real 8-way hardware, no-regression elsewhere)
    let mut scaling_ok = true;
    for r in rows_data.iter().filter(|r| r.backend == "bit") {
        let floor = if hw_threads >= 8 {
            r.speedup_1t
        } else {
            0.75 * r.speedup_1t
        };
        let verdict = if r.speedup_8t >= floor { "ok" } else { "FAIL" };
        eprintln!(
            "audit: {} bit 8t {:.2}x vs 1t {:.2}x (floor {:.2}x, workers {}, \
             claims {}, steals {}, chunk {} rows): {verdict}",
            r.graph,
            r.speedup_8t,
            r.speedup_1t,
            floor,
            r.steal_workers,
            r.steal_claims,
            r.steal_steals,
            r.chunk_size,
        );
        if r.speedup_8t < floor {
            scaling_ok = false;
        }
    }

    // eval_many scenario: bitwise equality is unconditional; the
    // speedup-vs-sequential bound follows the same environment rule
    let many_floor = if hw_threads >= 8 { 1.0 } else { 0.85 };
    eprintln!(
        "audit: eval_many {} request(s), {} rows, {:.2}x vs sequential (floor {many_floor:.2}x), \
         bitwise_equal={}, workers {}, claims {}, steals {}",
        many.requests,
        many.rows_total,
        many.speedup_vs_sequential,
        many.bitwise_equal,
        many.workers,
        many.claims,
        many.steals,
    );
    let many_ok = many.bitwise_equal && many.speedup_vs_sequential >= many_floor;
    if !many_ok {
        eprintln!("audit: eval_many scenario FAILED its gate");
    }

    // fused-graph regression gates, both against the same binary's scalar
    // row loop (`speedup_1t` is self-relative, so the gate holds across
    // machine speeds) and against the pre-SoA/pre-optimizer baseline
    // (checked-in BENCH_throughput.json before this engine landed):
    //
    //  * PCS datapaths must clear >= 10x single-thread — the bit-plane
    //    chunk kernel (DESIGN.md §13) makes the 64-lane word-parallel
    //    evaluation an order of magnitude faster than the scalar units.
    //  * The FCS datapath keeps the older >= 1.5x-vs-baseline floor (its
    //    13-block window and 3-row carry-save layers leave more scalar
    //    per-lane work between plane stages).
    const PLANE_GATE: &[(&str, f64)] = &[("listing1-pcs", 10.0), ("horner8-pcs", 10.0)];
    const BASELINE_US: &[(&str, f64)] = &[
        ("listing1-pcs", 69.9340),
        ("listing1-fcs", 88.0146),
        ("horner8-pcs", 303.2365),
    ];
    let mut fused_ok = true;
    for &(graph, baseline) in BASELINE_US {
        let Some(r) = rows_data
            .iter()
            .find(|r| r.graph == graph && r.backend == "bit")
        else {
            continue;
        };
        let us_1t = r
            .tape_us_per_row
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|(_, us)| *us)
            .unwrap_or(f64::INFINITY);
        let gain = baseline / us_1t;
        eprintln!(
            "audit: {graph} bit 1t {us_1t:.2} us/row, {gain:.2}x vs baseline {baseline:.2}, \
             {:.2}x vs scalar",
            r.speedup_1t
        );
        if gain < 1.5 {
            fused_ok = false;
        }
        if let Some(&(_, floor)) = PLANE_GATE.iter().find(|(g, _)| *g == graph) {
            if r.speedup_1t < floor {
                eprintln!(
                    "audit: {graph} speedup_1t {:.2}x below plane gate {floor}x",
                    r.speedup_1t
                );
                fused_ok = false;
            }
        }
    }

    // jit-backend gate: on hosts that can build a native module at all,
    // the IEEE-graph jit rows must clear >= 5x over the scalar
    // interpreter (ISSUE 10). Bitwise equality was already gated above
    // with every other row; absent rows mean the platform (or
    // CSFMA_JIT=off) declined to JIT, which is the documented fallback.
    let mut jit_ok = true;
    if csfma_hls::jit_available() {
        for r in rows_data.iter().filter(|r| r.backend == "jit") {
            let verdict = if r.speedup_1t >= 5.0 { "ok" } else { "FAIL" };
            eprintln!(
                "audit: {} jit 1t {:.2}x vs scalar (floor 5.00x): {verdict}",
                r.graph, r.speedup_1t
            );
            if r.speedup_1t < 5.0 {
                jit_ok = false;
            }
        }
    }

    if !all_equal || best_bit_8t < 5.0 || !fused_ok || !scaling_ok || !many_ok || !jit_ok {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
