//! Ablation over the PCS design space — the paper's Sec. V future work:
//! "the use of different carry bit densities in the PCS-FMA could be
//! explored when increasing the block size to 56b (instead of the 55b
//! used here)".
//!
//! For each (block size, carry spacing) combination that keeps carries
//! equally distributed (spacing divides the block), the harness reports:
//!
//! * the segment-adder delay (the Carry Reduce critical component),
//! * the explicit-carry storage of a transported operand,
//! * the operand transport width,
//! * the measured accuracy of the Sec. IV-B recurrence chain.

use csfma_bench::table::header;
use csfma_core::{
    run_recurrence_exact, ulp_error_vs_exact, ChainEvaluator, CsFmaFormat, CsFmaUnit, Normalizer,
};
use csfma_fabric::{design_from_format, Virtex6};
use csfma_softfloat::{FpFormat, SoftFloat};

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

fn make_format(block_bits: usize, spacing: usize) -> CsFmaFormat {
    CsFmaFormat {
        name: leak(format!("PCS {block_bits}b / spacing {spacing}")),
        block_bits,
        mant_blocks: 2,
        left_blocks: 2,
        right_blocks: 2,
        carry_spacing: Some(spacing),
        normalizer: Normalizer::ZeroDetect,
        b_sig_bits: 53,
    }
}

fn accuracy(fmt: CsFmaFormat) -> f64 {
    let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);
    let chain = ChainEvaluator::new(CsFmaUnit::new(fmt));
    let cases = [
        (1.75, -0.3125, [0.3, -0.7, 1.1]),
        (-2.5, 0.625, [0.9, 0.2, -0.4]),
        (1.25, -0.875, [-0.6, 1.0, 0.5]),
        (3.5, 0.1875, [0.1, -0.9, 0.7]),
    ];
    let mut total = 0.0;
    for (b1, b2, seeds) in cases {
        let exact = run_recurrence_exact(b1, b2, seeds, 48);
        let r = chain.run_recurrence(
            &sf(b1),
            &sf(b2),
            [&sf(seeds[0]), &sf(seeds[1]), &sf(seeds[2])],
            48,
        );
        total += ulp_error_vs_exact(&r.exact_value(), &exact);
    }
    total / cases.len() as f64
}

fn divisors(n: usize) -> Vec<usize> {
    (2..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

fn main() {
    let v = Virtex6::SPEED_GRADE_1;
    header(
        "Ablation: PCS block size x carry spacing (full design-space report)",
        &[
            "block",
            "spacing",
            "seg add [ns]",
            "carries",
            "operand [b]",
            "err [ulp]",
            "fMax@5 [MHz]",
            "LUTs",
            "DSPs",
        ],
        &[6, 8, 13, 8, 12, 12, 13, 7, 5],
    );
    for block in [55usize, 56, 58] {
        for spacing in divisors(block) {
            if spacing > block {
                continue;
            }
            let fmt = make_format(block, spacing);
            let seg_ns = v.adder_ns(spacing);
            // carries stored across mantissa + rounding block
            let carries = fmt.mant_bits() / spacing + fmt.block_bits / spacing;
            let err = accuracy(fmt);
            let syn = design_from_format(&fmt, 5).synthesize(&v);
            println!(
                "{block:>6} {spacing:>8} {seg_ns:>13.3} {carries:>8} {:>12} {err:>12.6} {:>13.0} {:>7} {:>5}",
                fmt.operand_bits(),
                syn.fmax_mhz,
                syn.luts,
                syn.dsps,
            );
        }
        println!();
    }
    println!("paper anchors: spacing 5 segment adds at 1.650 ns, spacing 11 at 1.742 ns;");
    println!("the paper picks 11 (area) — wider spacings trade carry storage for");
    println!("segment-adder delay, exactly the trend visible above.");
}
