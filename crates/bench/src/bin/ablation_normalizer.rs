//! Ablation: Zero Detector vs. early leading-zero anticipation
//! (Sec. III-F vs. III-G) at equal geometry.
//!
//! The ZD reads the computed sum and skips exactly; the LZA decides from
//! the inputs, trading ≤3 bits of anticipation slack (plus clamping under
//! cancellation) for removing the detector's priority chain from the
//! critical path. This harness quantifies both sides: accuracy on the
//! Sec. IV-B recurrence workload and the modeled critical-path delta.

use csfma_bench::table::header;
use csfma_core::{
    run_recurrence_exact, ulp_error_vs_exact, ChainEvaluator, CsFmaFormat, CsFmaUnit, CsOperand,
    Normalizer,
};
use csfma_fabric::components::Component;
use csfma_fabric::Virtex6;
use csfma_softfloat::{FpFormat, SoftFloat};

fn variant(base: CsFmaFormat, norm: Normalizer, name: &'static str) -> CsFmaFormat {
    CsFmaFormat {
        name,
        normalizer: norm,
        ..base
    }
}

fn accuracy_and_skip(fmt: CsFmaFormat) -> (f64, f64) {
    let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);
    let unit = CsFmaUnit::new(fmt);
    let chain = ChainEvaluator::new(unit);
    let cases = [
        (1.75, -0.3125, [0.3, -0.7, 1.1]),
        (-2.5, 0.625, [0.9, 0.2, -0.4]),
        (3.5, 0.1875, [0.1, -0.9, 0.7]),
        (-1.25, -0.875, [-0.6, 1.0, 0.5]),
    ];
    let mut err = 0.0;
    for (b1, b2, seeds) in cases {
        let exact = run_recurrence_exact(b1, b2, seeds, 48);
        let r = chain.run_recurrence(
            &sf(b1),
            &sf(b2),
            [&sf(seeds[0]), &sf(seeds[1]), &sf(seeds[2])],
            48,
        );
        err += ulp_error_vs_exact(&r.exact_value(), &exact);
    }
    // skip statistics over a mixed-magnitude op stream
    let mut skips = 0usize;
    let mut ops = 0usize;
    let mut acc = CsOperand::from_ieee(&sf(1.0), fmt);
    for i in 0..64 {
        let b = sf(if i % 3 == 0 { 0.01 } else { 1.9 } * if i % 2 == 0 { 1.0 } else { -1.0 });
        let c = CsOperand::from_ieee(&sf(0.7 + 0.01 * i as f64), fmt);
        let (r, rep) = unit.fma_traced(&acc, &b, &c, &mut csfma_core::NopSink);
        skips += rep.skip;
        ops += 1;
        acc = r;
    }
    (err / cases.len() as f64, skips as f64 / ops as f64)
}

fn main() {
    let v = Virtex6::SPEED_GRADE_1;
    header(
        "Ablation: normalizer (ZD vs early LZA)",
        &["format", "err [ulp]", "avg skip", "norm path [ns]"],
        &[34, 12, 10, 15],
    );
    let pcs = CsFmaFormat::PCS_55_ZD;
    let fcs = CsFmaFormat::FCS_29_LZA;
    let rows = [
        variant(pcs, Normalizer::ZeroDetect, "PCS 55b / ZD (paper Fig. 9)"),
        variant(pcs, Normalizer::EarlyLza, "PCS 55b / early LZA"),
        variant(fcs, Normalizer::ZeroDetect, "FCS 29c / ZD"),
        variant(fcs, Normalizer::EarlyLza, "FCS 29c / early LZA (Fig. 11)"),
    ];
    for fmt in rows {
        let (err, skip) = accuracy_and_skip(fmt);
        // the normalization stage the choice puts on the critical path
        let norm_ns = match fmt.normalizer {
            Normalizer::ZeroDetect => Component::ZeroDetector {
                blocks: fmt.window_blocks(),
                block_bits: fmt.block_bits,
            }
            .delay_ns(&v),
            // LZA runs beside the adder; only the mux select remains
            Normalizer::EarlyLza => Component::BlockMux {
                ways: fmt.mux_ways(),
                width: fmt.window_bits(),
            }
            .delay_ns(&v),
        };
        println!(
            "{:<34} {:>12.6} {:>10.2} {:>15.2}",
            fmt.name, err, skip, norm_ns
        );
    }
    println!("\nthe LZA variants trade a few anticipation bits (still well beyond");
    println!("double precision) for removing the ZD priority chain from the");
    println!("critical path — the enabler of the FCS unit's 3-cycle pipeline.");
}
