//! Error growth along the recurrence (Fig. 14 extended): average mantissa
//! error of `x[n]` as a function of `n` for every implementation. Shows
//! *why* the carry-save chains win — the discrete formats accumulate a
//! rounding per operator; the fused chains accumulate only the bounded
//! block-truncation of Sec. III-E.
//!
//! ```sh
//! cargo run -q --release -p csfma-bench --bin error_growth
//! ```

use csfma_core::{
    run_recurrence_exact, run_recurrence_softfloat, ulp_error_vs_exact, ChainEvaluator,
    CsFmaFormat, CsFmaUnit,
};
use csfma_softfloat::{FpFormat, Round, SoftFloat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let runs = 12;
    let depths = [8usize, 16, 24, 32, 48, 64, 96];
    let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "x[n]", "64b", "68b", "PCS-ZD", "PCS-LZA", "FCS"
    );
    let mut last = [0.0f64; 5];
    for &steps in &depths {
        let mut err = [0.0f64; 5];
        let mut rng = StdRng::seed_from_u64(7_2013);
        for _ in 0..runs {
            let b1 = (1.0 + rng.gen_range(0.0..31.0)) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let b2 = rng.gen_range(1e-6..1.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let seeds = [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ];
            let exact = run_recurrence_exact(b1, b2, seeds, steps);
            for (k, fmt) in [FpFormat::BINARY64, FpFormat::B68].iter().enumerate() {
                let r = run_recurrence_softfloat(*fmt, Round::NearestEven, b1, b2, seeds, steps);
                err[k] += ulp_error_vs_exact(&r.to_exact(), &exact);
            }
            for (k, fmt) in [
                CsFmaFormat::PCS_55_ZD,
                CsFmaFormat::PCS_58_LZA,
                CsFmaFormat::FCS_29_LZA,
            ]
            .iter()
            .enumerate()
            {
                let chain = ChainEvaluator::new(CsFmaUnit::new(*fmt));
                let r = chain.run_recurrence(
                    &sf(b1),
                    &sf(b2),
                    [&sf(seeds[0]), &sf(seeds[1]), &sf(seeds[2])],
                    steps,
                );
                err[2 + k] += ulp_error_vs_exact(&r.exact_value(), &exact);
            }
        }
        for e in err.iter_mut() {
            *e /= runs as f64;
        }
        println!(
            "{:>6} {:>12.5} {:>12.5} {:>12.6} {:>12.6} {:>12.6}",
            steps + 2,
            err[0],
            err[1],
            err[2],
            err[3],
            err[4]
        );
        last = err;
    }
    println!(
        "\nat the deepest chain, the fused formats hold {:.0}x / {:.0}x / {:.0}x the",
        last[0] / last[2].max(1e-12),
        last[0] / last[3].max(1e-12),
        last[0] / last[4].max(1e-12)
    );
    println!("accuracy of discrete binary64 — error growth stays bounded by the");
    println!("block-truncation budget instead of one rounding per operator.");
}
