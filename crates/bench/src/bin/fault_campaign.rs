//! Fault-injection campaign report: sweep every fault site over the
//! fused Listing 1 datapath, written to `results/BENCH_faults.json`.
//!
//! ```sh
//! cargo run -q --release -p csfma-bench --bin fault_campaign [ROWS [SEED]]
//! ```
//!
//! Defaults: 2000 rows per site, seed 42. Exit status 1 when the gate
//! fails: any silent corruption or a detection rate below 90% on a
//! checker-covered site, or any thread-count variance (DESIGN.md §10).

use csfma_bench::fault::{run_campaign, to_json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(2000);
    let seed: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(42);

    // injected executor panics are caught and recovered by the robust
    // engine; keep their backtraces off the terminal
    std::panic::set_hook(Box::new(|_| {}));
    let campaign = run_campaign(rows, seed);
    let _ = std::panic::take_hook();

    let json = to_json(&campaign);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_faults.json", &json).expect("write results");
    println!("{json}");

    for s in &campaign.sites {
        eprintln!(
            "audit: {:>12} fired {:>5} detected {:.1}% recovered {:>5} benign {:>4} silent {:>4}{}",
            s.site.name(),
            s.fired,
            s.detection_rate() * 100.0,
            s.recovered,
            s.benign,
            s.silent,
            if s.checked {
                ""
            } else {
                "  (not gated: needs ECC)"
            },
        );
    }
    eprintln!(
        "audit: silent corruptions on checked sites: {}",
        campaign.silent_on_checked()
    );

    if campaign.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
