//! Regenerate **Fig. 14**: average mantissa error of `x[50]` for the
//! Sec. IV-B recurrence, mean over 20 random computations, measured
//! against the exact value (the paper gauges against its 75b golden run,
//! whose own error shows up here as the near-zero sanity row).

use csfma_bench::fig14;

fn main() {
    let rows = fig14(20, 48, 2013);
    println!("Fig. 14: Average mantissa error in x[50] (binary64 ULPs, 20 runs)");
    for r in &rows {
        let bar_len = ((r.avg_ulp.max(1e-6)).log10() + 6.0).max(0.0) * 8.0;
        println!(
            "{:<22} {:>12.6} ulp   {}",
            r.name,
            r.avg_ulp,
            "#".repeat(bar_len as usize)
        );
    }
    println!("\nShape check (paper): both PCS and FCS clearly outperform IEEE double;");
    let d64 = rows[0].avg_ulp;
    for r in &rows[3..] {
        println!(
            "  {:<22} {:>8.1}x more accurate than 64b",
            r.name,
            d64 / r.avg_ulp.max(1e-12)
        );
    }
}
