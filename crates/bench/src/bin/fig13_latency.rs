//! Regenerate **Fig. 13**: minimum computation time for a single
//! multiply-add (minimum cycle time × pipeline length) per architecture.

use csfma_bench::fig13;

fn main() {
    let rows = fig13();
    let paper = [36.9, 57.9, 21.6, 14.2]; // cycles/fmax from Table I
    println!("Fig. 13: Latency per multiply-add (ns)");
    for ((name, ns), p) in rows.iter().zip(paper.iter()) {
        let bar = "#".repeat((*ns / 1.2) as usize);
        println!("{name:<22} {ns:>6.1} ns (paper ~{p:.1})  {bar}");
    }
    let best_competitor = rows[0].1.min(rows[1].1);
    println!(
        "\nspeed-up vs closest competitor: PCS {:.2}x (paper ~1.7x), FCS {:.2}x (paper ~2.5x)",
        best_competitor / rows[2].1,
        best_competitor / rows[3].1
    );
}
