//! Developer profiling aid (not part of the reported results): measures
//! the raw bit-plane chunk kernel against the scalar unit loop, then the
//! compiled-tape bit path with its observability counters — the first
//! place to look when the throughput gate regresses.

use csfma_core::{plane_fma_chunk, CsFmaFormat, CsFmaUnit, CsOperand, FmaScratch, PlaneScratch};
use csfma_hls::{compile, fuse_critical_paths, parse_program, FmaKind, FusionConfig, TapeBackend};
use csfma_obs::Profiler;
use csfma_softfloat::{FpFormat, SoftFloat};
use std::time::Instant;

fn main() {
    let fmt = CsFmaFormat::PCS_55_ZD;
    let unit = CsFmaUnit::new(fmt);
    let mut bank: Vec<CsOperand> = (0..3 * 64)
        .map(|i| CsOperand::from_f64((i as f64 - 96.0) * 0.37 + 0.5, fmt))
        .collect();
    let b: Vec<SoftFloat> = (0..64)
        .map(|i| SoftFloat::from_f64(FpFormat::BINARY64, (i as f64 - 31.0) * 1.17 + 0.25))
        .collect();
    let mut ps = PlaneScratch::default();
    let iters = 2000;

    // raw plane kernel
    let t0 = Instant::now();
    for _ in 0..iters {
        plane_fma_chunk(&unit, &mut bank, 0, 64, 128, &b, 64, &mut ps);
    }
    let plane_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // scalar unit loop over the same lanes
    let mut fs = FmaScratch::default();
    let t0 = Instant::now();
    for _ in 0..iters {
        for k in 0..64 {
            let r = unit.fma_with(&bank[k].clone(), &b[k], &bank[64 + k], &mut fs);
            bank[128 + k] = r;
        }
    }
    let scalar_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    println!(
        "kernel: plane {:.1} ns/lane, scalar {:.1} ns/lane, speedup {:.2}x",
        plane_ns / 64.0,
        scalar_ns / 64.0,
        scalar_ns / plane_ns
    );

    // tape level: listing1 fused PCS
    let g = parse_program("x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;").unwrap();
    let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;
    let tape = compile(&fused).unwrap();
    let ni = tape.num_inputs();
    let rows = 10_000usize;
    let stim: Vec<f64> = (0..rows * ni)
        .map(|i| {
            let k = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            ((k % 4001) as f64 - 2000.0) * 7.25e-3
        })
        .collect();
    let mut best = f64::INFINITY;
    let mut prof_out = None;
    for _ in 0..3 {
        let mut prof = Profiler::new();
        let t0 = Instant::now();
        let _ = tape.eval_batch_profiled(TapeBackend::BitAccurate, &stim, 1, &mut prof);
        let us = t0.elapsed().as_micros() as f64;
        if us < best {
            best = us;
            prof_out = Some(prof.finish());
        }
    }
    let rep = prof_out.unwrap();
    println!("tape 1t: {:.2} us/row over {rows} rows", best / rows as f64);
    for s in &rep.stages {
        println!("  stage {:<10} {:>10.1} us", s.name, s.wall_us);
    }
    for (k, v) in &rep.counters {
        println!("  counter {k} = {v}");
    }
    // expected plane share: 3 fused FMAs/row, each one plane chunk per 64 rows
    let plane_share = 3.0 * plane_ns / 64.0 / 1000.0;
    println!(
        "  3 kernel calls/row account for {:.2} us/row of {:.2}",
        plane_share,
        best / rows as f64
    );
}
