//! Load generator and acceptance audit for `csfma-serve`
//! (DESIGN.md §15).
//!
//! Each scenario points N concurrent clients at one in-process server
//! started with a **nonzero fault seed**, so every request runs with a
//! seeded transient-fault sprinkle across the checker-covered sites.
//! The harness then audits the protocol's whole contract, not just
//! throughput:
//!
//! * **exactly-one terminal response** — every submitted frame ends in
//!   RESULT / SHED / DEADLINE / ERROR; a connection torn mid-response
//!   counts as `unanswered` and fails the gate;
//! * **digest fidelity** — every RESULT with zero quarantined rows must
//!   carry the same FNV digest a local [`Tape::eval_batch`] of the same
//!   stimulus produces (the formula `csfma-run` prints), bit for bit;
//! * **reconciliation** — the server's own counters must balance:
//!   `accepted == results + deadline + errors`, and the client-observed
//!   shed/deadline/result counts must equal the server's;
//! * **containment** — zero `panics_contained` after all of it, and a
//!   kill-mid-flight drill (partial frame, dropped connection, reply
//!   never read) must leave the server serving.
//!
//! [`run_serve_bench`] returns the full report; `bin/serve_bench`
//! writes it to `results/BENCH_serve.json` and exits nonzero when the
//! gate fails.
//!
//! [`Tape::eval_batch`]: csfma_hls::Tape::eval_batch

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use csfma_hls::{compile_cached, parse_program, TapeBackend};
use csfma_serve::frame::{self, backend, tag, Frame};
use csfma_serve::{digest, Client, ServeConfig, Server, StatsSnapshot};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The benchmark datapath: Listing 1 of the paper, the same graph every
/// other harness drives (10 inputs, 1 output, 3 fused FMA sites).
pub const GRAPH: &str = "x1 = a*b + c*d;\nx2 = e*f + g*x1;\nout x3 = h*i + k*x2;";
const NUM_INPUTS: usize = 10;

/// Rows per ordinary request (a whole number of scheduler chunks).
pub const ROWS_PER_REQUEST: usize = 192;
/// Rows in the tight-deadline probe each client fires once: enough
/// evaluation work that a 1 ms deadline is unmeetable on any host.
pub const DEADLINE_PROBE_ROWS: usize = 8192;
/// Ordinary requests per client, plus one tight-deadline probe.
pub const REQUESTS_PER_CLIENT: usize = 5;

/// The `csfma-run` stimulus formula (seeded `StdRng`, default span).
fn stimulus(seed: u64, rows: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows * NUM_INPUTS)
        .map(|_| rng.gen_range(-1000.0..1000.0))
        .collect()
}

fn request_seed(clients: usize, client: usize, req: usize) -> u64 {
    (clients as u64) << 32 | (client as u64) << 16 | req as u64
}

/// What one scenario's fleet of clients observed, merged with the
/// server's own post-drain snapshot.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Submits sent across all clients (including shed retries and the
    /// per-client deadline probe).
    pub submits: usize,
    /// RESULT frames received.
    pub results: usize,
    /// SHED frames received (each was retried after its hint).
    pub shed: usize,
    /// DEADLINE frames received.
    pub deadline: usize,
    /// Structured ERROR frames received.
    pub errors: usize,
    /// Submits that never got a terminal response — must be zero.
    pub unanswered: usize,
    /// Quarantined rows summed over all RESULTs.
    pub quarantined_rows: u64,
    /// RESULTs with zero quarantined rows whose digest differed from
    /// the local evaluation — must be zero.
    pub digest_mismatches: usize,
    /// Median RESULT round-trip latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile RESULT round-trip latency, milliseconds.
    pub p99_ms: f64,
    /// Result rows delivered per wall-clock second.
    pub rows_per_sec: f64,
    /// Scenario wall time, milliseconds.
    pub elapsed_ms: f64,
    /// The server's own counters after drain.
    pub server: StatsSnapshot,
}

impl ScenarioReport {
    /// Client-observed and server-counted outcomes agree, and the
    /// server's ledger balances: every accepted request ended in
    /// exactly one terminal response.
    pub fn reconciled(&self) -> bool {
        self.server.accepted == self.server.results + self.server.deadline + self.server.errors
            && self.results as u64 == self.server.results
            && self.shed as u64 == self.server.shed
            && self.deadline as u64 == self.server.deadline
            && self.errors as u64 == self.server.errors
    }

    /// The per-scenario gate.
    pub fn passes(&self) -> bool {
        self.reconciled()
            && self.unanswered == 0
            && self.digest_mismatches == 0
            && self.server.panics_contained == 0
    }
}

/// What the kill-mid-flight drill observed.
#[derive(Clone, Debug)]
pub struct KillReport {
    /// Connections torn mid-protocol (partial frame / unread reply).
    pub torn_connections: usize,
    /// A fresh client got a PING echo after the abuse.
    pub server_survived: bool,
    /// Panics the server had to contain — must be zero.
    pub panics_contained: u64,
}

impl KillReport {
    /// The drill's gate.
    pub fn passes(&self) -> bool {
        self.server_survived && self.panics_contained == 0
    }
}

/// The full benchmark: one scenario per client count, plus the drill.
#[derive(Clone, Debug)]
pub struct ServeBench {
    /// Server-side fault-injection seed (nonzero: this is a drill under
    /// fire, not a clean-room run).
    pub fault_seed: u64,
    /// One report per client count.
    pub scenarios: Vec<ScenarioReport>,
    /// Kill-mid-flight drill report.
    pub kill: KillReport,
}

impl ServeBench {
    /// The headline gate the report's `pass` field carries.
    pub fn passes(&self) -> bool {
        self.kill.passes() && self.scenarios.iter().all(|s| s.passes())
    }
}

fn bench_config(fault_seed: u64) -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_inflight: 4,
        max_queue: 8,
        queue_wait: Duration::from_millis(100),
        fault_seed: Some(fault_seed),
        drain_grace: Duration::from_secs(30),
        ..ServeConfig::default()
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-client tally, merged into the scenario report.
#[derive(Default)]
struct ClientTally {
    submits: usize,
    results: usize,
    shed: usize,
    deadline: usize,
    errors: usize,
    unanswered: usize,
    quarantined_rows: u64,
    digest_mismatches: usize,
    result_rows: usize,
    latencies_ms: Vec<f64>,
}

/// Run one scenario: `clients` concurrent clients, each sending
/// [`REQUESTS_PER_CLIENT`] ordinary requests (retrying after every
/// SHED) plus one 1 ms-deadline probe that must come back DEADLINE.
pub fn run_scenario(clients: usize, fault_seed: u64) -> ScenarioReport {
    let server = Server::bind(bench_config(fault_seed)).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    // expected digests computed up front from the same stimulus
    // formula, so client threads only compare
    let g = parse_program(GRAPH).expect("benchmark graph parses");
    let tape = compile_cached(&g).expect("benchmark graph compiles");
    let expected: Vec<Vec<u64>> = (0..clients)
        .map(|c| {
            (0..REQUESTS_PER_CLIENT)
                .map(|r| {
                    let data = stimulus(request_seed(clients, c, r), ROWS_PER_REQUEST);
                    digest(&tape.eval_batch(TapeBackend::BitAccurate, &data, 1))
                })
                .collect()
        })
        .collect();

    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let expect = expected[c].clone();
            std::thread::spawn(move || {
                let mut tally = ClientTally::default();
                let mut cl = match Client::connect(addr) {
                    Ok(cl) => cl,
                    Err(_) => {
                        tally.unanswered = REQUESTS_PER_CLIENT + 1;
                        return tally;
                    }
                };
                for (r, want) in expect.iter().enumerate() {
                    let data = stimulus(request_seed(clients, c, r), ROWS_PER_REQUEST);
                    // bounded retry-after-shed loop: the hint is the
                    // contract, so honor it
                    let mut attempts = 0usize;
                    loop {
                        attempts += 1;
                        tally.submits += 1;
                        let sent = Instant::now();
                        match cl.submit(backend::BIT, 0, ROWS_PER_REQUEST as u32, GRAPH, &data) {
                            Ok(Frame::Result {
                                digest: d,
                                quarantined,
                                ..
                            }) => {
                                tally.results += 1;
                                tally.result_rows += ROWS_PER_REQUEST;
                                tally.quarantined_rows += quarantined as u64;
                                tally.latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                                if quarantined == 0 && d != *want {
                                    tally.digest_mismatches += 1;
                                }
                                break;
                            }
                            Ok(Frame::Shed { retry_after_ms }) => {
                                tally.shed += 1;
                                if attempts > 32 {
                                    break; // pathological; reconcile will still hold
                                }
                                std::thread::sleep(Duration::from_millis(
                                    retry_after_ms.min(200) as u64
                                ));
                            }
                            Ok(Frame::Deadline { .. }) => {
                                tally.deadline += 1;
                                break;
                            }
                            Ok(Frame::Error { .. }) => {
                                tally.errors += 1;
                                break;
                            }
                            Ok(_) | Err(_) => {
                                tally.unanswered += 1;
                                break;
                            }
                        }
                    }
                }
                // the tight-deadline probe: 1 ms on a batch needing far
                // more evaluation than that
                let probe = stimulus(
                    request_seed(clients, c, REQUESTS_PER_CLIENT),
                    DEADLINE_PROBE_ROWS,
                );
                let mut attempts = 0usize;
                loop {
                    attempts += 1;
                    tally.submits += 1;
                    match cl.submit(backend::BIT, 1, DEADLINE_PROBE_ROWS as u32, GRAPH, &probe) {
                        Ok(Frame::Deadline { .. }) => {
                            tally.deadline += 1;
                            break;
                        }
                        Ok(Frame::Shed { retry_after_ms }) => {
                            tally.shed += 1;
                            if attempts > 32 {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(
                                retry_after_ms.min(200) as u64
                            ));
                        }
                        Ok(Frame::Result { quarantined, .. }) => {
                            // legal if the host is absurdly fast; count
                            // it as a result so the ledger still balances
                            tally.results += 1;
                            tally.result_rows += DEADLINE_PROBE_ROWS;
                            tally.quarantined_rows += quarantined as u64;
                            break;
                        }
                        Ok(Frame::Error { .. }) => {
                            tally.errors += 1;
                            break;
                        }
                        Ok(_) | Err(_) => {
                            tally.unanswered += 1;
                            break;
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let mut merged = ClientTally::default();
    for t in threads {
        let tally = t.join().expect("client thread");
        merged.submits += tally.submits;
        merged.results += tally.results;
        merged.shed += tally.shed;
        merged.deadline += tally.deadline;
        merged.errors += tally.errors;
        merged.unanswered += tally.unanswered;
        merged.quarantined_rows += tally.quarantined_rows;
        merged.digest_mismatches += tally.digest_mismatches;
        merged.result_rows += tally.result_rows;
        merged.latencies_ms.extend(tally.latencies_ms);
    }
    let elapsed = t0.elapsed();

    handle.drain();
    let server = runner.join().expect("server runner");

    merged.latencies_ms.sort_by(|a, b| a.total_cmp(b));
    ScenarioReport {
        clients,
        submits: merged.submits,
        results: merged.results,
        shed: merged.shed,
        deadline: merged.deadline,
        errors: merged.errors,
        unanswered: merged.unanswered,
        quarantined_rows: merged.quarantined_rows,
        digest_mismatches: merged.digest_mismatches,
        p50_ms: percentile(&merged.latencies_ms, 0.50),
        p99_ms: percentile(&merged.latencies_ms, 0.99),
        rows_per_sec: merged.result_rows as f64 / elapsed.as_secs_f64(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        server,
    }
}

/// The kill-mid-flight drill: three hostile connection teardowns on a
/// fresh server, then proof it still serves.
pub fn run_kill_drill(fault_seed: u64) -> KillReport {
    let server = Server::bind(bench_config(fault_seed)).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let mut torn = 0usize;

    // (1) a declared frame whose body never arrives, then a hard drop
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.write_all(&1024u32.to_le_bytes());
        let _ = s.write_all(&[tag::SUBMIT, 0, 0, 0]);
        drop(s);
        torn += 1;
    }
    // (2) a full submit whose reply is never read: the client vanishes
    // while the engine is mid-evaluation
    if let Ok(mut s) = TcpStream::connect(addr) {
        let f = Frame::Submit {
            backend: backend::BIT,
            deadline_ms: 0,
            rows: ROWS_PER_REQUEST as u32,
            graph: GRAPH.into(),
            data: stimulus(0xDEAD, ROWS_PER_REQUEST),
        };
        let _ = s.write_all(&frame::encode(&f));
        drop(s);
        torn += 1;
    }
    // (3) a length prefix alone, then silence and a drop
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.write_all(&(512u32).to_le_bytes());
        drop(s);
        torn += 1;
    }

    // the engine may still be chewing on (2); the gate is that a fresh
    // client gets service afterwards
    let survived = (|| -> Option<bool> {
        let mut c = Client::connect(addr).ok()?;
        let echoed = c.ping(0xBEEF).ok()?;
        let reply = c
            .submit(backend::BIT, 0, 4, GRAPH, &stimulus(0xF00D, 4))
            .ok()?;
        Some(echoed == 0xBEEF && matches!(reply, Frame::Result { .. }))
    })()
    .unwrap_or(false);

    handle.drain();
    let stats = runner.join().expect("server runner");
    KillReport {
        torn_connections: torn,
        server_survived: survived,
        panics_contained: stats.panics_contained,
    }
}

/// Run the whole benchmark: one scenario per entry of `client_counts`
/// (1–64 supported; the default list is `[1, 4, 16]`), plus the
/// kill-mid-flight drill.
pub fn run_serve_bench(fault_seed: u64, client_counts: &[usize]) -> ServeBench {
    let scenarios = client_counts
        .iter()
        .map(|&n| run_scenario(n.clamp(1, 64), fault_seed))
        .collect();
    ServeBench {
        fault_seed,
        scenarios,
        kill: run_kill_drill(fault_seed),
    }
}

/// Hand-rolled JSON for `results/BENCH_serve.json` (the workspace
/// builds offline; no serde).
pub fn to_json(b: &ServeBench) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"serve\",");
    let _ = writeln!(s, "  \"graph\": \"listing1\",");
    let _ = writeln!(s, "  \"fault_seed\": {},", b.fault_seed);
    let _ = writeln!(s, "  \"rows_per_request\": {ROWS_PER_REQUEST},");
    let _ = writeln!(s, "  \"requests_per_client\": {REQUESTS_PER_CLIENT},");
    let _ = writeln!(s, "  \"deadline_probe_rows\": {DEADLINE_PROBE_ROWS},");
    let _ = writeln!(s, "  \"scenarios\": [");
    for (i, r) in b.scenarios.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"clients\": {},", r.clients);
        let _ = writeln!(s, "      \"submits\": {},", r.submits);
        let _ = writeln!(s, "      \"results\": {},", r.results);
        let _ = writeln!(s, "      \"shed\": {},", r.shed);
        let _ = writeln!(s, "      \"deadline\": {},", r.deadline);
        let _ = writeln!(s, "      \"errors\": {},", r.errors);
        let _ = writeln!(s, "      \"unanswered\": {},", r.unanswered);
        let _ = writeln!(s, "      \"quarantined_rows\": {},", r.quarantined_rows);
        let _ = writeln!(s, "      \"digest_mismatches\": {},", r.digest_mismatches);
        let _ = writeln!(s, "      \"p50_ms\": {:.3},", r.p50_ms);
        let _ = writeln!(s, "      \"p99_ms\": {:.3},", r.p99_ms);
        let _ = writeln!(s, "      \"rows_per_sec\": {:.0},", r.rows_per_sec);
        let _ = writeln!(s, "      \"elapsed_ms\": {:.1},", r.elapsed_ms);
        let _ = writeln!(
            s,
            "      \"server\": {{\"accepted\": {}, \"results\": {}, \"shed\": {}, \
             \"deadline\": {}, \"errors\": {}, \"refusals\": {}, \"retries\": {}, \
             \"quarantined_rows\": {}, \"panics_contained\": {}}},",
            r.server.accepted,
            r.server.results,
            r.server.shed,
            r.server.deadline,
            r.server.errors,
            r.server.refusals,
            r.server.retries,
            r.server.quarantined_rows,
            r.server.panics_contained,
        );
        let _ = writeln!(s, "      \"reconciled\": {}", r.reconciled());
        let _ = writeln!(
            s,
            "    }}{}",
            if i + 1 < b.scenarios.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"kill_mid_flight\": {{");
    let _ = writeln!(s, "    \"torn_connections\": {},", b.kill.torn_connections);
    let _ = writeln!(s, "    \"server_survived\": {},", b.kill.server_survived);
    let _ = writeln!(s, "    \"panics_contained\": {}", b.kill.panics_contained);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"pass\": {}", b.passes());
    let _ = write!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_small_scenario_reconciles_and_matches_digests() {
        let r = run_scenario(2, 0xC0FFEE);
        assert!(r.passes(), "{r:?}");
        assert!(r.results >= 2 * REQUESTS_PER_CLIENT - r.shed.min(2 * REQUESTS_PER_CLIENT));
        assert_eq!(r.digest_mismatches, 0);
        assert_eq!(r.unanswered, 0);
    }

    #[test]
    fn kill_drill_leaves_the_server_serving() {
        let k = run_kill_drill(0xC0FFEE);
        assert!(k.passes(), "{k:?}");
        assert_eq!(k.torn_connections, 3);
    }

    #[test]
    fn json_carries_the_shape_fields() {
        let b = ServeBench {
            fault_seed: 7,
            scenarios: vec![run_scenario(1, 7)],
            kill: run_kill_drill(7),
        };
        let j = to_json(&b);
        for field in [
            "\"p50_ms\":",
            "\"p99_ms\":",
            "\"rows_per_sec\":",
            "\"shed\":",
            "\"deadline\":",
            "\"quarantined_rows\":",
            "\"kill_mid_flight\":",
            "\"reconciled\": true",
        ] {
            assert!(j.contains(field), "missing {field} in\n{j}");
        }
    }
}
