//! The five experiments of the paper's evaluation section.

use csfma_core::{
    run_recurrence_exact, run_recurrence_softfloat, ulp_error_vs_exact, ChainEvaluator,
    CsFmaFormat, CsFmaUnit,
};
use csfma_fabric::components::Area;
use csfma_fabric::energy::{measure_cs_unit, measure_discrete, DiscreteKind, EnergyCoefficients};
use csfma_fabric::{
    all_units, converter_cs_to_ieee, converter_ieee_to_cs, coregen_adder, coregen_multiplier,
    SynthesisReport, Virtex6,
};
use csfma_hls::{
    asap_schedule, fuse_critical_paths, list_schedule, FmaKind, FusionConfig, OpTiming,
};
use csfma_softfloat::{FpFormat, Round, SoftFloat};
use csfma_solvers::{generate_ldlsolve, solver_suite, KktSystem, LdlFactors};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// **Table I** — synthesis results of the four operator implementations
/// (fMax, cycles, LUTs, DSPs) on the calibrated Virtex-6 model.
pub fn table1() -> Vec<SynthesisReport> {
    let v = Virtex6::SPEED_GRADE_1;
    all_units().iter().map(|u| u.synthesize(&v)).collect()
}

/// **Fig. 13** — minimum computation time for one multiply-add:
/// `cycles × min cycle time`, per architecture.
pub fn fig13() -> Vec<(&'static str, f64)> {
    table1().iter().map(|r| (r.name, r.latency_ns())).collect()
}

/// One Fig. 14 series: average mantissa error of `x\[50\]` vs the golden
/// 75-bit reference, in binary64 ULPs at the reference magnitude.
#[derive(Clone, Debug)]
pub struct Fig14Row {
    /// Implementation name.
    pub name: &'static str,
    /// Arithmetic mean of the mantissa error over the runs.
    pub avg_ulp: f64,
}

/// **Fig. 14** — the Sec. IV-B recurrence
/// `x[n] = B1·x[n-1] + B2·x[n-2] + x[n-3]` with `1 < |B1| < 32`,
/// `0 < |B2| < 1`, run to `x\[50\]`, averaged over `runs` random
/// computations. The 75b wide format is the golden reference; we measure
/// against the exact value (the 75b run's own error is ~0 at this scale
/// and is reported as a sanity row).
pub fn fig14(runs: usize, steps: usize, seed: u64) -> Vec<Fig14Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut err = [0.0f64; 6];
    let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);
    for _ in 0..runs {
        let b1 = (1.0 + rng.gen_range(0.0..31.0)) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let b2 = rng.gen_range(1e-6..1.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let seeds = [
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        ];
        let exact = run_recurrence_exact(b1, b2, seeds, steps);
        let mut k = 0;
        for fmt in [FpFormat::BINARY64, FpFormat::B68, FpFormat::B75] {
            let r = run_recurrence_softfloat(fmt, Round::NearestEven, b1, b2, seeds, steps);
            err[k] += ulp_error_vs_exact(&r.to_exact(), &exact);
            k += 1;
        }
        for f in [
            CsFmaFormat::PCS_55_ZD,
            CsFmaFormat::PCS_58_LZA,
            CsFmaFormat::FCS_29_LZA,
        ] {
            let chain = ChainEvaluator::new(CsFmaUnit::new(f));
            let r = chain.run_recurrence(
                &sf(b1),
                &sf(b2),
                [&sf(seeds[0]), &sf(seeds[1]), &sf(seeds[2])],
                steps,
            );
            err[k] += ulp_error_vs_exact(&r.exact_value(), &exact);
            k += 1;
        }
    }
    let names = [
        "CoreGen 64b",
        "CoreGen 68b",
        "CoreGen 75b (golden)",
        "PCS-FMA (ZD)",
        "PCS-FMA (early LZA)",
        "FCS-FMA",
    ];
    names
        .iter()
        .zip(err.iter())
        .map(|(&name, &e)| Fig14Row {
            name,
            avg_ulp: e / runs as f64,
        })
        .collect()
}

/// **Table II** — average energy per multiply-add computation in nJ, from
/// the toggle-counting model on the Sec. IV-B workload.
pub fn table2(steps: usize, seed: u64) -> Vec<(&'static str, f64)> {
    let co = EnergyCoefficients::default();
    vec![
        (
            "Xilinx (Mul+Add)",
            measure_discrete(DiscreteKind::CoreGen, steps, seed).energy_nj_per_op(&co),
        ),
        (
            "FloPoCo",
            measure_discrete(DiscreteKind::FloPoCo, steps, seed).energy_nj_per_op(&co),
        ),
        (
            "PCS-FMA",
            measure_cs_unit(CsFmaFormat::PCS_55_ZD, steps, seed).energy_nj_per_op(&co),
        ),
        (
            "FCS-FMA",
            measure_cs_unit(CsFmaFormat::FCS_29_LZA, steps, seed).energy_nj_per_op(&co),
        ),
    ]
}

/// One Fig. 15 bar group: `ldlsolve()` schedule cycles per solver.
#[derive(Clone, Debug)]
pub struct Fig15Row {
    /// Solver name.
    pub solver: &'static str,
    /// KKT dimension.
    pub dim: usize,
    /// Schedule length with discrete IEEE operators.
    pub discrete: u32,
    /// Schedule length after PCS-FMA insertion.
    pub pcs: u32,
    /// Schedule length after FCS-FMA insertion.
    pub fcs: u32,
    /// FMA nodes inserted (PCS / FCS variants).
    pub fma_nodes: (usize, usize),
    /// Peak concurrent FMA starts (time-multiplexed units needed).
    pub fma_units: (usize, usize),
    /// Operator-pool area of the discrete datapath (LUTs, DSPs).
    pub discrete_area: Area,
    /// Operator-pool area after PCS insertion.
    pub pcs_area: Area,
    /// Operator-pool area after FCS insertion.
    pub fcs_area: Area,
}

impl Fig15Row {
    /// Reduction of the PCS schedule vs discrete, in percent.
    pub fn reduction_pcs(&self) -> f64 {
        100.0 * (1.0 - self.pcs as f64 / self.discrete as f64)
    }

    /// Reduction of the FCS schedule vs discrete, in percent.
    pub fn reduction_fcs(&self) -> f64 {
        100.0 * (1.0 - self.fcs as f64 / self.discrete as f64)
    }
}

/// Peak number of FMA operations starting in the same cycle of an ASAP
/// schedule — the count of time-multiplexed units the datapath needs.
fn peak_fma_starts(g: &csfma_hls::Cdfg, t: &OpTiming) -> usize {
    peak_starts(g, t, |op| matches!(op, csfma_hls::Op::Fma { .. }))
}

/// Peak concurrent starts of an operator class (its time-multiplexed
/// unit-pool size under an ASAP schedule, initiation interval 1).
fn peak_starts(g: &csfma_hls::Cdfg, t: &OpTiming, pred: impl Fn(&csfma_hls::Op) -> bool) -> usize {
    let s = asap_schedule(g, t);
    let mut per_cycle = std::collections::HashMap::new();
    for (id, n) in g.nodes().iter().enumerate() {
        if pred(&n.op) {
            *per_cycle.entry(s.start[id]).or_insert(0usize) += 1;
        }
    }
    per_cycle.values().copied().max().unwrap_or(0)
}

/// Minimal time-multiplexed unit pools that still achieve the dataflow
/// schedule length (Nymble's operator sharing): per class, binary-search
/// the smallest cap for which list scheduling matches the ASAP length,
/// then verify the caps jointly (bumping on interaction effects).
fn minimal_pools(g: &csfma_hls::Cdfg, t: &OpTiming) -> csfma_hls::sched::ResourceLimits {
    use csfma_hls::sched::ResourceLimits;
    let target = asap_schedule(g, t).length;
    let search = |apply: &dyn Fn(usize) -> ResourceLimits, hi0: usize| -> usize {
        let (mut lo, mut hi) = (1usize, hi0.max(1));
        while lo < hi {
            let mid = (lo + hi) / 2;
            if list_schedule(g, t, &apply(mid)).length <= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    };
    use csfma_hls::Op;
    let mut caps = ResourceLimits {
        mul: Some(search(
            &|k| ResourceLimits {
                mul: Some(k),
                ..Default::default()
            },
            peak_starts(g, t, |o| matches!(o, Op::Mul)).max(1),
        )),
        add: Some(search(
            &|k| ResourceLimits {
                add: Some(k),
                ..Default::default()
            },
            peak_starts(g, t, |o| matches!(o, Op::Add | Op::Sub)).max(1),
        )),
        div: Some(1),
        fma: Some(search(
            &|k| ResourceLimits {
                fma: Some(k),
                ..Default::default()
            },
            peak_starts(g, t, |o| matches!(o, Op::Fma { .. })).max(1),
        )),
    };
    // joint verification: interactions may need slightly bigger pools
    for _ in 0..32 {
        if list_schedule(g, t, &caps).length <= target {
            break;
        }
        caps.mul = caps.mul.map(|k| k + 1);
        caps.add = caps.add.map(|k| k + 1);
        caps.fma = caps.fma.map(|k| k + 1);
    }
    caps
}

/// Operator-pool area of a datapath under minimal Nymble-style sharing.
fn datapath_area(g: &csfma_hls::Cdfg, t: &OpTiming, kind: FmaKind) -> Area {
    use csfma_hls::Op;
    let v = Virtex6::SPEED_GRADE_1;
    let fmt = match kind {
        FmaKind::Pcs => csfma_core::CsFmaFormat::PCS_55_ZD,
        FmaKind::Fcs => csfma_core::CsFmaFormat::FCS_29_LZA,
    };
    let fma_design = match kind {
        FmaKind::Pcs => csfma_fabric::designs::pcs_fma(),
        FmaKind::Fcs => csfma_fabric::designs::fcs_fma(),
    };
    let caps = minimal_pools(g, t);
    let has = |pred: &dyn Fn(&Op) -> bool| g.count_ops(pred) > 0;
    let pools: [(usize, Area); 5] = [
        (
            if has(&|o| matches!(o, Op::Mul)) {
                caps.mul.unwrap_or(0)
            } else {
                0
            },
            area_of(&coregen_multiplier(), &v),
        ),
        (
            if has(&|o| matches!(o, Op::Add | Op::Sub)) {
                caps.add.unwrap_or(0)
            } else {
                0
            },
            area_of(&coregen_adder(), &v),
        ),
        (
            if has(&|o| matches!(o, Op::Fma { .. })) {
                caps.fma.unwrap_or(0)
            } else {
                0
            },
            area_of(&fma_design, &v),
        ),
        (
            peak_starts(g, t, |o| matches!(o, Op::IeeeToCs(_))).min(8),
            area_of(&converter_ieee_to_cs(&fmt), &v),
        ),
        (
            peak_starts(g, t, |o| matches!(o, Op::CsToIeee(_))).min(8),
            area_of(&converter_cs_to_ieee(&fmt), &v),
        ),
    ];
    let mut total = Area::default();
    for (count, unit) in pools {
        for _ in 0..count {
            total = total.plus(unit);
        }
    }
    total
}

fn area_of(u: &csfma_fabric::UnitDesign, v: &Virtex6) -> Area {
    let r = u.synthesize(v);
    Area {
        luts: r.luts,
        dsps: r.dsps,
        regs: r.regs,
    }
}

/// **Fig. 15** — `ldlsolve()` schedule length for the three trajectory
/// solvers, with discrete operators and after P/FCS-FMA insertion.
pub fn fig15() -> Vec<Fig15Row> {
    let t = OpTiming::default();
    solver_suite()
        .iter()
        .map(|p| {
            let k = KktSystem::assemble(p);
            let f = LdlFactors::factor(&k.matrix);
            let prog = generate_ldlsolve(&f);
            let discrete = asap_schedule(&prog.cdfg, &t).length;
            let pcs = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(FmaKind::Pcs));
            let fcs = fuse_critical_paths(&prog.cdfg, &FusionConfig::new(FmaKind::Fcs));
            // every published schedule must pass the static checker
            for fused in [&pcs.fused, &fcs.fused] {
                let mut diags = csfma_hls::lint_dataflow(fused, &t);
                let s = asap_schedule(fused, &t);
                diags.extend(csfma_hls::lint_schedule(
                    fused,
                    &t,
                    &s,
                    &csfma_hls::ResourceLimits::default(),
                ));
                assert!(
                    !csfma_verify::has_errors(&diags),
                    "{}: fused datapath failed lint\n{}",
                    p.name,
                    csfma_verify::render_report(&diags)
                );
            }
            Fig15Row {
                solver: p.name,
                dim: k.matrix.dim(),
                discrete,
                pcs: pcs.final_length,
                fcs: fcs.final_length,
                fma_nodes: (pcs.fma_nodes, fcs.fma_nodes),
                fma_units: (
                    peak_fma_starts(&pcs.fused, &t),
                    peak_fma_starts(&fcs.fused, &t),
                ),
                discrete_area: datapath_area(&prog.cdfg, &t, FmaKind::Pcs),
                pcs_area: datapath_area(&pcs.fused, &t, FmaKind::Pcs),
                fcs_area: datapath_area(&fcs.fused, &t, FmaKind::Fcs),
            }
        })
        .collect()
}

#[cfg(test)]
mod smoke {
    use super::*;

    #[test]
    fn table1_has_the_four_rows_in_order() {
        let names: Vec<_> = table1().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["Xilinx CoreGen", "FloPoCo FPPipeline", "PCS-FMA", "FCS-FMA"]
        );
    }

    #[test]
    fn fig14_is_deterministic() {
        let a = fig14(3, 20, 1234);
        let b = fig14(3, 20, 1234);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.avg_ulp.to_bits(), y.avg_ulp.to_bits(), "{}", x.name);
        }
        let c = fig14(3, 20, 9999);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.avg_ulp != y.avg_ulp),
            "different seeds differ"
        );
    }

    #[test]
    fn table2_is_deterministic() {
        assert_eq!(table2(50, 7), table2(50, 7));
    }

    #[test]
    fn minimal_pools_preserve_length() {
        use csfma_solvers::{generate_ldlsolve, LdlFactors};
        let p = &csfma_solvers::solver_suite()[0];
        let k = csfma_solvers::KktSystem::assemble(p);
        let f = LdlFactors::factor(&k.matrix);
        let prog = generate_ldlsolve(&f);
        let t = OpTiming::default();
        let target = asap_schedule(&prog.cdfg, &t).length;
        let caps = minimal_pools(&prog.cdfg, &t);
        assert!(list_schedule(&prog.cdfg, &t, &caps).length <= target);
        // and shrinking any pool below the found cap lengthens it
        let mut tighter = caps;
        tighter.mul = caps.mul.map(|k| k.saturating_sub(1));
        if tighter.mul != caps.mul && tighter.mul != Some(0) {
            assert!(list_schedule(&prog.cdfg, &t, &tighter).length >= target);
        }
    }
}
