//! Fault-injection campaign: sweep every [`FaultSite`] over a batch,
//! one single-bit transient fault per row, and audit what the robust
//! executor did about each strike (DESIGN.md §10).
//!
//! For each site the campaign runs the fused `listing1-pcs` datapath
//! through [`Tape::eval_batch_robust`] with a seeded [`FaultPlan`]
//! striking every row, then classifies each struck row against a clean
//! [`Tape::eval_batch`] reference:
//!
//! * **recovered** — a checker (or panic) flagged the row and the
//!   fallback ladder reproduced the clean bits;
//! * **quarantined** — every rung failed; the row is NaN-poisoned and
//!   carries a structured diagnostic (cannot happen with transient
//!   faults, but the classifier does not assume that);
//! * **benign** — the fault fired but the output still matches the
//!   clean bits and no checker fired (architecturally masked);
//! * **silent** — the output differs from the clean reference and the
//!   row was not quarantined. This is the failure mode the whole
//!   self-checking apparatus exists to prevent: the campaign **gate**
//!   requires zero of these on every checker-covered site, plus a
//!   ≥ 90% detection rate there.
//!
//! [`FaultSite::TapeReg`] is swept too but reported with
//! `checked: false`: a register-plane upset between operations is
//! invisible to datapath checks (it corrupts a value, not a
//! computation) and needs ECC on the register file — the campaign
//! reports its silent rate honestly instead of gating on it.
//!
//! Every site is additionally re-run at 4 worker threads (after
//! [`FaultPlan::reset`]) and the outputs and outcomes compared — the
//! robustness machinery must not cost the engine its determinism.

use csfma_core::fault::{FaultPlan, FaultSite, FaultSpec};
use csfma_hls::{
    compile, fuse_critical_paths, parse_program, FmaKind, FusionConfig, Profiler, RobustOptions,
    RowOutcome, Tape, TapeBackend,
};
use csfma_obs::time_us;

/// What one site's sweep did, row by row.
#[derive(Clone, Debug)]
pub struct SiteReport {
    /// The swept site.
    pub site: FaultSite,
    /// Rows struck by the plan (one transient single-bit fault each).
    pub rows_struck: usize,
    /// Specs that actually fired (a transient claims exactly once; a
    /// spec whose row never reaches the tamper point stays unclaimed).
    pub fired: usize,
    /// Fired rows the executor flagged and recovered bit-identically.
    pub recovered: usize,
    /// Fired rows that ended NaN-poisoned with a diagnostic.
    pub quarantined: usize,
    /// Fired rows whose output matched the clean reference with no
    /// checker involvement (masked strikes).
    pub benign: usize,
    /// Fired rows whose output silently differs from the clean
    /// reference — must be zero on every `checked` site.
    pub silent: usize,
    /// Individual checker findings across all rungs.
    pub checker_findings: usize,
    /// Chunk-level panics the executor absorbed.
    pub chunk_panics: usize,
    /// Whether the self-checkers claim coverage of this site (the gate
    /// only applies to covered sites).
    pub checked: bool,
    /// Outputs and outcomes were identical at 1 and 4 worker threads.
    pub thread_invariant: bool,
    /// Single-threaded robust-executor wall time per row, microseconds —
    /// read from the engine's `eval_robust` observability span, the same
    /// instrumentation `bench::throughput` and `csfma-run --profile`
    /// consume (a `time_us` stopwatch is the obs-disabled fallback).
    pub eval_us_per_row: f64,
}

impl SiteReport {
    /// Flagged (recovered or quarantined) fraction of the fired strikes.
    pub fn detection_rate(&self) -> f64 {
        if self.fired == 0 {
            return 1.0;
        }
        (self.recovered + self.quarantined) as f64 / self.fired as f64
    }

    /// The per-site gate: covered sites must detect ≥ 90% of strikes
    /// and corrupt nothing silently; uncovered sites are report-only.
    pub fn passes(&self) -> bool {
        !self.checked || (self.silent == 0 && self.detection_rate() >= 0.9)
    }
}

/// A full campaign: every site swept over the same batch.
#[derive(Clone, Debug)]
pub struct FaultCampaign {
    /// Rows per sweep.
    pub rows: usize,
    /// Plan seed (bit positions derive from `(seed, site, row)`).
    pub seed: u64,
    /// Benchmark datapath label.
    pub graph: &'static str,
    /// One report per site, in [`FaultSite::ALL`] order.
    pub sites: Vec<SiteReport>,
}

impl FaultCampaign {
    /// The campaign gate (see [`SiteReport::passes`]), plus thread
    /// invariance everywhere.
    pub fn passes(&self) -> bool {
        self.sites.iter().all(|s| s.passes() && s.thread_invariant)
    }

    /// Silent corruptions on checker-covered sites (the headline gate).
    pub fn silent_on_checked(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.checked)
            .map(|s| s.silent)
            .sum()
    }
}

/// The campaign datapath: Listing 1 fused with PCS FMAs — three chained
/// checked FMA units per row, every mantissa-path site exercised thrice.
fn campaign_tape() -> Tape {
    let g = parse_program("x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;")
        .expect("listing1 parses");
    let fused = fuse_critical_paths(&g, &FusionConfig::new(FmaKind::Pcs)).fused;
    compile(&fused).expect("campaign graph is checker-clean")
}

/// Deterministic stimulus (no RNG dependency needed for the sweep).
fn stimulus(tape: &Tape, rows: usize, seed: u64) -> Vec<f64> {
    (0..rows * tape.num_inputs())
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed);
            ((h >> 11) % 200_000) as f64 * 0.01 - 1000.0
        })
        .collect()
}

/// Run the full sweep: `rows` rows per site, faults seeded from `seed`.
pub fn run_campaign(rows: usize, seed: u64) -> FaultCampaign {
    let tape = campaign_tape();
    let stim = stimulus(&tape, rows, seed);
    let clean = tape.eval_batch(TapeBackend::BitAccurate, &stim, 1);
    let no = tape.num_outputs();

    let mut sites = Vec::new();
    for site in FaultSite::ALL {
        let mut plan = FaultPlan::new(seed);
        for row in 0..rows as u64 {
            plan = plan.with_fault(FaultSpec::transient(site, row));
        }
        let run = |threads: usize| {
            plan.reset();
            let mut prof = Profiler::new();
            let ((out, report), wall_us) = time_us(|| {
                tape.eval_batch_robust_profiled(
                    TapeBackend::BitAccurate,
                    &stim,
                    &RobustOptions {
                        threads,
                        chunk_retries: 2,
                        fault: Some(&plan),
                    },
                    &mut prof,
                )
            });
            let eval_us = prof
                .finish()
                .stage("eval_robust")
                .map_or(wall_us, |s| s.wall_us);
            (out, report, eval_us)
        };
        let (out, report, eval_us) = run(1);
        let fired_rows: Vec<bool> = (0..rows).map(|r| plan.fired(r) > 0).collect();
        let (out4, report4, _) = run(4);
        let thread_invariant = out
            .iter()
            .zip(out4.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && report.outcomes == report4.outcomes;

        let mut s = SiteReport {
            site,
            rows_struck: rows,
            fired: fired_rows.iter().filter(|&&f| f).count(),
            recovered: 0,
            quarantined: 0,
            benign: 0,
            silent: 0,
            checker_findings: report.detections,
            chunk_panics: report.chunk_panics,
            checked: site != FaultSite::TapeReg,
            thread_invariant,
            eval_us_per_row: eval_us / rows as f64,
        };
        for r in 0..rows {
            if !fired_rows[r] {
                continue;
            }
            let equal = (0..no).all(|k| out[r * no + k].to_bits() == clean[r * no + k].to_bits());
            match &report.outcomes[r] {
                RowOutcome::Quarantined { .. } => s.quarantined += 1,
                RowOutcome::Recovered { .. } if equal => s.recovered += 1,
                RowOutcome::Ok if equal => s.benign += 1,
                // recovered-but-wrong counts as silent too: the ladder
                // vouched for bits that do not match the clean run
                _ => s.silent += 1,
            }
        }
        sites.push(s);
    }
    FaultCampaign {
        rows,
        seed,
        graph: "listing1-pcs",
        sites,
    }
}

/// Render the campaign as the `BENCH_faults.json` document (hand-rolled;
/// the workspace has no JSON dependency).
pub fn to_json(c: &FaultCampaign) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"faults\",");
    let _ = writeln!(s, "  \"graph\": \"{}\",", c.graph);
    let _ = writeln!(s, "  \"rows\": {},", c.rows);
    let _ = writeln!(s, "  \"seed\": {},", c.seed);
    let _ = writeln!(s, "  \"fault_model\": \"single-bit transient per row\",");
    let _ = writeln!(s, "  \"sites\": [");
    for (i, r) in c.sites.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"site\": \"{}\",", r.site.name());
        let _ = writeln!(s, "      \"checked\": {},", r.checked);
        let _ = writeln!(s, "      \"rows_struck\": {},", r.rows_struck);
        let _ = writeln!(s, "      \"fired\": {},", r.fired);
        let _ = writeln!(s, "      \"recovered\": {},", r.recovered);
        let _ = writeln!(s, "      \"quarantined\": {},", r.quarantined);
        let _ = writeln!(s, "      \"benign\": {},", r.benign);
        let _ = writeln!(s, "      \"silent\": {},", r.silent);
        let _ = writeln!(s, "      \"detection_rate\": {:.4},", r.detection_rate());
        let _ = writeln!(s, "      \"checker_findings\": {},", r.checker_findings);
        let _ = writeln!(s, "      \"chunk_panics\": {},", r.chunk_panics);
        let _ = writeln!(s, "      \"eval_us_per_row\": {:.4},", r.eval_us_per_row);
        let _ = writeln!(s, "      \"thread_invariant\": {}", r.thread_invariant);
        let _ = writeln!(s, "    }}{}", if i + 1 < c.sites.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(
        s,
        "  \"note\": \"tape-reg is outside checker coverage (register-file \
         upsets need ECC); it is swept and reported but not gated\","
    );
    let _ = writeln!(s, "  \"silent_on_checked\": {},", c.silent_on_checked());
    let _ = writeln!(s, "  \"pass\": {}", c.passes());
    let _ = write!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_and_serializes() {
        let c = run_campaign(96, 7);
        assert_eq!(c.sites.len(), FaultSite::ALL.len());
        assert!(c.passes(), "{c:?}");
        assert_eq!(c.silent_on_checked(), 0);
        for s in &c.sites {
            assert!(s.thread_invariant, "{:?}", s.site);
            // the mantissa-path checkers are exact on single-bit flips
            if FaultSite::MANTISSA.contains(&s.site) {
                assert!(s.detection_rate() >= 0.9, "{:?}: {s:?}", s.site);
            }
        }
        let json = to_json(&c);
        assert!(json.contains("\"pass\": true"), "{json}");
        assert!(json.contains("\"site\": \"mul-sum\""));
        assert!(json.contains("\"site\": \"tape-reg\""));
    }
}
