//! # csfma-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (Sec. IV). Each
//! experiment is a plain function returning structured rows, consumed by
//! the `src/bin/*` report binaries, the workspace integration tests, and
//! EXPERIMENTS.md. Criterion micro-benchmarks of the behavioral units
//! live in `benches/`.

pub mod experiments;
pub mod fault;
pub mod serve;
pub mod table;
pub mod throughput;

pub use experiments::{fig13, fig14, fig15, table1, table2, Fig14Row, Fig15Row};
pub use fault::{run_campaign, FaultCampaign, SiteReport};
pub use serve::{run_serve_bench, KillReport, ScenarioReport, ServeBench};
pub use throughput::{eval_many_scenario, throughput, EvalManyScenario, ThroughputRow};
