//! Batch-execution throughput experiment: compiled instruction tape
//! versus the scalar reference interpreters.
//!
//! For each benchmark datapath the experiment measures
//!
//! * the **scalar oracle** (`eval_f64` / `eval_bit_accurate`) walking the
//!   graph per input vector with `HashMap` plumbing — the semantics
//!   definition, and the baseline every speedup is quoted against;
//! * the **compiled tape** ([`mod@csfma_hls::compile`]) at 1, 2 and 8 worker
//!   threads via [`Tape::eval_batch`];
//! * one-time costs: cold compile versus a [`compile_cached`] hit;
//! * a **bitwise-equality audit** of tape output against the scalar
//!   oracle on every row the oracle evaluated — a speedup only counts if
//!   the bits agree.
//!
//! The scalar oracle is evaluated on a capped subset of rows (it is the
//! slow side — that is the point) and its per-row cost extrapolated;
//! [`ThroughputRow::scalar_rows_measured`] records the subset size so
//! the JSON never silently pretends full coverage.

use csfma_hls::{
    compile_cached, compile_with_options_profiled, eval_many_profiled, fuse_critical_paths,
    interp::{eval_bit_accurate, eval_f64},
    parse_program, tape_cache_stats, Cdfg, CompileOptions, EvalManyRequest, FmaKind, FusionConfig,
    Profiler, Tape, TapeBackend,
};
use csfma_obs::time_us;
use csfma_solvers::{generate_ldlsolve, solver_suite, KktSystem, LdlFactors};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

/// Measurement for one (datapath, backend) pair.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Datapath label.
    pub graph: String,
    /// Node count of the compiled graph.
    pub nodes: usize,
    /// `"bit"` (soft-float + behavioral FMA) or `"f64"`.
    pub backend: &'static str,
    /// Batch size the tape evaluated.
    pub rows: usize,
    /// Rows the scalar oracle actually evaluated (time-capped subset).
    pub scalar_rows_measured: usize,
    /// Scalar interpreter cost per input vector, microseconds.
    pub scalar_us_per_row: f64,
    /// `(worker_threads, microseconds_per_row)` for the tape.
    pub tape_us_per_row: Vec<(usize, f64)>,
    /// Scalar cost / tape cost at 1 thread.
    pub speedup_1t: f64,
    /// Scalar cost / tape cost at 8 threads.
    pub speedup_8t: f64,
    /// Tape output matched the oracle bit-for-bit on every audited row.
    pub bitwise_equal: bool,
    /// Cold `compile()` wall time, microseconds (includes the optimizer).
    pub compile_us: f64,
    /// Of which: post-gate optimizer wall time, microseconds.
    pub optimize_us: f64,
    /// `compile_cached()` hit wall time, microseconds.
    pub cached_compile_us: f64,
    /// Graph nodes entering the post-gate optimizer.
    pub opt_nodes_before: usize,
    /// Graph nodes after folding / CSE / DCE.
    pub opt_nodes_after: usize,
    /// Instructions in the lowered tape (after dead-slot elimination).
    pub instrs: usize,
    /// Adaptive scheduler grain at 8 threads, in rows (`grain · 64`).
    pub chunk_size: usize,
    /// Workers the 8-thread run actually fielded (capped by batch size).
    pub steal_workers: u64,
    /// Deque claims (owner pops + steals) during the 8-thread run.
    pub steal_claims: u64,
    /// Of which: successful steals from another worker's deque.
    pub steal_steals: u64,
}

/// The benchmark datapaths: Listing 1 discrete and fused both ways, the
/// deep Horner chain fused, and the unrolled `ldlsolve` kernel of the
/// paper's smallest trajectory solver (540-node class).
pub fn bench_graphs() -> Vec<(String, Cdfg)> {
    let listing1 = parse_program("x1 = a*b + c*d;\n x2 = e*f + g*x1;\n out x3 = h*i + k*x2;")
        .expect("listing1 parses");
    let horner = parse_program(
        "p1 = c8*x + c7;\n p2 = p1*x + c6;\n p3 = p2*x + c5;\n p4 = p3*x + c4;\n \
         p5 = p4*x + c3;\n p6 = p5*x + c2;\n p7 = p6*x + c1;\n out y = p7*x + c0;",
    )
    .expect("horner parses");
    let problem = &solver_suite()[0];
    let kkt = KktSystem::assemble(problem);
    let factors = LdlFactors::factor(&kkt.matrix);
    let ldl = generate_ldlsolve(&factors).cdfg;

    let fuse = |g: &Cdfg, kind: FmaKind| fuse_critical_paths(g, &FusionConfig::new(kind)).fused;
    vec![
        ("listing1".into(), listing1.clone()),
        ("listing1-pcs".into(), fuse(&listing1, FmaKind::Pcs)),
        ("listing1-fcs".into(), fuse(&listing1, FmaKind::Fcs)),
        ("horner8-pcs".into(), fuse(&horner, FmaKind::Pcs)),
        ("ldlsolve-s1".into(), ldl),
    ]
}

fn scalar_eval(
    g: &Cdfg,
    backend: TapeBackend,
    inputs: &HashMap<String, f64>,
) -> HashMap<String, f64> {
    match backend {
        TapeBackend::F64 => eval_f64(g, inputs),
        // the oracle and jit backends are bit-identical to bit-accurate
        // by construction, so the same reference applies
        TapeBackend::BitAccurate | TapeBackend::Oracle | TapeBackend::Jit => {
            eval_bit_accurate(g, inputs)
        }
    }
}

/// Run the experiment: `rows` input vectors per datapath, oracle audited
/// on at most `scalar_cap` of them, stimulus from `seed`.
pub fn throughput(rows: usize, scalar_cap: usize, seed: u64) -> Vec<ThroughputRow> {
    let mut out = Vec::new();
    for (name, g) in bench_graphs() {
        // timings come from the engine's own observability layer (the
        // `compile` stage span), not a private stopwatch; the time_us
        // wrapper is the fallback for obs-disabled builds
        let mut prof = Profiler::new();
        let (tape, compile_wall_us) =
            time_us(|| compile_with_options_profiled(&g, CompileOptions::default(), &mut prof));
        let tape = tape.expect("benchmark graphs are checker-clean");
        let compile_us = prof
            .finish()
            .stage("compile")
            .map_or(compile_wall_us, |s| s.wall_us);
        let _warm = compile_cached(&g).expect("cache warm-up");
        let (_hit, cached_compile_us) = time_us(|| compile_cached(&g).expect("cache hit"));

        let ni = tape.num_inputs();
        let mut rng = StdRng::seed_from_u64(seed);
        let stim: Vec<f64> = (0..rows * ni)
            .map(|_| rng.gen_range(-100.0..100.0))
            .collect();

        // identical stimulus across backends so the rows per graph
        // describe the same workload; the jit backend only applies to
        // IEEE-node graphs (fused tapes refuse a module and would just
        // re-measure the interpreter under a different label)
        let mut backends = vec![TapeBackend::BitAccurate, TapeBackend::F64];
        if tape.jit_module().is_some() {
            backends.push(TapeBackend::Jit);
        }
        for backend in backends {
            let mut row = measure(&name, &g, &tape, backend, &stim, rows, scalar_cap);
            row.compile_us = compile_us;
            row.cached_compile_us = cached_compile_us;
            let o = tape.opt_stats();
            row.optimize_us = o.optimize_us;
            row.opt_nodes_before = o.nodes_before;
            row.opt_nodes_after = o.nodes_after;
            row.instrs = tape.instrs().len();
            out.push(row);
        }
    }
    out
}

/// Timing repetitions per measurement point. Every repetition produces
/// bit-identical output (the engine is deterministic), so taking the
/// minimum wall time is pure noise rejection: scheduler preemption and
/// cache pollution only ever make a run slower, never faster.
const REPS: usize = 3;

fn measure(
    name: &str,
    g: &Cdfg,
    tape: &Tape,
    backend: TapeBackend,
    stim: &[f64],
    rows: usize,
    scalar_cap: usize,
) -> ThroughputRow {
    let ni = tape.num_inputs();
    let audit_rows = rows.min(scalar_cap).max(1);

    // scalar oracle over the audited subset, best of REPS
    let mut oracle_out: Vec<HashMap<String, f64>> = Vec::new();
    let mut scalar_total_us = f64::INFINITY;
    for rep in 0..REPS {
        let (got, us) = time_us(|| {
            let mut out: Vec<HashMap<String, f64>> = Vec::with_capacity(audit_rows);
            for r in 0..audit_rows {
                let m: HashMap<String, f64> = tape
                    .input_names()
                    .iter()
                    .enumerate()
                    .map(|(k, n)| (n.clone(), stim[r * ni + k]))
                    .collect();
                out.push(scalar_eval(g, backend, &m));
            }
            out
        });
        scalar_total_us = scalar_total_us.min(us);
        if rep == 0 {
            oracle_out = got;
        }
    }
    let scalar_us = scalar_total_us / audit_rows as f64;

    // compiled tape over the full batch at each worker count; per-run
    // wall time is the engine's own `eval` stage span (time_us is the
    // obs-disabled fallback), best of REPS
    let mut tape_us = Vec::new();
    let mut batch_out = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut dt = f64::INFINITY;
        for rep in 0..REPS {
            let mut prof = Profiler::new();
            let (got, wall_us) =
                time_us(|| tape.eval_batch_profiled(backend, stim, threads, &mut prof));
            dt = dt.min(prof.finish().stage("eval").map_or(wall_us, |s| s.wall_us) / rows as f64);
            if threads == 1 && rep == 0 {
                batch_out = got;
            } else {
                assert!(
                    got.iter()
                        .zip(batch_out.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "thread-count variance in {name}"
                );
            }
        }
        tape_us.push((threads, dt));
    }

    let no = tape.num_outputs();
    let bitwise_equal = (0..audit_rows).all(|r| {
        tape.output_names()
            .iter()
            .enumerate()
            .all(|(k, n)| batch_out[r * no + k].to_bits() == oracle_out[r][n].to_bits())
    });

    // one un-timed 8-thread pass to capture the scheduler's own view of
    // the workload (grain, fielded workers, claim/steal mix)
    let (_, sched) = tape.eval_batch_with_stats(backend, stim, 8);

    let tape_1t = tape_us[0].1;
    let tape_8t = tape_us[2].1;
    ThroughputRow {
        graph: name.to_string(),
        nodes: g.len(),
        backend: match backend {
            TapeBackend::F64 => "f64",
            TapeBackend::BitAccurate => "bit",
            TapeBackend::Oracle => "oracle",
            TapeBackend::Jit => "jit",
        },
        rows,
        scalar_rows_measured: audit_rows,
        scalar_us_per_row: scalar_us,
        tape_us_per_row: tape_us,
        speedup_1t: scalar_us / tape_1t,
        speedup_8t: scalar_us / tape_8t,
        bitwise_equal,
        compile_us: 0.0,
        optimize_us: 0.0,
        cached_compile_us: 0.0,
        opt_nodes_before: 0,
        opt_nodes_after: 0,
        instrs: tape.instrs().len(),
        chunk_size: sched.grain as usize * csfma_core::batch::CHUNK_ROWS,
        steal_workers: sched.workers,
        steal_claims: sched.claims,
        steal_steals: sched.steals,
    }
}

/// Measurement of the multi-graph [`csfma_hls::eval_many`] scenario: every
/// benchmark datapath as one request (fused graphs on the bit-accurate
/// backend, the rest on f64) behind a single 8-thread stealing deque,
/// against the sequential baseline of per-request `eval_batch` calls.
#[derive(Clone, Debug)]
pub struct EvalManyScenario {
    /// Requests in the batch (one per benchmark datapath).
    pub requests: usize,
    /// Total rows across all requests.
    pub rows_total: usize,
    /// One `eval_many` call at 8 threads, microseconds (best of reps).
    pub many_us: f64,
    /// Sequential per-request `eval_batch` at 1 thread, microseconds.
    pub sequential_us: f64,
    /// `sequential_us / many_us`.
    pub speedup_vs_sequential: f64,
    /// Every request bitwise identical to its standalone evaluation.
    pub bitwise_equal: bool,
    /// Workers the stealing pass fielded.
    pub workers: u64,
    /// Deque claims across the whole request set.
    pub claims: u64,
    /// Of which: successful steals.
    pub steals: u64,
}

/// Run the [`csfma_hls::eval_many`] scenario: `rows` rows for the heavy fused
/// requests and `rows / 4` for the f64 ones (deliberate skew, so the
/// deque has something to rebalance), stimulus from `seed`.
pub fn eval_many_scenario(rows: usize, seed: u64) -> EvalManyScenario {
    let graphs = bench_graphs();
    let backends: Vec<TapeBackend> = graphs
        .iter()
        .map(|(name, _)| {
            if name.contains("pcs") || name.contains("fcs") {
                TapeBackend::BitAccurate
            } else {
                TapeBackend::F64
            }
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows_by_req: Vec<Vec<f64>> = graphs
        .iter()
        .zip(&backends)
        .map(|((_, g), b)| {
            let ni = compile_cached(g)
                .expect("benchmark graphs compile")
                .num_inputs();
            let n = match b {
                TapeBackend::BitAccurate => rows,
                _ => (rows / 4).max(1),
            };
            (0..n * ni).map(|_| rng.gen_range(-100.0..100.0)).collect()
        })
        .collect();
    let reqs: Vec<EvalManyRequest> = graphs
        .iter()
        .zip(&backends)
        .zip(&rows_by_req)
        .map(|(((_, g), &backend), rows)| EvalManyRequest::new(g, backend, rows))
        .collect();

    let mut many_us = f64::INFINITY;
    let mut results = Vec::new();
    let mut workers = 0u64;
    let mut claims = 0u64;
    let mut steals = 0u64;
    for rep in 0..REPS {
        let mut prof = Profiler::new();
        let (got, us) = time_us(|| eval_many_profiled(&reqs, 8, &mut prof));
        let report = prof.finish();
        many_us = many_us.min(report.stage("eval_many").map_or(us, |s| s.wall_us));
        if rep == 0 {
            workers = report.counter("sched_workers").unwrap_or(0.0) as u64;
            claims = report.counter("sched_claims").unwrap_or(0.0) as u64;
            steals = report.counter("sched_steals").unwrap_or(0.0) as u64;
            results = got;
        }
    }

    let mut sequential_us = f64::INFINITY;
    for _ in 0..REPS {
        let (_, us) = time_us(|| {
            for (((_, g), &backend), rows) in graphs.iter().zip(&backends).zip(&rows_by_req) {
                let tape = compile_cached(g).expect("benchmark graphs compile");
                std::hint::black_box(tape.eval_batch(backend, rows, 1));
            }
        });
        sequential_us = sequential_us.min(us);
    }

    let bitwise_equal = results.iter().enumerate().all(|(i, res)| {
        let out = res.as_ref().expect("benchmark graphs compile");
        let want = out.tape.eval_batch(backends[i], &rows_by_req[i], 1);
        want.len() == out.outputs.len()
            && want
                .iter()
                .zip(&out.outputs)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    });
    let rows_total = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|o| o.outputs.len() / o.tape.num_outputs().max(1))
        .sum();
    EvalManyScenario {
        requests: reqs.len(),
        rows_total,
        many_us,
        sequential_us,
        speedup_vs_sequential: sequential_us / many_us,
        bitwise_equal,
        workers,
        claims,
        steals,
    }
}

/// Render rows plus the [`csfma_hls::eval_many`] scenario as the
/// `BENCH_throughput.json` document. Hand-rolled (the workspace has no
/// JSON dependency); numbers use enough digits to round-trip.
pub fn to_json(
    rows: &[ThroughputRow],
    many: &EvalManyScenario,
    rows_per_graph: usize,
    seed: u64,
) -> String {
    use std::fmt::Write as _;
    let threads_avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"throughput\",");
    let _ = writeln!(s, "  \"rows_per_graph\": {rows_per_graph},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"hardware_threads\": {threads_avail},");
    let c = tape_cache_stats();
    let hit_rate = if c.hits + c.misses > 0 {
        c.hits as f64 / (c.hits + c.misses) as f64
    } else {
        0.0
    };
    let _ = writeln!(
        s,
        "  \"tape_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"entries\": {}, \"capacity\": {}, \"hit_rate\": {hit_rate:.4}}},",
        c.hits, c.misses, c.evictions, c.entries, c.capacity
    );
    let _ = writeln!(
        s,
        "  \"eval_many\": {{\"requests\": {}, \"rows_total\": {}, \"many_us\": {:.2}, \
         \"sequential_us\": {:.2}, \"speedup_vs_sequential\": {:.2}, \"bitwise_equal\": {}, \
         \"steal\": {{\"workers\": {}, \"claims\": {}, \"steals\": {}}}}},",
        many.requests,
        many.rows_total,
        many.many_us,
        many.sequential_us,
        many.speedup_vs_sequential,
        many.bitwise_equal,
        many.workers,
        many.claims,
        many.steals
    );
    let _ = writeln!(s, "  \"entries\": [");
    for (i, r) in rows.iter().enumerate() {
        let tape: Vec<String> = r
            .tape_us_per_row
            .iter()
            .map(|(t, us)| format!("\"{t}\": {us:.4}"))
            .collect();
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"graph\": \"{}\",", r.graph);
        let _ = writeln!(s, "      \"nodes\": {},", r.nodes);
        let _ = writeln!(s, "      \"backend\": \"{}\",", r.backend);
        let _ = writeln!(s, "      \"rows\": {},", r.rows);
        let _ = writeln!(
            s,
            "      \"scalar_rows_measured\": {},",
            r.scalar_rows_measured
        );
        let _ = writeln!(
            s,
            "      \"scalar_us_per_row\": {:.4},",
            r.scalar_us_per_row
        );
        let _ = writeln!(s, "      \"tape_us_per_row\": {{{}}},", tape.join(", "));
        let _ = writeln!(s, "      \"speedup_1t\": {:.2},", r.speedup_1t);
        let _ = writeln!(s, "      \"speedup_8t\": {:.2},", r.speedup_8t);
        let _ = writeln!(s, "      \"compile_us\": {:.2},", r.compile_us);
        let _ = writeln!(s, "      \"optimize_us\": {:.2},", r.optimize_us);
        let _ = writeln!(
            s,
            "      \"cached_compile_us\": {:.2},",
            r.cached_compile_us
        );
        let _ = writeln!(s, "      \"opt_nodes_before\": {},", r.opt_nodes_before);
        let _ = writeln!(s, "      \"opt_nodes_after\": {},", r.opt_nodes_after);
        let _ = writeln!(s, "      \"instrs\": {},", r.instrs);
        let _ = writeln!(s, "      \"chunk_size\": {},", r.chunk_size);
        let _ = writeln!(
            s,
            "      \"steal\": {{\"workers\": {}, \"claims\": {}, \"steals\": {}}},",
            r.steal_workers, r.steal_claims, r.steal_steals
        );
        let _ = writeln!(s, "      \"bitwise_equal\": {}", r.bitwise_equal);
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = write!(s, "}}");
    s
}
