//! Small helpers for printing paper-style report tables.

/// Print a header line followed by a separator.
pub fn header(title: &str, cols: &[&str], widths: &[usize]) {
    println!("\n=== {title} ===");
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$} "));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Format a paper-vs-measured pair with relative deviation.
pub fn vs_paper(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:.2}");
    }
    let dev = 100.0 * (measured - paper) / paper;
    format!("{measured:.2} (paper {paper:.2}, {dev:+.1}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_paper_formats() {
        let s = vs_paper(231.0, 244.0);
        assert!(s.contains("paper 244.00"));
        assert!(s.contains("-5.3%"));
    }
}
