//! Switching-activity capture for the energy model (Table II).
//!
//! The paper measured energy with XPower from the switching activity of a
//! post-layout simulation. Our substitute records the value of every named
//! datapath net during behavioral evaluation; `csfma-fabric` replays a
//! workload, counts bit toggles between consecutive operations per net,
//! and converts them to energy with per-resource coefficients.

use csfma_bits::Bits;

/// Receives the value appearing on a named net during one evaluation.
pub trait TraceSink {
    /// Record that `net` carried `value` in this operation.
    fn record(&mut self, net: &'static str, value: &Bits);
}

/// Discards everything (the default for plain computation).
#[derive(Default, Clone, Copy, Debug)]
pub struct NopSink;

impl TraceSink for NopSink {
    #[inline]
    fn record(&mut self, _net: &'static str, _value: &Bits) {}
}

/// Collects `(net, value)` pairs in order.
#[derive(Default, Clone, Debug)]
pub struct VecSink {
    /// Recorded values in evaluation order.
    pub events: Vec<(&'static str, Bits)>,
}

impl TraceSink for VecSink {
    fn record(&mut self, net: &'static str, value: &Bits) {
        self.events.push((net, value.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects_in_order() {
        let mut s = VecSink::default();
        s.record("a", &Bits::from_u64(4, 1));
        s.record("b", &Bits::from_u64(4, 2));
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].0, "a");
        assert_eq!(s.events[1].1.to_u64(), 2);
    }
}
