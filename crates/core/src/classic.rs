//! The classic fused multiply-add (Fig. 4) — the Hokenek/Montoye 1990
//! architecture the paper uses as the baseline for its optimizations.
//!
//! IEEE 754 operands in, IEEE 754 result out: the unit keeps the product
//! in carry-save form, pre-shifts the addend in parallel with the
//! multiply, then pays for what the P/FCS units avoid — a full-width
//! (161-bit) carry-propagating addition, a leading-zero-anticipator-guided
//! variable-distance normalization shift, rounding, and a conditional
//! post-normalization shift.
//!
//! Arithmetically a classic FMA is simply the correctly rounded fused
//! operation; this model computes exactly that (via the exact-intermediate
//! soft-float path) while exposing the *structural* facts — CSA-tree
//! shape, adder width, shifter width — that the fabric model prices. The
//! structural constants below are the Fig. 4 datapath for binary64.

use csfma_softfloat::{FpFormat, Round, SoftFloat};

/// Structural parameters of the classic double-precision FMA datapath,
/// used by `csfma-fabric` to price the baseline.
#[derive(Clone, Copy, Debug)]
pub struct ClassicFmaStructure {
    /// Width of the carry-propagating adder that resolves the CS product
    /// plus aligned addend (the paper quotes 161 bits).
    pub adder_bits: usize,
    /// Width of the variable-distance normalization shifter input.
    pub shifter_bits: usize,
    /// Partial-product rows of the 53x53 multiplier.
    pub multiplier_rows: usize,
    /// Whether a leading-zero anticipator runs in parallel with the add.
    pub has_lza: bool,
    /// Whether a post-normalization 1-bit shift is needed after rounding.
    pub has_post_normalize: bool,
}

/// The classic FMA unit: `R = A + B * C`, correctly rounded once.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassicFma {
    mode: Round,
}

impl ClassicFma {
    /// Unit rounding in the given mode (IEEE default is nearest-even).
    pub fn new(mode: Round) -> Self {
        ClassicFma { mode }
    }

    /// `A + B * C` with one rounding at the end (the defining property of
    /// the fused operation: no intermediate normalization, Fig. 3/4).
    pub fn fma(&self, a: &SoftFloat, b: &SoftFloat, c: &SoftFloat) -> SoftFloat {
        crate::obs::CLASSIC_FMA_OPS.incr();
        // B*C + A: SoftFloat::fma_r computes product-exact, adds exact,
        // rounds once — the value semantics of the Fig. 4 datapath.
        b.fma_r(c, a, self.mode)
    }

    /// The same computation executed *structurally* along the Fig. 4
    /// datapath at bit level: CS mantissa product, addend pre-shift with
    /// sticky collection, one wide two's-complement addition, conditional
    /// complement, leading-zero-count normalization shift, rounding and
    /// conditional post-normalization. Must agree with [`ClassicFma::fma`]
    /// bit for bit (property-tested) — the classic FMA *is* the correctly
    /// rounded fused operation; it just pays for it in latency.
    ///
    /// Round-to-nearest-even only (the IEEE operator the comparison units
    /// implement).
    pub fn fma_structural(a: &SoftFloat, b: &SoftFloat, c: &SoftFloat) -> SoftFloat {
        use csfma_bits::Bits;

        let fmt = a.format();
        assert_eq!(
            fmt,
            FpFormat::BINARY64,
            "structural model is the binary64 instance"
        );
        // exception classes resolve exactly as in the value model
        if a.is_nan()
            || b.is_nan()
            || c.is_nan()
            || b.is_inf()
            || c.is_inf()
            || a.is_inf()
            || b.is_zero()
            || c.is_zero()
            || a.is_zero()
        {
            return b.fma_r(c, a, Round::NearestEven);
        }

        // ---- geometry: 164-bit window, product anchored 56 bits up ----
        const W: usize = 168;
        const P_OFF: i64 = 56;
        let e_p = b.exp() as i64 + c.exp() as i64;
        // window LSB weight: product integer has its ulp at 2^(eP - 104)
        let mut wls = (e_p - 104) - P_OFF;

        let shift_a_raw = (a.exp() as i64 - 52) - wls;
        let max_shift = W as i64 - 58;
        let extra = (shift_a_raw - max_shift).max(0);
        let p_shift = P_OFF - extra;
        let a_shift = shift_a_raw - extra;
        wls += extra;

        // ---- CS product (53x53 -> 106b + headroom) ----
        let prod = (b.significand() as u128) * (c.significand() as u128);
        let psign = b.sign() ^ c.sign();

        // Place both addends in the window with sticky collection. The
        // magnitude truncation direction is safe here: an operand only
        // drops bits when it sits ≥ 56 positions below the product ULP,
        // while the result's guard bit never falls below the product ULP
        // minus 2 — so dropped fractions can never convert an exact tie
        // into a non-tie (they are > 2^54 below the guard weight) and
        // sticky-only treatment is exact. The property test below checks
        // bit-exactness against the correctly rounded reference.
        let mut sticky = false;
        let mut place = |mag: u128, width: usize, shift: i64, neg: bool| -> Bits {
            let v = Bits::from_u128(width, mag);
            let placed = if shift >= 0 {
                v.zext(W).shl(shift as usize)
            } else {
                let sh = (-shift) as usize;
                if sh >= width {
                    sticky |= mag != 0;
                    Bits::zero(W)
                } else {
                    sticky |= !v.extract(0, sh).is_zero();
                    v.shr(sh).zext(W)
                }
            };
            if neg {
                placed.wrapping_neg()
            } else {
                placed
            }
        };
        let pa = place(prod, 108, p_shift, psign);
        let aa = place(a.significand() as u128, 54, a_shift, a.sign());

        // ---- the wide carry-propagating addition (the classic unit's
        // 161b adder) + conditional complement ----
        let sum = pa.wrapping_add(&aa);
        if sum.is_zero() && !sticky {
            return SoftFloat::zero(fmt, false);
        }
        let rsign = sum.sign_bit();
        let mag = if rsign { sum.wrapping_neg() } else { sum };

        // ---- LZC-guided normalization ----
        let lz = mag.leading_zeros();
        if mag.is_zero() {
            // only sticky survives: magnitude below every window bit
            return SoftFloat::zero(fmt, rsign);
        }
        let msb = W - 1 - lz; // leading one position
        let exp = msb as i64 + wls;

        // ---- round to nearest even with guard + sticky ----
        let keep = 53usize;
        let (mut sig, guard, low_sticky) = if msb < keep {
            (
                mag.extract(0, msb + 1).shl(keep - msb - 1).to_u128(),
                false,
                false,
            )
        } else {
            let cut = msb + 1 - keep;
            let sig = mag.extract(cut, keep).to_u128();
            let guard = mag.bit(cut - 1);
            let ls = cut >= 2 && !mag.extract(0, cut - 1).is_zero();
            (sig, guard, ls)
        };
        let st = sticky || low_sticky;
        let mut exp = exp;
        if guard && (st || sig & 1 == 1) {
            sig += 1;
            if sig >> keep != 0 {
                // post-normalization right shift (the step Sec. III-B
                // removes by widening the mantissa)
                sig >>= 1;
                exp += 1;
            }
        }
        if exp > fmt.emax() as i64 {
            return SoftFloat::inf(fmt, rsign);
        }
        if exp < fmt.emin() as i64 {
            return SoftFloat::zero(fmt, rsign);
        }
        SoftFloat::from_parts(fmt, rsign, exp as i32, (sig as u64) & ((1u64 << 52) - 1))
    }

    /// Structural description of the binary64 instance for the fabric
    /// cost model.
    pub fn structure() -> ClassicFmaStructure {
        ClassicFmaStructure {
            adder_bits: 161, // Sec. III-A: "a 161b adder followed by a conditional complement"
            shifter_bits: 162,
            multiplier_rows: 53,
            has_lza: true,
            has_post_normalize: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csfma_softfloat::FpFormat;
    use proptest::prelude::*;

    fn sf(v: f64) -> SoftFloat {
        SoftFloat::from_f64(FpFormat::BINARY64, v)
    }

    #[test]
    fn matches_host_fused_multiply_add() {
        let u = ClassicFma::new(Round::NearestEven);
        for (a, b, c) in [(3.3, 1.1, 2.2), (-1.0, 1e8, 1e-8), (1.0, 0.1, 10.0)] {
            assert_eq!(
                u.fma(&sf(a), &sf(b), &sf(c)).to_f64().to_bits(),
                b.mul_add(c, a).to_bits(),
                "fma({b},{c},{a})"
            );
        }
    }

    #[test]
    fn single_rounding_beats_discrete_mul_add() {
        let u = ClassicFma::new(Round::NearestEven);
        let x = 1.0 + 2f64.powi(-30);
        let fused = u.fma(&sf(-1.0 - 2f64.powi(-29)), &sf(x), &sf(x));
        assert_eq!(fused.to_f64(), 2f64.powi(-60));
    }

    #[test]
    fn structural_matches_value_model_on_cases() {
        for (a, b, c) in [
            (3.3, 1.1, 2.2),
            (-1.0, 1e8, 1e-8),
            (1.0, 0.1, 10.0),
            (0.5, -0.5, 1.0),
            (1e300, 1e-300, 1e300),
            (-2.75, 3.25, -1.125),
            (1.0, 1.0 + 2f64.powi(-30), -(1.0 + 2f64.powi(-29))),
        ] {
            let want = ClassicFma::new(Round::NearestEven).fma(&sf(a), &sf(b), &sf(c));
            let got = ClassicFma::fma_structural(&sf(a), &sf(b), &sf(c));
            assert_eq!(
                got.to_f64().to_bits(),
                want.to_f64().to_bits(),
                "structural mismatch for ({a},{b},{c})"
            );
        }
    }

    #[test]
    fn structural_exact_cancellation() {
        // a = -b*c exactly: sum cancels to zero through the whole window
        let got = ClassicFma::fma_structural(&sf(-6.0), &sf(2.0), &sf(3.0));
        assert!(got.is_zero());
        // near-cancellation keeps the tiny residue exactly (Sterbenz-like)
        let b = 1.0 + 2f64.powi(-26);
        let got = ClassicFma::fma_structural(&sf(-1.0), &sf(b), &sf(1.0));
        assert_eq!(got.to_f64(), 2f64.powi(-26));
    }

    #[test]
    fn structure_matches_paper() {
        let s = ClassicFma::structure();
        assert_eq!(s.adder_bits, 161);
        assert!(s.has_lza && s.has_post_normalize);
    }

    fn normal_f64() -> impl Strategy<Value = f64> {
        (any::<bool>(), 0u64..(1u64 << 52), -300i32..=300).prop_map(|(s, m, e)| {
            let v = f64::from_bits(((1023 + e) as u64) << 52 | m);
            if s {
                -v
            } else {
                v
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1500))]

        /// The structural datapath must be bit-identical to the correctly
        /// rounded fused op on every input (incl. negative-addend sticky
        /// cases and deep cancellation).
        #[test]
        fn prop_structural_bit_exact(a in normal_f64(), b in normal_f64(), c in normal_f64()) {
            let want = ClassicFma::new(Round::NearestEven).fma(&sf(a), &sf(b), &sf(c));
            let got = ClassicFma::fma_structural(&sf(a), &sf(b), &sf(c));
            prop_assert_eq!(
                got.to_f64().to_bits(),
                want.to_f64().to_bits(),
                "({},{},{})", a, b, c
            );
        }
    }
}
