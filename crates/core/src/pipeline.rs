//! Cycle-accurate streaming model of a pipelined FMA unit.
//!
//! The fabric model decides *how many* stages a unit has (Table I); this
//! wrapper makes that pipelining observable: one operation may enter per
//! clock (initiation interval 1), and its result emerges exactly
//! `latency` clocks later. The Sec. IV-C energy measurement ran "in
//! steady-state (producing one x\[i\] per clock cycle) after sufficient
//! priming" — reaching that state on a recurrence with loop-carried
//! dependences requires interleaving independent problem instances, which
//! the tests below demonstrate.

use crate::operand::CsOperand;
use crate::unit::CsFmaUnit;
use csfma_softfloat::SoftFloat;
use std::collections::VecDeque;

/// One in-flight operation.
type Slot = Option<CsOperand>;

/// A pipelined FMA with initiation interval 1 and a fixed latency.
#[derive(Clone, Debug)]
pub struct PipelinedFma {
    unit: CsFmaUnit,
    latency: usize,
    stages: VecDeque<Slot>,
    accepted: u64,
    produced: u64,
}

impl PipelinedFma {
    /// Wrap a unit with a pipeline depth (use the Table I cycle counts:
    /// 5 for PCS, 3 for FCS).
    pub fn new(unit: CsFmaUnit, latency: usize) -> Self {
        assert!(latency >= 1);
        PipelinedFma {
            unit,
            latency,
            stages: VecDeque::from(vec![None; latency]),
            accepted: 0,
            produced: 0,
        }
    }

    /// Pipeline depth.
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Operations accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Results produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Advance one clock: optionally insert a new operation, and receive
    /// the result that entered `latency` clocks ago (or `None` for a
    /// bubble).
    pub fn clock(
        &mut self,
        input: Option<(&CsOperand, &SoftFloat, &CsOperand)>,
    ) -> Option<CsOperand> {
        // behavioral shortcut: compute at issue, carry the result through
        // the stage registers (bit-identical to staging the datapath)
        let entering = input.map(|(a, b, c)| {
            self.accepted += 1;
            self.unit.fma(a, b, c)
        });
        self.stages.push_back(entering);
        let out = self.stages.pop_front().flatten();
        if out.is_some() {
            self.produced += 1;
        }
        out
    }

    /// Drain the pipeline: clock with bubbles until everything in flight
    /// has emerged, returning the drained results in order.
    pub fn drain(&mut self) -> Vec<CsOperand> {
        let mut out = Vec::new();
        for _ in 0..self.latency {
            if let Some(r) = self.clock(None) {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::CsFmaFormat;
    use csfma_softfloat::{FpFormat, Round};

    fn sf(v: f64) -> SoftFloat {
        SoftFloat::from_f64(FpFormat::BINARY64, v)
    }

    #[test]
    fn latency_contract() {
        let fmt = CsFmaFormat::FCS_29_LZA;
        let mut p = PipelinedFma::new(CsFmaUnit::new(fmt), 3);
        let a = CsOperand::from_ieee(&sf(1.0), fmt);
        let c = CsOperand::from_ieee(&sf(2.0), fmt);
        // the result emerges `latency` clocks after the issuing clock
        assert!(p.clock(Some((&a, &sf(3.0), &c))).is_none());
        assert!(p.clock(None).is_none());
        assert!(p.clock(None).is_none());
        let r = p.clock(None).expect("result after `latency` clocks");
        assert_eq!(
            r.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(),
            7.0
        );
    }

    #[test]
    fn initiation_interval_one() {
        // issue a new op every cycle for 20 cycles: after priming, one
        // result per cycle (the Sec. IV-C steady state)
        let fmt = CsFmaFormat::PCS_55_ZD;
        let mut p = PipelinedFma::new(CsFmaUnit::new(fmt), 5);
        let a = CsOperand::from_ieee(&sf(0.5), fmt);
        let mut results = 0;
        for i in 0..20 {
            let c = CsOperand::from_ieee(&sf(i as f64), fmt);
            if p.clock(Some((&a, &sf(2.0), &c))).is_some() {
                results += 1;
            }
        }
        assert_eq!(results, 20 - 5, "one result per clock after priming");
        assert_eq!(p.drain().len(), 5);
        assert_eq!(p.produced(), p.accepted());
    }

    #[test]
    fn interleaved_recurrences_reach_steady_state() {
        // x[n] = 2*x[n-1] + 1 has a loop-carried dependence of one FMA
        // latency; interleaving `latency + 1` independent instances fills
        // every pipeline slot with no forwarding path — one result per
        // clock, like the paper's energy testbench ("pipeline steady
        // state, producing one x[i] per clock cycle")
        let fmt = CsFmaFormat::FCS_29_LZA;
        let lat = 3;
        let streams = lat + 1;
        let mut p = PipelinedFma::new(CsFmaUnit::new(fmt), lat);
        let one = CsOperand::from_ieee(&sf(1.0), fmt);
        let mut x: Vec<CsOperand> = (0..streams)
            .map(|k| CsOperand::from_ieee(&sf(k as f64), fmt))
            .collect();
        let mut steps = vec![0usize; streams];
        let mut emitted = 0;
        let cycles = 4 * streams;
        for cycle in 0..cycles {
            let issue = cycle % streams;
            if let Some(r) = p.clock(Some((&one, &sf(2.0), &x[issue]))) {
                // the emerging result belongs to the stream issued `lat`
                // cycles ago, one slot behind in the rotation
                let owner = (cycle + streams - lat) % streams;
                x[owner] = r;
                steps[owner] += 1;
                emitted += 1;
            }
        }
        assert_eq!(emitted, cycles - lat, "steady state: one x[i] per clock");
        // each stream computed x[n] = 2 x[n-1] + 1 => x[n] = (x0+1)*2^n - 1
        for (k, xi) in x.iter().enumerate() {
            let v = xi.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64();
            let want = (k as f64 + 1.0) * 2f64.powi(steps[k] as i32) - 1.0;
            assert_eq!(v, want, "stream {k} after {} steps", steps[k]);
        }
    }

    #[test]
    fn bubbles_propagate() {
        let fmt = CsFmaFormat::FCS_29_LZA;
        let mut p = PipelinedFma::new(CsFmaUnit::new(fmt), 3);
        let a = CsOperand::from_ieee(&sf(1.0), fmt);
        let c = CsOperand::from_ieee(&sf(1.0), fmt);
        // issue, bubble, issue; the first result emerges on the 4th clock
        assert!(p.clock(Some((&a, &sf(1.0), &c))).is_none());
        assert!(p.clock(None).is_none());
        assert!(p.clock(Some((&a, &sf(2.0), &c))).is_none());
        let r1 = p.clock(None).expect("first result");
        assert_eq!(
            r1.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(),
            2.0
        );
        assert!(p.clock(None).is_none(), "bubble emerges as a bubble");
        let r2 = p.clock(None).expect("second result");
        assert_eq!(
            r2.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(),
            3.0
        );
    }
}
