//! Chained FMA evaluation — the usage pattern the whole architecture
//! exists for (Listing 1 / Fig. 1: dependent multiply-add chains on the
//! critical path of a solver datapath).
//!
//! Between chained operators the value stays in the carry-save transport
//! format: no normalization, no rounding — just the per-operand rounding
//! *data* that the next unit folds into its multiplier (Sec. III-C).

use crate::operand::CsOperand;
use crate::unit::CsFmaUnit;
use csfma_softfloat::{ExactFloat, FpFormat, Round, SoftFloat};

/// Evaluates dependence chains on one FMA unit, keeping intermediate
/// values fused (in the CS transport format) end to end.
///
/// ```
/// use csfma_core::{ChainEvaluator, CsFmaFormat, CsFmaUnit};
/// use csfma_softfloat::{FpFormat, Round};
///
/// let chain = ChainEvaluator::new(CsFmaUnit::new(CsFmaFormat::PCS_55_ZD));
/// // p(x) = 1 + 2x + 3x^2 at x = 0.5, evaluated as a fused Horner chain
/// let r = chain.horner(&[1.0, 2.0, 3.0], 0.5);
/// assert_eq!(r.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(), 2.75);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChainEvaluator {
    unit: CsFmaUnit,
}

impl ChainEvaluator {
    /// Wrap a unit.
    pub fn new(unit: CsFmaUnit) -> Self {
        ChainEvaluator { unit }
    }

    /// The wrapped unit.
    pub fn unit(&self) -> &CsFmaUnit {
        &self.unit
    }

    /// One recurrence step of the Sec. IV-B benchmark:
    /// `x[n] = b1 * x1 + b2 * x2 + x3`, computed as two chained FMAs with
    /// the intermediate kept in CS form.
    pub fn recurrence_step(
        &self,
        b1: &SoftFloat,
        x1: &CsOperand,
        b2: &SoftFloat,
        x2: &CsOperand,
        x3: &CsOperand,
    ) -> CsOperand {
        // t = x3 + b2 * x2 ; x = t + b1 * x1
        let t = self.unit.fma(x3, b2, x2);
        self.unit.fma(&t, b1, x1)
    }

    /// Run the full Sec. IV-B recurrence `x[n] = B1·x[n-1] + B2·x[n-2] +
    /// x[n-3]` for `steps` iterations from three binary64 seeds, returning
    /// `x[steps + 2]` still in the transport format.
    pub fn run_recurrence(
        &self,
        b1: &SoftFloat,
        b2: &SoftFloat,
        seeds: [&SoftFloat; 3],
        steps: usize,
    ) -> CsOperand {
        let f = *self.unit.format();
        let mut x3 = CsOperand::from_ieee(seeds[0], f); // x[n-3]
        let mut x2 = CsOperand::from_ieee(seeds[1], f); // x[n-2]
        let mut x1 = CsOperand::from_ieee(seeds[2], f); // x[n-1]
        for _ in 0..steps {
            let x = self.recurrence_step(b1, &x1, b2, &x2, &x3);
            x3 = x2;
            x2 = x1;
            x1 = x;
        }
        x1
    }
}

/// One parameter set of the Sec. IV-B recurrence benchmark, for batch
/// evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecurrenceCase {
    /// First coefficient (`1 < |B1| < 32` in the paper's workload).
    pub b1: f64,
    /// Second coefficient (`0 < |B2| < 1`).
    pub b2: f64,
    /// Seeds `x[0], x[1], x[2]`.
    pub seeds: [f64; 3],
}

impl ChainEvaluator {
    /// Run [`run_recurrence`](ChainEvaluator::run_recurrence) for every
    /// case of a batch, using up to `threads` workers with the
    /// deterministic chunking of [`crate::batch::par_chunks_indexed`]:
    /// the returned operands are bitwise independent of `threads`.
    pub fn run_recurrence_batch(
        &self,
        cases: &[RecurrenceCase],
        steps: usize,
        threads: usize,
    ) -> Vec<CsOperand> {
        let f = *self.unit.format();
        let fmt64 = FpFormat::BINARY64;
        let mut out = vec![CsOperand::zero(f, false); cases.len()];
        crate::batch::par_chunks_indexed(
            &mut out,
            crate::batch::CHUNK_ROWS,
            threads,
            || (),
            |_, chunk_idx, chunk| {
                let base = chunk_idx * crate::batch::CHUNK_ROWS;
                for (k, slot) in chunk.iter_mut().enumerate() {
                    let c = &cases[base + k];
                    let sf = |v: f64| SoftFloat::from_f64(fmt64, v);
                    *slot = self.run_recurrence(
                        &sf(c.b1),
                        &sf(c.b2),
                        [&sf(c.seeds[0]), &sf(c.seeds[1]), &sf(c.seeds[2])],
                        steps,
                    );
                }
            },
        );
        out
    }
}

/// The same recurrence computed with discrete soft-float operators in the
/// given format — the CoreGen-style reference runs of Fig. 14 (64b, 68b,
/// and the 75b golden reference).
pub fn run_recurrence_softfloat(
    fmt: FpFormat,
    mode: Round,
    b1: f64,
    b2: f64,
    seeds: [f64; 3],
    steps: usize,
) -> SoftFloat {
    let b1 = SoftFloat::from_f64(fmt, b1);
    let b2 = SoftFloat::from_f64(fmt, b2);
    let mut x3 = SoftFloat::from_f64(fmt, seeds[0]);
    let mut x2 = SoftFloat::from_f64(fmt, seeds[1]);
    let mut x1 = SoftFloat::from_f64(fmt, seeds[2]);
    for _ in 0..steps {
        // discrete operators: each multiply and each add rounds
        let t1 = b1.mul_r(&x1, mode);
        let t2 = b2.mul_r(&x2, mode);
        let x = t1.add_r(&t2, mode).add_r(&x3, mode);
        x3 = x2;
        x2 = x1;
        x1 = x;
    }
    x1
}

/// The recurrence evaluated exactly (error-free), as the ideal reference.
pub fn run_recurrence_exact(b1: f64, b2: f64, seeds: [f64; 3], steps: usize) -> ExactFloat {
    let b1 = ExactFloat::from_f64(b1);
    let b2 = ExactFloat::from_f64(b2);
    let mut x3 = ExactFloat::from_f64(seeds[0]);
    let mut x2 = ExactFloat::from_f64(seeds[1]);
    let mut x1 = ExactFloat::from_f64(seeds[2]);
    for _ in 0..steps {
        let x = b1.mul(&x1).add(&b2.mul(&x2)).add(&x3);
        x3 = x2;
        x2 = x1;
        x1 = x;
    }
    x1
}

/// Horner-rule polynomial evaluation `p(x) = c0 + x*(c1 + x*(c2 + ...))`
/// on a fused chain — the other canonical dependent multiply-add workload
/// (filters and polynomial approximations of transcendentals, the signal
/// processing kernels of the paper's introduction).
///
/// Coefficients are binary64; `x` is the chained `B` input and the
/// accumulator stays in the carry-save transport format throughout.
impl ChainEvaluator {
    /// Evaluate `Σ coeffs[i] · x^i` (coefficients lowest-order first).
    pub fn horner(&self, coeffs: &[f64], x: f64) -> CsOperand {
        let f = *self.unit.format();
        let fmt64 = FpFormat::BINARY64;
        let xb = SoftFloat::from_f64(fmt64, x);
        let mut acc = match coeffs.last() {
            Some(&c) => CsOperand::from_ieee(&SoftFloat::from_f64(fmt64, c), f),
            None => return CsOperand::zero(f, false),
        };
        for &c in coeffs.iter().rev().skip(1) {
            // acc = c + x * acc
            let a = CsOperand::from_ieee(&SoftFloat::from_f64(fmt64, c), f);
            acc = self.unit.fma(&a, &xb, &acc);
        }
        acc
    }
}

#[cfg(test)]
mod horner_tests {
    use super::*;
    use crate::format::CsFmaFormat;
    use crate::reference::ulp_error_vs_exact;
    use crate::unit::CsFmaUnit;
    use csfma_softfloat::ExactFloat;

    fn exact_horner(coeffs: &[f64], x: f64) -> ExactFloat {
        let xe = ExactFloat::from_f64(x);
        let mut acc = ExactFloat::from_f64(*coeffs.last().unwrap());
        for &c in coeffs.iter().rev().skip(1) {
            acc = ExactFloat::from_f64(c).add(&xe.mul(&acc));
        }
        acc
    }

    #[test]
    fn small_polynomial_exact() {
        // p(x) = 1 + 2x + 3x^2 at x = 0.5 -> 2.75
        let chain = ChainEvaluator::new(CsFmaUnit::new(CsFmaFormat::FCS_29_LZA));
        let r = chain.horner(&[1.0, 2.0, 3.0], 0.5);
        assert_eq!(
            r.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(),
            2.75
        );
    }

    #[test]
    fn exp_series_beats_discrete() {
        // truncated exp(x) series: 12 terms at x = 0.7
        let coeffs: Vec<f64> = {
            let mut c = vec![1.0];
            let mut fact = 1.0;
            for k in 1..12 {
                fact *= k as f64;
                c.push(1.0 / fact);
            }
            c
        };
        let x = 0.7;
        let exact = exact_horner(&coeffs, x);
        // discrete double Horner
        let mut plain = *coeffs.last().unwrap();
        for &c in coeffs.iter().rev().skip(1) {
            plain = c + x * plain;
        }
        let err_plain = ulp_error_vs_exact(&ExactFloat::from_f64(plain), &exact);
        for fmt in [CsFmaFormat::PCS_55_ZD, CsFmaFormat::FCS_29_LZA] {
            let chain = ChainEvaluator::new(CsFmaUnit::new(fmt));
            let r = chain.horner(&coeffs, x);
            let err_fused = ulp_error_vs_exact(&r.exact_value(), &exact);
            assert!(
                err_fused < err_plain.max(0.5),
                "{}: fused {err_fused} vs plain {err_plain}",
                fmt.name
            );
            assert!(err_fused < 0.01, "{}: {err_fused} ulp", fmt.name);
        }
    }

    #[test]
    fn empty_and_constant_polynomials() {
        let chain = ChainEvaluator::new(CsFmaUnit::new(CsFmaFormat::PCS_55_ZD));
        assert!(chain
            .horner(&[], 3.0)
            .to_ieee(FpFormat::BINARY64, Round::NearestEven)
            .is_zero());
        assert_eq!(
            chain
                .horner(&[42.0], 3.0)
                .to_ieee(FpFormat::BINARY64, Round::NearestEven)
                .to_f64(),
            42.0
        );
    }
}
