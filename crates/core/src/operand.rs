//! Operands of the carry-save FMA units (Figs. 8 / 9 / 11).
//!
//! A [`CsOperand`] is what travels between chained FMA operators on the
//! critical path: an *unrounded*, *non-normalized* two's-complement
//! mantissa in (partial) carry-save form, one block of rounding data, and
//! a 12-bit excess-2047 exponent, with the exception class on separate
//! wires. For the PCS format this packs into the paper's 192-bit word.
//!
//! ## Value semantics
//!
//! For a finite operand:
//!
//! ```text
//! value = ( sext(mant.sum) + sext(mant.carry)
//!           + (round.sum + round.carry) / 2^block_bits )
//!         * 2^(exp - frac_bits)
//! ```
//!
//! i.e. the mantissa is the *signed sum of its two words* — exactly how
//! the datapath consumes it (the multiplier and the aligner sign-extend
//! each word separately) — and the rounding block is an unsigned fraction
//! one block below it. `frac_bits = mant_bits - 3` anchors a converted
//! IEEE significand three positions below the mantissa MSB (sign + guard +
//! integer bit, Sec. III-D).

use crate::format::CsFmaFormat;
use csfma_bits::Bits;
use csfma_carrysave::CsNumber;
use csfma_softfloat::{ExactFloat, FpClass, FpFormat, Round, SoftFloat};
use csfma_units::exponent::BiasedExp;

/// A number in a carry-save FMA transport format.
#[derive(Clone, Debug)]
pub struct CsOperand {
    format: CsFmaFormat,
    class: FpClass,
    sign_hint: bool,
    mant: CsNumber,
    round: CsNumber,
    exp: BiasedExp,
}

impl CsOperand {
    /// Exact zero (class wire `Zero`, empty mantissa).
    pub fn zero(format: CsFmaFormat, sign: bool) -> Self {
        CsOperand {
            format,
            class: FpClass::Zero,
            sign_hint: sign,
            mant: CsNumber::zero(format.mant_bits()),
            round: CsNumber::zero(format.block_bits),
            exp: BiasedExp::from_unbiased(0),
        }
    }

    /// Signed infinity (class wire only).
    pub fn inf(format: CsFmaFormat, sign: bool) -> Self {
        let mut v = Self::zero(format, sign);
        v.class = FpClass::Inf;
        v
    }

    /// NaN (class wire only).
    pub fn nan(format: CsFmaFormat) -> Self {
        let mut v = Self::zero(format, false);
        v.class = FpClass::Nan;
        v
    }

    /// Assemble from raw parts (used by the FMA unit's output stage).
    pub(crate) fn from_raw(
        format: CsFmaFormat,
        class: FpClass,
        sign_hint: bool,
        mant: CsNumber,
        round: CsNumber,
        exp: BiasedExp,
    ) -> Self {
        debug_assert_eq!(mant.width(), format.mant_bits());
        debug_assert_eq!(round.width(), format.block_bits);
        CsOperand {
            format,
            class,
            sign_hint,
            mant,
            round,
            exp,
        }
    }

    /// Convert an IEEE-style [`SoftFloat`] into the transport format —
    /// the `IEEE 754 → CS` conversion box the HLS pass inserts (Fig. 12).
    ///
    /// The significand (with its implied one) lands with its integer bit
    /// at `frac_bits`; negative numbers are two's-complemented. This is
    /// pure wiring plus one optional negation — the cheap direction.
    pub fn from_ieee(value: &SoftFloat, format: CsFmaFormat) -> Self {
        match value.class() {
            FpClass::Zero => CsOperand::zero(format, value.sign()),
            FpClass::Inf => CsOperand::inf(format, value.sign()),
            FpClass::Nan => CsOperand::nan(format),
            FpClass::Normal => {
                let m = format.mant_bits();
                let shift = format.frac_bits() - value.format().frac_bits as usize;
                let mut mant_bits = Bits::from_u64(m, value.significand()).shl(shift);
                if value.sign() {
                    mant_bits = mant_bits.wrapping_neg();
                }
                CsOperand {
                    format,
                    class: FpClass::Normal,
                    sign_hint: value.sign(),
                    mant: CsNumber::from_binary(mant_bits),
                    round: CsNumber::zero(format.block_bits),
                    exp: BiasedExp::from_unbiased(value.exp()),
                }
            }
        }
    }

    /// Convenience: convert a host double straight into the transport
    /// format (binary64 on the `B`-side semantics).
    pub fn from_f64(value: f64, format: CsFmaFormat) -> Self {
        Self::from_ieee(&SoftFloat::from_f64(FpFormat::BINARY64, value), format)
    }

    /// Convert back to an IEEE-style format — the `CS → IEEE 754` box:
    /// resolve the carries, detect the sign, normalize at single-bit
    /// granularity and round. This is the expensive direction the fusion
    /// pass tries to keep off the critical path.
    pub fn to_ieee(&self, target: FpFormat, mode: Round) -> SoftFloat {
        match self.class {
            FpClass::Zero => SoftFloat::zero(target, self.sign_hint),
            FpClass::Inf => SoftFloat::inf(target, self.sign_hint),
            FpClass::Nan => SoftFloat::nan(target),
            FpClass::Normal => {
                let e = self.exact_value();
                if e.is_zero() {
                    return SoftFloat::zero(target, false);
                }
                SoftFloat::from_rounded(target, e.round(target, mode))
            }
        }
    }

    /// The exact real value this operand denotes (mantissa and rounding
    /// block resolved jointly, so no inter-slice carry is lost).
    ///
    /// # Panics
    /// On Inf/NaN.
    pub fn exact_value(&self) -> ExactFloat {
        match self.class {
            FpClass::Zero => {
                let z = ExactFloat::zero();
                if self.sign_hint {
                    z.neg()
                } else {
                    z
                }
            }
            FpClass::Normal => {
                let bb = self.format.block_bits;
                let w = self.mant.width() + bb + 2;
                // signed two-word sum of the mantissa, unsigned fragment below
                let mant_val = self.mant.resolve_signed_extended().sext(w).shl(bb);
                let round_val = self.round.resolve_extended().zext(w);
                let total = mant_val.wrapping_add(&round_val);
                let sign = total.sign_bit();
                let mag = if sign {
                    total.wrapping_neg().zext(w + 1)
                } else {
                    total.zext(w + 1)
                };
                let scale = self.exp.unbiased() as i64 - self.format.frac_bits() as i64 - bb as i64;
                ExactFloat::from_parts(sign, mag, scale)
            }
            _ => panic!("exact_value on {:?}", self.class),
        }
    }

    /// Transport format of this operand.
    pub fn format(&self) -> &CsFmaFormat {
        &self.format
    }

    /// Exception class (separate wires, FloPoCo-style).
    pub fn class(&self) -> FpClass {
        self.class
    }

    /// Mantissa (two's complement CS, `mant_bits` wide).
    pub fn mant(&self) -> &CsNumber {
        &self.mant
    }

    /// Rounding-data block (`block_bits` wide).
    pub fn round(&self) -> &CsNumber {
        &self.round
    }

    /// 12-bit excess-2047 exponent.
    pub fn exp(&self) -> BiasedExp {
        self.exp
    }

    /// Sign hint used for the zero/inf classes (the numeric sign of a
    /// normal operand lives in the two's-complement mantissa).
    pub fn sign_hint(&self) -> bool {
        self.sign_hint
    }

    /// Fault-injection support: flip one raw bit of the mantissa **sum**
    /// word (position taken modulo the width), modeling a register-plane
    /// upset in a stored carry-save operand. The exception class is left
    /// alone — a flip under a `Zero`/`Inf` class flag is architecturally
    /// masked, exactly as in a real register file with separate
    /// exception wires.
    #[cfg(feature = "fault-inject")]
    pub fn fault_flip_mant_bit(&mut self, pos: usize) {
        let w = self.mant.width();
        if w == 0 {
            return;
        }
        let p = pos % w;
        let mut sum = self.mant.sum().clone();
        sum.set_bit(p, !sum.bit(p));
        self.mant = CsNumber::new(sum, self.mant.carry().clone());
    }

    /// Check the PCS carry-sparsity invariant: for `carry_spacing =
    /// Some(k)`, explicit carries may only sit at positions ≡ 0 (mod k)
    /// of the mantissa and rounding words.
    pub fn spacing_holds(&self) -> bool {
        let Some(k) = self.format.carry_spacing else {
            return true;
        };
        let check = |w: &CsNumber| (0..w.width()).all(|p| !w.carry().bit(p) || p % k == 0);
        check(&self.mant) && check(&self.round)
    }

    /// Pack into the transport word (mantissa sum, sparse carry bits,
    /// rounding sum, sparse rounding carries, 12-bit exponent) — the
    /// register image used for switching-activity accounting. Width is
    /// [`CsFmaFormat::operand_bits`] (192 for PCS).
    pub fn pack(&self) -> Bits {
        let gather = |word: &CsNumber, step: usize| -> Bits {
            let n = word.width() / step;
            let mut out = Bits::zero(n.max(1));
            for i in 0..n {
                if word.carry().bit(i * step) {
                    out.set_bit(i, true);
                }
            }
            out
        };
        let step = self.format.carry_spacing.unwrap_or(1);
        let exp = Bits::from_u64(12, self.exp.field() as u64);
        let mut packed = self.mant.sum().clone();
        packed = packed.concat(&gather(&self.mant, step));
        packed = packed.concat(self.round.sum());
        packed = packed.concat(&gather(&self.round, step));
        packed = packed.concat(&exp);
        packed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: CsFmaFormat = CsFmaFormat::PCS_55_ZD;

    #[test]
    fn ieee_roundtrip_exact() {
        for v in [1.0, -2.5, 0.1, 6.02e23, -3.3e-200, 1.0 / 3.0] {
            let sf = SoftFloat::from_f64(FpFormat::BINARY64, v);
            let op = CsOperand::from_ieee(&sf, F);
            assert!(op.spacing_holds());
            let back = op.to_ieee(FpFormat::BINARY64, Round::NearestEven);
            assert_eq!(back.to_f64(), v, "roundtrip of {v}");
        }
    }

    #[test]
    fn roundtrip_all_formats() {
        for f in [
            CsFmaFormat::PCS_55_ZD,
            CsFmaFormat::PCS_58_LZA,
            CsFmaFormat::FCS_29_LZA,
        ] {
            let sf = SoftFloat::from_f64(FpFormat::BINARY64, -std::f64::consts::FRAC_PI_4);
            let op = CsOperand::from_ieee(&sf, f);
            assert_eq!(
                op.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(),
                sf.to_f64()
            );
        }
    }

    #[test]
    fn specials_travel_on_class_wires() {
        let nan = CsOperand::from_ieee(&SoftFloat::nan(FpFormat::BINARY64), F);
        assert!(nan.to_ieee(FpFormat::BINARY64, Round::NearestEven).is_nan());
        let inf = CsOperand::from_ieee(&SoftFloat::inf(FpFormat::BINARY64, true), F);
        let b = inf.to_ieee(FpFormat::BINARY64, Round::NearestEven);
        assert!(b.is_inf() && b.sign());
        let z = CsOperand::from_ieee(&SoftFloat::zero(FpFormat::BINARY64, true), F);
        assert!(z.to_ieee(FpFormat::BINARY64, Round::NearestEven).is_zero());
    }

    #[test]
    fn exact_value_matches_ieee() {
        let sf = SoftFloat::from_f64(FpFormat::BINARY64, 2.75);
        let op = CsOperand::from_ieee(&sf, F);
        assert!(op.exact_value().sub(&sf.to_exact()).is_zero());
        let neg = CsOperand::from_ieee(&sf.neg(), F);
        assert!(neg.exact_value().sub(&sf.to_exact().neg()).is_zero());
    }

    #[test]
    fn pack_width_is_192_for_pcs() {
        let op = CsOperand::from_ieee(&SoftFloat::one(FpFormat::BINARY64), F);
        assert_eq!(op.pack().width(), 192);
    }

    #[test]
    fn wide_exponent_survives_transport() {
        // an intermediate exponent beyond IEEE 754's range stays exact in
        // the operand and only clamps at the final conversion
        let op = CsOperand::from_raw(
            F,
            FpClass::Normal,
            false,
            CsNumber::from_binary(Bits::one_hot(110, 107)),
            CsNumber::zero(55),
            BiasedExp::from_unbiased(1500),
        );
        let back = op.to_ieee(FpFormat::BINARY64, Round::NearestEven);
        assert!(back.is_inf()); // clamped only here
        let e = op.exact_value();
        assert_eq!(e.msb_exp(), 1500); // exact inside the chain
    }
}
