//! Exact reference computations and error metrics for the accuracy
//! evaluation (Sec. IV-B, Fig. 14).

use csfma_softfloat::{ExactFloat, SoftFloat};

/// The exact (error-free) value of `a + b * c`.
///
/// # Panics
/// If any operand is Inf/NaN.
pub fn exact_fma(a: &SoftFloat, b: &SoftFloat, c: &SoftFloat) -> ExactFloat {
    b.to_exact().mul(&c.to_exact()).add(&a.to_exact())
}

/// Error of `result` against the exact `reference`, expressed in units in
/// the last place of a binary64 mantissa *at the reference's magnitude*
/// (i.e. `|result - reference| / 2^(msb(reference) - 52)`).
///
/// This is the metric behind the paper's "average mantissa error": an
/// IEEE-correctly-rounded double has error ≤ 0.5 by construction, so any
/// unit scoring below that on average is "exceeding double precision".
/// Returns 0 when both are exactly zero and `f64::INFINITY` when the
/// reference is zero but the result is not.
pub fn ulp_error_vs_exact(result: &ExactFloat, reference: &ExactFloat) -> f64 {
    let diff = result.sub(reference);
    if diff.is_zero() {
        return 0.0;
    }
    if reference.is_zero() {
        return f64::INFINITY;
    }
    let ulp_exp = reference.msb_exp() - 52;
    let err = diff.msb_exp() - ulp_exp;
    // |diff| in [2^e, 2^(e+1)) -> between 2^(e-ulp) and 2^(e-ulp+1) ulps;
    // refine with the lossy mantissa for a smooth metric
    let lead = diff.to_f64_lossy().abs();
    let scale = reference.to_f64_lossy().abs();
    if scale.is_finite() && scale > 0.0 && lead.is_finite() {
        let r = lead / scale * 2f64.powi(52);
        if r.is_finite() {
            return r;
        }
    }
    2f64.powi(err.clamp(-1000, 1000) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csfma_softfloat::FpFormat;

    fn sf(v: f64) -> SoftFloat {
        SoftFloat::from_f64(FpFormat::BINARY64, v)
    }

    #[test]
    fn exact_fma_is_exact() {
        let e = exact_fma(&sf(1.0), &sf(3.0), &sf(1.0 / 3.0));
        // 3 * nearest(1/3) + 1 = 1 + 3*nearest(1/3), not exactly 2
        let host = 3.0f64.mul_add(1.0 / 3.0, 1.0);
        assert!((e.to_f64_lossy() - host).abs() < 1e-15);
    }

    #[test]
    fn zero_error_for_exact_result() {
        let r = sf(2.0).to_exact();
        assert_eq!(ulp_error_vs_exact(&r, &r), 0.0);
    }

    #[test]
    fn half_ulp_for_correct_rounding() {
        // reference = 1 + 2^-53 (a binary64 tie); rounded result = 1.0
        let reference = ExactFloat::from_u128(false, (1u128 << 53) + 1, -53);
        let rounded = sf(1.0).to_exact();
        let e = ulp_error_vs_exact(&rounded, &reference);
        assert!((e - 0.5).abs() < 1e-9, "expected ~0.5 ulp, got {e}");
    }

    #[test]
    fn one_ulp_detected() {
        let reference = sf(1.0).to_exact();
        let off = ExactFloat::from_u128(false, (1u128 << 52) + 1, -52);
        let e = ulp_error_vs_exact(&off, &reference);
        assert!((e - 1.0).abs() < 1e-9, "expected ~1 ulp, got {e}");
    }
}
