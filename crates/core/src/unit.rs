//! The generic carry-save FMA engine: `R = A + B * C` (Figs. 9 and 11).
//!
//! One engine implements all three design points — PCS with Zero-Detector
//! normalization, PCS with early LZA, and FCS — because they share the
//! datapath skeleton and differ only in the [`CsFmaFormat`] parameters:
//!
//! 1. rounding decisions for the incoming `A` and `C` from their rounding
//!    blocks (Sec. III-C; the `C` correction folds into the multiplier);
//! 2. mantissa multiply `B_M * C_M` in carry-save (Fig. 6);
//! 3. alignment of `A` and the product into the wide window in parallel
//!    (385 bits for PCS, 377 digits for FCS);
//! 4. carry-save compression of all rows (never a full-width carry
//!    propagation);
//! 5. optional Carry Reduce to the partial carry-save spacing (PCS only —
//!    the FCS format keeps full carry-save, which the DSP pre-adders
//!    absorb in the *next* multiplier, Sec. III-H);
//! 6. block-granular normalization: Zero Detector or early LZA selects
//!    which `mant_blocks` blocks of the window survive, and the block
//!    below them becomes the rounding data of the result.

#[cfg(feature = "fault-inject")]
use crate::fault::FaultSite;
use crate::fault::{CheckKind, FmaCtl};
use crate::format::{CsFmaFormat, Normalizer};
use crate::operand::CsOperand;
use crate::trace::{NopSink, TraceSink};
use csfma_bits::Bits;
use csfma_carrysave::{reduce_to_cs_with, CsNumber, ReduceScratch};
use csfma_softfloat::{FpClass, SoftFloat};
use csfma_units::align::align_addend;
use csfma_units::block_mux::select_blocks;
use csfma_units::exponent::BiasedExp;
use csfma_units::lza::anticipate_leading_cs;
use csfma_units::multiplier::{apply_sign, multiply_cs_by_binary_with};
use csfma_units::residue;
use csfma_units::rounding::round_up_from_block;
use csfma_units::zero_detect::leading_skippable_blocks;

/// Reusable working storage for [`CsFmaUnit::fma_with`]: the
/// partial-product row buffers and Wallace-tree layers of the multiplier
/// and the window compression. One scratch per batch-engine worker
/// amortizes every per-FMA allocation over millions of evaluations;
/// results are bit-identical with and without it.
#[derive(Clone, Debug, Default)]
pub struct FmaScratch {
    mul_rows: Vec<Bits>,
    mul_reduce: ReduceScratch,
    win_rows: Vec<Bits>,
    win_reduce: ReduceScratch,
}

/// A carry-save FMA unit of a specific format.
///
/// ```
/// use csfma_core::{CsFmaFormat, CsFmaUnit, CsOperand};
/// use csfma_softfloat::{FpFormat, Round, SoftFloat};
///
/// let unit = CsFmaUnit::new(CsFmaFormat::FCS_29_LZA);
/// let sf = |v: f64| SoftFloat::from_f64(FpFormat::BINARY64, v);
/// let a = CsOperand::from_ieee(&sf(0.5), *unit.format());
/// let c = CsOperand::from_ieee(&sf(3.0), *unit.format());
/// // R = A + B*C, result still in the carry-save transport format
/// let r = unit.fma(&a, &sf(2.0), &c);
/// assert_eq!(r.to_ieee(FpFormat::BINARY64, Round::NearestEven).to_f64(), 6.5);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CsFmaUnit {
    format: CsFmaFormat,
}

/// Structural diagnostics of one FMA evaluation, consumed by tests and by
/// the fabric timing/energy models.
#[derive(Clone, Copy, Debug, Default)]
pub struct FmaReport {
    /// Leading blocks skipped by the normalizer.
    pub skip: usize,
    /// Whether `A`'s rounding block requested an increment.
    pub round_up_a: bool,
    /// Whether `C`'s rounding block requested an increment (folded into
    /// the multiplier as an extra `B_M` row).
    pub round_up_c: bool,
    /// Partial-product rows fed to the multiplier CSA tree.
    pub multiplier_rows: usize,
    /// 3:2 levels of the multiplier tree.
    pub multiplier_levels: usize,
    /// 3:2 levels of the final window compression.
    pub window_levels: usize,
    /// Nonzero bits of `A` fell below the window (alignment truncation).
    pub dropped_low_a: bool,
    /// Nonzero bits of the product fell below the window (dominant-`A`
    /// case: the product was shifted down instead of `A` up).
    pub dropped_low_p: bool,
}

impl CsFmaUnit {
    /// Create a unit with the given format.
    pub fn new(format: CsFmaFormat) -> Self {
        CsFmaUnit { format }
    }

    /// The unit's transport format.
    pub fn format(&self) -> &CsFmaFormat {
        &self.format
    }

    /// Compute `A + B * C`.
    pub fn fma(&self, a: &CsOperand, b: &SoftFloat, c: &CsOperand) -> CsOperand {
        self.fma_traced(a, b, c, &mut NopSink).0
    }

    /// Compute `A + B * C` with caller-provided working storage — the
    /// batch-friendly entry point (see [`FmaScratch`]).
    pub fn fma_with(
        &self,
        a: &CsOperand,
        b: &SoftFloat,
        c: &CsOperand,
        scratch: &mut FmaScratch,
    ) -> CsOperand {
        self.fma_traced_with(a, b, c, &mut NopSink, scratch).0
    }

    /// Compute `A + B * C`, recording datapath activity into `sink` and
    /// returning structural diagnostics.
    pub fn fma_traced(
        &self,
        a: &CsOperand,
        b: &SoftFloat,
        c: &CsOperand,
        sink: &mut dyn TraceSink,
    ) -> (CsOperand, FmaReport) {
        self.fma_traced_with(a, b, c, sink, &mut FmaScratch::default())
    }

    /// [`CsFmaUnit::fma_traced`] with caller-provided working storage.
    pub fn fma_traced_with(
        &self,
        a: &CsOperand,
        b: &SoftFloat,
        c: &CsOperand,
        sink: &mut dyn TraceSink,
        scratch: &mut FmaScratch,
    ) -> (CsOperand, FmaReport) {
        self.fma_ctl_with(a, b, c, sink, scratch, &mut FmaCtl::default())
    }

    /// Self-checking / fault-injecting evaluation (DESIGN.md §10): the
    /// same datapath with the mod-3 residue and recompute self-checks
    /// armed through `ctl.detections`, and — under the `fault-inject`
    /// feature — the tamper hooks driven by `ctl.hook`. With a default
    /// `ctl` this is exactly [`CsFmaUnit::fma_with`], bit for bit.
    pub fn fma_checked_with(
        &self,
        a: &CsOperand,
        b: &SoftFloat,
        c: &CsOperand,
        scratch: &mut FmaScratch,
        ctl: &mut FmaCtl,
    ) -> (CsOperand, FmaReport) {
        self.fma_ctl_with(a, b, c, &mut NopSink, scratch, ctl)
    }

    /// The engine behind every public entry point: trace sink plus the
    /// fault/check control block.
    fn fma_ctl_with(
        &self,
        a: &CsOperand,
        b: &SoftFloat,
        c: &CsOperand,
        sink: &mut dyn TraceSink,
        scratch: &mut FmaScratch,
        ctl: &mut FmaCtl,
    ) -> (CsOperand, FmaReport) {
        let f = &self.format;
        assert_eq!(a.format(), f, "A operand format mismatch");
        assert_eq!(c.format(), f, "C operand format mismatch");
        if f.carry_spacing.is_some() {
            crate::obs::PCS_FMA_OPS.incr();
        } else {
            crate::obs::FCS_FMA_OPS.incr();
        }

        // ---- exception classes (separate wires, resolved up front) ----
        if a.class() == FpClass::Nan || b.is_nan() || c.class() == FpClass::Nan {
            return (CsOperand::nan(*f), FmaReport::default());
        }
        let c_sign = match c.class() {
            FpClass::Normal => c.mant().resolve_signed_extended().sign_bit(),
            _ => c.sign_hint(),
        };
        let psign = b.sign() ^ c_sign;
        let prod_class = match (b.class(), c.class()) {
            (FpClass::Inf, FpClass::Zero) | (FpClass::Zero, FpClass::Inf) => {
                return (CsOperand::nan(*f), FmaReport::default())
            }
            (FpClass::Inf, _) | (_, FpClass::Inf) => FpClass::Inf,
            (FpClass::Zero, _) | (_, FpClass::Zero) => FpClass::Zero,
            _ => FpClass::Normal,
        };
        match (prod_class, a.class()) {
            (FpClass::Inf, FpClass::Inf) => {
                return if psign == a.sign_hint() {
                    (CsOperand::inf(*f, psign), FmaReport::default())
                } else {
                    (CsOperand::nan(*f), FmaReport::default())
                };
            }
            (FpClass::Inf, _) => return (CsOperand::inf(*f, psign), FmaReport::default()),
            (_, FpClass::Inf) => return (CsOperand::inf(*f, a.sign_hint()), FmaReport::default()),
            (FpClass::Zero, FpClass::Zero) => {
                let sign = psign && a.sign_hint();
                return (CsOperand::zero(*f, sign), FmaReport::default());
            }
            (FpClass::Zero, FpClass::Normal) => return (a.clone(), FmaReport::default()),
            _ => {}
        }
        let a_zero = a.class() == FpClass::Zero;

        // ---- geometry ----
        let m = f.mant_bits();
        let bb = f.block_bits;
        let w = f.window_bits();
        let nb = f.window_blocks();
        let fc = f.frac_bits() as i64;
        let fb_b = b.format().frac_bits as i64;
        let right_off = (f.right_blocks * bb) as i64;
        // two guard positions above a fully-left addend: the two-word
        // signed sum can use one bit more than the word width, and the
        // final addition one more
        let max_shift = (w - m) as i64 - 2;

        // ---- rounding decisions (Sec. III-C) ----
        let up_c = round_up_from_block(c.round());
        let up_a = !a_zero && round_up_from_block(a.round());

        // ---- multiplier with integrated rounding (Fig. 6) ----
        let b_sig = Bits::from_u64(f.b_sig_bits, b.significand());
        let mul = multiply_cs_by_binary_with(
            c.mant(),
            &b_sig,
            up_c,
            &mut scratch.mul_rows,
            &mut scratch.mul_reduce,
        );
        // Residue prediction for the multiplier check, taken from the
        // *inputs* before any tamper can strike: the signed product value
        // is exactly ±(C_signed·B + up_c·B), and the CS output's signed
        // two-word sum equals it (the multiplier's headroom contract).
        let want_mul = if ctl.checking() {
            let rb = residue::mod3(&b_sig);
            let mut r = residue::mod3_mul(residue::mod3_cs_signed(c.mant()), rb);
            if up_c {
                r = residue::mod3_add(r, rb);
            }
            if b.sign() {
                r = residue::mod3_neg(r);
            }
            Some(r)
        } else {
            None
        };
        #[allow(unused_mut)]
        let mut product = apply_sign(mul.product, b.sign());
        #[cfg(feature = "fault-inject")]
        if let Some(hook) = ctl.hook {
            product = csfma_units::multiplier::tamper_product(product, hook);
        }
        if let Some(want) = want_mul {
            let got = residue::mod3_cs_signed(&product);
            if got != want {
                ctl.detect(
                    CheckKind::MulResidue,
                    format!("multiplier product residue {got}, predicted {want}"),
                );
            }
        }
        sink.record("mul.sum", product.sum());
        sink.record("mul.carry", product.carry());

        // ---- exponent plan / window placement ----
        let e_p = b.exp() as i64 + c.exp().unbiased() as i64;
        // window LSB weight: product sits `right_blocks` blocks above it
        let mut wls = e_p - fc - fb_b - right_off;
        let shift_a_raw = if a_zero {
            0
        } else {
            a.exp().unbiased() as i64 - fc - wls
        };
        // dominant-A: instead of pushing A past the window top, pull the
        // product (and the whole weight plan) down
        let extra = (shift_a_raw - max_shift).max(0);
        let p_shift = right_off - extra;
        let a_shift = shift_a_raw - extra;
        wls += extra;

        sink.record("reg.in_a", &a.pack());
        sink.record("reg.in_c", &c.pack());
        let aligned_p = align_addend(&product, w, p_shift);
        debug_assert!(!aligned_p.dropped_high, "window too small for product");
        let aligned_a = if a_zero {
            align_addend(&CsNumber::zero(m), w, 0)
        } else {
            align_addend(a.mant(), w, a_shift)
        };
        debug_assert!(!aligned_a.dropped_high, "window too small for addend");
        sink.record("fab.align_sum", aligned_a.value.sum());
        sink.record("fab.align_carry", aligned_a.value.carry());

        // ---- one big carry-save compression ----
        let rows = &mut scratch.win_rows;
        rows.clear();
        rows.push(aligned_p.value.sum().clone());
        rows.push(aligned_p.value.carry().clone());
        rows.push(aligned_a.value.sum().clone());
        rows.push(aligned_a.value.carry().clone());
        if up_a && (0..w as i64).contains(&a_shift) {
            rows.push(Bits::one_hot(w, a_shift as usize));
        }
        // Window-compression residue: the compressed pair must preserve
        // the wrapping (mod 2^w) sum of the rows it swallowed.
        let want_win = if ctl.checking() {
            let mut acc = Bits::zero(w);
            for r in rows.iter() {
                acc = acc.wrapping_add(r);
            }
            Some(residue::mod3(&acc))
        } else {
            None
        };
        let reduced = reduce_to_cs_with(rows, w, &mut scratch.win_reduce);
        let window = reduced.cs;
        if let Some(want) = want_win {
            let got = residue::mod3(&window.resolve());
            if got != want {
                ctl.detect(
                    CheckKind::WindowResidue,
                    format!("window residue {got}, predicted {want}"),
                );
            }
        }
        sink.record("win.sum", window.sum());
        sink.record("win.carry", window.carry());

        // ---- Carry Reduce (PCS only) ----
        let window = match f.carry_spacing {
            Some(k) => {
                #[allow(unused_mut)]
                let mut pcs = window.carry_reduce(k);
                // Carry Reduce check: recompute-and-compare against the
                // pre-reduce window value. A residue would be unsound
                // here — a carry-lane flip changes the resolved value by
                // 2^i − 2^w (mod 2^w), and when `i` and `w` have equal
                // parity that difference is ≡ 0 (mod 3): a wrap-crossing
                // flip the residue can never see.
                let want_cr = if ctl.checking() {
                    Some(window.resolve())
                } else {
                    None
                };
                #[cfg(feature = "fault-inject")]
                if let Some(hook) = ctl.hook {
                    pcs.tamper_carry_lanes(FaultSite::PcsCarry, hook);
                }
                if let Some(want) = want_cr {
                    if pcs.resolve() != want {
                        ctl.detect(
                            CheckKind::CarryReduce,
                            "carry-reduced pair disagrees with the window value".to_string(),
                        );
                    }
                }
                sink.record("cr.sum", pcs.sum());
                sink.record("cr.carry", pcs.carry());
                pcs.to_cs()
            }
            None => window,
        };

        // ---- block-granular normalization ----
        let blocks = window.blocks(bb, nb);
        let clean_skip = match f.normalizer {
            Normalizer::ZeroDetect => leading_skippable_blocks(&blocks, f.mant_blocks),
            Normalizer::EarlyLza => {
                let anticipated = self.anticipated_skip(a, c, a_zero, a_shift, p_shift);
                // Clamp by the block-pattern-validated skip: every prefix
                // of the Zero Detector's skip chain preserves the slice
                // value, and the per-block flags it needs are computed in
                // parallel with the Carry Reduce — only the *selection*
                // comes from the anticipator, which is what removes the
                // ZD's priority chain from the critical path (Sec. III-G).
                // Under heavy cancellation the anticipator would point
                // below the validated region; the clamp then keeps high
                // blocks whose digits cancel — the paper's admitted
                // relative-inaccuracy case for the LZA variant.
                anticipated.min(leading_skippable_blocks(&blocks, f.mant_blocks))
            }
        };
        #[allow(unused_mut)]
        let mut skip = clean_skip;
        #[cfg(feature = "fault-inject")]
        if let Some(hook) = ctl.hook {
            let mut sel_idx = skip as u64;
            let legal = (nb - f.mant_blocks) as u64 + 1;
            hook.tamper_index(FaultSite::BlockSelect, &mut sel_idx, legal);
            skip = sel_idx as usize;
        }
        // Block-select check: the mux select recomputed by an independent
        // copy of the skip logic, compared against the one driving the mux.
        if ctl.checking() && skip != clean_skip {
            ctl.detect(
                CheckKind::BlockSelect,
                format!("block mux skip {skip}, recomputed {clean_skip}"),
            );
        }
        let sel = select_blocks(&blocks, f.mant_blocks, skip);
        sink.record("res.sum", sel.result.sum());
        sink.record("res.carry", sel.result.carry());

        // ---- result exponent ----
        let e_r = (nb - sel.skip - f.mant_blocks) as i64 * bb as i64 + wls + fc;
        #[allow(unused_mut)]
        let mut exp = BiasedExp::from_unbiased_saturating(e_r);
        #[cfg(feature = "fault-inject")]
        if let Some(hook) = ctl.hook {
            let mut field = exp.field() as u64;
            hook.tamper_index(FaultSite::ExpField, &mut field, 1 << 12);
            exp = BiasedExp::from_field(field as u16);
        }
        // Exponent-path check: a duplicated excess-2047 adder, compared.
        if ctl.checking() && exp != BiasedExp::from_unbiased_saturating(e_r) {
            ctl.detect(
                CheckKind::ExponentPath,
                format!(
                    "exponent field {}, recomputed {}",
                    exp.field(),
                    BiasedExp::from_unbiased_saturating(e_r).field()
                ),
            );
        }
        sink.record("res.exp", &Bits::from_u64(12, exp.field() as u64));

        let sign_hint = sel.result.resolve_signed_extended().sign_bit();
        let out = CsOperand::from_raw(
            *f,
            FpClass::Normal,
            sign_hint,
            sel.result,
            sel.round_data,
            exp,
        );
        let report = FmaReport {
            skip: sel.skip,
            round_up_a: up_a,
            round_up_c: up_c,
            multiplier_rows: mul.rows,
            multiplier_levels: mul.tree_levels,
            window_levels: reduced.levels,
            dropped_low_a: aligned_a.dropped_low,
            dropped_low_p: aligned_p.dropped_low,
        };
        (out, report)
    }

    /// Early leading-zero anticipation (Sec. III-G): bound the window MSB
    /// of the sum from the *inputs*, before the wide sum exists — one
    /// Schmookler/Nowka LZA per CS input (≤1 bit of error each), the
    /// known `1 ≤ B_M < 2` range of the standard-format input, one bit
    /// for the product and one for the addition: the paper's ≤3-bit
    /// anticipation budget, absorbed by the widened blocks.
    ///
    /// Canonically zero mantissas are excluded explicitly ("the early LZA
    /// logic must reliably detect all-0 input mantissas"); if everything
    /// is zero the bottom-most blocks are selected.
    pub(crate) fn anticipated_skip(
        &self,
        a: &CsOperand,
        c: &CsOperand,
        a_zero: bool,
        a_shift: i64,
        p_shift: i64,
    ) -> usize {
        let f = &self.format;
        let m = f.mant_bits() as i64;
        let bb = f.block_bits as i64;
        let nb = f.window_blocks() as i64;

        let mut bound: Option<i64> = None;
        let mut push = |msb: i64| {
            bound = Some(bound.map_or(msb, |b: i64| b.max(msb)));
        };

        if !a_zero && !a.mant().is_canonical_zero() {
            // exact A (m+2-bit two-word sum) has magnitude < 2^(m+1-red)
            let red_a = anticipate_leading_cs(a.mant()) as i64;
            push(a_shift + m - red_a);
        }
        if !c.mant().is_canonical_zero() {
            let red_c = anticipate_leading_cs(c.mant()) as i64;
            // |C| < 2^(m+1-red), |B_M| < 2^(b_sig); +1 for the correction row
            push(p_shift + (m - red_c) + f.b_sig_bits as i64);
        }

        let Some(bound) = bound else {
            return (nb - f.mant_blocks as i64) as usize; // all zero: bottom blocks
        };
        // +1 for the addition carry, +1 for the sign bit
        let sign_pos = (bound + 2).clamp(0, nb * bb - 1);
        let jb = sign_pos / bb; // block index from the LSB
        let skip = (nb - 1 - jb).clamp(0, nb - f.mant_blocks as i64);
        skip as usize
    }
}
