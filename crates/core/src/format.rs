//! Parameter sets of the carry-save FMA architectures.

/// How the unit finds the leading significant block of the wide sum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Normalizer {
    /// Zero Detector on the computed sum (Sec. III-F): exact block skip,
    /// but the detector sits on the critical path after the adder.
    ZeroDetect,
    /// Early leading-zero anticipation from the inputs (Sec. III-G): the
    /// block select is ready before the sum, at the cost of up to 3 bits
    /// of slack the widened blocks absorb.
    EarlyLza,
}

/// Full parameterization of a P/FCS-FMA unit (the paper's units are
/// "freely parametrizable"; these are the three concrete design points it
/// evaluates, plus anything a caller wants to explore).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CsFmaFormat {
    /// Human-readable tag used in reports.
    pub name: &'static str,
    /// Digits per mantissa block (55, 58, or 29 in the paper).
    pub block_bits: usize,
    /// Blocks kept in the result mantissa (2 for PCS, 3 for FCS).
    pub mant_blocks: usize,
    /// Alignment headroom *left* of the product, in blocks.
    pub left_blocks: usize,
    /// Alignment headroom *right* of the product, in blocks.
    pub right_blocks: usize,
    /// Explicit-carry spacing: `Some(11)` for partial carry-save (one
    /// carry bit every 11th position, Sec. III-E), `None` for full
    /// carry-save (Sec. III-H, needs DSP pre-adders).
    pub carry_spacing: Option<usize>,
    /// Block-skip strategy.
    pub normalizer: Normalizer,
    /// Significand width of the plain-binary `B` input (53 for binary64).
    pub b_sig_bits: usize,
}

impl CsFmaFormat {
    /// The PCS-FMA of Fig. 9: 55-bit blocks, 110b mantissa + 10 carry
    /// bits, Zero-Detector normalization, 385-bit internal window.
    pub const PCS_55_ZD: CsFmaFormat = CsFmaFormat {
        name: "PCS-FMA (55b blocks, ZD)",
        block_bits: 55,
        mant_blocks: 2,
        left_blocks: 2,
        right_blocks: 2,
        carry_spacing: Some(11),
        normalizer: Normalizer::ZeroDetect,
        b_sig_bits: 53,
    };

    /// The early-LZA PCS variant of Sec. III-G: blocks widened from 55 to
    /// 58 bits so the ≤3-bit anticipation error still leaves 53
    /// significant mantissa bits in the two selected blocks.
    ///
    /// The carry spacing must divide the block width so carries stay
    /// "equally distributed in every mantissa block" (Sec. III-E) — the
    /// valid spacings for 58-bit blocks are 2, 29 and 58; we use 29
    /// (a 29-bit segment adder still clears the 200 MHz cycle budget,
    /// cf. the paper's 5b/11b/55b analysis and its future-work note on
    /// re-exploring carry densities for wider blocks).
    pub const PCS_58_LZA: CsFmaFormat = CsFmaFormat {
        name: "PCS-FMA (58b blocks, early LZA)",
        block_bits: 58,
        mant_blocks: 2,
        left_blocks: 2,
        right_blocks: 2,
        carry_spacing: Some(29),
        normalizer: Normalizer::EarlyLza,
        b_sig_bits: 53,
    };

    /// The FCS-FMA of Fig. 11: full carry-save, three 29-digit blocks
    /// (87c mantissa + 29c rounding data), 13-block window, 11:1 mux.
    pub const FCS_29_LZA: CsFmaFormat = CsFmaFormat {
        name: "FCS-FMA (29c blocks, early LZA)",
        block_bits: 29,
        mant_blocks: 3,
        left_blocks: 5,
        right_blocks: 3,
        carry_spacing: None,
        normalizer: Normalizer::EarlyLza,
        b_sig_bits: 53,
    };

    /// Single-precision PCS instance ("our architectures are freely
    /// parametrizable", Sec. III): binary32 `B` input (24-bit
    /// significand), two 27-digit blocks (54-bit mantissa = 23 + 1
    /// implied + sign + guard + block slack), carries every 9th position.
    pub const PCS_27_SP: CsFmaFormat = CsFmaFormat {
        name: "PCS-FMA-SP (27b blocks, ZD)",
        block_bits: 27,
        mant_blocks: 2,
        left_blocks: 2,
        right_blocks: 2,
        carry_spacing: Some(9),
        normalizer: Normalizer::ZeroDetect,
        b_sig_bits: 24,
    };

    /// Single-precision FCS instance: three 15-digit full-carry-save
    /// blocks (45-digit mantissa), early LZA.
    pub const FCS_15_SP: CsFmaFormat = CsFmaFormat {
        name: "FCS-FMA-SP (15c blocks, early LZA)",
        block_bits: 15,
        mant_blocks: 3,
        left_blocks: 4,
        right_blocks: 3,
        carry_spacing: None,
        normalizer: Normalizer::EarlyLza,
        b_sig_bits: 24,
    };

    /// Mantissa width in digits (`block_bits * mant_blocks`): 110 / 116 / 87.
    pub const fn mant_bits(&self) -> usize {
        self.block_bits * self.mant_blocks
    }

    /// Fraction anchor: bit position of the "integer one" of a converted
    /// IEEE significand. Two's complement sign + one guard bit occupy the
    /// top (Sec. III-D's 52+1+1+1 = 55 counting), so the anchor sits three
    /// below the mantissa MSB.
    pub const fn frac_bits(&self) -> usize {
        self.mant_bits() - 3
    }

    /// Width of the product `B_M * C_M` in digits.
    pub const fn product_bits(&self) -> usize {
        self.mant_bits() + self.b_sig_bits
    }

    /// Blocks the product spans (rounded up).
    pub const fn product_blocks(&self) -> usize {
        self.product_bits().div_ceil(self.block_bits)
    }

    /// Total window blocks: left headroom + product + right headroom
    /// (7 for PCS, 13 for FCS).
    pub const fn window_blocks(&self) -> usize {
        self.left_blocks + self.product_blocks() + self.right_blocks
    }

    /// Window width in digits (385 for PCS-55, 377 for FCS-29).
    pub const fn window_bits(&self) -> usize {
        self.window_blocks() * self.block_bits
    }

    /// Result-mux ways (`window_blocks - mant_blocks + 1`): 6:1 for PCS,
    /// 11:1 for FCS (Fig. 7 / Sec. III-H).
    pub const fn mux_ways(&self) -> usize {
        self.window_blocks() - self.mant_blocks + 1
    }

    /// Storage bits of one operand as packed for transport: mantissa sum +
    /// explicit carries + rounding block (sum + carries) + 12b exponent.
    /// 192 bits for the PCS format (Sec. III-F).
    pub fn operand_bits(&self) -> usize {
        let m = self.mant_bits();
        let r = self.block_bits;
        let (mc, rc) = match self.carry_spacing {
            Some(k) => (m / k, r / k),
            // full carry-save: a carry bit per digit
            None => (m, r),
        };
        m + mc + r + rc + 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcs_matches_paper_dimensions() {
        let f = CsFmaFormat::PCS_55_ZD;
        assert_eq!(f.mant_bits(), 110);
        assert_eq!(f.product_bits(), 163);
        assert_eq!(f.product_blocks(), 3);
        assert_eq!(f.window_blocks(), 7);
        assert_eq!(f.window_bits(), 385);
        assert_eq!(f.mux_ways(), 6);
        // Sec. III-F: A, C and the result are 192b words
        assert_eq!(f.operand_bits(), 192);
    }

    #[test]
    fn fcs_matches_paper_dimensions() {
        let f = CsFmaFormat::FCS_29_LZA;
        assert_eq!(f.mant_bits(), 87);
        assert_eq!(f.product_blocks(), 5); // "the multiplication yields a five block wide result"
        assert_eq!(f.window_blocks(), 13);
        assert_eq!(f.window_bits(), 377);
        assert_eq!(f.mux_ways(), 11);
    }

    #[test]
    fn single_precision_instances() {
        let sp = CsFmaFormat::PCS_27_SP;
        assert_eq!(sp.mant_bits(), 54);
        assert!(
            sp.mant_bits() >= 24 + 3,
            "covers the binary32 significand + guards"
        );
        assert_eq!(sp.window_bits() % sp.block_bits, 0);
        let fsp = CsFmaFormat::FCS_15_SP;
        assert_eq!(fsp.mant_bits(), 45);
        assert!(fsp.operand_bits() < CsFmaFormat::FCS_29_LZA.operand_bits());
    }

    #[test]
    fn lza_variant_is_wider() {
        let f = CsFmaFormat::PCS_58_LZA;
        assert_eq!(f.mant_bits(), 116);
        assert_eq!(f.block_bits - CsFmaFormat::PCS_55_ZD.block_bits, 3); // the 3-bit slack
    }
}
