//! # csfma-core — the paper's fused multiply-add units
//!
//! Bit-accurate behavioral models of the three FMA architectures explored
//! in the paper, plus the operand formats and conversions that let a
//! high-level-synthesis pass chain them:
//!
//! * [`ClassicFma`] — the Hokenek/Montoye baseline (Fig. 4): IEEE 754
//!   operands and result, internal carry-save product, LZA-guided
//!   normalization, one rounding at the end.
//! * [`CsFmaUnit`] with [`CsFmaFormat::PCS_55_ZD`] — the **PCS-FMA**
//!   (Fig. 9): 110b+10b partial carry-save mantissa in 55-bit blocks,
//!   carry spacing 11, Zero-Detector normalization, 192-bit operands.
//! * [`CsFmaUnit`] with [`CsFmaFormat::PCS_58_LZA`] — the early
//!   leading-zero-anticipation variant (Sec. III-G): 58-bit blocks absorb
//!   the ≤3-bit anticipation error.
//! * [`CsFmaUnit`] with [`CsFmaFormat::FCS_29_LZA`] — the **FCS-FMA**
//!   (Fig. 11): full carry-save 87c mantissa in 29-digit blocks, 13-block
//!   alignment window, 11:1 result mux, DSP-pre-adder-enabled.
//!
//! Every unit computes `R = A + B * C` where `B` is a standard binary64
//! [`SoftFloat`](csfma_softfloat::SoftFloat) and `A`, `C`, `R` are
//! [`CsOperand`]s in the unit's custom format, carrying unrounded
//! mantissas plus one block of rounding data between operators
//! (Sec. III-C).

pub mod batch;
mod chain;
mod classic;
mod dot;
pub mod fault;
mod format;
pub mod obs;
mod operand;
mod pipeline;
pub mod plane;
mod reference;
mod trace;
mod unit;

pub use batch::{adaptive_grain, par_chunks_indexed, steal_indexed, IndexDeque, SchedStats};
pub use chain::{run_recurrence_exact, run_recurrence_softfloat, ChainEvaluator, RecurrenceCase};
pub use classic::ClassicFma;
pub use dot::CsDotUnit;
pub use format::{CsFmaFormat, Normalizer};
pub use obs::{
    count_plane_fallback, plane_counts, sched_counts, sched_grain_histogram, unit_op_counts,
    PlaneCounts, SchedCounts, UnitOpCounts,
};
pub use operand::CsOperand;
pub use pipeline::PipelinedFma;
#[cfg(feature = "fault-inject")]
pub use plane::{arm_plane_strikes, disarm_plane_strikes, PlaneStrike};
pub use plane::{plane_fma_chunk, PlaneScratch};
pub use reference::{exact_fma, ulp_error_vs_exact};
pub use trace::{NopSink, TraceSink, VecSink};
pub use unit::{CsFmaUnit, FmaReport, FmaScratch};

#[cfg(test)]
mod tests;
