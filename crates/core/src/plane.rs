//! Bit-plane (bit-sliced) chunk evaluation of the carry-save FMA.
//!
//! [`plane_fma_chunk`] computes `R = A + B * C` for up to
//! [`PLANE_LANES`] rows of a SoA chunk at once by transposing the
//! carry-save words into *bit planes* (`csfma_carrysave::plane`): plane
//! word `j` holds bit `j` of all lanes, so every fixed-wiring datapath
//! stage — the multiplier's CSA tree, the window compression, the PCS
//! segment adders, the block classifier and the result mux — runs as
//! word-parallel boolean algebra, one machine operation per gate level
//! for all 64 lanes.
//!
//! The kernel is bit-exact versus [`CsFmaUnit::fma_with`] per lane. The
//! structure mirrors the scalar engine stage by stage:
//!
//! * **Scalar preamble** — exception classes, rounding decisions and the
//!   window placement arithmetic are per-lane control logic, evaluated
//!   as such. Lanes that take an exception early-return (NaN/Inf/Zero
//!   products) are resolved by the scalar engine — they never reach the
//!   datapath in hardware either — and merged back at writeback.
//! * **Plane multiplier** — the scalar multiplier feeds a *fixed*
//!   `2·b_sig + 1` rows to its tree regardless of `B`'s bit pattern
//!   (zero rows for clear bits), so all lanes share one tree shape and
//!   level-0 rows become `ext_plane[j−i] & b_bit_mask[i]`.
//! * **Per-lane selects replace per-lane branches** — the sign stage
//!   and the conditional fifth window row (the `A` rounding one-hot)
//!   have data-dependent *outcomes* but fixed gate shapes, so the plane
//!   kernel computes both arms and muxes per lane with a lane-mask word,
//!   keeping the CS pairs bitwise identical to the scalar branches.
//! * **Per-lane alignment** — the aligner is a per-lane variable shift
//!   (the one stage whose wiring depends on lane data); each lane's
//!   window placement is a sign-extending funnel shift over its
//!   lane-major limbs (`align_lanes_to_planes`), bit-exact with the
//!   scalar `align_addend`'s sign-extend-and-place frame semantics,
//!   landing straight back in plane-major form.
//! * **Plane normalization** — block classes (Fig. 10) come from
//!   sequential per-block mask scans, the skip chain is resolved per
//!   lane over those masks, and the result/rounding blocks are selected
//!   by OR-ing windows under per-skip lane masks.
//!
//! The residue self-checks of DESIGN.md §10 stay on the scalar path:
//! this kernel computes no residues, and the oracle backend never calls
//! it. Plane-path faults are covered differently (DESIGN.md §10.5): the
//! [`PlaneStrike`] tamper points below model upsets in the kernel's own
//! stages, and the robust executor runs this kernel as a *shadow* of
//! its scalar evaluation, detecting any lane disagreement via the
//! scalar differential oracle — its output always comes from the scalar
//! engine, so a plane-path fault is contained by construction.

use crate::format::Normalizer;
use crate::obs;
use crate::operand::CsOperand;
use crate::unit::{CsFmaUnit, FmaScratch};
use csfma_bits::Bits;
use csfma_carrysave::plane::{
    align_lanes_to_planes, lanes_to_planes, plane_carry_reduce, plane_csa3_2, plane_reduce_to_cs,
    planes_to_lane_limbs, planes_to_lanes, transpose64, PLANE_LANES,
};
use csfma_carrysave::CsNumber;
use csfma_softfloat::{FpClass, SoftFloat};
use csfma_units::exponent::BiasedExp;
use csfma_units::rounding::round_up_from_block;
use std::sync::atomic::{AtomicBool, Ordering};

/// Test-only sabotage switch: when armed, the next [`plane_fma_chunk`]
/// call flips one bit of one result bit-plane word (lane 0, mantissa
/// sum bit 0) after the block select. The golden-vector suite arms this
/// to prove it would catch a plane-kernel defect; never set in
/// production code.
#[doc(hidden)]
pub static CORRUPT_NEXT_PLANE_WORD: AtomicBool = AtomicBool::new(false);

/// One armed plane-kernel fault, consumed by the next
/// [`plane_fma_chunk`] call on this thread (DESIGN.md §10.5).
///
/// Each strike flips exactly one bit — bit `lane` of one plane word —
/// so it corrupts exactly one lane of the chunk, mirroring how a real
/// single-event upset in a plane register is confined to the physical
/// bit it hits. The struck word is derived from `sel` at each tamper
/// point, biased toward the value-significant planes of the stage (a
/// flip that final rounding discards is architecturally masked; fault
/// campaigns report those as benign strikes).
#[cfg(feature = "fault-inject")]
#[derive(Clone, Copy, Debug)]
pub struct PlaneStrike {
    /// Which plane-path population to hit (one of
    /// [`FaultSite::PLANE`](crate::fault::FaultSite::PLANE); strikes
    /// naming other sites never fire).
    pub site: crate::fault::FaultSite,
    /// The struck lane (`0..PLANE_LANES`).
    pub lane: usize,
    /// Raw selector for the struck word within the stage.
    pub sel: u64,
}

#[cfg(feature = "fault-inject")]
thread_local! {
    static PLANE_STRIKES: std::cell::RefCell<Vec<PlaneStrike>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Arm plane-kernel strikes on this thread; the next
/// [`plane_fma_chunk`] call consumes all of them at once (a chunk with
/// several fused instructions is struck on its first, like an upset
/// that hits while the first wave of the chunk is in flight).
#[cfg(feature = "fault-inject")]
pub fn arm_plane_strikes(strikes: &[PlaneStrike]) {
    PLANE_STRIKES.with(|s| {
        let mut v = s.borrow_mut();
        v.clear();
        v.extend_from_slice(strikes);
    });
}

/// Drop any strikes still armed on this thread, returning how many were
/// never consumed (a caller that armed strikes for a chunk that took no
/// plane path uses this to keep its accounting honest).
#[cfg(feature = "fault-inject")]
pub fn disarm_plane_strikes() -> usize {
    PLANE_STRIKES.with(|s| {
        let mut v = s.borrow_mut();
        let n = v.len();
        v.clear();
        n
    })
}

/// Per-lane control state produced by the scalar preamble.
#[derive(Clone, Copy, Debug)]
struct LanePrep {
    normal: bool,
    a_zero: bool,
    up_c: bool,
    up_a: bool,
    negate: bool,
    b_sig: u64,
    p_shift: i64,
    a_shift: i64,
    wls: i64,
    /// Early-LZA anticipated skip (`usize::MAX` on the ZD path: no cap).
    skip_cap: usize,
}

impl Default for LanePrep {
    fn default() -> Self {
        LanePrep {
            normal: false,
            a_zero: true,
            up_c: false,
            up_a: false,
            negate: false,
            b_sig: 0,
            p_shift: 0,
            a_shift: 0,
            wls: 0,
            skip_cap: usize::MAX,
        }
    }
}

/// Reusable working storage for [`plane_fma_chunk`] — plane arenas,
/// lane buffers and the scalar-fallback scratch. One per batch-engine
/// worker, like [`FmaScratch`].
#[derive(Clone, Debug, Default)]
pub struct PlaneScratch {
    fma: FmaScratch,
    a_ops: Vec<CsOperand>,
    c_ops: Vec<CsOperand>,
    prep: Vec<LanePrep>,
    early: Vec<Option<CsOperand>>,
    skips: Vec<usize>,
    lane_bits: Vec<Bits>,
    lane_bits2: Vec<Bits>,
    lane_limbs: Vec<u64>,
    lane_limbs2: Vec<u64>,
    align_scratch: Vec<u64>,
    ext_s: Vec<u64>,
    ext_c: Vec<u64>,
    layer: Vec<u64>,
    spare: Vec<u64>,
    prod_s: Vec<u64>,
    prod_c: Vec<u64>,
    win: [Vec<u64>; 5],
    red_a: Vec<u64>,
    red_b: Vec<u64>,
    red_c: Vec<u64>,
    red_d: Vec<u64>,
    red_e: Vec<u64>,
    red_f: Vec<u64>,
    res_s: Vec<u64>,
    res_c: Vec<u64>,
    rnd_s: Vec<u64>,
    rnd_c: Vec<u64>,
}

#[inline]
fn timed<R>(out: &csfma_obs::Counter, f: impl FnOnce() -> R) -> R {
    if cfg!(feature = "obs") {
        let t0 = std::time::Instant::now();
        let r = f();
        out.add(t0.elapsed().as_nanos() as u64);
        r
    } else {
        f()
    }
}

/// Evaluate one FMA instruction over a SoA chunk in bit-plane form:
/// `bank[dst + k] = bank[acc + k] + b[k] * bank[mulc + k]` for
/// `k < len`, bit-identical to calling [`CsFmaUnit::fma_with`] per
/// lane (including when `dst` aliases `acc` or `mulc` — inputs are
/// latched before writeback).
///
/// # Panics
/// If `len > PLANE_LANES`, `b.len() < len`, or the bank slices are out
/// of bounds.
#[allow(clippy::too_many_arguments)] // mirrors the tape executor's operand frame
pub fn plane_fma_chunk(
    unit: &CsFmaUnit,
    bank: &mut [CsOperand],
    acc: usize,
    mulc: usize,
    dst: usize,
    b: &[SoftFloat],
    len: usize,
    s: &mut PlaneScratch,
) {
    assert!(len <= PLANE_LANES, "chunk wider than a plane word");
    #[cfg(feature = "fault-inject")]
    let strikes: Vec<PlaneStrike> = PLANE_STRIKES.with(|s| std::mem::take(&mut *s.borrow_mut()));
    let f = *unit.format();
    let m = f.mant_bits();
    let bw = f.b_sig_bits;
    let out_w = m + bw + 2; // multiplier width incl. compressor headroom
    let w = f.window_bits();
    let bb = f.block_bits;
    let nb = f.window_blocks();
    let keep = f.mant_blocks;
    let fc = f.frac_bits() as i64;
    let right_off = (f.right_blocks * bb) as i64;
    let max_shift = (w - m) as i64 - 2;

    // ---- latch inputs (dst may alias acc/mulc) ----
    s.a_ops.clear();
    s.a_ops.extend_from_slice(&bank[acc..acc + len]);
    s.c_ops.clear();
    s.c_ops.extend_from_slice(&bank[mulc..mulc + len]);

    // ---- scalar preamble: exceptions, rounding, window placement ----
    s.prep.clear();
    s.prep.resize(len, LanePrep::default());
    s.early.clear();
    s.early.resize(len, None);
    let mut n_plane = 0u64;
    #[allow(clippy::needless_range_loop)] // k indexes four parallel lane arrays
    for k in 0..len {
        let (a, c, bv) = (&s.a_ops[k], &s.c_ops[k], &b[k]);
        let normal = a.class() != FpClass::Nan
            && a.class() != FpClass::Inf
            && bv.class() == FpClass::Normal
            && c.class() == FpClass::Normal;
        if !normal {
            // exception lanes never reach the datapath; the scalar
            // engine's early-return ladder resolves them bit-exactly
            s.early[k] = Some(unit.fma_with(a, bv, c, &mut s.fma));
            continue;
        }
        n_plane += 1;
        let a_zero = a.class() == FpClass::Zero;
        let up_c = round_up_from_block(c.round());
        let up_a = !a_zero && round_up_from_block(a.round());
        let e_p = bv.exp() as i64 + c.exp().unbiased() as i64;
        let fb_b = bv.format().frac_bits as i64;
        let mut wls = e_p - fc - fb_b - right_off;
        let shift_a_raw = if a_zero {
            0
        } else {
            a.exp().unbiased() as i64 - fc - wls
        };
        let extra = (shift_a_raw - max_shift).max(0);
        let p_shift = right_off - extra;
        let a_shift = shift_a_raw - extra;
        wls += extra;
        let skip_cap = match f.normalizer {
            Normalizer::ZeroDetect => usize::MAX,
            Normalizer::EarlyLza => unit.anticipated_skip(a, c, a_zero, a_shift, p_shift),
        };
        s.prep[k] = LanePrep {
            normal: true,
            a_zero,
            up_c,
            up_a,
            negate: bv.sign(),
            b_sig: bv.significand(),
            p_shift,
            a_shift,
            wls,
            skip_cap,
        };
    }
    if f.carry_spacing.is_some() {
        obs::PCS_FMA_OPS.add(n_plane);
    } else {
        obs::FCS_FMA_OPS.add(n_plane);
    }
    obs::PLANE_FMA_LANES.add(n_plane);
    obs::PLANE_EXCEPTION_LANES.add(len as u64 - n_plane);

    // lane masks driving the per-lane selects
    let mut up_c_mask = 0u64;
    let mut neg_mask = 0u64;
    for (k, p) in s.prep.iter().enumerate() {
        if p.up_c {
            up_c_mask |= 1 << k;
        }
        if p.negate {
            neg_mask |= 1 << k;
        }
    }

    // ---- plane multiplier (Fig. 6, fixed 2·b_sig+1-row tree) ----
    timed(&obs::PLANE_TRANSPOSE_NS, || {
        s.lane_bits.clear();
        s.lane_bits2.clear();
        for c in &s.c_ops {
            s.lane_bits.push(c.mant().sum().clone());
            s.lane_bits2.push(c.mant().carry().clone());
        }
        lanes_to_planes(&s.lane_bits, m, &mut s.ext_s);
        lanes_to_planes(&s.lane_bits2, m, &mut s.ext_c);
    });
    // sign extension is plane replication: bit j >= m reads the sign plane
    let sign_s = s.ext_s[m - 1];
    let sign_c = s.ext_c[m - 1];
    s.ext_s.resize(out_w, sign_s);
    s.ext_c.resize(out_w, sign_c);
    // B-significand bit masks: one 64x64 transpose of the lane values
    let mut bm = [0u64; PLANE_LANES];
    for (k, p) in s.prep.iter().enumerate() {
        bm[k] = p.b_sig;
    }
    transpose64(&mut bm);
    #[cfg(feature = "fault-inject")]
    for st in &strikes {
        if st.site == crate::fault::FaultSite::TransposeOut {
            // strike one of the top 16 B-significand planes: the flipped
            // bit feeds a wrong row mask to every Wallace level of the
            // struck lane, and a high partial product survives rounding
            let j = bw - 1 - (st.sel as usize % bw.min(16));
            bm[j] ^= 1u64 << (st.lane % PLANE_LANES);
        }
    }
    // Level 0 of the Wallace tree is evaluated straight off the two
    // shifted `ext` planes instead of materializing all `2·b_sig+1`
    // rows: chunk `t` compresses virtual rows `3t, 3t+1, 3t+2`, where
    // row `r` reads `ext_{s,c}[j - r/2] & bm[r/2]` (and the final row is
    // the +B rounding correction). The grouping is exactly the first
    // level `plane_reduce_to_cs` would perform, so the tree shape — and
    // therefore the CS pair — is unchanged; only the row arena traffic
    // is saved. Every word of the level-1 arena is written below.
    let n_rows = 2 * bw + 1;
    let chunks0 = n_rows / 3;
    let rem0 = n_rows % 3;
    let n1 = 2 * chunks0 + rem0;
    let corr_row = 2 * bw; // the +B rounding-correction row
    s.layer.resize(n1 * out_w, 0);
    let (ext_s, ext_c) = (&s.ext_s, &s.ext_c);
    // virtual level-0 row word, handling shifts, masks and the
    // correction row (used on the rare non-tight paths)
    let row_word = |r: usize, j: usize| -> u64 {
        if r == corr_row {
            if j < bw {
                bm[j] & up_c_mask
            } else {
                0
            }
        } else {
            let i = r >> 1;
            if j < i {
                0
            } else if r & 1 == 0 {
                ext_s[j - i] & bm[i]
            } else {
                ext_c[j - i] & bm[i]
            }
        }
    };
    for t in 0..chunks0 {
        let out = &mut s.layer[2 * t * out_w..(2 * t + 2) * out_w];
        let (out_s, out_c) = out.split_at_mut(out_w);
        let rows = [3 * t, 3 * t + 1, 3 * t + 2];
        let mut prev_maj = 0u64;
        if rows[2] == corr_row {
            // the last chunk may carry the correction row: branchy path
            for j in 0..out_w {
                let (a, b, c) = (
                    row_word(rows[0], j),
                    row_word(rows[1], j),
                    row_word(rows[2], j),
                );
                out_s[j] = a ^ b ^ c;
                out_c[j] = prev_maj;
                prev_maj = (a & b) | (b & c) | (a & c);
            }
            continue;
        }
        let pick = |r: usize| -> (&[u64], usize, u64) {
            let i = r >> 1;
            (if r & 1 == 0 { ext_s } else { ext_c }, i, bm[i])
        };
        let (e0, i0, m0) = pick(rows[0]);
        let (e1, i1, m1) = pick(rows[1]);
        let (e2, i2, m2) = pick(rows[2]);
        let start = i2.min(out_w); // i0 <= i1 <= i2
        for j in 0..start {
            let a = if j >= i0 { e0[j - i0] & m0 } else { 0 };
            let b = if j >= i1 { e1[j - i1] & m1 } else { 0 };
            out_s[j] = a ^ b;
            out_c[j] = prev_maj;
            prev_maj = a & b;
        }
        for j in start..out_w {
            let a = e0[j - i0] & m0;
            let b = e1[j - i1] & m1;
            let c = e2[j - i2] & m2;
            out_s[j] = a ^ b ^ c;
            out_c[j] = prev_maj;
            prev_maj = (a & b) | (b & c) | (a & c);
        }
    }
    // remainder rows ride along to the next level verbatim
    for (q, r) in (3 * chunks0..n_rows).enumerate() {
        let out = &mut s.layer[(2 * chunks0 + q) * out_w..][..out_w];
        for (j, o) in out.iter_mut().enumerate() {
            *o = row_word(r, j);
        }
    }
    plane_reduce_to_cs(
        &mut s.layer,
        n1,
        out_w,
        &mut s.spare,
        &mut s.prod_s,
        &mut s.prod_c,
    );
    #[cfg(feature = "fault-inject")]
    for st in &strikes {
        if st.site == crate::fault::FaultSite::PlaneCsaWord {
            // strike one of the top 32 product-sum planes — within the
            // 53 bits the final rounding keeps, so the flip is visible
            let top = s.prod_s.len();
            let j = top - 1 - (st.sel as usize % top.min(32));
            s.prod_s[j] ^= 1u64 << (st.lane % PLANE_LANES);
        }
    }

    // ---- sign stage: compute the negation arm, select per lane ----
    // negate() = csa3_2(!sum, !carry, 2); the non-negating arm must
    // pass the pair through untouched (see `apply_sign`)
    if neg_mask != 0 {
        let mut prev_maj = 0u64; // maj plane j-1 (the scalar `<< 1`)
        for j in 0..out_w {
            let (ps, pc) = (s.prod_s[j], s.prod_c[j]);
            let two = if j == 1 { !0u64 } else { 0 };
            let neg_s = ps ^ pc ^ two;
            let (x, y) = (!ps, !pc);
            let maj = (x & y) | (two & (x | y));
            let neg_c = prev_maj;
            prev_maj = maj;
            s.prod_s[j] = (neg_s & neg_mask) | (ps & !neg_mask);
            s.prod_c[j] = (neg_c & neg_mask) | (pc & !neg_mask);
        }
    }

    // ---- per-lane alignment (the one variable-shift stage) ----
    // done without leaving word arithmetic: each lane's window placement
    // is a sign-extending funnel shift over its lane-major limbs
    // (`align_lanes_to_planes`), bit-exact with `align_addend`'s
    // sign-extend-and-place frame semantics
    let mut p_shifts = [0i64; PLANE_LANES];
    let mut a_shifts = [0i64; PLANE_LANES];
    let mut act_p = 0u64; // lanes with a product in the window
    let mut act_a = 0u64; // lanes with a nonzero addend in the window
    for (k, p) in s.prep.iter().enumerate() {
        if !p.normal {
            continue;
        }
        act_p |= 1 << k;
        p_shifts[k] = p.p_shift;
        if !p.a_zero {
            act_a |= 1 << k;
            a_shifts[k] = p.a_shift;
        }
    }
    timed(&obs::PLANE_TRANSPOSE_NS, || {
        planes_to_lane_limbs(&s.prod_s, out_w, &mut s.lane_limbs);
        align_lanes_to_planes(
            &s.lane_limbs,
            out_w,
            &p_shifts[..len],
            act_p,
            w,
            &mut s.align_scratch,
            &mut s.win[0],
        );
        planes_to_lane_limbs(&s.prod_c, out_w, &mut s.lane_limbs);
        align_lanes_to_planes(
            &s.lane_limbs,
            out_w,
            &p_shifts[..len],
            act_p,
            w,
            &mut s.align_scratch,
            &mut s.win[1],
        );
    });
    // the addend's lane-major limbs come straight from the operands
    let mg = m.div_ceil(64);
    s.lane_limbs.clear();
    s.lane_limbs.resize(PLANE_LANES * mg, 0);
    s.lane_limbs2.clear();
    s.lane_limbs2.resize(PLANE_LANES * mg, 0);
    for (k, a) in s.a_ops.iter().enumerate().take(len) {
        if act_a & (1 << k) == 0 {
            continue;
        }
        let (sl, cl) = (a.mant().sum().limbs(), a.mant().carry().limbs());
        s.lane_limbs[k * mg..k * mg + sl.len()].copy_from_slice(sl);
        s.lane_limbs2[k * mg..k * mg + cl.len()].copy_from_slice(cl);
    }
    timed(&obs::PLANE_TRANSPOSE_NS, || {
        align_lanes_to_planes(
            &s.lane_limbs,
            m,
            &a_shifts[..len],
            act_a,
            w,
            &mut s.align_scratch,
            &mut s.win[2],
        );
        align_lanes_to_planes(
            &s.lane_limbs2,
            m,
            &a_shifts[..len],
            act_a,
            w,
            &mut s.align_scratch,
            &mut s.win[3],
        );
    });

    // ---- window compression with the A-rounding one-hot select ----
    s.win[4].clear();
    s.win[4].resize(w, 0);
    let mut m5 = 0u64; // lanes whose fifth row (A round one-hot) exists
    for (k, p) in s.prep.iter().enumerate() {
        if p.normal && p.up_a && (0..w as i64).contains(&p.a_shift) {
            m5 |= 1 << k;
            s.win[4][p.a_shift as usize] |= 1 << k;
        }
    }
    // shared tree prefix: csa(r0,r1,r2) -> csa(.,r3) is the 4-row
    // result; one more csa over the one-hot is the 5-row result
    for v in [
        &mut s.red_a,
        &mut s.red_b,
        &mut s.red_c,
        &mut s.red_d,
        &mut s.red_e,
        &mut s.red_f,
    ] {
        v.clear();
        v.resize(w, 0);
    }
    plane_csa3_2(&s.win[0], &s.win[1], &s.win[2], &mut s.red_a, &mut s.red_b);
    plane_csa3_2(&s.red_a, &s.red_b, &s.win[3], &mut s.red_c, &mut s.red_d);
    plane_csa3_2(&s.red_c, &s.red_d, &s.win[4], &mut s.red_e, &mut s.red_f);
    // win_s/win_c live in red_a/red_b from here on
    for j in 0..w {
        s.red_a[j] = (s.red_e[j] & m5) | (s.red_c[j] & !m5);
        s.red_b[j] = (s.red_f[j] & m5) | (s.red_d[j] & !m5);
    }

    // ---- Carry Reduce (PCS only) ----
    if let Some(k) = f.carry_spacing {
        plane_carry_reduce(&mut s.red_a, &mut s.red_b, k);
    }
    let win_s = &s.red_a;
    let win_c = &s.red_b;

    // ---- block classification (Fig. 10) over digit planes ----
    let is0 = |ws: &[u64], wc: &[u64], p: usize| !ws[p] & !wc[p];
    let is1 = |ws: &[u64], wc: &[u64], p: usize| ws[p] ^ wc[p];
    let is2 = |ws: &[u64], wc: &[u64], p: usize| ws[p] & wc[p];
    // MSB-first block k covers digits [(nb-1-k)*bb, (nb-k)*bb)
    let mut az = [0u64; 16];
    let mut ao = [0u64; 16];
    let mut rz = [0u64; 16];
    let mut top0 = [0u64; 16];
    let mut top1 = [0u64; 16];
    assert!(nb <= 16, "window block count exceeds classifier arrays");
    for k in 0..nb {
        let base = (nb - 1 - k) * bb;
        let top = base + bb - 1;
        let (mut all0, mut all1) = (!0u64, !0u64);
        for p in base..=top {
            all0 &= is0(win_s, win_c, p);
            all1 &= is1(win_s, win_c, p);
        }
        // ripple-zero: a leading run of 1s closed by a 2, zeros below
        let mut in_run = is1(win_s, win_c, top);
        let mut await0 = 0u64;
        for p in (base..top).rev() {
            let next_await = (await0 & is0(win_s, win_c, p)) | (in_run & is2(win_s, win_c, p));
            in_run &= is1(win_s, win_c, p);
            await0 = next_await;
        }
        az[k] = all0;
        ao[k] = all1;
        rz[k] = await0 & !all1;
        top0[k] = is0(win_s, win_c, top);
        top1[k] = is1(win_s, win_c, top);
    }
    #[cfg(feature = "fault-inject")]
    for st in &strikes {
        if st.site == crate::fault::FaultSite::PlaneClassifyMask {
            // strike an all-zero mask the struck lane's skip chain will
            // actually consume: a flip below the chain's stop point is
            // architecturally masked and tells a campaign nothing, so
            // walk the skippable range (starting from the seeded block)
            // for a flip that changes the lane's resolved skip — halting
            // the chain early (low mantissa bits fall out of the kept
            // slice) or driving it past a live block (leading bits lost)
            let k = st.lane % PLANE_LANES;
            let range = (nb - keep).max(1);
            let lane_skip = |az: &[u64; 16]| -> usize {
                if k >= len || !s.prep[k].normal {
                    return 0;
                }
                let lane = 1u64 << k;
                let mut skip = 0usize;
                while nb - skip > keep {
                    let ok = if (az[skip] | rz[skip]) & lane != 0 {
                        top0[skip + 1] & lane != 0
                    } else if ao[skip] & lane != 0 {
                        top1[skip + 1] & lane != 0
                    } else {
                        false
                    };
                    if !ok {
                        break;
                    }
                    skip += 1;
                }
                skip.min(s.prep[k].skip_cap)
            };
            let clean = lane_skip(&az);
            let mut j = st.sel as usize % range;
            for off in 0..range {
                let cand = (st.sel as usize + off) % range;
                let mut flipped = az;
                flipped[cand] ^= 1u64 << k;
                if lane_skip(&flipped) != clean {
                    j = cand;
                    break;
                }
            }
            az[j] ^= 1u64 << k;
        }
    }

    // ---- per-lane skip chain over the block-class masks ----
    s.skips.clear();
    s.skips.resize(len, 0);
    for (k, p) in s.prep.iter().enumerate() {
        if !p.normal {
            continue;
        }
        let lane = 1u64 << k;
        let mut skip = 0usize;
        while nb - skip > keep {
            let ok = if (az[skip] | rz[skip]) & lane != 0 {
                top0[skip + 1] & lane != 0
            } else if ao[skip] & lane != 0 {
                top1[skip + 1] & lane != 0
            } else {
                false
            };
            if !ok {
                break;
            }
            skip += 1;
        }
        s.skips[k] = skip.min(p.skip_cap);
    }

    // ---- result block mux: OR the windows under per-skip lane masks ----
    let mut sel = [0u64; 16];
    for (k, p) in s.prep.iter().enumerate() {
        if p.normal {
            sel[s.skips[k]] |= 1 << k;
        }
    }
    let rw = keep * bb;
    s.res_s.clear();
    s.res_s.resize(rw, 0);
    s.res_c.clear();
    s.res_c.resize(rw, 0);
    s.rnd_s.clear();
    s.rnd_s.resize(bb, 0);
    s.rnd_c.clear();
    s.rnd_c.resize(bb, 0);
    #[allow(clippy::needless_range_loop)] // sk also derives the window base offset
    for sk in 0..=(nb - keep) {
        let mask = sel[sk];
        if mask == 0 {
            continue;
        }
        let base = (nb - keep - sk) * bb;
        for r in 0..rw {
            s.res_s[r] |= win_s[base + r] & mask;
            s.res_c[r] |= win_c[base + r] & mask;
        }
        if sk + keep < nb {
            // the block below the selected slice is the rounding data
            for r in 0..bb {
                s.rnd_s[r] |= win_s[base - bb + r] & mask;
                s.rnd_c[r] |= win_c[base - bb + r] & mask;
            }
        }
    }
    if CORRUPT_NEXT_PLANE_WORD.swap(false, Ordering::Relaxed) {
        s.res_s[0] ^= 1;
    }

    // ---- untranspose + scalar postamble ----
    let mut res_s_l: Vec<Bits> = Vec::new();
    let mut res_c_l: Vec<Bits> = Vec::new();
    let mut rnd_s_l: Vec<Bits> = Vec::new();
    let mut rnd_c_l: Vec<Bits> = Vec::new();
    timed(&obs::PLANE_TRANSPOSE_NS, || {
        planes_to_lanes(&s.res_s, rw, len, &mut res_s_l);
        planes_to_lanes(&s.res_c, rw, len, &mut res_c_l);
        planes_to_lanes(&s.rnd_s, bb, len, &mut rnd_s_l);
        planes_to_lanes(&s.rnd_c, bb, len, &mut rnd_c_l);
    });
    for k in 0..len {
        if let Some(r) = s.early[k].take() {
            bank[dst + k] = r;
            continue;
        }
        let p = &s.prep[k];
        let mant = CsNumber::new(
            std::mem::replace(&mut res_s_l[k], Bits::zero(0)),
            std::mem::replace(&mut res_c_l[k], Bits::zero(0)),
        );
        let round = CsNumber::new(
            std::mem::replace(&mut rnd_s_l[k], Bits::zero(0)),
            std::mem::replace(&mut rnd_c_l[k], Bits::zero(0)),
        );
        let sign_hint = mant.resolve_signed_extended().sign_bit();
        let e_r = (nb - s.skips[k] - keep) as i64 * bb as i64 + p.wls + fc;
        let exp = BiasedExp::from_unbiased_saturating(e_r);
        bank[dst + k] = CsOperand::from_raw(f, FpClass::Normal, sign_hint, mant, round, exp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::CsFmaFormat;
    use csfma_softfloat::FpFormat;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_f64(state: &mut u64) -> f64 {
        let r = splitmix(state);
        match r % 12 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 => f64::MIN_POSITIVE / 2.0, // subnormal (flushed on input)
            6 => 1.0,
            7 => -1.0,
            _ => {
                let mag = ((r >> 8) % 2001) as f64 - 1000.0;
                mag * 1.5e-2
            }
        }
    }

    fn assert_same(lhs: &CsOperand, rhs: &CsOperand, what: &str) {
        assert_eq!(lhs.class(), rhs.class(), "{what}: class");
        assert_eq!(lhs.sign_hint(), rhs.sign_hint(), "{what}: sign hint");
        assert_eq!(lhs.exp(), rhs.exp(), "{what}: exponent");
        assert_eq!(lhs.mant().sum(), rhs.mant().sum(), "{what}: mant sum");
        assert_eq!(lhs.mant().carry(), rhs.mant().carry(), "{what}: mant carry");
        assert_eq!(lhs.round().sum(), rhs.round().sum(), "{what}: round sum");
        assert_eq!(
            lhs.round().carry(),
            rhs.round().carry(),
            "{what}: round carry"
        );
    }

    /// Chain three FMAs per lane so the plane kernel sees operands in
    /// genuine (non-canonical) carry-save form, with the full special-
    /// value mix, and compare every link against the scalar engine.
    #[test]
    fn plane_chunk_matches_scalar_on_all_formats() {
        for fmt in [
            CsFmaFormat::PCS_55_ZD,
            CsFmaFormat::PCS_58_LZA,
            CsFmaFormat::FCS_29_LZA,
            CsFmaFormat::PCS_27_SP,
            CsFmaFormat::FCS_15_SP,
        ] {
            let unit = CsFmaUnit::new(fmt);
            let bfmt = if fmt.b_sig_bits == 24 {
                FpFormat::BINARY32
            } else {
                FpFormat::BINARY64
            };
            let mut plane_scratch = PlaneScratch::default();
            let mut fma_scratch = FmaScratch::default();
            for &len in &[64usize, 17, 1] {
                let mut state = 0xc0ff_ee00 ^ fmt.mant_bits() as u64 ^ (len as u64) << 32;
                let mut plane_bank: Vec<CsOperand> = (0..3 * len)
                    .map(|_| {
                        CsOperand::from_ieee(&SoftFloat::from_f64(bfmt, gen_f64(&mut state)), fmt)
                    })
                    .collect();
                let mut scalar_bank = plane_bank.clone();
                for link in 0..3 {
                    let b: Vec<SoftFloat> = (0..len)
                        .map(|_| SoftFloat::from_f64(bfmt, gen_f64(&mut state)))
                        .collect();
                    // acc = previous dst, so CS-form results feed back in
                    plane_fma_chunk(
                        &unit,
                        &mut plane_bank,
                        0,
                        len,
                        0,
                        &b,
                        len,
                        &mut plane_scratch,
                    );
                    for k in 0..len {
                        let r = unit.fma_with(
                            &scalar_bank[k].clone(),
                            &b[k],
                            &scalar_bank[len + k],
                            &mut fma_scratch,
                        );
                        scalar_bank[k] = r;
                        assert_same(
                            &plane_bank[k],
                            &scalar_bank[k],
                            &format!("{} len {len} link {link} lane {k}", fmt.name),
                        );
                    }
                }
            }
        }
    }

    /// The armed corruption hook must change exactly the targeted lane.
    #[test]
    fn corruption_hook_flips_lane_zero() {
        let fmt = CsFmaFormat::PCS_55_ZD;
        let unit = CsFmaUnit::new(fmt);
        let mut scratch = PlaneScratch::default();
        let mk = |v: f64| CsOperand::from_f64(v, fmt);
        let mut bank = vec![mk(1.5), mk(0.25), mk(3.0), mk(2.0), mk(0.0), mk(0.0)];
        let b = vec![SoftFloat::from_f64(FpFormat::BINARY64, 1.25); 2];
        let clean = {
            let mut bank = bank.clone();
            plane_fma_chunk(&unit, &mut bank, 0, 2, 4, &b, 2, &mut scratch);
            (bank[4].clone(), bank[5].clone())
        };
        CORRUPT_NEXT_PLANE_WORD.store(true, Ordering::Relaxed);
        plane_fma_chunk(&unit, &mut bank, 0, 2, 4, &b, 2, &mut scratch);
        assert_ne!(
            bank[4].mant().sum(),
            clean.0.mant().sum(),
            "lane 0 must be corrupted"
        );
        assert_eq!(bank[5].mant().sum(), clean.1.mant().sum());
    }
}
