//! Deterministic work-stealing parallelism for batch evaluation.
//!
//! The throughput story of the paper is *streams* of operands through
//! chained FMA datapaths; the software counterpart is evaluating many
//! independent input vectors at once. Two primitives cover that:
//!
//! * [`steal_indexed`] — the scheduler core. The index space `0..n` is
//!   split into one contiguous segment per worker; each worker claims
//!   grain-sized runs from the *front* of its own segment and, when it
//!   runs dry, steals half of the largest remaining segment from the
//!   *back*. Both operations are a single compare-and-swap on one
//!   `AtomicU64` per deque ([`IndexDeque`]), so every index is claimed
//!   **exactly once** no matter how claims and steals interleave.
//! * [`par_chunks_indexed`] — the batch-evaluator wrapper: splits an
//!   output buffer into fixed-size chunks **independently of the worker
//!   count** and runs one work item per chunk.
//!
//! Because an item's output is a pure function of its index (every model
//! in this workspace is a pure function of its inputs — see
//! `tests/determinism.rs` and `tests/scheduler.rs`) and every item is
//! claimed exactly once into a caller-owned slot addressed *by index*,
//! steal order cannot leak into output bytes: the result buffer is
//! byte-identical for 1, 2 or N workers; only the wall-clock changes.
//!
//! Workers come from a lazily-grown process-wide pool of parked threads
//! (the old implementation spawned fresh OS threads per call through
//! `std::thread::scope`; at ~10 k rows the spawn cost alone outweighed
//! the per-chunk work and made 8 threads *slower* than 1 — the
//! regression recorded in `results/BENCH_throughput.json` before this
//! scheduler landed).

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crate::obs::{
    SCHED_CLAIMS, SCHED_GRAIN, SCHED_INLINE_JOBS, SCHED_JOBS, SCHED_STEALS, SCHED_STEAL_MISSES,
};

/// Rows per scheduling chunk used by the batch evaluators. This is the
/// SoA register-plane width: the bit-plane kernel (DESIGN.md §13) runs
/// on exactly-full 64-row chunks, so the chunk size is fixed and the
/// scheduler adapts its *grain* (chunks per claim) instead.
pub const CHUNK_ROWS: usize = 64;

/// Hard cap on scheduler workers for one job (submitting thread
/// included). Also bounds the size of the process-wide worker pool.
pub const MAX_WORKERS: usize = 16;

/// Owner-side claims per worker the grain policy aims for. Chosen from
/// the obs chunk-occupancy histogram of the bench workloads: 10 k-row
/// batches produce 157 chunks, and 8 claims per worker keeps the tail
/// imbalance under one grain while the claim traffic stays noise.
const TARGET_CLAIMS_PER_WORKER: usize = 8;

/// Upper bound on the grain (work items per claim).
const MAX_GRAIN: usize = 64;

// ---------------------------------------------------------------------
// deque
// ---------------------------------------------------------------------

/// A contiguous range of unclaimed work-item indices, packed as
/// `(next, end)` — two `u32` halves of a single `AtomicU64`.
///
/// The owner claims from the front ([`IndexDeque::pop_front`]), thieves
/// claim from the back ([`IndexDeque::steal_back`]); both retire their
/// range with one compare-and-swap on the same word, so the two ends can
/// race freely and still hand out disjoint ranges. This is the
/// Chase–Lev shape collapsed to an index interval: the "buffer" is the
/// identity map, so no circular array and no epoch bookkeeping.
#[derive(Debug)]
pub struct IndexDeque(AtomicU64);

#[inline]
fn pack(next: u32, end: u32) -> u64 {
    ((next as u64) << 32) | end as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl IndexDeque {
    /// A deque covering `start..end` (both must fit in `u32`; batch
    /// sizes are row counts, far below 2^32 chunks).
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end && end <= u32::MAX as usize);
        IndexDeque(AtomicU64::new(pack(start as u32, end as u32)))
    }

    /// Unclaimed items left in this deque (a racy snapshot).
    pub fn remaining(&self) -> usize {
        let (next, end) = unpack(self.0.load(Ordering::Acquire));
        (end - next) as usize
    }

    /// Owner path: claim up to `grain` items from the front. Returns the
    /// claimed `(start, len)` range, or `None` if the deque is empty.
    pub fn pop_front(&self, grain: usize) -> Option<(usize, usize)> {
        let grain = grain.max(1) as u32;
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            let take = grain.min(end - next);
            match self.0.compare_exchange_weak(
                cur,
                pack(next + take, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((next as usize, take as usize)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief path: claim half of the remaining items (rounded up) from
    /// the back. Returns the stolen `(start, len)` range, or `None` if
    /// the deque is empty (possibly because a racing claim emptied it).
    pub fn steal_back(&self) -> Option<(usize, usize)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            let take = (end - next).div_ceil(2);
            match self.0.compare_exchange_weak(
                cur,
                pack(next, end - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(((end - take) as usize, take as usize)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Replace the deque's range wholesale. Only the *owner* of an
    /// **empty** deque may call this (it installs a freshly stolen range
    /// so other thieves can steal from it in turn); thieves racing with
    /// the store retry their compare-and-swap against the new value.
    fn install(&self, start: usize, end: usize) {
        debug_assert_eq!(self.remaining(), 0);
        self.0
            .store(pack(start as u32, end as u32), Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// grain policy
// ---------------------------------------------------------------------

/// Work items per owner-side claim for a job of `n_items` over
/// `workers` workers.
///
/// Policy (DESIGN.md §14): aim for `TARGET_CLAIMS_PER_WORKER` (8) claims
/// per worker so the tail imbalance after steals is bounded by one
/// grain, clamp to `1..=MAX_GRAIN` (64). Small batches therefore get a
/// grain of 1 — every chunk individually claimable — while the worker
/// count itself is clamped to the item count, so no worker starves on a
/// segment that was empty from the start. The policy is a pure function
/// of `(n_items, workers)`: it cannot observe timing, so it cannot
/// perturb output bytes.
pub fn adaptive_grain(n_items: usize, workers: usize) -> usize {
    if workers <= 1 {
        return n_items.max(1);
    }
    (n_items / (workers * TARGET_CLAIMS_PER_WORKER)).clamp(1, MAX_GRAIN)
}

/// What one scheduler invocation did: worker/grain decisions and
/// claim/steal traffic. Returned by [`steal_indexed`] and
/// [`par_chunks_indexed`]; the same tallies accumulate process-wide in
/// [`crate::obs::sched_counts`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Work items in the job.
    pub items: u64,
    /// Workers that participated (1 = ran inline on the caller).
    pub workers: u64,
    /// Items per owner-side claim ([`adaptive_grain`]).
    pub grain: u64,
    /// Owner-side front claims across all workers.
    pub claims: u64,
    /// Successful back-of-deque steals.
    pub steals: u64,
    /// Steal attempts that lost the race to a concurrent claim
    /// (starvation pressure: nonzero means workers contended for the
    /// same shrinking segment).
    pub steal_misses: u64,
}

// ---------------------------------------------------------------------
// scheduler core
// ---------------------------------------------------------------------

std::thread_local! {
    /// Set while this thread executes scheduler work items. A nested
    /// [`steal_indexed`] from inside a work item would deadlock the
    /// pool (the inner submitter would wait for the job slot its own
    /// job occupies), so nested calls degrade to inline execution.
    static IN_SCHED_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Invoke `f(state, i)` exactly once for every `i in 0..n_items`, using
/// up to `threads` workers with work stealing. `init` builds one scratch
/// state per participating worker, so `f` can reuse allocations across
/// items; states are dropped when their worker finishes (a pooling
/// `init`/`Drop` pair recycles allocations across jobs).
///
/// Items are claimed exactly once (single-CAS deque, see
/// [`IndexDeque`]), so with a pure `f` that writes only the slot(s)
/// addressed by `i`, the filled output is bitwise independent of the
/// worker count and of steal timing. With `threads <= 1`, or when the
/// grain policy decides one worker suffices, everything runs on the
/// calling thread in index order.
///
/// A panic inside `f` on any worker is propagated to the caller after
/// the remaining workers drain.
pub fn steal_indexed<S>(
    n_items: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) + Sync,
) -> SchedStats {
    let nested = IN_SCHED_JOB.with(|c| c.get());
    let mut workers = threads.clamp(1, MAX_WORKERS).min(n_items);
    if nested {
        workers = 1;
    }
    let grain = adaptive_grain(n_items, workers);
    // never field more workers than there are grain-sized claims
    workers = workers.min(n_items.div_ceil(grain.max(1))).max(1);

    let mut stats = SchedStats {
        items: n_items as u64,
        workers: workers as u64,
        grain: grain as u64,
        ..SchedStats::default()
    };
    SCHED_GRAIN.record(grain.max(1).ilog2() as usize);

    if workers <= 1 {
        SCHED_INLINE_JOBS.add(1);
        let mut state = init();
        for i in 0..n_items {
            f(&mut state, i);
        }
        stats.claims = u64::from(n_items > 0);
        return stats;
    }
    SCHED_JOBS.add(1);

    // one contiguous segment of the index space per worker
    let deques: Vec<IndexDeque> = (0..workers)
        .map(|w| IndexDeque::new(w * n_items / workers, (w + 1) * n_items / workers))
        .collect();
    let claims = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let misses = AtomicU64::new(0);

    // debug builds verify the exactly-once contract directly
    #[cfg(debug_assertions)]
    let claimed: Vec<AtomicU64> = (0..n_items).map(|_| AtomicU64::new(0)).collect();

    let worker = |slot: usize| {
        IN_SCHED_JOB.with(|c| c.set(true));
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                IN_SCHED_JOB.with(|c| c.set(false));
            }
        }
        let _reset = Reset;

        let mut state = init();
        let run = |state: &mut S, start: usize, len: usize| {
            // index-driven by contract: `f` receives the item index, and
            // the debug bitmap is indexed by the same `i`
            #[allow(clippy::needless_range_loop)]
            for i in start..start + len {
                #[cfg(debug_assertions)]
                assert_eq!(
                    claimed[i].fetch_add(1, Ordering::Relaxed),
                    0,
                    "work item {i} claimed twice"
                );
                f(state, i);
            }
        };
        loop {
            // owner path: drain the front of our own deque
            if let Some((start, len)) = deques[slot].pop_front(grain) {
                claims.fetch_add(1, Ordering::Relaxed);
                run(&mut state, start, len);
                continue;
            }
            // thief path: hit the victim with the most unclaimed work
            let victim = deques
                .iter()
                .enumerate()
                .filter(|&(v, _)| v != slot)
                .map(|(_, d)| (d.remaining(), d))
                .max_by_key(|&(rem, _)| rem);
            match victim {
                Some((rem, d)) if rem > 0 => match d.steal_back() {
                    Some((start, len)) => {
                        steals.fetch_add(1, Ordering::Relaxed);
                        if len <= grain {
                            run(&mut state, start, len);
                        } else {
                            // big haul: park it in our own (empty) deque
                            // so other thieves can re-steal from us
                            deques[slot].install(start, start + len);
                        }
                    }
                    // lost the race to a concurrent claim — rescan
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                },
                // every deque empty: all items claimed, we're done
                _ => break,
            }
        }
    };

    run_on_pool(workers, &worker);

    #[cfg(debug_assertions)]
    for (i, c) in claimed.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), 1, "work item {i} never claimed");
    }

    stats.claims = claims.load(Ordering::Relaxed);
    stats.steals = steals.load(Ordering::Relaxed);
    stats.steal_misses = misses.load(Ordering::Relaxed);
    SCHED_CLAIMS.add(stats.claims);
    SCHED_STEALS.add(stats.steals);
    SCHED_STEAL_MISSES.add(stats.steal_misses);
    stats
}

/// Split `out` into chunks of `chunk_len` elements and invoke
/// `f(state, chunk_index, chunk)` exactly once per chunk, using up to
/// `threads` workers with work stealing (see [`steal_indexed`]).
/// `init` builds one scratch state per worker (register files, RNGs, …),
/// so `f` can reuse allocations across chunks.
///
/// Chunk boundaries depend only on `chunk_len`, never on `threads` or on
/// steal timing, and each chunk is written by exactly one worker; with a
/// pure `f` the filled buffer is bitwise independent of the worker count.
/// With `threads <= 1` everything runs on the calling thread in index
/// order.
pub fn par_chunks_indexed<O, S>(
    out: &mut [O],
    chunk_len: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [O]) + Sync,
) -> SchedStats
where
    O: Send,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let total = out.len();
    let n_chunks = total.div_ceil(chunk_len);
    let base = out.as_mut_ptr() as usize;
    steal_indexed(n_chunks, threads, init, move |state, idx| {
        let start = idx * chunk_len;
        let len = chunk_len.min(total - start);
        // SAFETY: `steal_indexed` invokes each index exactly once across
        // all workers (single-CAS claim, asserted in debug builds), and
        // chunks at distinct indices are disjoint subslices of `out`,
        // which outlives the call. So every element is aliased by at
        // most one live `&mut` at a time.
        let chunk = unsafe { std::slice::from_raw_parts_mut((base as *mut O).add(start), len) };
        f(state, idx, chunk);
    })
}

// ---------------------------------------------------------------------
// worker pool
// ---------------------------------------------------------------------

/// Jobs hand workers a lifetime-erased task reference; the submitter
/// does not return until every worker that observed the reference has
/// finished with it, which is what makes the erasure sound.
type Task = &'static (dyn Fn(usize) + Sync);

struct JobState {
    task: Task,
    /// Pool-worker slots this job still accepts (submitter is slot 0).
    extra: usize,
    started: usize,
    finished: usize,
    accepting: bool,
    /// First panic payload from a pool worker, re-raised by the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct PoolState {
    spawned: usize,
    job: Option<JobState>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Signalled when a job is installed (workers wait here).
    work: Condvar,
    /// Signalled when a worker finishes a slot or a job completes
    /// (submitters wait here).
    done: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            spawned: 0,
            job: None,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    })
}

fn spawn_pool_worker(id: usize) {
    std::thread::Builder::new()
        .name(format!("csfma-sched-{id}"))
        .spawn(|| {
            let p = pool();
            let mut st = p.state.lock().unwrap();
            loop {
                let grabbed = match st.job.as_mut() {
                    Some(j) if j.accepting && j.started < j.extra => {
                        j.started += 1;
                        Some((j.task, j.started)) // slots 1..=extra
                    }
                    _ => None,
                };
                match grabbed {
                    Some((task, slot)) => {
                        drop(st);
                        let result = panic::catch_unwind(AssertUnwindSafe(|| task(slot)));
                        st = p.state.lock().unwrap();
                        let j = st.job.as_mut().expect("job vanished under live worker");
                        j.finished += 1;
                        if let Err(payload) = result {
                            j.panic.get_or_insert(payload);
                        }
                        p.done.notify_all();
                    }
                    None => st = p.work.wait(st).unwrap(),
                }
            }
        })
        .expect("failed to spawn scheduler pool worker");
}

/// Run `task(slot)` on `workers` workers: the calling thread takes slot
/// 0, parked pool threads take slots `1..workers`. Returns after every
/// participating worker has returned; panics (from any worker) are
/// re-raised on the caller.
fn run_on_pool(workers: usize, task: &(dyn Fn(usize) + Sync)) {
    debug_assert!((2..=MAX_WORKERS).contains(&workers));
    let p = pool();
    let extra = workers - 1;
    // SAFETY: we wait below until `finished == started` with `accepting`
    // cleared before dropping the job, so no pool worker can hold this
    // reference after `run_on_pool` returns.
    let task_static: Task = unsafe { std::mem::transmute(task) };
    {
        let mut st = p.state.lock().unwrap();
        // one job at a time: later submitters queue here
        while st.job.is_some() {
            st = p.done.wait(st).unwrap();
        }
        while st.spawned < extra {
            spawn_pool_worker(st.spawned);
            st.spawned += 1;
        }
        st.job = Some(JobState {
            task: task_static,
            extra,
            started: 0,
            finished: 0,
            accepting: true,
            panic: None,
        });
    }
    p.work.notify_all();

    // participate as slot 0
    let own = panic::catch_unwind(AssertUnwindSafe(|| task(0)));

    // close enrolment and wait for helpers to drain
    let mut st = p.state.lock().unwrap();
    st.job.as_mut().unwrap().accepting = false;
    loop {
        let j = st.job.as_ref().unwrap();
        if j.finished == j.started {
            break;
        }
        st = p.done.wait(st).unwrap();
    }
    let worker_panic = st.job.take().unwrap().panic;
    drop(st);
    p.done.notify_all(); // wake queued submitters

    if let Err(payload) = own {
        panic::resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunk_layout_is_thread_independent() {
        let fill = |threads: usize| {
            let mut out = vec![0u64; 1000];
            par_chunks_indexed(
                &mut out,
                7,
                threads,
                || 0u64,
                |_, idx, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (idx as u64) << 32 | k as u64;
                    }
                },
            );
            out
        };
        let one = fill(1);
        assert_eq!(one, fill(2));
        assert_eq!(one, fill(8));
        // and the layout is the chunks_mut layout
        assert_eq!(one[0], 0);
        assert_eq!(one[7], 1 << 32);
        assert_eq!(one[999], (142u64 << 32) | 5);
    }

    #[test]
    fn single_chunk_batches_run_inline() {
        let mut out = vec![0u8; 3];
        let stats = par_chunks_indexed(&mut out, 64, 8, || (), |_, i, c| c.fill(i as u8 + 1));
        assert_eq!(out, vec![1, 1, 1]);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn steal_indexed_claims_every_index_exactly_once() {
        for &(n, threads) in &[(0usize, 8usize), (1, 8), (5, 2), (129, 4), (1000, 8)] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let stats = steal_indexed(
                n,
                threads,
                || (),
                |_, i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                },
            );
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} at n={n}");
            }
            assert!(stats.workers >= 1 && stats.workers <= threads.max(1) as u64);
        }
    }

    #[test]
    fn deque_pop_and_steal_partition_the_range() {
        let d = IndexDeque::new(0, 100);
        let mut got = vec![0u32; 100];
        while let Some((s, l)) = d.pop_front(3) {
            for g in &mut got[s..s + l] {
                *g += 1;
            }
            if let Some((s, l)) = d.steal_back() {
                for g in &mut got[s..s + l] {
                    *g += 1;
                }
            }
        }
        assert!(got.iter().all(|&g| g == 1));
    }

    #[test]
    fn grain_policy_is_pure_and_bounded() {
        assert_eq!(adaptive_grain(157, 1), 157);
        assert_eq!(adaptive_grain(2, 8), 1);
        assert!(adaptive_grain(1_000_000, 8) <= MAX_GRAIN);
        for n in 0..200 {
            for w in 1..=16 {
                let g = adaptive_grain(n, w);
                assert_eq!(g, adaptive_grain(n, w));
                assert!(g >= 1);
            }
        }
    }

    #[test]
    fn worker_panic_propagates_after_drain() {
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            steal_indexed(
                64,
                4,
                || (),
                |_, i| {
                    if i == 37 {
                        panic!("boom at {i}");
                    }
                },
            );
        }));
        assert!(r.is_err());
        // the pool must still be usable afterwards
        let n = AtomicU64::new(0);
        steal_indexed(
            100,
            4,
            || (),
            |_, _| {
                n.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(n.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_jobs_degrade_to_inline() {
        let outer = AtomicU64::new(0);
        let stats = steal_indexed(
            8,
            4,
            || (),
            |_, _| {
                let inner = steal_indexed(16, 4, || (), |_, _| {});
                assert_eq!(inner.workers, 1);
                outer.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(outer.load(Ordering::Relaxed), 8);
        assert!(stats.workers >= 1);
    }
}
