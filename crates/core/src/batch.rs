//! Deterministic chunked parallelism for batch evaluation.
//!
//! The throughput story of the paper is *streams* of operands through
//! chained FMA datapaths; the software counterpart is evaluating many
//! independent input vectors at once. [`par_chunks_indexed`] is the one
//! scheduling primitive the workspace uses for that: the output buffer is
//! split into fixed-size chunks **independently of the worker count**, and
//! workers claim chunks from a shared queue. Because a chunk's content is
//! a pure function of its index (every model in this workspace is a pure
//! function of its inputs — see `tests/determinism.rs`), the result buffer
//! is byte-identical for 1, 2 or N workers; only the wall-clock changes.

use std::sync::Mutex;

/// Rows per scheduling chunk used by the batch evaluators. Small enough
/// to load-balance a 10k-vector batch over many workers, large enough
/// that queue traffic is noise.
pub const CHUNK_ROWS: usize = 64;

/// Split `out` into chunks of `chunk_len` elements and invoke
/// `f(state, chunk_index, chunk)` for every chunk, using up to `threads`
/// workers. `init` builds one scratch state per worker (register files,
/// RNGs, …), so `f` can reuse allocations across chunks.
///
/// Chunk boundaries depend only on `chunk_len`, never on `threads`, and
/// each chunk is written by exactly one worker; with a pure `f` the
/// filled buffer is bitwise independent of the worker count and of queue
/// timing. With `threads <= 1` everything runs on the calling thread in
/// index order.
pub fn par_chunks_indexed<O, S>(
    out: &mut [O],
    chunk_len: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [O]) + Sync,
) where
    O: Send,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if threads <= 1 || out.len() <= chunk_len {
        let mut state = init();
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(&mut state, i, chunk);
        }
        return;
    }
    let queue = Mutex::new(out.chunks_mut(chunk_len).enumerate());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    // hold the lock only to pop; the chunk itself is
                    // processed outside the critical section
                    let next = queue.lock().unwrap().next();
                    match next {
                        Some((i, chunk)) => f(&mut state, i, chunk),
                        None => break,
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_layout_is_thread_independent() {
        let fill = |threads: usize| {
            let mut out = vec![0u64; 1000];
            par_chunks_indexed(
                &mut out,
                7,
                threads,
                || 0u64,
                |_, idx, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (idx as u64) << 32 | k as u64;
                    }
                },
            );
            out
        };
        let one = fill(1);
        assert_eq!(one, fill(2));
        assert_eq!(one, fill(8));
        // and the layout is the chunks_mut layout
        assert_eq!(one[0], 0);
        assert_eq!(one[7], 1 << 32);
        assert_eq!(one[999], (142u64 << 32) | 5);
    }

    #[test]
    fn single_chunk_batches_run_inline() {
        let mut out = vec![0u8; 3];
        par_chunks_indexed(&mut out, 64, 8, || (), |_, i, c| c.fill(i as u8 + 1));
        assert_eq!(out, vec![1, 1, 1]);
    }
}
