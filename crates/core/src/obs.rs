//! Process-wide behavioral-unit op counters (the `obs` feature).
//!
//! One relaxed atomic increment per FMA call — noise next to the
//! compressor-tree work a call performs — keyed by architecture class:
//! classic (Fig. 4), PCS (partial carry-save, `carry_spacing = Some`),
//! FCS (full carry-save, `carry_spacing = None`). All increments are
//! no-ops when the `obs` feature is compiled out.

use csfma_obs::{Counter, Histogram};

pub(crate) static CLASSIC_FMA_OPS: Counter = Counter::new();
pub(crate) static PCS_FMA_OPS: Counter = Counter::new();
pub(crate) static FCS_FMA_OPS: Counter = Counter::new();

// Bit-plane chunk-kernel counters (DESIGN.md §13): how many FMA lanes
// went through the plane kernel, how many it resolved on the scalar
// exception path, how many the batch executor evaluated scalar because
// the chunk was a ragged tail, and the time spent transposing between
// lane-major and plane-major form.
pub(crate) static PLANE_FMA_LANES: Counter = Counter::new();
pub(crate) static PLANE_EXCEPTION_LANES: Counter = Counter::new();
pub(crate) static PLANE_FALLBACK_LANES: Counter = Counter::new();
pub(crate) static PLANE_TRANSPOSE_NS: Counter = Counter::new();

// Work-stealing scheduler counters (DESIGN.md §14): jobs that fielded
// multiple workers vs. jobs that ran inline on the caller, owner-side
// front claims, successful back-of-deque steals, and steal attempts
// that lost the race to a concurrent claim (starvation pressure).
pub(crate) static SCHED_JOBS: Counter = Counter::new();
pub(crate) static SCHED_INLINE_JOBS: Counter = Counter::new();
pub(crate) static SCHED_CLAIMS: Counter = Counter::new();
pub(crate) static SCHED_STEALS: Counter = Counter::new();
pub(crate) static SCHED_STEAL_MISSES: Counter = Counter::new();

/// Grain (work items per owner claim) chosen per job, bucketed by
/// `log2(grain)`: bucket 0 is grain 1, bucket 6 is grain 64, the last
/// bucket collects the inline path's whole-batch grains.
pub(crate) static SCHED_GRAIN: Histogram<8> = Histogram::new();

/// Snapshot of the work-stealing scheduler counters (all zeros when the
/// `obs` feature is compiled out). See DESIGN.md §14.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedCounts {
    /// Scheduler invocations that fielded ≥ 2 workers.
    pub jobs: u64,
    /// Invocations that ran inline on the calling thread (1 worker).
    pub inline_jobs: u64,
    /// Owner-side front claims across all jobs.
    pub claims: u64,
    /// Successful back-of-deque steals.
    pub steals: u64,
    /// Steal attempts that lost the race to a concurrent claim.
    pub steal_misses: u64,
}

/// Read the process-wide work-stealing scheduler counters.
pub fn sched_counts() -> SchedCounts {
    SchedCounts {
        jobs: SCHED_JOBS.get(),
        inline_jobs: SCHED_INLINE_JOBS.get(),
        claims: SCHED_CLAIMS.get(),
        steals: SCHED_STEALS.get(),
        steal_misses: SCHED_STEAL_MISSES.get(),
    }
}

/// Snapshot the per-job grain histogram (bucket `i` counts jobs whose
/// grain was in `[2^i, 2^(i+1))`; the last bucket is open-ended).
pub fn sched_grain_histogram() -> [u64; 8] {
    SCHED_GRAIN.snapshot()
}

/// Snapshot of the per-architecture FMA op counters (all zeros when the
/// `obs` feature is compiled out).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitOpCounts {
    /// Calls through [`ClassicFma::fma`](crate::ClassicFma::fma).
    pub classic: u64,
    /// [`CsFmaUnit`](crate::CsFmaUnit) calls on a partial carry-save
    /// format (`carry_spacing = Some(_)`: PCS-ZD and PCS-LZA).
    pub pcs: u64,
    /// [`CsFmaUnit`](crate::CsFmaUnit) calls on a full carry-save format
    /// (`carry_spacing = None`: FCS).
    pub fcs: u64,
}

impl UnitOpCounts {
    /// Total behavioral FMA calls across all architectures.
    pub fn total(&self) -> u64 {
        self.classic + self.pcs + self.fcs
    }
}

/// Read the process-wide per-architecture FMA op counters.
pub fn unit_op_counts() -> UnitOpCounts {
    UnitOpCounts {
        classic: CLASSIC_FMA_OPS.get(),
        pcs: PCS_FMA_OPS.get(),
        fcs: FCS_FMA_OPS.get(),
    }
}

/// Snapshot of the bit-plane kernel counters (all zeros when the `obs`
/// feature is compiled out). See DESIGN.md §13.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneCounts {
    /// FMA lanes evaluated fully by the plane kernel.
    pub plane_lanes: u64,
    /// Lanes inside a plane chunk resolved by the scalar exception path
    /// (NaN / Inf / zero products never reach the datapath).
    pub exception_lanes: u64,
    /// Fused-FMA lanes the batch executor evaluated scalar because the
    /// chunk was a ragged tail or the instruction was not plane-eligible.
    pub fallback_lanes: u64,
    /// Nanoseconds spent transposing between lane-major and plane-major
    /// form inside the plane kernel.
    pub transpose_ns: u64,
}

/// Read the process-wide bit-plane kernel counters.
pub fn plane_counts() -> PlaneCounts {
    PlaneCounts {
        plane_lanes: PLANE_FMA_LANES.get(),
        exception_lanes: PLANE_EXCEPTION_LANES.get(),
        fallback_lanes: PLANE_FALLBACK_LANES.get(),
        transpose_ns: PLANE_TRANSPOSE_NS.get(),
    }
}

/// Tally fused-FMA lanes that took the scalar fallback inside the
/// bit-accurate batch executor (ragged-tail chunks or instructions the
/// plane-eligibility analysis rejected).
pub fn count_plane_fallback(lanes: usize) {
    PLANE_FALLBACK_LANES.add(lanes as u64);
}
