//! Process-wide behavioral-unit op counters (the `obs` feature).
//!
//! One relaxed atomic increment per FMA call — noise next to the
//! compressor-tree work a call performs — keyed by architecture class:
//! classic (Fig. 4), PCS (partial carry-save, `carry_spacing = Some`),
//! FCS (full carry-save, `carry_spacing = None`). All increments are
//! no-ops when the `obs` feature is compiled out.

use csfma_obs::Counter;

pub(crate) static CLASSIC_FMA_OPS: Counter = Counter::new();
pub(crate) static PCS_FMA_OPS: Counter = Counter::new();
pub(crate) static FCS_FMA_OPS: Counter = Counter::new();

/// Snapshot of the per-architecture FMA op counters (all zeros when the
/// `obs` feature is compiled out).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitOpCounts {
    /// Calls through [`ClassicFma::fma`](crate::ClassicFma::fma).
    pub classic: u64,
    /// [`CsFmaUnit`](crate::CsFmaUnit) calls on a partial carry-save
    /// format (`carry_spacing = Some(_)`: PCS-ZD and PCS-LZA).
    pub pcs: u64,
    /// [`CsFmaUnit`](crate::CsFmaUnit) calls on a full carry-save format
    /// (`carry_spacing = None`: FCS).
    pub fcs: u64,
}

impl UnitOpCounts {
    /// Total behavioral FMA calls across all architectures.
    pub fn total(&self) -> u64 {
        self.classic + self.pcs + self.fcs
    }
}

/// Read the process-wide per-architecture FMA op counters.
pub fn unit_op_counts() -> UnitOpCounts {
    UnitOpCounts {
        classic: CLASSIC_FMA_OPS.get(),
        pcs: PCS_FMA_OPS.get(),
        fcs: FCS_FMA_OPS.get(),
    }
}
