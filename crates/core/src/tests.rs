//! Cross-module accuracy tests: every FMA format against the exact
//! reference, single ops and chains, random and adversarial inputs.

use crate::reference::{exact_fma, ulp_error_vs_exact};
use crate::{ChainEvaluator, CsFmaFormat, CsFmaUnit, CsOperand};
use csfma_softfloat::{FpFormat, Round, SoftFloat};
use proptest::prelude::*;

const B64: FpFormat = FpFormat::BINARY64;

const ALL_FORMATS: [CsFmaFormat; 3] = [
    CsFmaFormat::PCS_55_ZD,
    CsFmaFormat::PCS_58_LZA,
    CsFmaFormat::FCS_29_LZA,
];

fn sf(v: f64) -> SoftFloat {
    SoftFloat::from_f64(B64, v)
}

/// One `A + B*C` through the unit, starting from IEEE operands; returns
/// the ulp error of the exact transported value vs the exact result.
fn single_op_error(fmt: CsFmaFormat, a: f64, b: f64, c: f64) -> f64 {
    let unit = CsFmaUnit::new(fmt);
    let (a, b, c) = (sf(a), sf(b), sf(c));
    let ao = CsOperand::from_ieee(&a, fmt);
    let co = CsOperand::from_ieee(&c, fmt);
    let r = unit.fma(&ao, &b, &co);
    let exact = exact_fma(&a, &b, &c);
    if exact.is_zero() && r.exact_value().is_zero() {
        return 0.0;
    }
    ulp_error_vs_exact(&r.exact_value(), &exact)
}

#[test]
fn simple_values_all_formats() {
    for fmt in ALL_FORMATS {
        for (a, b, c) in [
            (0.0, 1.0, 1.0),
            (1.0, 1.0, 1.0),
            (3.0, 2.0, 0.5),
            (-4.0, 2.0, 2.0),
            (1.5, -3.25, 2.0),
            (1e10, 1e-10, 1e10),
            (1.0, 1e200, 1e200),
            (-1e-200, 1e-200, 1e-200),
        ] {
            let err = single_op_error(fmt, a, b, c);
            assert!(
                err < 1e-9,
                "{}: fma({b},{c})+{a} err {err} ulp (should be ~exact: inputs are short)",
                fmt.name
            );
        }
    }
}

#[test]
fn irrational_style_values() {
    // full-width mantissas: transported result must stay well below a
    // double ulp from exact (the formats carry 110/116/87-digit mantissas)
    for fmt in ALL_FORMATS {
        for (a, b, c) in [
            (
                std::f64::consts::PI,
                std::f64::consts::E,
                std::f64::consts::SQRT_2,
            ),
            (1.0 / 3.0, 2.0 / 7.0, 9.0 / 11.0),
            (-0.1, 0.7, 0.3),
        ] {
            let err = single_op_error(fmt, a, b, c);
            assert!(err < 1e-6, "{}: err {err} ulp for ({a},{b},{c})", fmt.name);
        }
    }
}

#[test]
fn catastrophic_cancellation_stays_in_double_envelope() {
    // a ~ -b*c: the result is tiny; the error must stay below one double
    // ulp *at the operand scale* (the paper's "never more inaccurate than
    // IEEE 754 double precision" criterion for the LZA variants)
    for fmt in ALL_FORMATS {
        let b = 1.0 + 2f64.powi(-30);
        let c = 1.0 - 2f64.powi(-31);
        let prod = b * c;
        let a = -prod; // cancels to ~2^-61 residue scale
        let unit = CsFmaUnit::new(fmt);
        let ao = CsOperand::from_ieee(&sf(a), fmt);
        let co = CsOperand::from_ieee(&sf(c), fmt);
        let r = unit.fma(&ao, &sf(b), &co);
        let exact = exact_fma(&sf(a), &sf(b), &sf(c));
        let diff = r.exact_value().sub(&exact);
        if !diff.is_zero() {
            // operand scale is ~2^0: double would commit up to 2^-53 here
            assert!(
                diff.msb_exp() <= -53,
                "{}: cancellation error 2^{} above the double envelope",
                fmt.name,
                diff.msb_exp()
            );
        }
    }
}

#[test]
fn exact_zero_result() {
    for fmt in ALL_FORMATS {
        let unit = CsFmaUnit::new(fmt);
        let a = CsOperand::from_ieee(&sf(-6.0), fmt);
        let c = CsOperand::from_ieee(&sf(3.0), fmt);
        let r = unit.fma(&a, &sf(2.0), &c);
        assert!(r.exact_value().is_zero(), "{}", fmt.name);
        let back = r.to_ieee(B64, Round::NearestEven);
        assert!(back.is_zero());
    }
}

#[test]
fn special_class_handling() {
    for fmt in ALL_FORMATS {
        let unit = CsFmaUnit::new(fmt);
        let num = CsOperand::from_ieee(&sf(1.0), fmt);
        let nan = CsOperand::nan(fmt);
        let inf = CsOperand::inf(fmt, false);
        let zero = CsOperand::zero(fmt, false);

        // NaN propagates
        let r = unit.fma(&nan, &sf(1.0), &num);
        assert!(r.to_ieee(B64, Round::NearestEven).is_nan());
        // inf * 0 = NaN
        let r = unit.fma(&num, &SoftFloat::inf(B64, false), &zero);
        assert!(r.to_ieee(B64, Round::NearestEven).is_nan());
        // inf + finite product = inf
        let r = unit.fma(&inf, &sf(2.0), &num);
        assert!(r.to_ieee(B64, Round::NearestEven).is_inf());
        // inf - inf = NaN
        let r = unit.fma(&inf, &sf(-1.0), &inf);
        assert!(r.to_ieee(B64, Round::NearestEven).is_nan());
        // zero product passes A through
        let r = unit.fma(&num, &SoftFloat::zero(B64, false), &num);
        assert_eq!(r.to_ieee(B64, Round::NearestEven).to_f64(), 1.0);
        // A zero: result is the product
        let r = unit.fma(&zero, &sf(3.0), &num);
        assert_eq!(r.to_ieee(B64, Round::NearestEven).to_f64(), 3.0);
    }
}

#[test]
fn dominant_addend_is_exact() {
    // |A| >> |B*C|: A must pass through unharmed (product only contributes
    // rounding data, possibly dropped)
    for fmt in ALL_FORMATS {
        let unit = CsFmaUnit::new(fmt);
        let a = sf(1e250);
        let ao = CsOperand::from_ieee(&a, fmt);
        let co = CsOperand::from_ieee(&sf(1e-200), fmt);
        let r = unit.fma(&ao, &sf(1e-30), &co);
        let back = r.to_ieee(B64, Round::NearestEven);
        assert_eq!(back.to_f64(), 1e250, "{}", fmt.name);
    }
}

#[test]
fn dominant_product_is_exact() {
    for fmt in ALL_FORMATS {
        let unit = CsFmaUnit::new(fmt);
        let ao = CsOperand::from_ieee(&sf(1e-250), fmt);
        let co = CsOperand::from_ieee(&sf(1e200), fmt);
        let r = unit.fma(&ao, &sf(1e100), &co);
        let back = r.to_ieee(B64, Round::NearestEven);
        assert_eq!(back.to_f64(), 1e300, "{}", fmt.name);
    }
}

#[test]
fn chained_recurrence_beats_discrete_double() {
    // the Sec. IV-B experiment in miniature: 20 steps, fixed seeds; the
    // fused chain must land closer to the exact value than the discrete
    // binary64 evaluation
    for fmt in ALL_FORMATS {
        let unit = CsFmaUnit::new(fmt);
        let chain = ChainEvaluator::new(unit);
        let (b1, b2) = (1.75, -0.3125);
        let seeds = [0.3, -0.7, 1.1];
        let exact = crate::chain::run_recurrence_exact(b1, b2, seeds, 20);
        let fused = chain.run_recurrence(
            &sf(b1),
            &sf(b2),
            [&sf(seeds[0]), &sf(seeds[1]), &sf(seeds[2])],
            20,
        );
        let discrete =
            crate::chain::run_recurrence_softfloat(B64, Round::NearestEven, b1, b2, seeds, 20);
        let err_fused = ulp_error_vs_exact(&fused.exact_value(), &exact);
        let err_discrete = ulp_error_vs_exact(&discrete.to_exact(), &exact);
        assert!(
            err_fused <= err_discrete.max(0.5),
            "{}: fused {err_fused} ulp vs discrete {err_discrete} ulp",
            fmt.name
        );
    }
}

#[test]
fn report_structure_sane() {
    let fmt = CsFmaFormat::PCS_55_ZD;
    let unit = CsFmaUnit::new(fmt);
    let a = CsOperand::from_ieee(&sf(2.5), fmt);
    let c = CsOperand::from_ieee(&sf(1.5), fmt);
    let mut sink = crate::trace::VecSink::default();
    let (r, rep) = unit.fma_traced(&a, &sf(3.0), &c, &mut sink);
    assert!(rep.multiplier_rows <= 2 * 53 + 1);
    assert!(rep.skip < fmt.mux_ways());
    assert!(!sink.events.is_empty());
    assert_eq!(r.to_ieee(B64, Round::NearestEven).to_f64(), 3.0 * 1.5 + 2.5);
}

fn normal_input() -> impl Strategy<Value = f64> {
    (any::<bool>(), 0u64..(1u64 << 52), -200i32..=200).prop_map(|(s, m, e)| {
        let v = f64::from_bits(((1023 + e) as u64) << 52 | m);
        if s {
            -v
        } else {
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Single op, random inputs: error vs exact bounded by one double ulp
    /// at the dominant-term scale (the "at least double precision" claim).
    #[test]
    fn prop_single_op_double_envelope(a in normal_input(), b in normal_input(), c in normal_input()) {
        for fmt in ALL_FORMATS {
            let unit = CsFmaUnit::new(fmt);
            let (a, b, c) = (sf(a), sf(b), sf(c));
            let ao = CsOperand::from_ieee(&a, fmt);
            let co = CsOperand::from_ieee(&c, fmt);
            let r = unit.fma(&ao, &b, &co);
            let exact = exact_fma(&a, &b, &c);
            let diff = r.exact_value().sub(&exact);
            if diff.is_zero() {
                continue;
            }
            // dominant-term magnitude
            let dom = {
                let p = b.to_exact().mul(&c.to_exact());
                let ae = a.to_exact();
                if ae.cmp_magnitude(&p) == std::cmp::Ordering::Greater { ae } else { p }
            };
            let envelope = dom.msb_exp() - 52;
            prop_assert!(
                diff.msb_exp() <= envelope,
                "{}: error 2^{} above double envelope 2^{} for ({:?},{:?},{:?})",
                fmt.name, diff.msb_exp(), envelope, a.to_f64(), b.to_f64(), c.to_f64()
            );
        }
    }

    /// Transport roundtrip through to_ieee is within one ulp of the
    /// correctly rounded fused op.
    #[test]
    fn prop_to_ieee_close_to_fused(a in normal_input(), b in normal_input(), c in normal_input()) {
        for fmt in ALL_FORMATS {
            let unit = CsFmaUnit::new(fmt);
            let (a, b, c) = (sf(a), sf(b), sf(c));
            let ao = CsOperand::from_ieee(&a, fmt);
            let co = CsOperand::from_ieee(&c, fmt);
            let r = unit.fma(&ao, &b, &co).to_ieee(B64, Round::NearestEven);
            let want = b.fma_r(&c, &a, Round::NearestEven);
            if want.is_zero() {
                prop_assert!(r.is_zero() || r.to_f64().abs() < 1e-290);
                continue;
            }
            let rv = r.to_f64();
            let wv = want.to_f64();
            let ulp = (wv.abs() * 2f64.powi(-52)).max(f64::MIN_POSITIVE);
            prop_assert!((rv - wv).abs() <= ulp, "{}: {} vs {}", fmt.name, rv, wv);
        }
    }

    /// Five chained ops stay inside the double envelope at every link.
    #[test]
    fn prop_chain_double_envelope(
        vals in prop::collection::vec(normal_input(), 11),
    ) {
        for fmt in ALL_FORMATS {
            let unit = CsFmaUnit::new(fmt);
            // acc = fma(acc, b_i, c_i) chain, all through CS transport
            let mut acc = CsOperand::from_ieee(&sf(vals[0]), fmt);
            let mut exact = sf(vals[0]).to_exact();
            for i in 0..5 {
                let b = sf(vals[1 + 2 * i]);
                let cv = sf(vals[2 + 2 * i]);
                let c = CsOperand::from_ieee(&cv, fmt);
                acc = unit.fma(&acc, &b, &c);
                exact = exact.add(&b.to_exact().mul(&cv.to_exact()));
            }
            let diff = acc.exact_value().sub(&exact);
            if diff.is_zero() {
                continue;
            }
            // envelope: one double ulp at the largest intermediate scale,
            // times the chain length budget
            let dom = if exact.is_zero() { acc.exact_value() } else { exact.clone() };
            if dom.is_zero() {
                continue;
            }
            let envelope = dom.msb_exp().max(0) - 49; // 8x slack over 1 ulp at result scale
            prop_assert!(
                diff.msb_exp() <= envelope.max(diff.msb_exp().min(-1000)),
                "{}: chained error 2^{} vs envelope 2^{}",
                fmt.name, diff.msb_exp(), envelope
            );
        }
    }
}

#[test]
fn pcs_outputs_keep_carry_spacing() {
    // the transport format's 192-bit packing relies on carries sitting
    // only at segment bases; every FMA output must keep that invariant
    for fmt in [CsFmaFormat::PCS_55_ZD, CsFmaFormat::PCS_58_LZA] {
        let unit = CsFmaUnit::new(fmt);
        let mut acc = CsOperand::from_ieee(&sf(0.37), fmt);
        for i in 0..24 {
            let b = sf(1.1 + 0.07 * i as f64 * if i % 2 == 0 { 1.0 } else { -1.0 });
            let c = CsOperand::from_ieee(&sf(0.9 - 0.03 * i as f64), fmt);
            acc = unit.fma(&acc, &b, &c);
            assert!(acc.spacing_holds(), "{} step {i}", fmt.name);
        }
    }
}

#[test]
fn conversion_all_rounding_modes() {
    // CS -> IEEE honors every rounding mode like the soft-float reference
    let fmt = CsFmaFormat::PCS_55_ZD;
    let unit = CsFmaUnit::new(fmt);
    let a = CsOperand::from_ieee(&sf(0.1), fmt);
    let c = CsOperand::from_ieee(&sf(1.0 / 3.0), fmt);
    let r = unit.fma(&a, &sf(0.7), &c); // irrational-ish mantissa
    let exact = r.exact_value();
    for mode in [
        Round::NearestEven,
        Round::HalfAwayFromZero,
        Round::TowardZero,
        Round::TowardPosInf,
        Round::TowardNegInf,
    ] {
        let got = r.to_ieee(B64, mode);
        let want = SoftFloat::from_rounded(B64, exact.round(B64, mode));
        assert_eq!(got, want, "{mode:?}");
    }
    // directed modes bracket the value
    let dn = r.to_ieee(B64, Round::TowardNegInf).to_f64();
    let up = r.to_ieee(B64, Round::TowardPosInf).to_f64();
    assert!(dn < up);
}

#[test]
fn pack_is_deterministic_and_value_stable() {
    let fmt = CsFmaFormat::FCS_29_LZA;
    let unit = CsFmaUnit::new(fmt);
    let a = CsOperand::from_ieee(&sf(2.5), fmt);
    let c = CsOperand::from_ieee(&sf(-1.25), fmt);
    let r1 = unit.fma(&a, &sf(3.0), &c);
    let r2 = unit.fma(&a, &sf(3.0), &c);
    assert_eq!(r1.pack(), r2.pack(), "evaluation must be deterministic");
    assert_eq!(
        r1.pack().width(),
        fmt.operand_bits(),
        "pack width matches the declared transport width"
    );
}

#[test]
fn b_input_narrower_formats() {
    // B stays in standard format (Sec. III-D); a binary32 B input also
    // works through the same engine
    let fmt = CsFmaFormat::PCS_55_ZD;
    let unit = CsFmaUnit::new(fmt);
    let b32 = SoftFloat::from_f64(FpFormat::BINARY32, 1.5);
    let a = CsOperand::from_ieee(&sf(1.0), fmt);
    let c = CsOperand::from_ieee(&sf(2.0), fmt);
    let r = unit.fma(&a, &b32, &c);
    assert_eq!(r.to_ieee(B64, Round::NearestEven).to_f64(), 4.0);
}

#[test]
fn deep_chain_exponent_walks_stay_exact() {
    // march the exponent up and down across hundreds of octaves; block
    // renormalization must track it without drift
    let fmt = CsFmaFormat::FCS_29_LZA;
    let unit = CsFmaUnit::new(fmt);
    let mut acc = CsOperand::from_ieee(&sf(1.0), fmt);
    let zero_c = CsOperand::from_ieee(&sf(1.0), fmt);
    for _ in 0..200 {
        acc = unit.fma(
            &CsOperand::zero(fmt, false),
            &acc.to_ieee(B64, Round::NearestEven),
            &zero_c,
        );
        acc = unit.fma(&acc, &sf(4.0), &CsOperand::from_ieee(&sf(0.0), fmt));
    }
    // acc = 1 * 4^0 ... all the mul-by-zero-added terms: acc stays 1.0
    // through 400 unit passes
    assert_eq!(acc.to_ieee(B64, Round::NearestEven).to_f64(), 1.0);
}

/// Dense sweep over a miniature geometry: a 16-digit mantissa in two
/// 8-digit blocks with a 5-bit `B` significand is small enough to cover
/// every fraction pattern and a grid of exponents/signs exhaustively —
/// strong evidence the engine's window/normalization algebra is right for
/// *any* parameters, not just the paper's three design points.
mod mini_format {
    use super::*;
    use crate::Normalizer;
    use csfma_softfloat::ExactFloat;

    const B_FMT: FpFormat = FpFormat {
        exp_bits: 5,
        frac_bits: 4,
    };

    fn mini(spacing: Option<usize>, normalizer: Normalizer, name: &'static str) -> CsFmaFormat {
        CsFmaFormat {
            name,
            block_bits: 8,
            mant_blocks: 2,
            left_blocks: 2,
            right_blocks: 2,
            carry_spacing: spacing,
            normalizer,
            b_sig_bits: 5,
        }
    }

    fn sweep(fmt: CsFmaFormat) {
        let unit = CsFmaUnit::new(fmt);
        let mk = |sign: bool, frac: u64, exp: i32| SoftFloat::from_parts(B_FMT, sign, exp, frac);
        let mut cases = 0usize;
        for a_sign in [false, true] {
            for a_frac in 0..16u64 {
                for a_exp in [-5, 0, 4] {
                    let a = mk(a_sign, a_frac, a_exp);
                    let ao = CsOperand::from_ieee(&a, fmt);
                    for c_frac in (0..16u64).step_by(3) {
                        for c_exp in [-4, 2] {
                            let c = mk(c_frac % 2 == 1, c_frac, c_exp);
                            let co = CsOperand::from_ieee(&c, fmt);
                            for b_frac in (0..16u64).step_by(5) {
                                let b = mk(b_frac % 3 == 0, b_frac, 1);
                                let r = unit.fma(&ao, &b, &co);
                                let exact = a.to_exact().add(&b.to_exact().mul(&c.to_exact()));
                                let diff = r.exact_value().sub(&exact);
                                cases += 1;
                                if diff.is_zero() {
                                    continue;
                                }
                                // dominant scale
                                let p = b.to_exact().mul(&c.to_exact());
                                let dom: ExactFloat = if a.to_exact().cmp_magnitude(&p)
                                    == std::cmp::Ordering::Greater
                                {
                                    a.to_exact()
                                } else {
                                    p
                                };
                                // envelope: better than the 5-bit input
                                // significand's ULP at the dominant scale
                                assert!(
                                    diff.msb_exp() <= dom.msb_exp() - 5,
                                    "{}: err 2^{} vs dom 2^{} for a={} b={} c={}",
                                    fmt.name,
                                    diff.msb_exp(),
                                    dom.msb_exp(),
                                    a.to_f64(),
                                    b.to_f64(),
                                    c.to_f64()
                                );
                            }
                        }
                    }
                }
            }
        }
        assert!(cases > 4000, "swept {cases} cases");
    }

    #[test]
    fn mini_pcs_zero_detect() {
        sweep(mini(Some(4), Normalizer::ZeroDetect, "mini PCS/ZD"));
    }

    #[test]
    fn mini_pcs_early_lza() {
        sweep(mini(Some(4), Normalizer::EarlyLza, "mini PCS/LZA"));
    }

    #[test]
    fn mini_fcs_zero_detect() {
        sweep(mini(None, Normalizer::ZeroDetect, "mini FCS/ZD"));
    }

    #[test]
    fn mini_fcs_early_lza() {
        sweep(mini(None, Normalizer::EarlyLza, "mini FCS/LZA"));
    }
}

/// Sec. III-E's accepted misrounding, reproduced concretely: a value just
/// above one half ULP whose excess lives entirely in the *discarded*
/// blocks reads as "below half" from the rounding block alone and is
/// erroneously rounded down. The paper quotes 0.5000000000000000083 as
/// the largest such number for the 55-bit block.
#[test]
fn documented_misrounding_boundary() {
    use csfma_bits::Bits;
    use csfma_carrysave::CsNumber;
    use csfma_units::rounding::round_up_from_block;

    // fraction = 0.0111…1 (54 ones) in the rounding block, plus ones in
    // the discarded lower blocks: true fraction > 1/2 by ~2^-55, but the
    // block's resolved value is 2^54 - 1 < 2^54 -> rounds down.
    let block = CsNumber::new(Bits::from_u128(55, (1u128 << 54) - 1), Bits::zero(55));
    assert!(
        !round_up_from_block(&block),
        "the block alone reads below half: misrounded down (accepted)"
    );
    // the block encodes (2^54 - 1)/2^55 = 1/2 - 2^-55: the largest
    // fraction the decision sees below half. True fractions up to just
    // under 1/2 + 2^-55·(carried tail) can therefore be misrounded —
    // a deviation of order 2^-55 ≈ 2.8e-17, the magnitude behind the
    // paper's 0.5000000000000000083 example.
    assert!(2f64.powi(-55) < 1e-16);

    // one more carried bit tips the decision correctly
    let exactly_half = CsNumber::new(Bits::one_hot(55, 54), Bits::zero(55));
    assert!(round_up_from_block(&exactly_half));

    // and a redundant CS encoding of >half also rounds up (0.0220…cs case)
    let redundant = CsNumber::new(Bits::one_hot(55, 53), Bits::one_hot(55, 53));
    assert!(round_up_from_block(&redundant));
}

mod contract_violations {
    use super::*;

    #[test]
    fn mixed_operand_formats_panic() {
        let unit = CsFmaUnit::new(CsFmaFormat::PCS_55_ZD);
        let a = CsOperand::from_f64(1.0, CsFmaFormat::PCS_55_ZD);
        let wrong = CsOperand::from_f64(1.0, CsFmaFormat::FCS_29_LZA);
        let b = sf(1.0);
        assert!(std::panic::catch_unwind(|| unit.fma(&wrong, &b, &a)).is_err());
        assert!(std::panic::catch_unwind(|| unit.fma(&a, &b, &wrong)).is_err());
    }

    #[test]
    fn dot_rejects_empty_terms() {
        let unit = crate::CsDotUnit::new(CsFmaFormat::FCS_29_LZA);
        assert!(std::panic::catch_unwind(|| unit.dot(&[])).is_err());
    }
}

/// Single-precision instances of the same engine: the accuracy envelope
/// scales with the `B` significand width (binary32's 24 bits).
mod single_precision {
    use super::*;

    const B32: FpFormat = FpFormat::BINARY32;

    fn s32(v: f64) -> SoftFloat {
        SoftFloat::from_f64(B32, v)
    }

    #[test]
    fn sp_formats_compute_correctly() {
        for fmt in [CsFmaFormat::PCS_27_SP, CsFmaFormat::FCS_15_SP] {
            let unit = CsFmaUnit::new(fmt);
            for (a, b, c) in [
                (1.0, 2.0, 3.0),
                (-0.5, 4.0, 0.25),
                (0.1, 0.7, -0.3),
                (1e10, 1e-5, 2e4),
            ] {
                let (av, bv, cv) = (s32(a), s32(b), s32(c));
                let ao = CsOperand::from_ieee(&av, fmt);
                let co = CsOperand::from_ieee(&cv, fmt);
                let r = unit.fma(&ao, &bv, &co);
                let exact = exact_fma(&av, &bv, &cv);
                let diff = r.exact_value().sub(&exact);
                if diff.is_zero() {
                    continue;
                }
                let p = bv.to_exact().mul(&cv.to_exact());
                let dom = if av.to_exact().cmp_magnitude(&p) == std::cmp::Ordering::Greater {
                    av.to_exact()
                } else {
                    p
                };
                assert!(
                    diff.msb_exp() <= dom.msb_exp() - 23,
                    "{}: err 2^{} vs dom 2^{} (binary32 envelope)",
                    fmt.name,
                    diff.msb_exp(),
                    dom.msb_exp()
                );
            }
        }
    }

    #[test]
    fn sp_chains_beat_discrete_binary32() {
        let fmt = CsFmaFormat::FCS_15_SP;
        let chain = ChainEvaluator::new(CsFmaUnit::new(fmt));
        let (b1, b2) = (1.75f64, -0.3125);
        let seeds = [0.3, -0.7, 1.1];
        let exact = crate::chain::run_recurrence_exact(b1, b2, seeds, 16);
        // discrete binary32
        let d32 =
            crate::chain::run_recurrence_softfloat(B32, Round::NearestEven, b1, b2, seeds, 16);
        let fused = chain.run_recurrence(
            &s32(b1),
            &s32(b2),
            [&s32(seeds[0]), &s32(seeds[1]), &s32(seeds[2])],
            16,
        );
        let e32 = ulp_error_vs_exact(&d32.to_exact(), &exact);
        let ef = ulp_error_vs_exact(&fused.exact_value(), &exact);
        // errors here are in binary64 ulps: binary32 is ~2^29 coarser
        assert!(ef < e32, "fused {ef} vs discrete {e32}");
    }
}

mod special_value_fma_matrix {
    //! Special-value matrices through the classic FMA datapath and the
    //! carry-save chains: NaN, ±Inf, ±0 and (flushed) subnormals must
    //! follow IEEE 754 semantics at every link, not just in single ops.

    use super::{sf, B64};
    use crate::{ClassicFma, CsFmaFormat, CsFmaUnit, CsOperand};
    use csfma_softfloat::Round;

    fn specials() -> Vec<f64> {
        vec![
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::from_bits(0x000F_FFFF_FFFF_FFFF), // subnormal: flushes to 0
            -f64::from_bits(1),
            1.5,
            -2.25,
        ]
    }

    /// The structural Fig. 4 datapath must equal the value-level fused
    /// operation on the complete special matrix, bit for bit.
    #[test]
    fn classic_structural_matches_reference_on_matrix() {
        let unit = ClassicFma::new(Round::NearestEven);
        for &a in &specials() {
            for &b in &specials() {
                for &c in &specials() {
                    let want = unit.fma(&sf(a), &sf(b), &sf(c));
                    let got = ClassicFma::fma_structural(&sf(a), &sf(b), &sf(c));
                    assert_eq!(
                        got.to_f64().to_bits(),
                        want.to_f64().to_bits(),
                        "classic structural vs reference on ({a:e}) + ({b:e})*({c:e})"
                    );
                }
            }
        }
    }

    /// Single carry-save FMA on the matrix: `A + B*C` through the unit
    /// must match the soft-float fused operation bit for bit — every
    /// finite result in this value set is exact, so no unit misrounding
    /// can excuse a difference.
    #[test]
    fn cs_units_match_softfloat_fma_on_matrix() {
        for fmt in [CsFmaFormat::PCS_55_ZD, CsFmaFormat::FCS_29_LZA] {
            let unit = CsFmaUnit::new(fmt);
            for &a in &specials() {
                for &b in &specials() {
                    for &c in &specials() {
                        let r = unit.fma(
                            &CsOperand::from_f64(a, fmt),
                            &sf(b),
                            &CsOperand::from_f64(c, fmt),
                        );
                        let got = r.to_ieee(B64, Round::NearestEven).to_f64();
                        let want = sf(b).fma(&sf(c), &sf(a)).to_f64();
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "{}: ({a:e}) + ({b:e})*({c:e}) -> {got:e}, want {want:e}",
                            fmt.name
                        );
                    }
                }
            }
        }
    }

    /// Chained (unrounded) links: a special injected anywhere in a
    /// PCS/FCS chain must propagate to the resolved result, and a
    /// subnormal injection must behave exactly like injecting zero
    /// (flush-to-zero is part of the format contract).
    #[test]
    fn specials_propagate_through_cs_chains() {
        for fmt in [CsFmaFormat::PCS_55_ZD, CsFmaFormat::FCS_29_LZA] {
            let unit = CsFmaUnit::new(fmt);
            let chain = |addends: [f64; 3], bs: [f64; 3], x0: f64| {
                let mut x = CsOperand::from_f64(x0, fmt);
                for k in 0..3 {
                    x = unit.fma(&CsOperand::from_f64(addends[k], fmt), &sf(bs[k]), &x);
                }
                x.to_ieee(B64, Round::NearestEven).to_f64()
            };

            for k in 0..3 {
                // NaN addend at link k -> NaN out
                let mut adds = [1.5, -0.25, 2.0];
                adds[k] = f64::NAN;
                assert!(chain(adds, [1.1, 0.9, 1.2], 0.5).is_nan(), "{}", fmt.name);
                // NaN B-multiplicand at link k -> NaN out
                let mut bs = [1.1, 0.9, 1.2];
                bs[k] = f64::NAN;
                assert!(chain([1.5, -0.25, 2.0], bs, 0.5).is_nan(), "{}", fmt.name);
                // +Inf addend with all-positive links -> +Inf out
                let mut adds = [1.5, 0.25, 2.0];
                adds[k] = f64::INFINITY;
                let r = chain(adds, [1.1, 0.9, 1.2], 0.5);
                assert!(r.is_infinite() && r > 0.0, "{}: got {r:e}", fmt.name);
            }

            // Inf * 0 inside the chain -> NaN at the end
            let inf_chain = chain([f64::INFINITY, 0.0, 1.0], [1.0, 0.0, 1.0], 1.0);
            assert!(inf_chain.is_nan(), "{}", fmt.name);

            // subnormal injection == zero injection, bit for bit
            let sub = f64::from_bits(0x000F_FFFF_FFFF_FFFF);
            for k in 0..3 {
                let mut with_sub = [1.5, -0.25, 2.0];
                let mut with_zero = with_sub;
                with_sub[k] = sub;
                with_zero[k] = 0.0;
                let a = chain(with_sub, [1.1, 0.9, 1.2], 0.5);
                let b = chain(with_zero, [1.1, 0.9, 1.2], 0.5);
                assert_eq!(a.to_bits(), b.to_bits(), "{}", fmt.name);
                let mut bs_sub = [1.1, 0.9, 1.2];
                let mut bs_zero = bs_sub;
                bs_sub[k] = -sub;
                bs_zero[k] = -0.0;
                let a = chain([1.5, -0.25, 2.0], bs_sub, 0.5);
                let b = chain([1.5, -0.25, 2.0], bs_zero, 0.5);
                assert_eq!(a.to_bits(), b.to_bits(), "{}", fmt.name);
            }
        }
    }
}

/// The self-checking datapath (DESIGN.md §10): no false positives on the
/// clean path, bit-identical results, and guaranteed detection of every
/// single-bit flip class the residue/recompute checks cover — including
/// the Fig. 10 block idiosyncrasies (all-0 and all-1 leading blocks under
/// cancellation).
mod self_checking {
    use super::{sf, ALL_FORMATS, B64};
    use crate::fault::{
        CheckKind, FaultDetected, FaultHook, FaultPlan, FaultSite, FaultStage, FmaCtl,
    };
    use crate::{CsFmaFormat, CsFmaUnit, CsOperand, FmaScratch};
    use csfma_softfloat::Round;

    /// Value triples spanning the normalizer's regimes: plain values,
    /// deep cancellation with a positive residue (all-0 leading blocks)
    /// and with a negative residue (all-1 leading blocks, the
    /// two's-complement sign-block case of Fig. 10).
    const CASES: [(f64, f64, f64); 5] = [
        (1.5, -3.25, 2.0),
        (1e10, 1e-10, 1e10),
        (-6.0 + 1e-12, 2.0, 3.0),
        (-6.0 - 1e-12, 2.0, 3.0),
        (-1.0, 1.0 + 9.313_225_746_154_785e-10, 1.0), // 1 + 2^-30
    ];

    fn run(
        fmt: CsFmaFormat,
        (a, b, c): (f64, f64, f64),
        hook: Option<&dyn FaultHook>,
    ) -> (u64, Vec<FaultDetected>) {
        let unit = CsFmaUnit::new(fmt);
        let ao = CsOperand::from_ieee(&sf(a), fmt);
        let co = CsOperand::from_ieee(&sf(c), fmt);
        let mut det = Vec::new();
        let mut ctl = FmaCtl {
            hook,
            detections: Some(&mut det),
        };
        let (r, _) = unit.fma_checked_with(&ao, &sf(b), &co, &mut FmaScratch::default(), &mut ctl);
        (r.to_ieee(B64, Round::NearestEven).to_f64().to_bits(), det)
    }

    #[test]
    fn clean_path_has_no_false_positives_and_identical_bits() {
        for fmt in ALL_FORMATS {
            for case in CASES {
                let (bits, det) = run(fmt, case, None);
                assert!(det.is_empty(), "{}: false positive {det:?}", fmt.name);
                let unit = CsFmaUnit::new(fmt);
                let plain = unit
                    .fma(
                        &CsOperand::from_ieee(&sf(case.0), fmt),
                        &sf(case.1),
                        &CsOperand::from_ieee(&sf(case.2), fmt),
                    )
                    .to_ieee(B64, Round::NearestEven)
                    .to_f64()
                    .to_bits();
                assert_eq!(bits, plain, "{}: checked path diverged", fmt.name);
            }
        }
    }

    /// A hook that flips one fixed bit at one site — the exhaustive
    /// mutation-by-position driver.
    #[cfg(feature = "fault-inject")]
    struct FlipBit {
        site: FaultSite,
        pos: usize,
    }

    #[cfg(feature = "fault-inject")]
    impl FaultHook for FlipBit {
        fn tamper_bits(&self, site: FaultSite, word: &mut csfma_bits::Bits) {
            if site == self.site {
                let p = self.pos % word.width();
                word.set_bit(p, !word.bit(p));
            }
        }
        fn tamper_index(&self, _site: FaultSite, _index: &mut u64, _modulus: u64) {}
    }

    /// Every single-bit flip in the multiplier CS output and the PCS
    /// carry lanes is detected, at every position, in every regime —
    /// including flips landing in all-0 / all-1 skippable blocks.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn single_bit_flips_are_always_detected() {
        for fmt in ALL_FORMATS {
            for case in CASES {
                for site in [FaultSite::MulSum, FaultSite::MulCarry, FaultSite::PcsCarry] {
                    if site == FaultSite::PcsCarry && fmt.carry_spacing.is_none() {
                        continue; // FCS keeps full carry-save: no Carry Reduce
                    }
                    // positions reduce mod the word width inside the hook;
                    // 512 steps of 3 covers every bit of every tamper word
                    for pos in (0..512).step_by(3) {
                        let hook = FlipBit { site, pos };
                        let (_, det) = run(fmt, case, Some(&hook));
                        assert!(
                            !det.is_empty(),
                            "{}: undetected {site} flip at {pos} for {case:?}",
                            fmt.name
                        );
                    }
                }
            }
        }
    }

    /// Plan-driven strikes on the select and exponent paths are detected
    /// for any seed (the tamper guarantees a changed legal value).
    #[cfg(feature = "fault-inject")]
    #[test]
    fn select_and_exponent_strikes_are_detected() {
        for fmt in ALL_FORMATS {
            for (site, check) in [
                (FaultSite::BlockSelect, CheckKind::BlockSelect),
                (FaultSite::ExpField, CheckKind::ExponentPath),
            ] {
                for seed in 0..25u64 {
                    let plan = FaultPlan::single(seed, site, 0);
                    let hook = plan.for_row(0, FaultStage::Primary).unwrap();
                    let (_, det) = run(fmt, CASES[0], Some(&hook));
                    assert_eq!(plan.fired(0), 1, "{}: seed {seed} did not strike", fmt.name);
                    assert!(
                        det.iter().any(|d| d.check == check),
                        "{}: undetected {site} strike, seed {seed}: {det:?}",
                        fmt.name
                    );
                }
            }
        }
    }
}
