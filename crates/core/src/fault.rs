//! Deterministic fault-injection plans for the datapath and executor
//! (DESIGN.md §10).
//!
//! A [`FaultPlan`] is a seeded, reproducible description of *which* faults
//! strike *where*: each [`FaultSpec`] names a [`FaultSite`] (a physical
//! fault population — multiplier CSA outputs, PCS carry lanes, the block
//! mux select, the exponent field, tape register planes, or an executor
//! panic), the batch row it strikes, how many bits flip, and whether the
//! fault is transient (fires once, like an SEU) or sticky (fires on every
//! evaluation, like a stuck-at defect).
//!
//! Everything downstream — the exact bit positions, the mux-select delta,
//! the struck tape instruction — derives from `(seed, site, row)` through
//! a splitmix64 hash, so a campaign is replayable from three integers and
//! is independent of thread count and evaluation order.
//!
//! The plan is consumed through [`FaultPlan::for_row`], which arms the
//! specs matching one batch row as a [`RowFaults`] hook implementing
//! [`FaultHook`]. The [`FaultStage`] argument models where in the
//! graceful-degradation ladder the evaluation happens: transient faults
//! are claimed by the first (primary) evaluation and must not re-fire in
//! the retry, while sticky faults follow the row into the fallback and —
//! for executor panics — into the oracle, which is how a sticky defect
//! ends in quarantine instead of a livelock.

use std::sync::atomic::{AtomicU32, Ordering};

use csfma_bits::Bits;

pub use csfma_carrysave::{CheckKind, FaultDetected, FaultHook, FaultSite};

/// splitmix64: the standard 64-bit finalizer-style mixer. Statistically
/// strong enough to decorrelate bit positions across (seed, site, row)
/// and cheap enough to run per armed fault.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which rung of the graceful-degradation ladder is evaluating a row.
/// Arming is stage-filtered so the ladder converges: see [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultStage {
    /// The normal batch execution path. All specs arm.
    Primary,
    /// A per-row retry after a detection or panic. Only sticky faults
    /// re-arm — a transient fault already fired and is gone.
    Fallback,
    /// The last-resort scalar oracle. Only sticky [`FaultSite::ExecPanic`]
    /// specs arm (the oracle does not run the carry-save datapath, so
    /// datapath stuck-ats cannot strike it).
    Oracle,
}

/// One fault to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The physical fault population struck.
    pub site: FaultSite,
    /// The batch row (stimulus index) the fault strikes.
    pub row: u64,
    /// Bits flipped per strike (word sites only; ≥1). Single-bit flips
    /// are guaranteed-detected by the mod-3 residue checks; multi-bit
    /// flips may alias (`2^i + 2^j ≡ 0 (mod 3)` for `i`, `j` of opposite
    /// parity) and measure the checker's coverage limit.
    pub flips: u32,
    /// Transient (fires once, total, across the whole run) or sticky
    /// (fires on every evaluation of the row until [`FaultPlan::reset`]).
    pub sticky: bool,
}

impl FaultSpec {
    /// A single-bit transient fault — the SEU model the campaign sweeps.
    pub fn transient(site: FaultSite, row: u64) -> Self {
        FaultSpec {
            site,
            row,
            flips: 1,
            sticky: false,
        }
    }

    /// A single-bit sticky fault — the stuck-at model.
    pub fn stuck(site: FaultSite, row: u64) -> Self {
        FaultSpec {
            site,
            row,
            flips: 1,
            sticky: true,
        }
    }

    /// Same spec with a different flip multiplicity.
    pub fn with_flips(mut self, flips: u32) -> Self {
        self.flips = flips.max(1);
        self
    }
}

/// A seeded, reproducible set of faults to inject into one batch run.
///
/// Interior mutability (one `AtomicU32` strike counter per spec) lets a
/// shared `&FaultPlan` arm faults from parallel worker threads while
/// keeping transient faults one-shot: the first thread to evaluate the
/// struck row claims the fault with a compare-exchange. Because the
/// batch engine assigns each row to exactly one chunk, the claim winner
/// is deterministic regardless of thread count.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
    fired: Vec<AtomicU32>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
            fired: Vec::new(),
        }
    }

    /// Builder: add one fault.
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self.fired.push(AtomicU32::new(0));
        self
    }

    /// The common campaign plan: one single-bit transient fault.
    pub fn single(seed: u64, site: FaultSite, row: u64) -> Self {
        Self::new(seed).with_fault(FaultSpec::transient(site, row))
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's fault specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Re-arm every fault (zero the strike counters) so the same plan can
    /// drive another run — e.g. the thread-invariance cross-check.
    pub fn reset(&self) {
        for f in &self.fired {
            f.store(0, Ordering::Relaxed);
        }
    }

    /// How many times spec `idx` has struck.
    pub fn fired(&self, idx: usize) -> u32 {
        self.fired[idx].load(Ordering::Relaxed)
    }

    /// Total strikes across all specs.
    pub fn total_fired(&self) -> u64 {
        self.fired
            .iter()
            .map(|f| f.load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// Arm the specs striking `row` at the given ladder stage. Returns
    /// `None` when no spec targets the row — the executor then runs the
    /// plain un-hooked path for it.
    pub fn for_row(&self, row: u64, stage: FaultStage) -> Option<RowFaults<'_>> {
        let mut spec_idx = Vec::new();
        for (i, s) in self.specs.iter().enumerate() {
            let armed = s.row == row
                && match stage {
                    FaultStage::Primary => true,
                    FaultStage::Fallback => s.sticky,
                    FaultStage::Oracle => s.sticky && s.site == FaultSite::ExecPanic,
                };
            if armed {
                spec_idx.push(i);
            }
        }
        if spec_idx.is_empty() {
            None
        } else {
            Some(RowFaults {
                plan: self,
                spec_idx,
            })
        }
    }
}

/// The specs of a [`FaultPlan`] armed for one batch row; implements
/// [`FaultHook`], so it plugs directly into the datapath tamper points.
#[derive(Debug)]
pub struct RowFaults<'a> {
    plan: &'a FaultPlan,
    spec_idx: Vec<usize>,
}

impl RowFaults<'_> {
    /// Claim one strike of spec `i`. Transient faults fire exactly once
    /// across the plan's lifetime; sticky faults always fire (and count).
    fn claim(&self, i: usize) -> bool {
        let ctr = &self.plan.fired[i];
        if self.plan.specs[i].sticky {
            ctr.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            ctr.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        }
    }

    /// The deterministic per-strike hash: everything an injection needs
    /// (bit position, select delta, instruction index) comes from here.
    fn mix(&self, i: usize, salt: u64) -> u64 {
        let s = &self.plan.specs[i];
        splitmix64(
            self.plan
                .seed
                .wrapping_add((s.site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(s.row.wrapping_mul(0xD1B5_4A32_D192_ED03))
                .wrapping_add((i as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
                .wrapping_add(salt.wrapping_mul(0x2545_F491_4F6C_DD1D)),
        )
    }
}

impl FaultHook for RowFaults<'_> {
    fn tamper_bits(&self, site: FaultSite, word: &mut Bits) {
        if word.width() == 0 {
            return;
        }
        for &i in &self.spec_idx {
            if self.plan.specs[i].site != site || !self.claim(i) {
                continue;
            }
            for k in 0..self.plan.specs[i].flips {
                let pos = (self.mix(i, k as u64) % word.width() as u64) as usize;
                word.set_bit(pos, !word.bit(pos));
            }
        }
    }

    fn tamper_index(&self, site: FaultSite, index: &mut u64, modulus: u64) {
        if modulus <= 1 {
            return;
        }
        for &i in &self.spec_idx {
            if self.plan.specs[i].site != site || !self.claim(i) {
                continue;
            }
            // a guaranteed-different legal value: delta ∈ [1, modulus-1]
            let delta = 1 + self.mix(i, 0) % (modulus - 1);
            *index = (*index + delta) % modulus;
        }
    }

    fn wants_panic(&self) -> bool {
        for &i in &self.spec_idx {
            if self.plan.specs[i].site == FaultSite::ExecPanic && self.claim(i) {
                return true;
            }
        }
        false
    }

    fn tape_fault(&self, n_instrs: usize) -> Option<(usize, u32)> {
        if n_instrs == 0 {
            return None;
        }
        for &i in &self.spec_idx {
            if self.plan.specs[i].site == FaultSite::TapeReg && self.claim(i) {
                let instr = (self.mix(i, 1) % n_instrs as u64) as usize;
                let bit = (self.mix(i, 2) % 128) as u32;
                return Some((instr, bit));
            }
        }
        None
    }
}

impl RowFaults<'_> {
    /// An armed bit-plane-kernel fault ([`FaultSite::PLANE`]) for this
    /// row: returns the site and the deterministic word selector the
    /// plane tamper points reduce into a struck plane word. The call
    /// claims the fault — the robust executor consults it exactly once
    /// per row, in the chunk that owns the row, so the claim winner is
    /// thread-invariant like every other site's.
    pub fn plane_strike(&self) -> Option<(FaultSite, u64)> {
        for &i in &self.spec_idx {
            let site = self.plan.specs[i].site;
            if FaultSite::PLANE.contains(&site) && self.claim(i) {
                return Some((site, self.mix(i, 3)));
            }
        }
        None
    }
}

/// Per-evaluation control block for the checked FMA entry points: an
/// optional injection hook and an optional detection sink. With both
/// `None` (the [`Default`]) the engine takes its plain fast path — the
/// production configuration.
#[derive(Default)]
pub struct FmaCtl<'a> {
    /// Fault-injection hook; tampers fire at the datapath tamper points.
    pub hook: Option<&'a dyn FaultHook>,
    /// Detection sink; when present, the residue / recompute self-checks
    /// run and report here.
    pub detections: Option<&'a mut Vec<FaultDetected>>,
}

impl<'a> FmaCtl<'a> {
    /// Self-checking only: run the checks, no injection.
    pub fn checked(sink: &'a mut Vec<FaultDetected>) -> Self {
        FmaCtl {
            hook: None,
            detections: Some(sink),
        }
    }

    /// Injection plus checking — the robust executor's configuration.
    pub fn with_hook(hook: &'a dyn FaultHook, sink: &'a mut Vec<FaultDetected>) -> Self {
        FmaCtl {
            hook: Some(hook),
            detections: Some(sink),
        }
    }

    /// Whether the self-checks should run.
    #[inline]
    pub fn checking(&self) -> bool {
        self.detections.is_some()
    }

    /// Report one detection (no-op without a sink).
    pub fn detect(&mut self, check: CheckKind, message: String) {
        if let Some(d) = self.detections.as_deref_mut() {
            d.push(FaultDetected { check, message });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fault_fires_exactly_once() {
        let plan = FaultPlan::single(7, FaultSite::MulSum, 3);
        let mut w = Bits::zero(100);
        let clean = w.clone();

        assert!(plan.for_row(2, FaultStage::Primary).is_none(), "wrong row");

        let hook = plan.for_row(3, FaultStage::Primary).unwrap();
        hook.tamper_bits(FaultSite::MulCarry, &mut w);
        assert_eq!(w, clean, "wrong site must not strike");
        hook.tamper_bits(FaultSite::MulSum, &mut w);
        assert_ne!(w, clean, "armed site must strike");
        let struck = w.clone();
        hook.tamper_bits(FaultSite::MulSum, &mut w);
        assert_eq!(w, struck, "transient fault must not re-fire");
        assert_eq!(plan.fired(0), 1);

        // …not even from a fresh arming of the same row
        let hook2 = plan.for_row(3, FaultStage::Primary).unwrap();
        hook2.tamper_bits(FaultSite::MulSum, &mut w);
        assert_eq!(w, struck);

        // reset re-arms
        plan.reset();
        let hook3 = plan.for_row(3, FaultStage::Primary).unwrap();
        hook3.tamper_bits(FaultSite::MulSum, &mut w);
        assert_eq!(w, clean, "same position flips back after reset");
    }

    #[test]
    fn strikes_are_reproducible_from_seed_site_row() {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let mut words = Vec::new();
            for _ in 0..2 {
                let plan = FaultPlan::single(seed, FaultSite::PcsCarry, 11);
                let mut w = Bits::ones(385);
                plan.for_row(11, FaultStage::Primary)
                    .unwrap()
                    .tamper_bits(FaultSite::PcsCarry, &mut w);
                words.push(w);
            }
            assert_eq!(words[0], words[1], "seed {seed}");
        }
        // different seeds decorrelate (not a hard guarantee per-seed, but
        // these three must not all collide on a 385-bit word)
        let strike = |seed| {
            let plan = FaultPlan::single(seed, FaultSite::PcsCarry, 11);
            let mut w = Bits::zero(385);
            plan.for_row(11, FaultStage::Primary)
                .unwrap()
                .tamper_bits(FaultSite::PcsCarry, &mut w);
            w
        };
        let (a, b, c) = (strike(1), strike(2), strike(3));
        assert!(a != b || b != c);
    }

    #[test]
    fn stage_filtered_arming() {
        let plan = FaultPlan::new(1)
            .with_fault(FaultSpec::transient(FaultSite::MulSum, 0))
            .with_fault(FaultSpec::stuck(FaultSite::ExpField, 0))
            .with_fault(FaultSpec::stuck(FaultSite::ExecPanic, 0));

        let primary = plan.for_row(0, FaultStage::Primary).unwrap();
        assert_eq!(primary.spec_idx, vec![0, 1, 2]);

        let fallback = plan.for_row(0, FaultStage::Fallback).unwrap();
        assert_eq!(fallback.spec_idx, vec![1, 2], "fallback arms sticky only");

        let oracle = plan.for_row(0, FaultStage::Oracle).unwrap();
        assert_eq!(oracle.spec_idx, vec![2], "oracle arms sticky panics only");

        // a transient-only plan arms nothing past the primary stage
        let t = FaultPlan::single(1, FaultSite::ExecPanic, 0);
        assert!(t.for_row(0, FaultStage::Fallback).is_none());
        assert!(t.for_row(0, FaultStage::Oracle).is_none());
    }

    #[test]
    fn sticky_faults_fire_every_time() {
        let plan = FaultPlan::new(9).with_fault(FaultSpec::stuck(FaultSite::ExecPanic, 5));
        let hook = plan.for_row(5, FaultStage::Primary).unwrap();
        assert!(hook.wants_panic());
        assert!(hook.wants_panic());
        assert_eq!(plan.fired(0), 2);
        assert_eq!(plan.total_fired(), 2);
    }

    #[test]
    fn index_tamper_always_changes_a_nontrivial_index() {
        for seed in 0..50u64 {
            let plan = FaultPlan::single(seed, FaultSite::BlockSelect, 0);
            let hook = plan.for_row(0, FaultStage::Primary).unwrap();
            let mut idx = 2u64;
            hook.tamper_index(FaultSite::BlockSelect, &mut idx, 6);
            assert_ne!(idx, 2, "seed {seed}: delta is never 0 mod modulus");
            assert!(idx < 6, "seed {seed}: stays legal");
        }
        // modulus 1 leaves the only legal value alone
        let plan = FaultPlan::single(0, FaultSite::BlockSelect, 0);
        let hook = plan.for_row(0, FaultStage::Primary).unwrap();
        let mut idx = 0u64;
        hook.tamper_index(FaultSite::BlockSelect, &mut idx, 1);
        assert_eq!(idx, 0);
    }

    #[test]
    fn tape_fault_is_deterministic_and_in_range() {
        let plan = FaultPlan::new(3).with_fault(FaultSpec::transient(FaultSite::TapeReg, 7));
        let (i1, b1) = plan
            .for_row(7, FaultStage::Primary)
            .unwrap()
            .tape_fault(40)
            .unwrap();
        assert!(i1 < 40 && b1 < 128);
        plan.reset();
        let (i2, b2) = plan
            .for_row(7, FaultStage::Primary)
            .unwrap()
            .tape_fault(40)
            .unwrap();
        assert_eq!((i1, b1), (i2, b2));
        // one-shot: a second claim returns nothing
        let again = plan.for_row(7, FaultStage::Primary).unwrap();
        plan.reset();
        assert!(again.tape_fault(0).is_none(), "empty tape never faults");
    }
}
